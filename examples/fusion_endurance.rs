//! Listing 2 + Fig. 5: kernel fusion for endurance.
//!
//! Two independent GEMMs share their left operand `A`. Under the legacy
//! conservative schedule the runtime reprograms the crossbar for every
//! call; the fused batched call writes `A` once and streams `B`/`E` —
//! halving write traffic and doubling the projected crossbar lifetime
//! (Equation 1). The default pass pipeline reaches the same write
//! traffic without fusing: pin placement keeps `A` resident across the
//! two calls.
//!
//! Run with `cargo run --release --example fusion_endurance`.

use cim_pcm::wear::LifetimeModel;
use tdo_cim::{compile, execute, CompileOptions, ExecOptions};

const LISTING2: &str = r#"
    const int M = 64; const int N = 1024;
    float A[M][M]; float B[M][N]; float C[M][N]; float D[M][N]; float E[M][N];
    void kernel() {
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < M; k++)
            C[i][j] += A[i][k] * B[k][j];
      for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < M; k++)
            D[i][j] += A[i][k] * E[k][j];
    }
"#;

fn run(fusion: bool, dataflow: bool) -> Result<(u64, f64, String), Box<dyn std::error::Error>> {
    // The naive baseline needs the legacy conservative schedule: the
    // default pipeline's pin placement would keep `A` resident and erase
    // the per-call reprogramming this example measures.
    let mut opts =
        if dataflow { CompileOptions::with_tactics() } else { CompileOptions::without_dataflow() };
    opts.tactics.fusion = fusion;
    let compiled = compile(LISTING2, &opts)?;
    let calls = compiled
        .pseudo_c()
        .lines()
        .filter(|l| l.contains("polly_cimBlas"))
        .map(|l| l.trim().to_string())
        .collect::<Vec<_>>()
        .join("\n  ");
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        data.iter_mut().enumerate().for_each(|(i, v)| *v = ((seed + i * 3) % 5) as f32 - 2.0);
    };
    let r = execute(&compiled, &ExecOptions::default(), &init)?;
    let acc = r.accel.expect("offloaded");
    Ok((acc.cell_writes, r.wall_time().as_s(), calls))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w_naive, t_naive, calls_naive) = run(false, false)?;
    let (w_smart, t_smart, calls_smart) = run(true, true)?;
    let (w_pinned, _, _) = run(false, true)?;
    println!("=== Listing 2: two GEMMs sharing A ===\n");
    println!("naive mapping (legacy schedule, fusion off):\n  {calls_naive}");
    println!("  crossbar cell writes: {w_naive}\n");
    println!("smart mapping (fusion -> batched call):\n  {calls_smart}");
    println!("  crossbar cell writes: {w_smart}\n");
    println!(
        "write reduction: {:.2}x (A written once instead of per call)",
        w_naive as f64 / w_smart as f64
    );
    println!("default pipeline, unfused: {w_pinned} writes (pin placement keeps A resident)\n");
    assert_eq!(w_pinned, w_smart, "pinning should match the fused write traffic");

    // Fig. 5: lifetime vs cell endurance under both write rates.
    let model = LifetimeModel::default();
    let b_naive = w_naive as f64 / t_naive;
    let b_smart = w_smart as f64 / t_smart;
    println!("=== Fig. 5: system lifetime (Equation 1, S = 512 KiB) ===\n");
    println!("{:>24} {:>16} {:>16}", "endurance (Mwrites)", "naive (years)", "smart (years)");
    for mw in [10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0] {
        println!(
            "{:>24} {:>16.4} {:>16.4}",
            mw,
            model.years(mw * 1e6, b_naive),
            model.years(mw * 1e6, b_smart)
        );
    }
    println!(
        "\nlifetime improvement: {:.2}x (paper: ~2x)",
        model.years(20e6, b_naive).recip() / model.years(20e6, b_smart).recip()
    );
    Ok(())
}
