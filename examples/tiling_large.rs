//! Listing 3: tiling + interchange for crossbar fit and tile reuse.
//!
//! A GEMM larger than the 256x256 crossbar is tiled so one operand tile
//! fits; ordering the tile loops `[ii, kk, jj]` keeps the `A` tile
//! resident across all `jj` iterations, reprogramming each tile exactly
//! once. The naive `[ii, jj, kk]` order reinstalls the `A` tile for every
//! `jj` — multiplying crossbar writes by the number of `jj` tiles.
//!
//! Run with `cargo run --release --example tiling_large`.

use tdo_cim::{execute, CompileOptions, ExecOptions};
use tdo_ir::printer::print_program;
use tdo_ir::Expr;
use tdo_poly::codegen::rebuild_program;
use tdo_poly::scop::extract;
use tdo_poly::transforms::{prepend_extension, replace_subtree, tile};
use tdo_poly::tree::ScheduleTree;
use tdo_tactics::codegen::{gemm_view_call, prologue};
use tdo_tactics::detect::match_kernel;
use tdo_tactics::pass::tile_oversized_gemm;
use tdo_tactics::MatchedKernel;

const N: usize = 384; // > 256: does not fit the crossbar

fn src() -> String {
    format!(
        r#"
        const int N = {N};
        float A[N][N]; float B[N][N]; float C[N][N];
        void kernel() {{
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
        }}
        "#
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        data.iter_mut().enumerate().for_each(|(i, v)| *v = ((seed + i) % 3) as f32 - 1.0);
    };

    // --- Listing-3 order [ii, kk, jj] via the library helper. ---
    let mut prog = tdo_lang::compile(&src())?;
    let scop = extract(&prog)?;
    let Some(MatchedKernel::Gemm(g)) = match_kernel(&prog, &scop, &scop.tree) else {
        panic!("gemm should match");
    };
    let arrays = vec![g.a, g.b, g.c];
    let tiled = tile_oversized_gemm(&mut prog, &scop.tree, &g, 256, 256).expect("tiles");
    let tiled = prepend_extension(&tiled, prologue(0, &arrays));
    let good = rebuild_program(&prog, &scop, &tiled);
    println!("=== Listing 3: tiled GEMM (tile order ii, kk, jj) ===\n");
    println!("{}", print_program(&good));

    // --- Naive order [ii, jj, kk] built from the same building blocks. ---
    let mut prog2 = tdo_lang::compile(&src())?;
    let scop2 = extract(&prog2)?;
    let Some(MatchedKernel::Gemm(g2)) = match_kernel(&prog2, &scop2, &scop2.tree) else {
        panic!("gemm should match");
    };
    let bad_tree = tile(&mut prog2, &scop2.tree, &[256, 256, 256], &[0, 1, 2]).expect("tiles");
    let (dims, _) = bad_tree.band_chain();
    let (ii, jj, kk) = (dims[0].var, dims[1].var, dims[2].var);
    let ext = |v, total: usize| {
        Expr::sub(
            Expr::min(Expr::add(Expr::Var(v), Expr::Int(256)), Expr::Int(total as i64)),
            Expr::Var(v),
        )
    };
    let call = gemm_view_call(
        &g2,
        ext(ii, N),
        ext(jj, N),
        ext(kk, N),
        (Expr::Var(ii), Expr::Var(kk)),
        (Expr::Var(kk), Expr::Var(jj)),
        (Expr::Var(ii), Expr::Var(jj)),
    );
    let bad_tree = replace_subtree(
        &bad_tree,
        &|t| matches!(t, ScheduleTree::Mark { name, .. } if name == "point"),
        &mut |_| ScheduleTree::Extension { stmts: vec![call.clone()] },
    );
    let bad_tree = prepend_extension(&bad_tree, prologue(0, &[g2.a, g2.b, g2.c]));
    let bad = rebuild_program(&prog2, &scop2, &bad_tree);

    // --- Run both on the platform and compare crossbar writes. ---
    let mk = |p: tdo_ir::Program| tdo_cim::CompiledProgram {
        prog: p.clone(),
        source_ir: p,
        report: None,
        passes: Vec::new(),
        scop_skipped: None,
    };
    let _ = CompileOptions::default();
    println!("running reuse-friendly order [ii, kk, jj] ...");
    let r_good = execute(&mk(good), &ExecOptions::default(), &init)?;
    println!("running naive order [ii, jj, kk] ...");
    let r_bad = execute(&mk(bad), &ExecOptions::default(), &init)?;
    assert_eq!(r_good.array("C"), r_bad.array("C"));

    let (wg, wb) =
        (r_good.accel.expect("accel").cell_writes, r_bad.accel.expect("accel").cell_writes);
    println!("\ncrossbar cell writes, [ii, kk, jj] order: {wg}");
    println!("crossbar cell writes, [ii, jj, kk] order: {wb}");
    println!(
        "interchange reduces crossbar writes by {:.2}x (= number of jj tiles)",
        wb as f64 / wg as f64
    );
    println!("energy: {} vs {}", r_good.total_energy(), r_bad.total_energy());
    Ok(())
}
