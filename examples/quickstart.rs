//! Quickstart: the Listing-1 experience.
//!
//! Compiles a plain GEMM written in mini-C twice — host-only (`-O3`) and
//! with `-enable-loop-tactics` — shows the transparent rewriting into
//! `polly_cim*` runtime calls, runs both binaries on the simulated
//! platform and prints the energy/EDP comparison.
//!
//! Run with `cargo run --release --example quickstart`.

use polybench::{init_fn, source, Dataset, Kernel};
use tdo_cim::{compile, execute, Comparison, CompileOptions, ExecOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = source(Kernel::Gemm, Dataset::Small);
    println!("=== source (PolyBench gemm, N = 64) ===\n{src}");

    let host = compile(&src, &CompileOptions::host_only())?;
    let cim = compile(&src, &CompileOptions::with_tactics())?;

    println!("=== after Loop Tactics (-enable-loop-tactics) ===");
    println!("{}", cim.pseudo_c());
    if let Some(report) = &cim.report {
        println!("{report}");
    }

    let init = init_fn(Kernel::Gemm);
    let opts = ExecOptions::default();
    println!("running host-only binary ...");
    let host_run = execute(&host, &opts, &init)?;
    println!("running host+CIM binary ...");
    let cim_run = execute(&cim, &opts, &init)?;

    // Results are identical: the offload is transparent.
    assert_eq!(host_run.array("C"), cim_run.array("C"));
    println!("output matrix C identical across both binaries\n");

    let cmp = Comparison { name: "gemm".into(), host: host_run, cim: cim_run };
    println!("{cmp}");
    if let Some(acc) = &cmp.cim.accel {
        println!("{acc}");
    }
    Ok(())
}
