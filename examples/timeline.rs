//! Fig. 2 (d): the event timeline of one offloaded kernel.
//!
//! The host prepares data in shared memory and writes the CIM
//! configuration registers; the accelerator fills buffers, programs the
//! crossbar, computes, accumulates and stores the result; the status
//! register flips to done. This example records and prints those events.
//!
//! Run with `cargo run --release --example timeline`.

use tdo_cim::{compile, execute, CompileOptions, ExecOptions};

const SRC: &str = r#"
    const int N = 24;
    float A[N][N]; float B[N][N]; float C[N][N];
    void kernel() {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            C[i][j] += A[i][k] * B[k][j];
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = compile(SRC, &CompileOptions::with_tactics())?;
    let opts = ExecOptions { record_timeline: true, ..ExecOptions::default() };
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        data.iter_mut().enumerate().for_each(|(i, v)| *v = ((seed + i) % 3) as f32);
    };
    let run = execute(&compiled, &opts, &init)?;
    println!("=== accelerator event timeline (Fig. 2 (d)) ===\n");
    println!("{}", run.timeline.as_ref().expect("timeline recorded"));
    println!("accelerator busy: {}", run.accel.expect("accel used").busy);
    println!("host wall clock:  {}", run.wall_time());
    Ok(())
}
