//! Using the CIM runtime library directly, cuBLAS-style.
//!
//! "The library has been designed to be used directly by the application
//! programmer, or an optimizer (i.e., Loop Tactics)" (Section III). This
//! example plays the application programmer: allocate shared buffers,
//! fill them, launch a GEMV and a batched GEMM by hand, read the results.
//!
//! Run with `cargo run --release --example direct_api`.

use cim_accel::AccelConfig;
use cim_machine::{Machine, MachineConfig};
use cim_runtime::{CimContext, CimError, DriverConfig, Transpose};

fn main() -> Result<(), CimError> {
    let mut mach = Machine::new(MachineConfig::default());
    let mut ctx = CimContext::new(AccelConfig::default(), DriverConfig::default(), &mach);
    ctx.cim_init(&mut mach, 0)?;

    // y = alpha * A x + beta * y with a 4x4 A.
    let a = ctx.cim_malloc(&mut mach, 4 * 4 * 4)?;
    let x = ctx.cim_malloc(&mut mach, 4 * 4)?;
    let y = ctx.cim_malloc(&mut mach, 4 * 4)?;
    #[rustfmt::skip]
    let a_host: [f32; 16] = [
        1.0, 2.0, 0.0, 0.0,
        0.0, 1.0, 2.0, 0.0,
        0.0, 0.0, 1.0, 2.0,
        2.0, 0.0, 0.0, 1.0,
    ];
    mach.poke_f32_slice(a.va, &a_host);
    mach.poke_f32_slice(x.va, &[1.0, 2.0, 3.0, 4.0]);
    mach.poke_f32_slice(y.va, &[10.0, 10.0, 10.0, 10.0]);
    let dur = ctx.cim_blas_sgemv(&mut mach, Transpose::No, 4, 4, 2.0, a, 4, x, 1.0, y)?;
    let mut out = [0f32; 4];
    mach.peek_f32_slice(y.va, &mut out);
    println!("gemv finished in {dur}: y = {out:?}");
    assert_eq!(out, [20.0, 26.0, 32.0, 22.0]);

    // A batch of two GEMMs sharing the stationary A (endurance-friendly).
    let b1 = ctx.cim_malloc(&mut mach, 4 * 4 * 4)?;
    let b2 = ctx.cim_malloc(&mut mach, 4 * 4 * 4)?;
    let c1 = ctx.cim_malloc(&mut mach, 4 * 4 * 4)?;
    let c2 = ctx.cim_malloc(&mut mach, 4 * 4 * 4)?;
    let ident: Vec<f32> = (0..16).map(|i| if i % 5 == 0 { 1.0 } else { 0.0 }).collect();
    mach.poke_f32_slice(b1.va, &ident);
    let two: Vec<f32> = ident.iter().map(|v| 2.0 * v).collect();
    mach.poke_f32_slice(b2.va, &two);
    let dur = ctx.cim_blas_gemm_batched(
        &mut mach,
        Transpose::No,
        Transpose::No,
        4,
        4,
        4,
        1.0,
        &[a, a],
        4,
        &[b1, b2],
        4,
        0.0,
        &[c1, c2],
        4,
    )?;
    let mut c2_host = [0f32; 16];
    mach.peek_f32_slice(c2.va, &mut c2_host);
    println!("batched gemm finished in {dur}: C2 = 2*A, C2[0][1] = {}", c2_host[1]);
    assert_eq!(c2_host[1], 4.0);

    let stats = *ctx.accel().stats();
    println!("\n{stats}");
    println!("{}", ctx.stats());
    println!(
        "driver: {} ioctls, {} reg accesses, {} flushed lines",
        ctx.driver().stats().ioctls,
        ctx.driver().stats().reg_accesses,
        ctx.driver().stats().flush_lines
    );
    Ok(())
}
