//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the TDO-CIM benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with no external dependencies, so `cargo bench` works
//! without network access.
//!
//! Measurement is intentionally simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples of a fixed iteration
//! batch, and prints the median per-iteration time. There are no HTML
//! reports and no outlier analysis (see `vendor/README.md`) — but when
//! the bench binary is invoked with `--json <path>` (i.e. `cargo bench
//! --bench NAME -- --json out.json`), the medians are also written as a
//! `cim-bench-v1` report, the same machine-readable schema the figure
//! binaries emit (`crates/report`), so the `bench_compare` perf gate
//! can diff micro-benchmarks and figures uniformly. The JSON is
//! hand-rolled here to keep this vendored crate dependency-free.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Medians accumulated across every group in the current bench binary,
/// as `(benchmark id, median ns/iter)`. Written by [`maybe_write_json`]
/// at the end of `criterion_main!`.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Opaque value barrier, re-exported for call sites that import it from
/// criterion rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: large batches.
    SmallInput,
    /// Large per-iteration inputs: batches of one.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    samples: usize,
    medians_ns: Vec<f64>,
}

impl Bencher {
    fn new(iters: u64, samples: usize) -> Self {
        Bencher { iters, samples, medians_ns: Vec::new() }
    }

    fn record(&mut self, mut sample: impl FnMut(u64) -> Duration) {
        // Warm-up: one untimed batch.
        let _ = sample(self.iters.clamp(1, 4));
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| sample(self.iters).as_nanos() as f64 / self.iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.medians_ns.push(per_iter[per_iter.len() / 2]);
    }

    /// Times `routine` over the sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.record(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.record(|iters| {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            start.elapsed()
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate the iteration count so one sample stays near 5 ms.
    let mut bench = Bencher::new(1, 1);
    f(&mut bench);
    let once_ns = bench.medians_ns.last().copied().unwrap_or(1.0).max(1.0);
    let iters = ((5_000_000.0 / once_ns) as u64).clamp(1, 10_000);
    let mut bench = Bencher::new(iters, sample_size.max(3));
    f(&mut bench);
    let median = bench.medians_ns.last().copied().unwrap_or(f64::NAN);
    println!("{id:<48} time: [{}]  ({iters} iters/sample)", human(median));
    RESULTS.lock().expect("results poisoned").push((id.to_string(), median));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes every median recorded so far as a `cim-bench-v1` report to
/// `path`. Each benchmark id becomes one record with the median in
/// `wall_ns` (nondeterministic, so the perf gate's loose ratio rule
/// applies); modeled time and counters stay zero.
pub fn write_json(suite: &str, path: &str) {
    let results = RESULTS.lock().expect("results poisoned");
    let mut out = String::new();
    out.push_str("{\n  \"records\": [");
    for (i, (id, median)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let wall = if median.is_finite() { format!("{median}") } else { "null".into() };
        out.push_str(&format!(
            "\n    {{\n      \"config\": {{\"dataset\": \"-\", \"device\": \"-\", \
             \"dispatch\": \"-\", \"grid\": [1, 1]}},\n      \
             \"hoisted_syncs\": 0,\n      \"installs\": 0,\n      \
             \"installs_skipped\": 0,\n      \"max_tiles_active\": 0,\n      \
             \"metrics\": {{}},\n      \"modeled_ns\": 0,\n      \
             \"name\": \"{}\",\n      \"wall_ns\": {wall}\n    }}",
            json_escape(id)
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"schema\": \"cim-bench-v1\",\n  \"suite\": \"{}\"\n}}",
        json_escape(suite)
    ));
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path} ({} records)", results.len());
}

/// `criterion_main!` epilogue: honors `--json <path>` from argv, naming
/// the suite `bench_<binary stem>` (cargo's trailing `-<hash>` removed).
pub fn maybe_write_json_from_argv() {
    let args: Vec<String> = std::env::args().collect();
    let path = args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix("--json=")
            .map(str::to_string)
            .or_else(|| (a == "--json").then(|| args.get(i + 1).cloned()).flatten())
    });
    let Some(path) = path else { return };
    let stem = std::path::Path::new(&args[0])
        .file_stem()
        .map_or_else(|| "unknown".into(), |s| s.to_string_lossy().into_owned());
    // cargo bench binaries are named `<bench>-<16 hex digits>`.
    let stem = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    };
    write_json(&format!("bench_{stem}"), &path);
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real default (100 samples) makes simulator benches crawl;
        // 10 gives a stable median for a smoke-level harness.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for `harness = false` bench targets, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::maybe_write_json_from_argv();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        (0..n).fold(0, |acc, i| acc ^ i.wrapping_mul(0x9E3779B97F4A7C15))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        c.bench_function("spin_small", |b| b.iter(|| spin(black_box(100))));
    }

    #[test]
    fn groups_and_batched_iter_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| spin(v.len() as u64), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| spin(black_box(10))));
    }

    #[test]
    fn criterion_group_macro_compiles_and_runs() {
        demo_group();
    }

    #[test]
    fn json_sink_emits_schema_and_escapes_ids() {
        let mut c = Criterion::default();
        c.bench_function("json\"sink\"/case", |b| b.iter(|| spin(black_box(10))));
        let path = std::env::temp_dir().join("criterion_json_sink_test.json");
        write_json("bench_demo", path.to_str().expect("utf-8 temp path"));
        let text = std::fs::read_to_string(&path).expect("written");
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"schema\": \"cim-bench-v1\""), "{text}");
        assert!(text.contains("\"suite\": \"bench_demo\""), "{text}");
        assert!(text.contains("json\\\"sink\\\"/case"), "{text}");
    }
}
