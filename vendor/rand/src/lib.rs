//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface the TDO-CIM suite uses — the
//! [`Rng`] extension trait with [`Rng::gen_range`], the [`SeedableRng`]
//! constructor trait, and [`rngs::StdRng`] — with no external
//! dependencies, so the workspace builds without network access. The
//! generator is xoshiro256++ seeded via SplitMix64: deterministic,
//! fast, and statistically solid for simulation noise and tests.
//!
//! See `vendor/README.md` for the full list of divergences from the
//! real crate.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension trait with user-facing sampling methods, mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a random `bool` with probability 1/2.
    fn gen_bool_fair(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one value from an [`RngCore`],
/// mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against floating-point round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform `u64` in `[0, n)` via Lemire-style rejection-free widening
/// multiply (bias is negligible for the ranges used here, but reject
/// anyway to keep the sampler exact).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    (self.start as $wide).wrapping_add(below(rng, span) as $wide) as $t
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as $wide).wrapping_add(below(rng, span + 1) as $wide) as $t
                }
            }
        )+
    };
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn int_inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = rng.gen_range(-1i8..=2);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values in -1..=2 should occur");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = sample(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
