//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the [`proptest!`] macro, the `prop_assert*!`/[`prop_assume!`]
//! assertion macros, and the strategies the TDO-CIM suite uses (integer
//! ranges, [`collection::vec`], [`bool::ANY`]) with no external
//! dependencies, so the workspace builds without network access.
//!
//! Differences from the real crate (see `vendor/README.md`): failing
//! inputs are **not shrunk** — the panic message reports the sampled
//! values of the first failing case instead — and the RNG seed is derived
//! deterministically from the test name, so failures reproduce exactly.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type, sampled per test case.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rand::Rng::gen_range(&mut rng.0, self.clone())
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rand::Rng::gen_range(&mut rng.0, self.clone())
                    }
                }
            )+
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),+ $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rand::Rng::gen_range(&mut rng.0, self.clone())
                    }
                }
            )+
        };
    }

    impl_float_range_strategy!(f32, f64);

    /// Strategy yielding a constant value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random `bool`, mirroring `proptest::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rand::Rng::gen_bool_fair(&mut rng.0)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Vector of values from `elem` with length drawn from `len`,
    /// mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(&mut rng.0, self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test runner: configuration, RNG, and case outcome.

    use rand::SeedableRng;

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config that runs `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default (256) is overkill for a shrinker-less
            // runner; 64 keeps `cargo test` fast while still covering
            // the input space well.
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies (wraps the vendored
    /// [`rand::rngs::StdRng`]).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// Seeds the RNG from a test name via FNV-1a, so every test has
        /// a stable, independent stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped, not failed.
        Reject,
        /// An assertion failed with the given message.
        Fail(String),
    }

    /// Result type produced by a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body against `Config::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                // Allow rejections (prop_assume!) without spinning forever.
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} failed: {}\n    inputs: {}",
                                attempts, msg, described
                            );
                        }
                    }
                }
                assert!(
                    passed == config.cases,
                    "proptest {}: only {} of {} cases passed assumptions after {} attempts",
                    stringify!($name), passed, config.cases, attempts
                );
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config(::core::default::Default::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strat ),+ ) $body
            )+
        }
    };
}

/// `assert!` for property bodies: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in -100i64..100, b in -100i64..100) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u8..=255, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn bools_and_assume(flag in bool::ANY, n in 0usize..10) {
            prop_assume!(n > 0);
            prop_assert!(usize::from(flag) <= 1);
            prop_assert_ne!(n, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn explicit_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x is never that big");
            }
        }
        always_fails();
    }
}
