//! Property tests: polyhedral transformations preserve semantics on
//! randomly generated affine programs.

use proptest::prelude::*;
use tdo_ir::interp::{run, PureBackend};
use tdo_ir::{ArrayId, Program};
use tdo_poly::codegen::rebuild_program;
use tdo_poly::scop::extract;
use tdo_poly::transforms::{interchange, tile};

/// Builds a GEMM-like program with configurable extents and coefficients;
/// random parameters give a family of affine programs with reductions.
fn build_program(m: usize, n: usize, k: usize, alpha: i32, acc_shift: bool) -> (String, Program) {
    let shift = if acc_shift { " + 1.0" } else { "" };
    let src = format!(
        r#"
        float A[{m}][{k}]; float B[{k}][{n}]; float C[{m}][{n}];
        void kernel() {{
          for (int i = 0; i < {m}; i++)
            for (int j = 0; j < {n}; j++)
              for (int k = 0; k < {k}; k++)
                C[i][j] += {alpha}.0 * A[i][k] * B[k][j]{shift};
        }}
        "#
    );
    let prog = tdo_lang::compile(&src).expect("compiles");
    (src, prog)
}

fn run_all(prog: &Program) -> Vec<Vec<f32>> {
    let mut be = PureBackend::for_program(prog);
    for (i, d) in prog.arrays.iter().enumerate() {
        let data: Vec<f32> =
            (0..d.elem_count()).map(|j| ((i * 17 + j * 5) % 7) as f32 - 3.0).collect();
        be.set_array(ArrayId(i), &data);
    }
    run(prog, &mut be).expect("runs");
    be.into_arrays()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiling_preserves_semantics(
        m in 1usize..10,
        n in 1usize..10,
        k in 1usize..10,
        tm in 1i64..6,
        tn in 1i64..6,
        tk in 1i64..6,
        perm_pick in 0usize..6,
        alpha in -3i32..4,
        acc_shift in proptest::bool::ANY,
    ) {
        let perms: [[usize; 3]; 6] =
            [[0,1,2],[0,2,1],[1,0,2],[1,2,0],[2,0,1],[2,1,0]];
        let (_, mut prog) = build_program(m, n, k, alpha, acc_shift);
        let scop = extract(&prog).expect("affine");
        let reference = run_all(&prog);
        let tiled = tile(&mut prog, &scop.tree, &[tm, tn, tk], &perms[perm_pick])
            .expect("tileable");
        let tiled_prog = rebuild_program(&prog, &scop, &tiled);
        tdo_ir::verify::verify(&tiled_prog).expect("well-formed");
        let got = run_all(&tiled_prog);
        // Compare original arrays only (tiling adds no arrays).
        prop_assert_eq!(&got[..reference.len()], &reference[..]);
    }

    #[test]
    fn interchange_preserves_semantics(
        m in 1usize..10,
        n in 1usize..10,
        k in 1usize..10,
        a in 0usize..3,
        b in 0usize..3,
        alpha in -3i32..4,
    ) {
        let (_, prog) = build_program(m, n, k, alpha, false);
        let scop = extract(&prog).expect("affine");
        let reference = run_all(&prog);
        if let Some(swapped) = interchange(&scop.tree, a, b) {
            let new_prog = rebuild_program(&prog, &scop, &swapped);
            tdo_ir::verify::verify(&new_prog).expect("well-formed");
            prop_assert_eq!(run_all(&new_prog), reference);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn offload_rewrite_preserves_semantics(
        m in 1usize..9,
        n in 1usize..9,
        k in 1usize..9,
        alpha in 1i32..4,
    ) {
        // Through the full tactics pass and the pure backend's functional
        // call semantics.
        let (src, _) = build_program(m, n, k, alpha, false);
        let host = tdo_cim::compile(&src, &tdo_cim::CompileOptions::host_only()).expect("c");
        let cim = tdo_cim::compile(&src, &tdo_cim::CompileOptions::with_tactics()).expect("c");
        prop_assume!(cim.offloaded());
        let reference = run_all(&host.prog);
        let got = run_all(&cim.prog);
        prop_assert_eq!(&got[..reference.len()], &reference[..]);
    }
}
