//! The endurance story of Section III-B: fusion halves crossbar write
//! traffic for shared-input kernels (Listing 2 / Fig. 5).

use cim_pcm::wear::LifetimeModel;
use tdo_cim::{compile, execute, CompileOptions, ExecOptions};

const LISTING2: &str = r#"
    const int N = 64;
    float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float E[N][N];
    void kernel() {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            C[i][j] += A[i][k] * B[k][j];
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            D[i][j] += A[i][k] * E[k][j];
    }
"#;

fn writes_with_fusion(enable: bool) -> (u64, f64) {
    // The naive point-wise schedule of Section III-B: the pass pipeline's
    // pin placement would otherwise keep the shared operand resident and
    // erase the very write traffic this suite measures.
    let mut opts = CompileOptions::without_dataflow();
    opts.tactics.fusion = enable;
    let compiled = compile(LISTING2, &opts).expect("compiles");
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((seed + i * 3) % 5) as f32 - 2.0;
        }
    };
    let r = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
    let acc = r.accel.expect("offloaded");
    (acc.cell_writes, r.wall_time().as_s())
}

#[test]
fn fusion_halves_crossbar_writes() {
    let (fused, _) = writes_with_fusion(true);
    let (unfused, _) = writes_with_fusion(false);
    // Smart mapping writes A once; naive mapping writes it per kernel.
    assert_eq!(unfused, 2 * fused, "unfused {unfused} vs fused {fused}");

    // The default pass pipeline recovers the same factor without fusing:
    // pin placement keeps the shared A resident across both kernels.
    let mut pinned_opts = CompileOptions::default();
    pinned_opts.tactics.fusion = false;
    let compiled = compile(LISTING2, &pinned_opts).expect("compiles");
    assert_eq!(compiled.pass_counter("pins"), 1, "A must be pinned");
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((seed + i * 3) % 5) as f32 - 2.0;
        }
    };
    let r = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
    assert_eq!(r.accel.expect("offloaded").cell_writes, fused, "pinning matches fused writes");
}

#[test]
fn fusion_doubles_projected_lifetime() {
    // Equation 1 applied to measured write traffic: the factor-2 of
    // Fig. 5. The effect shows when execution time is compute-dominated
    // (many GEMVs per install), so use wide-N GEMMs sharing A.
    const WIDE: &str = r#"
        const int M = 32; const int N = 512;
        float A[M][M]; float B[M][N]; float C[M][N]; float D[M][N]; float E[M][N];
        void kernel() {
          for (int i = 0; i < M; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < M; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < M; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < M; k++)
                D[i][j] += A[i][k] * E[k][j];
        }
    "#;
    let run = |fusion: bool| {
        // Naive schedule again — see `writes_with_fusion`.
        let mut opts = CompileOptions::without_dataflow();
        opts.tactics.fusion = fusion;
        let compiled = compile(WIDE, &opts).expect("compiles");
        let init = |name: &str, data: &mut [f32]| {
            let seed = name.len();
            for (i, v) in data.iter_mut().enumerate() {
                *v = ((seed + i * 3) % 5) as f32 - 2.0;
            }
        };
        let r = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
        let acc = r.accel.expect("offloaded");
        (acc.cell_writes as f64, r.wall_time().as_s())
    };
    let (w_fused, t_fused) = run(true);
    let (w_unfused, t_unfused) = run(false);
    assert_eq!(w_unfused, 2.0 * w_fused, "write volume must halve");
    let model = LifetimeModel::default();
    let endurance = 20e6; // mid-range of Fig. 5's x-axis
    let life_fused = model.years(endurance, w_fused / t_fused);
    let life_unfused = model.years(endurance, w_unfused / t_unfused);
    let ratio = life_fused / life_unfused;
    assert!(
        (1.6..=2.1).contains(&ratio),
        "lifetime ratio {ratio} (fused {life_fused}y vs naive {life_unfused}y)"
    );
}

#[test]
fn fused_and_unfused_compute_identical_results() {
    let mut with = CompileOptions::with_tactics();
    with.tactics.fusion = true;
    let mut without = CompileOptions::with_tactics();
    without.tactics.fusion = false;
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((seed + i * 3) % 5) as f32 - 2.0;
        }
    };
    let r1 = execute(&compile(LISTING2, &with).expect("c"), &ExecOptions::default(), &init)
        .expect("runs");
    let r2 = execute(&compile(LISTING2, &without).expect("c"), &ExecOptions::default(), &init)
        .expect("runs");
    assert_eq!(r1.array("C"), r2.array("C"));
    assert_eq!(r1.array("D"), r2.array("D"));
}
