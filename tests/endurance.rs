//! The endurance story of Section III-B: fusion halves crossbar write
//! traffic for shared-input kernels (Listing 2 / Fig. 5) — and, since
//! the serving layer, endurance as a *shared* resource: per-tenant wear
//! budgets throttle and steer a hot tenant before it burns out a tile,
//! wear lands exactly where each tenant's lease placed it, and a single
//! tenant served through the scheduler is byte-identical to the
//! pre-serving private-context baseline.

use cim_accel::AccelConfig;
use cim_machine::{Machine, MachineConfig};
use cim_pcm::wear::LifetimeModel;
use cim_runtime::{
    CimContext, CimServer, DevPtr, DispatchMode, DriverConfig, ServePolicy, TenantConfig, Transpose,
};
use tdo_cim::{compile, execute, CompileOptions, ExecOptions};

const LISTING2: &str = r#"
    const int N = 64;
    float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float E[N][N];
    void kernel() {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            C[i][j] += A[i][k] * B[k][j];
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            D[i][j] += A[i][k] * E[k][j];
    }
"#;

fn writes_with_fusion(enable: bool) -> (u64, f64) {
    // The naive point-wise schedule of Section III-B: the pass pipeline's
    // pin placement would otherwise keep the shared operand resident and
    // erase the very write traffic this suite measures.
    let mut opts = CompileOptions::without_dataflow();
    opts.tactics.fusion = enable;
    let compiled = compile(LISTING2, &opts).expect("compiles");
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((seed + i * 3) % 5) as f32 - 2.0;
        }
    };
    let r = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
    let acc = r.accel.expect("offloaded");
    (acc.cell_writes, r.wall_time().as_s())
}

#[test]
fn fusion_halves_crossbar_writes() {
    let (fused, _) = writes_with_fusion(true);
    let (unfused, _) = writes_with_fusion(false);
    // Smart mapping writes A once; naive mapping writes it per kernel.
    assert_eq!(unfused, 2 * fused, "unfused {unfused} vs fused {fused}");

    // The default pass pipeline recovers the same factor without fusing:
    // pin placement keeps the shared A resident across both kernels.
    let mut pinned_opts = CompileOptions::default();
    pinned_opts.tactics.fusion = false;
    let compiled = compile(LISTING2, &pinned_opts).expect("compiles");
    assert_eq!(compiled.pass_counter("pins"), 1, "A must be pinned");
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((seed + i * 3) % 5) as f32 - 2.0;
        }
    };
    let r = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
    assert_eq!(r.accel.expect("offloaded").cell_writes, fused, "pinning matches fused writes");
}

#[test]
fn fusion_doubles_projected_lifetime() {
    // Equation 1 applied to measured write traffic: the factor-2 of
    // Fig. 5. The effect shows when execution time is compute-dominated
    // (many GEMVs per install), so use wide-N GEMMs sharing A.
    const WIDE: &str = r#"
        const int M = 32; const int N = 512;
        float A[M][M]; float B[M][N]; float C[M][N]; float D[M][N]; float E[M][N];
        void kernel() {
          for (int i = 0; i < M; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < M; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < M; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < M; k++)
                D[i][j] += A[i][k] * E[k][j];
        }
    "#;
    let run = |fusion: bool| {
        // Naive schedule again — see `writes_with_fusion`.
        let mut opts = CompileOptions::without_dataflow();
        opts.tactics.fusion = fusion;
        let compiled = compile(WIDE, &opts).expect("compiles");
        let init = |name: &str, data: &mut [f32]| {
            let seed = name.len();
            for (i, v) in data.iter_mut().enumerate() {
                *v = ((seed + i * 3) % 5) as f32 - 2.0;
            }
        };
        let r = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
        let acc = r.accel.expect("offloaded");
        (acc.cell_writes as f64, r.wall_time().as_s())
    };
    let (w_fused, t_fused) = run(true);
    let (w_unfused, t_unfused) = run(false);
    assert_eq!(w_unfused, 2.0 * w_fused, "write volume must halve");
    let model = LifetimeModel::default();
    let endurance = 20e6; // mid-range of Fig. 5's x-axis
    let life_fused = model.years(endurance, w_fused / t_fused);
    let life_unfused = model.years(endurance, w_unfused / t_unfused);
    let ratio = life_fused / life_unfused;
    assert!(
        (1.6..=2.1).contains(&ratio),
        "lifetime ratio {ratio} (fused {life_fused}y vs naive {life_unfused}y)"
    );
}

#[test]
fn fused_and_unfused_compute_identical_results() {
    let mut with = CompileOptions::with_tactics();
    with.tactics.fusion = true;
    let mut without = CompileOptions::with_tactics();
    without.tactics.fusion = false;
    let init = |name: &str, data: &mut [f32]| {
        let seed = name.len();
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((seed + i * 3) % 5) as f32 - 2.0;
        }
    };
    let r1 = execute(&compile(LISTING2, &with).expect("c"), &ExecOptions::default(), &init)
        .expect("runs");
    let r2 = execute(&compile(LISTING2, &without).expect("c"), &ExecOptions::default(), &init)
        .expect("runs");
    assert_eq!(r1.array("C"), r2.array("C"));
    assert_eq!(r1.array("D"), r2.array("D"));
}

// ---- serving-layer endurance: wear as a metered shared resource ----

const SERVE_N: usize = 8;

fn serve_fill(len: usize, seed: usize) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * 0.25 - 1.5).collect()
}

fn serve_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
    let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
    mach.poke_f32_slice(dev.va, data);
    dev
}

/// One GEMV against a *fresh* stationary operand: every call programs a
/// full install's worth of crossbar cells — the hot-tenant write traffic
/// the wear budget meters.
fn serve_install_op(ctx: &mut CimContext, mach: &mut Machine, seed: usize) {
    let a = serve_mat(ctx, mach, &serve_fill(SERVE_N * SERVE_N, seed));
    let x = serve_mat(ctx, mach, &serve_fill(SERVE_N, seed + 1));
    let y = serve_mat(ctx, mach, &serve_fill(SERVE_N, seed + 2));
    ctx.cim_blas_sgemv(mach, Transpose::No, SERVE_N, SERVE_N, 1.0, a, SERVE_N, x, 0.0, y)
        .expect("gemv");
}

/// Cell writes of one such install, measured on a private context.
fn cells_per_install() -> u64 {
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut ctx =
        CimContext::new(AccelConfig::test_small().with_grid(2, 1), DriverConfig::default(), &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    serve_install_op(&mut ctx, &mut mach, 3);
    let cells = ctx.accel().stats().cell_writes;
    assert!(cells > 0, "an install must program cells");
    cells
}

/// A tenant past its wear budget is throttled at admission and its
/// lease steered between regions, ping-ponging installs so no single
/// tile absorbs the whole flood: the final per-tile wear is balanced to
/// within one install.
#[test]
fn wear_budget_throttles_and_steers_the_hot_tenant() {
    let per_install = cells_per_install();
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut server = CimServer::new(
        AccelConfig::test_small().with_grid(2, 1),
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        ServePolicy { regions: 2, ..Default::default() },
        &mach,
    );
    // Budget spent after two installs; ten more arrive over budget.
    let budget = per_install * 2;
    let mut hot = server.connect(TenantConfig { weight: 1, wear_budget: Some(budget) });
    hot.cim_init(&mut mach, 0).expect("init");
    let hot_tid = hot.tenant().expect("tenant");
    for i in 0..12 {
        serve_install_op(&mut hot, &mut mach, 100 + i * 11);
    }
    hot.cim_sync(&mut mach).expect("sync");

    assert!(hot.stats().wear_throttles > 0, "over-budget calls must pay the wear penalty");
    let usage = server.usage(hot_tid);
    assert!(usage.wear_cells > budget, "the flood spent the budget");
    assert!(usage.wear_throttles > 0 && usage.throttle_ns > 0.0, "ledger records the throttling");
    assert!(usage.steers >= 1, "the lease must have been steered off the worn region");

    // Steering balances the flood across the grid: both tiles absorbed
    // writes, and their totals differ by at most one install (the
    // steer condition moves the lease whenever the other region is
    // strictly less worn).
    let dev = server.device();
    let wear: Vec<u64> = dev.borrow().accel.tile_wear().iter().map(|w| w.cell_writes).collect();
    assert_eq!(wear.len(), 2);
    assert!(wear.iter().all(|&w| w > 0), "both tiles share the flood: {wear:?}");
    let spread = wear[0].abs_diff(wear[1]);
    assert!(
        spread <= per_install,
        "wear spread {spread} exceeds one install ({per_install}): {wear:?}"
    );
}

/// Without budgets, wear lands exactly where each tenant's lease placed
/// it: every region's cell writes equal its lessee's metered wear.
#[test]
fn wear_spread_matches_lease_placement() {
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut server = CimServer::new(
        AccelConfig::test_small().with_grid(2, 1),
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        ServePolicy { regions: 2, ..Default::default() },
        &mach,
    );
    let mut busy_tenant = server.connect(TenantConfig::default());
    let mut quiet_tenant = server.connect(TenantConfig::default());
    busy_tenant.cim_init(&mut mach, 0).expect("init");
    quiet_tenant.cim_init(&mut mach, 0).expect("init");
    for i in 0..4 {
        serve_install_op(&mut busy_tenant, &mut mach, 100 + i * 11);
    }
    serve_install_op(&mut quiet_tenant, &mut mach, 900);
    busy_tenant.cim_sync(&mut mach).expect("sync");
    quiet_tenant.cim_sync(&mut mach).expect("sync");

    let busy_tid = busy_tenant.tenant().expect("tenant");
    let quiet_tid = quiet_tenant.tenant().expect("tenant");
    let busy_lease = server.lease_of(busy_tid).expect("lease");
    let quiet_lease = server.lease_of(quiet_tid).expect("lease");
    assert!(!busy_lease.overlaps(&quiet_lease), "two tenants, two regions: disjoint");
    let dev = server.device();
    let dev = dev.borrow();
    assert_eq!(
        dev.accel.region_cell_writes(&busy_lease),
        server.usage(busy_tid).wear_cells,
        "all of the busy tenant's wear sits on its own lease"
    );
    assert_eq!(
        dev.accel.region_cell_writes(&quiet_lease),
        server.usage(quiet_tid).wear_cells,
        "and the quiet tenant's on its"
    );
    assert!(
        server.usage(busy_tid).wear_cells > server.usage(quiet_tid).wear_cells,
        "4 installs outweigh 1"
    );
}

/// A single tenant served through the scheduler is byte-identical to
/// the pre-serving private-context baseline, with no extra wear: the
/// serving layer costs an idle tenant nothing.
#[test]
fn single_tenant_serving_is_byte_identical_to_private_context() {
    let run = |serving: bool| -> (Vec<u32>, u64) {
        let mut mach = Machine::new(MachineConfig::test_small());
        let accel_cfg = AccelConfig::test_small().with_grid(2, 1);
        let drv_cfg = DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() };
        let mut server;
        let mut ctx = if serving {
            server = CimServer::new(accel_cfg, drv_cfg, ServePolicy::default(), &mach);
            server.connect(TenantConfig::default())
        } else {
            CimContext::new(accel_cfg, drv_cfg, &mach)
        };
        ctx.cim_init(&mut mach, 0).expect("init");
        // One resident stationary operand, several varying inputs — the
        // standard inference shape.
        let a = serve_mat(&mut ctx, &mut mach, &serve_fill(SERVE_N * SERVE_N, 3));
        let mut bits = Vec::new();
        let mut ys = Vec::new();
        for i in 0..4 {
            let x = serve_mat(&mut ctx, &mut mach, &serve_fill(SERVE_N, 11 + i * 17));
            let y = serve_mat(&mut ctx, &mut mach, &serve_fill(SERVE_N, 7 + i * 5));
            ctx.cim_blas_sgemv(
                &mut mach,
                Transpose::No,
                SERVE_N,
                SERVE_N,
                1.25,
                a,
                SERVE_N,
                x,
                0.5,
                y,
            )
            .expect("gemv");
            ys.push(y);
        }
        ctx.cim_sync(&mut mach).expect("sync");
        for y in ys {
            let mut out = vec![0f32; SERVE_N];
            mach.peek_f32_slice(y.va, &mut out);
            bits.extend(out.iter().map(|v| v.to_bits()));
        }
        let cell_writes = ctx.accel().stats().cell_writes;
        (bits, cell_writes)
    };
    let (private_bits, private_writes) = run(false);
    let (served_bits, served_writes) = run(true);
    assert_eq!(served_bits, private_bits, "serving must not change a single bit");
    assert!(
        served_writes <= private_writes,
        "a lease never adds installs: served {served_writes} vs private {private_writes}"
    );
}
