//! Int8 crossbar fidelity: the bit-sliced quantized datapath must track
//! exact execution within the quantization error bound.

use cim_pcm::Fidelity;
use polybench::{init_fn, source, Dataset, Kernel};
use tdo_cim::{compile, execute, CompileOptions, ExecOptions};

#[test]
fn int8_gemm_tracks_exact_within_bound() {
    let src = source(Kernel::Gemm, Dataset::Mini);
    let compiled = compile(&src, &CompileOptions::with_tactics()).expect("compiles");
    let init = init_fn(Kernel::Gemm);
    let exact = execute(&compiled, &ExecOptions::default(), &init).expect("exact runs");
    let opts = ExecOptions { fidelity: Fidelity::Int8, ..ExecOptions::default() };
    let int8 = execute(&compiled, &opts, &init).expect("int8 runs");

    let (e, q) = (exact.array("C").expect("C"), int8.array("C").expect("C"));
    let max_abs = e.iter().fold(0f32, |m, v| m.max(v.abs()));
    let mut worst = 0f32;
    for (a, b) in e.iter().zip(q) {
        worst = worst.max((a - b).abs());
    }
    // 8-bit symmetric quantization of both operands over a K=16 reduction:
    // relative error stays in the low percent range.
    assert!(worst / max_abs < 0.05, "relative error {}", worst / max_abs);
    // And it is genuinely quantized, not exact.
    assert!(e != q, "int8 path should differ somewhere");
}

#[test]
fn int8_energy_equals_exact_energy() {
    // Fidelity changes values, never costs: the paper's evaluation is
    // value-independent.
    let src = source(Kernel::Gemm, Dataset::Mini);
    let compiled = compile(&src, &CompileOptions::with_tactics()).expect("compiles");
    let init = init_fn(Kernel::Gemm);
    let exact = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
    let opts = ExecOptions { fidelity: Fidelity::Int8, ..ExecOptions::default() };
    let int8 = execute(&compiled, &opts, &init).expect("runs");
    let (ea, eb) = (exact.accel.expect("accel"), int8.accel.expect("accel"));
    assert_eq!(ea.cell_writes, eb.cell_writes);
    assert_eq!(ea.gemv_count, eb.gemv_count);
    assert!((ea.total_energy().as_pj() - eb.total_energy().as_pj()).abs() < 1e-6);
}
