//! End-to-end capacity accounting: the default compile pipeline's pin
//! placement against the runtime's LRU tile table, on chains whose
//! pinned stationary operands exceed the grid.
//!
//! Random GEMM chains draw their stationary operand from a small weight
//! pool on the default single-tile grid, so sequential reuse windows
//! force the runtime to recycle tiles (capacity evictions) while
//! interleaved windows force the compiler to spill candidates. Either
//! way, every candidate must be accounted for, every accepted pin must
//! actually hit residency, and results must match the legacy
//! conservative schedule bit for bit.

use proptest::prelude::*;
use tdo_cim::{compile, execute, CompileOptions, ExecOptions, RunResult};

const N: usize = 8;
const WEIGHTS: usize = 3;

/// A chain of GEMMs; statement `t` computes `C{t} += W{ws[t]} * X`.
fn chain_src(ws: &[usize]) -> String {
    let mut decls = String::new();
    for w in 0..WEIGHTS {
        decls.push_str(&format!("float W{w}[N][N]; "));
    }
    decls.push_str("float X[N][N]; ");
    for t in 0..ws.len() {
        decls.push_str(&format!("float C{t}[N][N]; "));
    }
    let mut body = String::new();
    for (t, w) in ws.iter().enumerate() {
        body.push_str(&format!(
            "for (int i = 0; i < N; i++)
               for (int j = 0; j < N; j++)
                 for (int k = 0; k < N; k++)
                   C{t}[i][j] += W{w}[i][k] * X[k][j];\n"
        ));
    }
    format!("const int N = {N};\n{decls}\nvoid kernel() {{\n{body}}}\n")
}

fn init(name: &str, data: &mut [f32]) {
    let seed = name.len();
    for (i, v) in data.iter_mut().enumerate() {
        *v = ((seed * 7 + i * 3) % 9) as f32 - 4.0;
    }
}

fn run(src: &str, opts: &CompileOptions) -> (RunResult, tdo_cim::CompiledProgram) {
    let compiled = compile(src, opts).expect("compiles");
    let r = execute(&compiled, &ExecOptions::default(), &init).expect("runs");
    (r, compiled)
}

fn outputs(count: usize, r: &RunResult) -> Vec<Vec<u32>> {
    (0..count)
        .map(|t| r.array(&format!("C{t}")).expect("output").iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn sequential_pins_recycle_the_single_tile_grid() {
    // Two disjoint reuse windows on a one-tile grid: both are pinned
    // (their live intervals do not overlap), so the second pin's install
    // must evict the first — a runtime capacity spill, not a compile-time
    // one.
    let ws = [0, 0, 1, 1];
    let mut opts = CompileOptions::default();
    opts.tactics.fusion = false;
    let (r, compiled) = run(&chain_src(&ws), &opts);
    assert_eq!(compiled.pass_counter("pins"), 2);
    assert_eq!(compiled.pass_counter("spills"), 0);
    let rt = r.runtime.expect("runtime stats");
    assert_eq!(rt.pin_calls, 2);
    assert_eq!(rt.pin_hits, 2, "each window reuses its install once");
    assert_eq!(rt.pin_evictions, 1, "the second install evicts the first pin's tiles");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary reuse patterns on the default single-tile grid:
    /// candidates are fully accounted (pins + spills), every runtime pin
    /// hits residency at least once, sequential pins evict LRU tiles,
    /// and the schedule stays bit-for-bit the conservative one.
    #[test]
    fn pin_accounting_holds_under_capacity_pressure(
        ws in collection::vec(0usize..WEIGHTS, 4..10),
    ) {
        let src = chain_src(&ws);
        let mut opts = CompileOptions::default();
        opts.tactics.fusion = false;
        let (r, compiled) = run(&src, &opts);
        let (r_legacy, _) = {
            let mut legacy = CompileOptions::without_dataflow();
            legacy.tactics.fusion = false;
            run(&src, &legacy)
        };
        prop_assert!(outputs(ws.len(), &r) == outputs(ws.len(), &r_legacy),
            "pinned schedule diverges from the conservative one");

        let (pins, spills, candidates) = (
            compiled.pass_counter("pins"),
            compiled.pass_counter("spills"),
            compiled.pass_counter("candidates"),
        );
        prop_assert!(pins + spills == candidates, "unaccounted pin candidate");
        let reused =
            (0..WEIGHTS).filter(|w| ws.iter().filter(|&&x| x == *w).count() >= 2).count();
        prop_assert_eq!(candidates as usize, reused);

        let rt = r.runtime.expect("runtime stats");
        prop_assert_eq!(rt.pin_calls, pins);
        // Every accepted candidate has >= 2 uses, and with one tile of
        // capacity accepted windows never overlap — so each pin's
        // install survives its whole window and serves >= 1 warm call.
        prop_assert!(rt.pin_hits >= pins, "a pinned window never hit residency");
        // Each pinned install after the first finds the single tile held
        // by the previous (dead but installed) pin and must evict it.
        prop_assert_eq!(rt.pin_evictions, pins.saturating_sub(1));
    }
}
