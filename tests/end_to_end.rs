//! End-to-end integration: every PolyBench kernel, compiled host-only and
//! with Loop Tactics, executed on the full simulated platform, validated
//! bit-for-bit against the pure-Rust references.

use polybench::{init_fn, reference_outputs, source, Dataset, Kernel};
use tdo_cim::{compile, execute, CompileOptions, ExecOptions};

fn run_kernel(kernel: Kernel, dataset: Dataset, opts: &CompileOptions) -> tdo_cim::RunResult {
    let src = source(kernel, dataset);
    let compiled = compile(&src, opts).expect("compiles");
    let init = init_fn(kernel);
    execute(&compiled, &ExecOptions::default(), &init).expect("runs")
}

#[test]
fn all_kernels_match_reference_on_host() {
    for kernel in Kernel::ALL_EXTENDED {
        let r = run_kernel(kernel, Dataset::Mini, &CompileOptions::host_only());
        for (name, expect) in reference_outputs(kernel, Dataset::Mini) {
            let got = r.array(&name).unwrap_or_else(|| panic!("{}: no {name}", kernel.name()));
            assert_eq!(got, expect.as_slice(), "{}::{name} (host)", kernel.name());
        }
    }
}

#[test]
fn all_kernels_match_reference_with_cim_offload() {
    for kernel in Kernel::ALL_EXTENDED {
        let r = run_kernel(kernel, Dataset::Mini, &CompileOptions::with_tactics());
        assert!(r.accel.is_some(), "{} was not offloaded", kernel.name());
        for (name, expect) in reference_outputs(kernel, Dataset::Mini) {
            let got = r.array(&name).unwrap_or_else(|| panic!("{}: no {name}", kernel.name()));
            assert_eq!(got, expect.as_slice(), "{}::{name} (host+cim)", kernel.name());
        }
    }
}

#[test]
fn every_kernel_is_detected_and_offloaded() {
    // The transparency claim: all seven benchmarks offload with zero
    // user annotations.
    for kernel in Kernel::ALL_EXTENDED {
        let src = source(kernel, Dataset::Mini);
        let compiled = compile(&src, &CompileOptions::with_tactics()).expect("compiles");
        let report = compiled.report.expect("tactics ran");
        assert!(report.any_offloaded(), "{}: {report}", kernel.name());
        let expected_kernels = match kernel {
            Kernel::Gemm | Kernel::Conv => 1,
            Kernel::TwoMm | Kernel::ThreeMm => match kernel {
                Kernel::TwoMm => 2,
                _ => 3,
            },
            Kernel::Gesummv | Kernel::Bicg | Kernel::Mvt | Kernel::Atax => 2,
        };
        assert_eq!(
            report.kernels.iter().filter(|k| k.offloaded).count(),
            expected_kernels,
            "{}: {report}",
            kernel.name()
        );
    }
}

#[test]
fn gemv_like_kernels_emit_gemv_calls_gemm_like_emit_gemm() {
    for kernel in Kernel::ALL {
        let src = source(kernel, Dataset::Mini);
        let compiled = compile(&src, &CompileOptions::with_tactics()).expect("compiles");
        let text = compiled.pseudo_c();
        match kernel {
            Kernel::Conv => assert!(text.contains("polly_cimConv2d"), "{text}"),
            Kernel::Gesummv | Kernel::Bicg | Kernel::Mvt | Kernel::Atax => {
                assert!(text.contains("polly_cimBlasSGemv"), "{}: {text}", kernel.name())
            }
            _ => assert!(
                text.contains("polly_cimBlasSGemm") || text.contains("polly_cimBlasGemmBatched"),
                "{}: {text}",
                kernel.name()
            ),
        }
        assert!(text.contains("polly_cimInit(0);"));
    }
}

#[test]
fn threemm_fuses_its_independent_pair() {
    // E = A*B and F = C*D are independent and same-shape: the fusion pass
    // must batch them; G = E*F depends on both and must stay separate.
    let src = source(Kernel::ThreeMm, Dataset::Mini);
    let compiled = compile(&src, &CompileOptions::with_tactics()).expect("compiles");
    let report = compiled.report.as_ref().expect("tactics ran");
    assert_eq!(report.fused_groups, 1, "{report}");
    let text = compiled.pseudo_c();
    assert!(text.contains("polly_cimBlasGemmBatched"));
    assert!(text.contains("polly_cimBlasSGemm("), "G must be a separate call: {text}");
}

#[test]
fn gemm_like_wins_gemv_like_loses_on_energy() {
    // The headline shape of Fig. 6 at small scale: gemm improves with
    // offloading, mvt regresses (write-dominated, spin-wait overhead).
    let gemm_host = run_kernel(Kernel::Gemm, Dataset::Small, &CompileOptions::host_only());
    let gemm_cim = run_kernel(Kernel::Gemm, Dataset::Small, &CompileOptions::with_tactics());
    let gemm_gain = gemm_host.total_energy() / gemm_cim.total_energy();
    assert!(gemm_gain > 2.0, "gemm energy gain {gemm_gain}");

    let mvt_host = run_kernel(Kernel::Mvt, Dataset::Small, &CompileOptions::host_only());
    let mvt_cim = run_kernel(Kernel::Mvt, Dataset::Small, &CompileOptions::with_tactics());
    let mvt_gain = mvt_host.total_energy() / mvt_cim.total_energy();
    assert!(mvt_gain < 1.0, "mvt energy gain {mvt_gain} should be a loss");
}

#[test]
fn compute_intensity_separates_the_classes() {
    // MACs per CIM write (Fig. 6 left, right axis): GEMM-like kernels sit
    // far above GEMV-like ones.
    let gemm = run_kernel(Kernel::Gemm, Dataset::Small, &CompileOptions::with_tactics());
    let mvt = run_kernel(Kernel::Mvt, Dataset::Small, &CompileOptions::with_tactics());
    let (g, m) = (gemm.macs_per_write(), mvt.macs_per_write());
    assert!(g > 10.0 * m, "gemm {g} vs mvt {m}");
    assert!(m <= 1.5, "mvt intensity {m} must be ~1");
}
