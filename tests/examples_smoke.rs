//! Smoke tests mirroring the `examples/` entry points, so the example
//! logic stays covered by `cargo test` (the binaries themselves are kept
//! compiling by `cargo build --examples` in CI).

use polybench::{init_fn, source, Dataset, Kernel};
use tdo_cim::{compile, execute, Comparison, CompileOptions, ExecOptions};

/// The `examples/quickstart.rs` walkthrough: compile GEMM twice, run both
/// binaries on the simulated platform, and compare. Must not panic.
#[test]
fn quickstart_walkthrough_runs() {
    let src = source(Kernel::Gemm, Dataset::Small);

    let host = compile(&src, &CompileOptions::host_only()).expect("host compile");
    let cim = compile(&src, &CompileOptions::with_tactics()).expect("tactics compile");

    // The rewritten program advertises the runtime calls of Listing 1.
    let pseudo = cim.pseudo_c();
    assert!(pseudo.contains("polly_cimBlasSGemm"), "missing offload call:\n{pseudo}");
    let report = cim.report.as_ref().expect("tactics report");
    assert!(format!("{report}").contains("gemm"), "report should mention gemm");

    let init = init_fn(Kernel::Gemm);
    let opts = ExecOptions::default();
    let host_run = execute(&host, &opts, &init).expect("host run");
    let cim_run = execute(&cim, &opts, &init).expect("cim run");

    // The offload is transparent: identical output.
    assert_eq!(host_run.array("C"), cim_run.array("C"));
    assert!(cim_run.accel.is_some(), "gemm should have been offloaded");

    // The comparison renders and reports an energy win for the CIM run.
    let cmp = Comparison { name: "gemm".into(), host: host_run, cim: cim_run };
    assert!(!format!("{cmp}").is_empty());
    assert!(
        cmp.energy_improvement() > 1.0,
        "expected energy improvement, got {}",
        cmp.energy_improvement()
    );
}
