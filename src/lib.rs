//! # tdo-cim-suite — umbrella crate of the TDO-CIM reproduction
//!
//! Re-exports every layer of the stack so examples and integration tests
//! can reach the whole system through one dependency:
//!
//! * [`tdo_cim`] — end-to-end pipeline (compile, execute, compare);
//! * [`tdo_lang`] / [`tdo_ir`] / [`tdo_poly`] / [`tdo_tactics`] — the
//!   compiler stack (front-end, loop IR, polyhedral middle end, Loop
//!   Tactics);
//! * [`cim_machine`] / [`cim_pcm`] / [`cim_accel`] / [`cim_runtime`] —
//!   the simulated platform (host, PCM crossbar, accelerator, runtime
//!   library + driver);
//! * [`polybench`] — the evaluation kernels;
//! * [`workloads`] — the non-PolyBench workload suite (GEMM chains,
//!   streamed XLarge GEMM; see `docs/WORKLOADS.md`).
//!
//! See `examples/quickstart.rs` for the fastest tour.

pub use cim_accel;
pub use cim_machine;
pub use cim_pcm;
pub use cim_runtime;
pub use polybench;
pub use tdo_cim;
pub use tdo_ir;
pub use tdo_lang;
pub use tdo_poly;
pub use tdo_tactics;
pub use workloads;
