//! ADC and sample-and-hold model.
//!
//! Column currents are converted back to digital by ADCs that are shared
//! among multiple columns through sample-and-hold stages (Section II-B,
//! following ISAAC \[13\]). The converter saturates at its full-scale range
//! and quantizes to its resolution; the default resolution is high enough
//! to be lossless for 4-bit-level x 8-bit-input dot products over 256
//! rows, reflecting the bit-serial input streaming real designs use, which
//! this model abstracts away.

/// Configuration of the column ADC array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcConfig {
    /// Converter resolution in bits (signed range `+-2^(bits-1)-1` steps).
    pub bits: u32,
    /// Columns multiplexed onto one ADC via S&H.
    pub columns_per_adc: usize,
    /// Time for one conversion, in nanoseconds.
    pub conversion_ns: f64,
}

impl Default for AdcConfig {
    fn default() -> Self {
        // 24-bit effective resolution (lossless for our dot-product range);
        // 16 columns share an ADC through sample-and-holds.
        AdcConfig { bits: 24, columns_per_adc: 16, conversion_ns: 60.0 }
    }
}

/// The shared ADC array of one crossbar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcArray {
    cfg: AdcConfig,
}

impl AdcArray {
    /// Creates an ADC array.
    ///
    /// # Panics
    ///
    /// Panics on zero resolution or zero sharing factor.
    pub fn new(cfg: AdcConfig) -> Self {
        assert!(cfg.bits >= 1 && cfg.bits <= 62, "resolution out of range");
        assert!(cfg.columns_per_adc >= 1, "need at least one column per ADC");
        AdcArray { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> AdcConfig {
        self.cfg
    }

    /// Converts an ideal accumulated value given the full-scale magnitude.
    /// Values saturate at `+-full_scale` and are truncated to the step
    /// implied by the resolution.
    pub fn convert(&self, value: i64, full_scale: i64) -> i64 {
        let fs = full_scale.max(1);
        let clamped = value.clamp(-fs, fs);
        let step = (fs >> (self.cfg.bits - 1)).max(1);
        clamped / step * step
    }

    /// Converts a whole column vector.
    pub fn convert_all(&self, values: &[i64], full_scale: i64) -> Vec<i64> {
        values.iter().map(|v| self.convert(*v, full_scale)).collect()
    }

    /// Number of ADC units needed for `cols` columns.
    pub fn units_for(&self, cols: usize) -> usize {
        cols.div_ceil(self.cfg.columns_per_adc)
    }

    /// Total conversion time for `cols` columns, in nanoseconds: each ADC
    /// serially converts the columns parked in its sample-and-holds.
    pub fn conversion_time_ns(&self, cols: usize) -> f64 {
        let per_adc = cols.div_ceil(self.units_for(cols).max(1));
        per_adc as f64 * self.cfg.conversion_ns
    }
}

/// Full-scale dot-product magnitude for a crossbar of `rows` rows with
/// 4-bit levels and signed 8-bit inputs: `rows * 15 * 127`.
pub fn full_scale_for(rows: usize) -> i64 {
    rows as i64 * 15 * 127
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lossless_for_crossbar_range() {
        let adc = AdcArray::new(AdcConfig::default());
        let fs = full_scale_for(256);
        for v in [0i64, 1, -1, 487_679, -487_680, 123_456] {
            assert_eq!(adc.convert(v, fs), v, "value {v} must be lossless");
        }
    }

    #[test]
    fn saturation_clamps() {
        let adc = AdcArray::new(AdcConfig::default());
        let fs = 1000;
        assert_eq!(adc.convert(5000, fs), 1000);
        assert_eq!(adc.convert(-5000, fs), -1000);
    }

    #[test]
    fn low_resolution_truncates_to_steps() {
        let adc = AdcArray::new(AdcConfig { bits: 4, ..AdcConfig::default() });
        let fs = 128; // step = 128 >> 3 = 16
        assert_eq!(adc.convert(33, fs), 32);
        assert_eq!(adc.convert(-33, fs), -32);
        assert_eq!(adc.convert(15, fs), 0);
    }

    #[test]
    fn sharing_reduces_units_and_serializes_time() {
        let adc = AdcArray::new(AdcConfig { columns_per_adc: 16, ..AdcConfig::default() });
        assert_eq!(adc.units_for(256), 16);
        assert!((adc.conversion_time_ns(256) - 16.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn convert_all_maps_each() {
        let adc = AdcArray::new(AdcConfig::default());
        assert_eq!(adc.convert_all(&[1, -2, 3], 100), vec![1, -2, 3]);
    }

    #[test]
    fn full_scale_matches_paper_geometry() {
        assert_eq!(full_scale_for(256), 256 * 15 * 127);
    }
}
