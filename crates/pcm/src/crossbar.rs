//! Memristive crossbar array.
//!
//! Fig. 2 (c): PCM devices sit at the junctions of word lines (rows) and
//! bit lines (columns). A matrix is stored as conductances `G[x][y]`; the
//! input vector is applied as row voltages and each column current is the
//! analog dot product `I_j = sum_i v_i * G[i][j]` (Ohm + Kirchhoff).
//!
//! Two computation paths are provided:
//! * [`Crossbar::dot_levels`] — the idealized integer dot product of the
//!   stored levels, used by the digital-fidelity pipeline;
//! * [`Crossbar::analog_gemv`] — conductance-domain accumulation with
//!   optional programming noise, used to study analog non-idealities.

use crate::cell::{CellConfig, PcmCell};
use rand::Rng;

/// Wear statistics of a crossbar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WearStats {
    /// Total cell program operations.
    pub cell_writes: u64,
    /// Program operations of the most-written cell.
    pub max_cell_writes: u64,
    /// Row-granular program operations (one per `program_row`).
    pub row_programs: u64,
}

/// A `rows x cols` array of multi-level PCM cells.
///
/// Besides the cell array (which carries per-device wear), the crossbar
/// keeps a packed copy of the stored levels (`levels[r * cols + c]`, one
/// byte per device). The compute path walks the packed array instead of
/// the 16-byte cell structs, which matters for simulator throughput: a
/// 256x256 GEMV touches 64 KiB of cells but only 4 KiB of packed levels.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cfg: CellConfig,
    cells: Vec<PcmCell>,
    levels: Vec<u8>,
    row_programs: u64,
}

impl Crossbar {
    /// Creates a crossbar of fresh (reset) cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, cfg: CellConfig) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be positive");
        Crossbar {
            rows,
            cols,
            cfg,
            cells: vec![PcmCell::new(); rows * cols],
            levels: vec![0u8; rows * cols],
            row_programs: 0,
        }
    }

    /// Number of word lines.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell configuration.
    pub fn cell_config(&self) -> &CellConfig {
        &self.cfg
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols, "cell ({r},{c}) out of range");
        r * self.cols + c
    }

    /// Programs a single cell.
    pub fn program_cell(&mut self, r: usize, c: usize, level: u8) {
        let i = self.idx(r, c);
        let cfg = self.cfg;
        self.cells[i].program_level(&cfg, level);
        self.levels[i] = level;
    }

    /// Programs one full row from `levels` (column-buffer contents with the
    /// row-enable on this word line, Section II-B). Counts one row-program
    /// event for latency purposes.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != cols`.
    pub fn program_row(&mut self, r: usize, levels: &[u8]) {
        assert_eq!(levels.len(), self.cols, "row width mismatch");
        assert!(r < self.rows, "row {r} out of range");
        let cfg = self.cfg;
        let base = r * self.cols;
        for (c, lv) in levels.iter().enumerate() {
            self.cells[base + c].program_level(&cfg, *lv);
            self.levels[base + c] = *lv;
        }
        self.row_programs += 1;
    }

    /// Programs only selected cells of a row (`mask[c]` true = program).
    /// Unselected devices stay untouched — this is what makes sparse
    /// Toeplitz operands cheap to install for convolution.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the column count.
    pub fn program_row_masked(&mut self, r: usize, levels: &[u8], mask: &[bool]) {
        assert_eq!(levels.len(), self.cols, "row width mismatch");
        assert_eq!(mask.len(), self.cols, "mask width mismatch");
        assert!(r < self.rows, "row {r} out of range");
        let cfg = self.cfg;
        let base = r * self.cols;
        for c in 0..self.cols {
            if mask[c] {
                self.cells[base + c].program_level(&cfg, levels[c]);
                self.levels[base + c] = levels[c];
            }
        }
        self.row_programs += 1;
    }

    /// Stored level of a cell.
    pub fn level(&self, r: usize, c: usize) -> u8 {
        self.levels[self.idx(r, c)]
    }

    /// Idealized integer GEMV over stored levels:
    /// `out[j] = sum_i inputs[i] * level(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows`.
    pub fn dot_levels(&self, inputs: &[i32]) -> Vec<i64> {
        let mut out = vec![0i64; self.cols];
        self.dot_levels_into(inputs, &mut out);
        out
    }

    /// Allocation-free form of [`Crossbar::dot_levels`]: accumulates the
    /// integer dot products into `out` (which is zeroed first). Walks the
    /// packed level array, so results are bit-identical to the cell-array
    /// path while touching a fraction of the memory.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows` or `out.len() != cols`.
    pub fn dot_levels_into(&self, inputs: &[i32], out: &mut [i64]) {
        assert_eq!(inputs.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        out.iter_mut().for_each(|o| *o = 0);
        for (r, x) in inputs.iter().enumerate() {
            if *x == 0 {
                continue;
            }
            let row = &self.levels[r * self.cols..(r + 1) * self.cols];
            for (o, lv) in out.iter_mut().zip(row) {
                *o += *x as i64 * *lv as i64;
            }
        }
    }

    /// Analog GEMV: row voltages in volts, column currents in microamps,
    /// using real conductances (optionally noisy).
    ///
    /// # Panics
    ///
    /// Panics if `volts.len() != rows`.
    pub fn analog_gemv<R: Rng + ?Sized>(&self, volts: &[f64], mut rng: Option<&mut R>) -> Vec<f64> {
        assert_eq!(volts.len(), self.rows, "input length mismatch");
        let mut out = vec![0f64; self.cols];
        for (r, v) in volts.iter().enumerate() {
            let row = &self.cells[r * self.cols..(r + 1) * self.cols];
            for (o, cell) in out.iter_mut().zip(row) {
                let g = cell.conductance_us(&self.cfg, rng.as_deref_mut());
                *o += v * g;
            }
        }
        out
    }

    /// Current wear statistics.
    pub fn wear(&self) -> WearStats {
        WearStats {
            cell_writes: self.cells.iter().map(|c| c.writes()).sum(),
            max_cell_writes: self.cells.iter().map(|c| c.writes()).max().unwrap_or(0),
            row_programs: self.row_programs,
        }
    }

    /// Number of cells whose wear exceeds `endurance_writes`.
    pub fn worn_cells(&self, endurance_writes: u64) -> usize {
        self.cells.iter().filter(|c| c.is_worn_out(endurance_writes)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bar() -> Crossbar {
        Crossbar::new(4, 3, CellConfig::default())
    }

    #[test]
    fn fresh_crossbar_is_all_zero() {
        let b = bar();
        assert_eq!(b.dot_levels(&[1, 1, 1, 1]), vec![0, 0, 0]);
        assert_eq!(b.wear(), WearStats::default());
    }

    #[test]
    fn program_row_then_dot() {
        let mut b = bar();
        b.program_row(0, &[1, 2, 3]);
        b.program_row(1, &[4, 5, 6]);
        // out_j = 10*row0_j + 100*row1_j
        assert_eq!(b.dot_levels(&[10, 100, 0, 0]), vec![410, 520, 630]);
        let w = b.wear();
        assert_eq!(w.cell_writes, 6);
        assert_eq!(w.row_programs, 2);
        assert_eq!(w.max_cell_writes, 1);
    }

    #[test]
    fn masked_program_skips_unselected() {
        let mut b = bar();
        b.program_row_masked(2, &[7, 7, 7], &[true, false, true]);
        assert_eq!(b.level(2, 0), 7);
        assert_eq!(b.level(2, 1), 0);
        assert_eq!(b.level(2, 2), 7);
        assert_eq!(b.wear().cell_writes, 2);
    }

    #[test]
    fn negative_inputs_supported() {
        let mut b = bar();
        b.program_row(0, &[5, 0, 1]);
        assert_eq!(b.dot_levels(&[-2, 0, 0, 0]), vec![-10, 0, -2]);
    }

    #[test]
    fn analog_matches_ideal_shape_without_noise() {
        let mut b = Crossbar::new(2, 2, CellConfig::default());
        b.program_row(0, &[15, 0]);
        b.program_row(1, &[0, 15]);
        let out = b.analog_gemv::<StdRng>(&[0.2, 0.1], None);
        let g_max = CellConfig::default().g_max_us;
        let g_min = CellConfig::default().g_min_us;
        assert!((out[0] - (0.2 * g_max + 0.1 * g_min)).abs() < 1e-9);
        assert!((out[1] - (0.2 * g_min + 0.1 * g_max)).abs() < 1e-9);
    }

    #[test]
    fn analog_noise_perturbs_but_tracks() {
        let cfg = CellConfig { noise_sigma: 0.02, ..CellConfig::default() };
        let mut b = Crossbar::new(8, 1, cfg);
        for r in 0..8 {
            b.program_row(r, &[15]);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = b.analog_gemv(&[1.0; 8], Some(&mut rng));
        let ideal = 8.0 * cfg.g_max_us;
        assert!(noisy[0] != ideal);
        assert!((noisy[0] - ideal).abs() / ideal < 0.05);
    }

    #[test]
    fn wear_tracks_max_cell() {
        let mut b = bar();
        for _ in 0..5 {
            b.program_cell(1, 1, 3);
        }
        b.program_cell(0, 0, 1);
        let w = b.wear();
        assert_eq!(w.cell_writes, 6);
        assert_eq!(w.max_cell_writes, 5);
        assert_eq!(b.worn_cells(5), 1);
        assert_eq!(b.worn_cells(6), 0);
    }

    #[test]
    fn packed_levels_mirror_cell_state() {
        // The packed array is a pure cache of the per-cell levels; every
        // mutator must keep the two in lockstep.
        let mut b = bar();
        b.program_row(0, &[1, 2, 3]);
        b.program_row_masked(1, &[4, 5, 6], &[true, false, true]);
        b.program_cell(3, 2, 9);
        for r in 0..4 {
            for c in 0..3 {
                assert_eq!(b.level(r, c), b.cells[r * b.cols + c].level(), "cell ({r},{c})");
            }
        }
        let mut out = vec![0i64; 3];
        b.dot_levels_into(&[1, 1, 1, 1], &mut out);
        assert_eq!(out, b.dot_levels(&[1, 1, 1, 1]));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut b = bar();
        b.program_row(0, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let b = bar();
        b.dot_levels(&[1, 2]);
    }
}
