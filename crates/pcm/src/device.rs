//! Pluggable resistive-device models.
//!
//! The TDO-CIM paper evaluates one part — a 256x256 crossbar of 4-bit IBM
//! PCM devices (Table I) — but nothing in the stack above the device
//! physics depends on *which* resistive technology sits at the junctions.
//! [`DeviceModel`] gathers the per-technology parameter set (cell
//! conductance window, ADC sharing, energy/latency constants, endurance
//! budget) behind one trait so the accelerator, runtime and figure
//! binaries can sweep technologies the way Eva-CiM and CIMFlow sweep
//! array parameters.
//!
//! Two instances ship with the crate:
//!
//! * [`PcmDevice`] — the paper's doped-GST phase-change memory exactly as
//!   in Table I (the defaults of [`CellConfig`], [`AdcConfig`] and
//!   [`PcmEnergyModel`]);
//! * [`ReramDevice`] — an HfOx ReRAM-style parameter set: a wider
//!   conductance window, much faster and cheaper SET/RESET programming,
//!   ISAAC-class 100 ns array reads, but a lower per-cell endurance
//!   budget.
//!
//! [`DeviceKind`] is the `Copy` tag configs and CLI flags carry; it
//! resolves to a `&'static dyn DeviceModel` via [`DeviceKind::model`].
//! See `docs/DEVICES.md` for the full device/tile configuration matrix.
//!
//! ```
//! use cim_pcm::device::{DeviceKind, DeviceModel};
//!
//! // Sweep the available device models and compare their write costs:
//! // ReRAM programs an 8-bit cell an order of magnitude cheaper and
//! // faster than PCM, at the price of a smaller endurance budget.
//! let costs: Vec<(&str, f64, f64)> = DeviceKind::ALL
//!     .iter()
//!     .map(|kind| {
//!         let m = kind.model();
//!         (m.name(), m.energy().write_pj_per_cell, m.endurance_writes())
//!     })
//!     .collect();
//! assert_eq!(costs.len(), 2);
//! let (pcm, reram) = (&costs[0], &costs[1]);
//! assert!(pcm.1 > reram.1, "PCM writes cost more energy");
//! assert!(pcm.2 > reram.2, "but PCM cells endure more writes");
//! ```

use crate::adc::AdcConfig;
use crate::cell::CellConfig;
use crate::energy::PcmEnergyModel;
use crate::wear::LifetimeModel;

/// A resistive memory technology usable as the crossbar device.
///
/// Implementations bundle everything the accelerator needs to simulate a
/// technology: how a cell stores levels ([`DeviceModel::cell`]), how
/// columns are read out ([`DeviceModel::adc`]), what each operation costs
/// ([`DeviceModel::energy`]) and how many programs a cell survives
/// ([`DeviceModel::endurance_writes`]). The compute datapath is shared:
/// every device stores two 4-bit levels per logical 8-bit cell and is read
/// through the same quantize / nibble-dot / ADC / recombine chain.
pub trait DeviceModel {
    /// Short human-readable technology name (e.g. `"pcm"`).
    fn name(&self) -> &'static str;

    /// Cell-level parameters: bits per device and conductance window.
    fn cell(&self) -> CellConfig;

    /// Column ADC configuration.
    fn adc(&self) -> AdcConfig;

    /// Energy/latency constants of the datapath built from this device.
    fn energy(&self) -> PcmEnergyModel;

    /// Nominal per-cell endurance budget in program operations — the
    /// `CellEndurance` term of Equation 1.
    fn endurance_writes(&self) -> f64;

    /// Equation-1 lifetime model for a crossbar of `crossbar_bytes` built
    /// from this device.
    fn lifetime(&self, crossbar_bytes: f64) -> LifetimeModel {
        LifetimeModel { crossbar_bytes }
    }
}

/// The paper's 4-bit doped-GST IBM PCM device (Table I parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcmDevice;

impl DeviceModel for PcmDevice {
    fn name(&self) -> &'static str {
        "pcm"
    }

    fn cell(&self) -> CellConfig {
        CellConfig::default()
    }

    fn adc(&self) -> AdcConfig {
        AdcConfig::default()
    }

    fn energy(&self) -> PcmEnergyModel {
        PcmEnergyModel::default()
    }

    fn endurance_writes(&self) -> f64 {
        // Mid-range of the 1e6..1e8 PCM budget the paper quotes.
        1e7
    }
}

/// An HfOx ReRAM-style device (ISAAC/PRIME-class array parameters).
///
/// Same 4-bit multi-level abstraction and bit-sliced 8-bit datapath as
/// [`PcmDevice`]; what changes is the physics-derived constants: filament
/// SET/RESET is ~10x cheaper and ~25x faster than PCM's melt-quench
/// programming, array reads complete in ~100 ns, but the filament survives
/// roughly an order of magnitude fewer program cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReramDevice;

impl DeviceModel for ReramDevice {
    fn name(&self) -> &'static str {
        "reram"
    }

    fn cell(&self) -> CellConfig {
        // HfOx window ~2..100 uS: larger on/off ratio than doped-GST PCM.
        CellConfig { bits: 4, g_min_us: 2.0, g_max_us: 100.0, noise_sigma: 0.0 }
    }

    fn adc(&self) -> AdcConfig {
        AdcConfig::default()
    }

    fn energy(&self) -> PcmEnergyModel {
        PcmEnergyModel {
            // Lower read currents at matched voltage swing.
            compute_fj_per_cell: 100.0,
            // 2x ~10 pJ per 4-bit filament SET/RESET.
            write_pj_per_cell: 20.0,
            // 100 ns row program vs PCM's 2.5 us staircase.
            write_ns_per_row: 100.0,
            // ISAAC-class 100 ns array read.
            compute_ns_per_gemv: 100.0,
            // Peripheral circuitry is shared with the PCM design.
            ..PcmEnergyModel::default()
        }
    }

    fn endurance_writes(&self) -> f64 {
        1e6
    }
}

/// Copyable tag naming a built-in device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceKind {
    /// The paper's Table-I PCM part ([`PcmDevice`]).
    #[default]
    Pcm,
    /// The HfOx ReRAM-style part ([`ReramDevice`]).
    Reram,
}

impl DeviceKind {
    /// Every built-in device, in sweep order.
    pub const ALL: [DeviceKind; 2] = [DeviceKind::Pcm, DeviceKind::Reram];

    /// Resolves the tag to its parameter set.
    pub fn model(self) -> &'static dyn DeviceModel {
        match self {
            DeviceKind::Pcm => &PcmDevice,
            DeviceKind::Reram => &ReramDevice,
        }
    }

    /// Technology name (`"pcm"` / `"reram"`).
    pub fn name(self) -> &'static str {
        self.model().name()
    }

    /// Parses a CLI-style device name (case-insensitive; `"rram"` is
    /// accepted as an alias for ReRAM).
    pub fn parse(s: &str) -> Option<DeviceKind> {
        match s.to_ascii_lowercase().as_str() {
            "pcm" => Some(DeviceKind::Pcm),
            "reram" | "rram" => Some(DeviceKind::Reram),
            _ => None,
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_device_is_the_table_i_part() {
        let d = DeviceKind::Pcm.model();
        assert_eq!(d.name(), "pcm");
        assert_eq!(d.cell(), CellConfig::default());
        assert_eq!(d.energy(), PcmEnergyModel::default());
        assert_eq!(d.adc(), AdcConfig::default());
    }

    #[test]
    fn reram_trades_endurance_for_write_cost() {
        let pcm = DeviceKind::Pcm.model();
        let reram = DeviceKind::Reram.model();
        assert!(reram.energy().write_pj_per_cell < pcm.energy().write_pj_per_cell);
        assert!(reram.energy().write_ns_per_row < pcm.energy().write_ns_per_row);
        assert!(reram.endurance_writes() < pcm.endurance_writes());
        // Both devices keep the two-4-bit-per-8-bit datapath.
        assert_eq!(reram.cell().bits, 4);
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in DeviceKind::ALL {
            assert_eq!(DeviceKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(DeviceKind::parse("RRAM"), Some(DeviceKind::Reram));
        assert_eq!(DeviceKind::parse("flash"), None);
    }

    #[test]
    fn lifetime_model_uses_device_endurance() {
        let d = DeviceKind::Reram.model();
        let m = d.lifetime(512.0 * 1024.0);
        let years = m.years(d.endurance_writes(), 1e6);
        assert!(years > 0.0);
    }
}
