//! Fixed-point quantization and bit-slicing for crossbar storage.
//!
//! The accelerator stores 8-bit operands on 4-bit devices by pairing two
//! adjacent columns — one for the 4 MSBs, one for the 4 LSBs (Section IV:
//! "to mimic an 8-bit cell with a 4-bit cell, two adjacent columns are
//! used"). Conductances are non-negative, so signed 8-bit weights are kept
//! in *offset-binary*: `u = q + 128`. The digital block recombines the two
//! nibble dot-products with a weighted sum and subtracts the offset term
//! `128 * sum(x)`, which is exactly the per-GEMV "extra ALU operation"
//! work priced at 2.11 pJ/op in Table I.

/// Symmetric linear quantization parameters for a tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// Chooses a scale so that `max_abs` maps to 127.
    pub fn from_max_abs(max_abs: f32) -> Self {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        QuantParams { scale }
    }

    /// Quantizes one value to `[-127, 127]`.
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one value.
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }
}

/// Quantizes a whole slice, deriving the scale from its max magnitude.
pub fn quantize_tensor(data: &[f32]) -> (QuantParams, Vec<i8>) {
    let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let p = QuantParams::from_max_abs(max_abs);
    (p, data.iter().map(|v| p.quantize(*v)).collect())
}

/// Offset-binary encoding of a signed 8-bit weight (`q + 128`).
pub fn to_offset(q: i8) -> u8 {
    (q as i16 + 128) as u8
}

/// Inverse of [`to_offset`].
pub fn from_offset(u: u8) -> i8 {
    (u as i16 - 128) as i8
}

/// Splits an offset-binary byte into `(msb_nibble, lsb_nibble)`, each a
/// 4-bit PCM level.
pub fn split_nibbles(u: u8) -> (u8, u8) {
    (u >> 4, u & 0x0F)
}

/// Rebuilds the offset-binary byte from its nibbles.
pub fn join_nibbles(msb: u8, lsb: u8) -> u8 {
    (msb << 4) | (lsb & 0x0F)
}

/// Recombines nibble-column dot products into the signed dot product.
///
/// Given `msb_dot = sum(x_i * msb_i)`, `lsb_dot = sum(x_i * lsb_i)` and
/// `input_sum = sum(x_i)`, the signed dot is
/// `16*msb_dot + lsb_dot - 128*input_sum`.
pub fn recombine_dot(msb_dot: i64, lsb_dot: i64, input_sum: i64) -> i64 {
    16 * msb_dot + lsb_dot - 128 * input_sum
}

/// Number of digital ALU operations needed per output column for the
/// weighted-sum recombination (shift, add, multiply-subtract of offset).
pub const RECOMBINE_ALU_OPS_PER_COLUMN: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let data = [0.5f32, -1.25, 3.75, 0.0, -3.9];
        let (p, q) = quantize_tensor(&data);
        for (x, qi) in data.iter().zip(&q) {
            let back = p.dequantize(*qi);
            assert!((back - x).abs() <= p.scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn all_zero_tensor_gets_unit_scale() {
        let (p, q) = quantize_tensor(&[0.0, 0.0]);
        assert_eq!(p.scale, 1.0);
        assert!(q.iter().all(|v| *v == 0));
    }

    #[test]
    fn offset_encoding_roundtrips() {
        for q in -127i16..=127 {
            let u = to_offset(q as i8);
            assert_eq!(from_offset(u) as i16, q);
        }
    }

    #[test]
    fn nibble_split_join_roundtrips() {
        for u in 0u16..=255 {
            let (m, l) = split_nibbles(u as u8);
            assert!(m < 16 && l < 16);
            assert_eq!(join_nibbles(m, l), u as u8);
        }
    }

    #[test]
    fn recombine_matches_direct_dot() {
        let weights: Vec<i8> = vec![-127, -1, 0, 1, 64, 127];
        let inputs: Vec<i64> = vec![3, -7, 11, 0, -128, 127];
        let direct: i64 = weights.iter().zip(&inputs).map(|(w, x)| *w as i64 * x).sum();
        let mut msb_dot = 0i64;
        let mut lsb_dot = 0i64;
        let input_sum: i64 = inputs.iter().sum();
        for (w, x) in weights.iter().zip(&inputs) {
            let (m, l) = split_nibbles(to_offset(*w));
            msb_dot += m as i64 * x;
            lsb_dot += l as i64 * x;
        }
        assert_eq!(recombine_dot(msb_dot, lsb_dot, input_sum), direct);
    }

    proptest! {
        #[test]
        fn prop_recombine_equals_direct(ws in proptest::collection::vec(-127i8..=127, 1..64),
                                        xs in proptest::collection::vec(-127i64..=127, 1..64)) {
            let n = ws.len().min(xs.len());
            let direct: i64 = ws[..n].iter().zip(&xs[..n]).map(|(w, x)| *w as i64 * x).sum();
            let mut msb = 0i64;
            let mut lsb = 0i64;
            let sum: i64 = xs[..n].iter().sum();
            for (w, x) in ws[..n].iter().zip(&xs[..n]) {
                let (m, l) = split_nibbles(to_offset(*w));
                msb += m as i64 * x;
                lsb += l as i64 * x;
            }
            prop_assert_eq!(recombine_dot(msb, lsb, sum), direct);
        }

        #[test]
        fn prop_quantization_error_bound(data in proptest::collection::vec(-1e4f32..1e4, 1..128)) {
            let (p, q) = quantize_tensor(&data);
            for (x, qi) in data.iter().zip(&q) {
                let back = p.dequantize(*qi);
                prop_assert!((back - x).abs() <= p.scale * 0.5 + 1e-3);
            }
        }
    }
}
