//! Energy and latency constants of the CIM datapath (Table I).
//!
//! All constants are per-8-bit-operand figures: the 8-bit cell is realized
//! as two 4-bit PCM devices, and Table I already folds the doubling in
//! ("200 fJ (2x 100 fJ/4-bit PCM)").

use cim_machine::units::{Energy, SimTime};

/// Per-operation energy/latency model of the PCM crossbar and its
/// surrounding mixed-signal and digital circuitry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcmEnergyModel {
    /// Compute energy per active 8-bit cell per GEMV, in femtojoules.
    pub compute_fj_per_cell: f64,
    /// Write energy per 8-bit cell program, in picojoules.
    pub write_pj_per_cell: f64,
    /// Mixed-signal (DAC + S&H + ADC) energy per GEMV, in nanojoules.
    pub mixed_signal_nj_per_gemv: f64,
    /// Input/output buffer energy per byte access, in picojoules.
    pub buffer_pj_per_byte: f64,
    /// Digital weighted-sum energy per GEMV, in picojoules.
    pub weighted_sum_pj_per_gemv: f64,
    /// Energy per extra digital ALU operation, in picojoules.
    pub alu_pj_per_op: f64,
    /// DMA + micro-engine energy per GEMV, in nanojoules (paper bound).
    pub dma_engine_nj_per_gemv: f64,
    /// Crossbar row program latency, in nanoseconds per row (2.5 us).
    pub write_ns_per_row: f64,
    /// Crossbar compute latency per GEMV, in nanoseconds (1 us).
    pub compute_ns_per_gemv: f64,
}

impl Default for PcmEnergyModel {
    fn default() -> Self {
        PcmEnergyModel {
            compute_fj_per_cell: 200.0,
            write_pj_per_cell: 200.0,
            mixed_signal_nj_per_gemv: 3.9,
            buffer_pj_per_byte: 5.4,
            weighted_sum_pj_per_gemv: 40.0,
            alu_pj_per_op: 2.11,
            dma_engine_nj_per_gemv: 0.78,
            write_ns_per_row: 2500.0,
            compute_ns_per_gemv: 1000.0,
        }
    }
}

impl PcmEnergyModel {
    /// Energy for one GEMV touching `active_cells` 8-bit junctions.
    pub fn compute_energy(&self, active_cells: u64) -> Energy {
        Energy::from_fj(self.compute_fj_per_cell * active_cells as f64)
    }

    /// Energy for programming `cells` 8-bit cells.
    pub fn write_energy(&self, cells: u64) -> Energy {
        Energy::from_pj(self.write_pj_per_cell * cells as f64)
    }

    /// Mixed-signal energy for `gemvs` operations.
    pub fn mixed_signal_energy(&self, gemvs: u64) -> Energy {
        Energy::from_nj(self.mixed_signal_nj_per_gemv * gemvs as f64)
    }

    /// Buffer energy for `byte_accesses` row/column/output buffer accesses.
    pub fn buffer_energy(&self, byte_accesses: u64) -> Energy {
        Energy::from_pj(self.buffer_pj_per_byte * byte_accesses as f64)
    }

    /// Digital-logic energy: weighted sums plus extra ALU operations.
    pub fn digital_energy(&self, gemvs: u64, extra_alu_ops: u64) -> Energy {
        Energy::from_pj(
            self.weighted_sum_pj_per_gemv * gemvs as f64
                + self.alu_pj_per_op * extra_alu_ops as f64,
        )
    }

    /// DMA and micro-engine control energy for `gemvs` operations.
    pub fn dma_engine_energy(&self, gemvs: u64) -> Energy {
        Energy::from_nj(self.dma_engine_nj_per_gemv * gemvs as f64)
    }

    /// Time to program `rows` crossbar rows (row-parallel within a row,
    /// serial across rows).
    pub fn write_time(&self, rows: u64) -> SimTime {
        SimTime::from_ns(self.write_ns_per_row * rows as f64)
    }

    /// Time to execute `gemvs` crossbar operations.
    pub fn compute_time(&self, gemvs: u64) -> SimTime {
        SimTime::from_ns(self.compute_ns_per_gemv * gemvs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_i() {
        let m = PcmEnergyModel::default();
        assert_eq!(m.compute_fj_per_cell, 200.0);
        assert_eq!(m.write_pj_per_cell, 200.0);
        assert_eq!(m.mixed_signal_nj_per_gemv, 3.9);
        assert_eq!(m.buffer_pj_per_byte, 5.4);
        assert_eq!(m.weighted_sum_pj_per_gemv, 40.0);
        assert_eq!(m.alu_pj_per_op, 2.11);
        assert!(m.dma_engine_nj_per_gemv <= 0.78);
        assert_eq!(m.write_ns_per_row, 2500.0);
        assert_eq!(m.compute_ns_per_gemv, 1000.0);
    }

    #[test]
    fn full_crossbar_gemv_energy() {
        let m = PcmEnergyModel::default();
        // 256x256 cells x 200 fJ = 13.1 uJ... no: 65536 x 200 fJ = 13.1 nJ.
        let e = m.compute_energy(256 * 256);
        assert!((e.as_nj() - 13.1072).abs() < 1e-3);
    }

    #[test]
    fn full_crossbar_write_energy() {
        let m = PcmEnergyModel::default();
        // 65536 cells x 200 pJ = 13.1 uJ.
        let e = m.write_energy(256 * 256);
        assert!((e.as_uj() - 13.1072).abs() < 1e-3);
    }

    #[test]
    fn write_dominates_compute_per_cell() {
        let m = PcmEnergyModel::default();
        // The 1000x write/compute energy gap drives the GEMV-like losses.
        let ratio = m.write_energy(1) / m.compute_energy(1);
        assert!((ratio - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn latency_model() {
        let m = PcmEnergyModel::default();
        assert!((m.write_time(256).as_us() - 640.0).abs() < 1e-9);
        assert!((m.compute_time(128).as_us() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn digital_energy_combines_terms() {
        let m = PcmEnergyModel::default();
        let e = m.digital_energy(2, 10);
        assert!((e.as_pj() - (80.0 + 21.1)).abs() < 1e-9);
    }
}
