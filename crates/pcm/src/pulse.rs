//! Programming pulses and the thermal regimes of a PCM device.
//!
//! Figure 1 (b) of the paper: a short, intense *reset* pulse melts the
//! programmable region and quenches it amorphous (high resistance); a
//! longer, lower *set* pulse holds the material above the crystallization
//! temperature (low resistance); an even lower *read* pulse senses the
//! conductance without disturbing the state.

/// Ambient temperature in kelvin.
pub const T_ROOM_K: f64 = 300.0;
/// Crystallization temperature threshold in kelvin.
pub const T_CRYS_K: f64 = 450.0;
/// Melting temperature threshold in kelvin.
pub const T_MELT_K: f64 = 900.0;

/// The three pulse classes applied to a PCM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PulseKind {
    /// Melt-and-quench: drives the cell amorphous (high resistance).
    Reset,
    /// Anneal: crystallizes the cell (low resistance). Partial-set pulses
    /// program intermediate conductance levels.
    Set,
    /// Non-destructive sense.
    Read,
}

/// An electrical pulse applied through the heater.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Pulse class.
    pub kind: PulseKind,
    /// Amplitude in volts.
    pub amplitude_v: f64,
    /// Duration in nanoseconds.
    pub duration_ns: f64,
}

impl Pulse {
    /// The canonical reset pulse: short and intense.
    pub fn reset() -> Self {
        Pulse { kind: PulseKind::Reset, amplitude_v: 3.0, duration_ns: 50.0 }
    }

    /// A set pulse with `strength` in `(0, 1]` scaling the anneal time;
    /// stronger (longer) set pulses crystallize more material, giving
    /// higher conductance. Used as a partial-set staircase for multi-level
    /// programming.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is outside `(0, 1]`.
    pub fn set(strength: f64) -> Self {
        assert!(strength > 0.0 && strength <= 1.0, "set strength must be in (0, 1]");
        Pulse { kind: PulseKind::Set, amplitude_v: 1.5, duration_ns: 100.0 + 400.0 * strength }
    }

    /// The read pulse: low enough to leave the phase untouched.
    pub fn read() -> Self {
        Pulse { kind: PulseKind::Read, amplitude_v: 0.2, duration_ns: 40.0 }
    }

    /// Peak temperature reached in the programmable region, from Joule
    /// heating (proportional to V^2) over the ambient.
    pub fn peak_temperature_k(&self) -> f64 {
        // Calibrated so reset crosses melt and set sits between
        // crystallization and melt, per Fig. 1 (b).
        T_ROOM_K + 75.0 * self.amplitude_v * self.amplitude_v
    }

    /// Whether this pulse melts the programmable region.
    pub fn melts(&self) -> bool {
        self.peak_temperature_k() >= T_MELT_K
    }

    /// Whether this pulse holds the region in the crystallization band
    /// (above `T_crys`, below `T_melt`).
    pub fn crystallizes(&self) -> bool {
        let t = self.peak_temperature_k();
        (T_CRYS_K..T_MELT_K).contains(&t)
    }

    /// Whether this pulse disturbs the material phase at all.
    pub fn disturbs_state(&self) -> bool {
        self.peak_temperature_k() >= T_CRYS_K
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_melts() {
        let p = Pulse::reset();
        assert!(p.melts());
        assert!(p.disturbs_state());
    }

    #[test]
    fn set_crystallizes_without_melting() {
        let p = Pulse::set(1.0);
        assert!(p.crystallizes());
        assert!(!p.melts());
    }

    #[test]
    fn read_is_non_destructive() {
        let p = Pulse::read();
        assert!(!p.disturbs_state());
        assert!(!p.melts());
        assert!(!p.crystallizes());
    }

    #[test]
    fn set_duration_scales_with_strength() {
        assert!(Pulse::set(1.0).duration_ns > Pulse::set(0.1).duration_ns);
    }

    #[test]
    fn reset_is_shorter_and_taller_than_set() {
        let r = Pulse::reset();
        let s = Pulse::set(1.0);
        assert!(r.duration_ns < s.duration_ns);
        assert!(r.amplitude_v > s.amplitude_v);
    }

    #[test]
    #[should_panic(expected = "strength")]
    fn zero_strength_set_panics() {
        Pulse::set(0.0);
    }
}
