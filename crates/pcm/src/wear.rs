//! Endurance and lifetime modelling (Equation 1 and Fig. 5).
//!
//! PCM cells survive 1e6–1e8 program operations. The paper computes the
//! expected lifetime of a crossbar-based system as
//!
//! ```text
//! SystemLifeTime = CellEndurance * S / B          (Eq. 1)
//! ```
//!
//! with `S` the crossbar size in bytes and `B` the write traffic in
//! bytes/second, assuming writes are spread uniformly across the array
//! (wear-levelled). TDO-CIM raises lifetime at *compile time* by halving
//! `B` through shared-input fusion and tile reuse.

/// Seconds in a (non-leap) year.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// Lifetime in seconds per Equation 1.
///
/// # Panics
///
/// Panics if `write_traffic_bytes_per_s` is not positive.
pub fn system_lifetime_seconds(
    cell_endurance_writes: f64,
    crossbar_bytes: f64,
    write_traffic_bytes_per_s: f64,
) -> f64 {
    assert!(write_traffic_bytes_per_s > 0.0, "write traffic must be positive");
    cell_endurance_writes * crossbar_bytes / write_traffic_bytes_per_s
}

/// Lifetime in years per Equation 1.
pub fn system_lifetime_years(
    cell_endurance_writes: f64,
    crossbar_bytes: f64,
    write_traffic_bytes_per_s: f64,
) -> f64 {
    system_lifetime_seconds(cell_endurance_writes, crossbar_bytes, write_traffic_bytes_per_s)
        / SECONDS_PER_YEAR
}

/// Lifetime model for a fixed crossbar, parameterized on measured traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeModel {
    /// Crossbar capacity in bytes (paper: 512 KiB).
    pub crossbar_bytes: f64,
}

impl Default for LifetimeModel {
    fn default() -> Self {
        LifetimeModel { crossbar_bytes: 512.0 * 1024.0 }
    }
}

impl LifetimeModel {
    /// Years of life at `endurance` writes/cell under `traffic` bytes/s.
    pub fn years(&self, endurance_writes: f64, traffic_bytes_per_s: f64) -> f64 {
        system_lifetime_years(endurance_writes, self.crossbar_bytes, traffic_bytes_per_s)
    }

    /// Sweeps endurance values (in millions of writes), producing
    /// `(endurance_mwrites, years)` pairs — the x/y series of Fig. 5.
    pub fn sweep_years(
        &self,
        endurance_mwrites: impl IntoIterator<Item = f64>,
        traffic_bytes_per_s: f64,
    ) -> Vec<(f64, f64)> {
        endurance_mwrites
            .into_iter()
            .map(|mw| (mw, self.years(mw * 1e6, traffic_bytes_per_s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_is_linear_in_endurance() {
        let m = LifetimeModel::default();
        let t = 1e6; // 1 MB/s of writes
        let y10 = m.years(10e6, t);
        let y40 = m.years(40e6, t);
        assert!((y40 / y10 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn halving_traffic_doubles_lifetime() {
        // The factor-2 "smart mapping" result of Fig. 5.
        let m = LifetimeModel::default();
        let naive = m.years(20e6, 2e6);
        let smart = m.years(20e6, 1e6);
        assert!((smart / naive - 2.0).abs() < 1e-9);
    }

    #[test]
    fn units_sanity() {
        // 1e6 endurance * 512KiB / 1 MB/s = 524288 * 1e6 / 1e6 s = 524288 s.
        let s = system_lifetime_seconds(1e6, 512.0 * 1024.0, 1e6);
        assert!((s - 524_288.0).abs() < 1e-6);
    }

    #[test]
    fn sweep_produces_series() {
        let m = LifetimeModel::default();
        let series = m.sweep_years([10.0, 20.0, 30.0, 40.0], 1e6);
        assert_eq!(series.len(), 4);
        assert!(series.windows(2).all(|w| w[1].1 > w[0].1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_traffic_panics() {
        system_lifetime_seconds(1e6, 1.0, 0.0);
    }
}

/// Start-Gap wear leveling (Qureshi et al., MICRO 2009 — reference \[9\] of
/// the paper).
///
/// TDO-CIM attacks endurance at *compile time*; Start-Gap is the classic
/// *hardware* technique the paper cites as orthogonal: an extra spare
/// line plus two registers (`start`, `gap`) rotate the logical-to-physical
/// line mapping so that a write-hot logical line spreads its wear over
/// every physical line. This implementation provides the address
/// remapping and the gap-movement schedule, so the two approaches can be
/// composed and compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartGap {
    lines: usize,
    start: usize,
    gap: usize,
    psi: u64,
    writes_since_move: u64,
    gap_moves: u64,
}

impl StartGap {
    /// Creates a mapper for `lines` logical lines (one spare physical
    /// line is implied), moving the gap every `psi` writes.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `psi` is zero.
    pub fn new(lines: usize, psi: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(psi > 0, "gap must move eventually");
        StartGap { lines, start: 0, gap: lines, psi, writes_since_move: 0, gap_moves: 0 }
    }

    /// Number of logical lines.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Physical line currently holding the gap (the spare).
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// How many times the gap has moved.
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Maps a logical line to its physical line.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= lines`.
    pub fn map(&self, logical: usize) -> usize {
        assert!(logical < self.lines, "logical line out of range");
        let mut pa = (logical + self.start) % self.lines;
        if pa >= self.gap {
            pa += 1;
        }
        pa
    }

    /// Records one line write; every `psi` writes the gap moves one
    /// position (copying its neighbour into the spare in hardware).
    /// Returns `true` when a gap movement happened.
    pub fn on_write(&mut self) -> bool {
        self.writes_since_move += 1;
        if self.writes_since_move < self.psi {
            return false;
        }
        self.writes_since_move = 0;
        self.gap_moves += 1;
        if self.gap == 0 {
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
        } else {
            self.gap -= 1;
        }
        true
    }
}

#[cfg(test)]
mod start_gap_tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_injective_in_every_state() {
        let mut sg = StartGap::new(16, 1);
        for _ in 0..(17 * 16 + 3) {
            let phys: HashSet<usize> = (0..16).map(|l| sg.map(l)).collect();
            assert_eq!(phys.len(), 16, "collision at state {sg:?}");
            assert!(phys.iter().all(|p| *p <= 16));
            assert!(!phys.contains(&sg.gap()), "gap line must stay unused");
            sg.on_write();
        }
    }

    #[test]
    fn gap_walks_and_start_rotates() {
        let mut sg = StartGap::new(4, 1);
        assert_eq!(sg.gap(), 4);
        for expected in [3usize, 2, 1, 0].iter() {
            assert!(sg.on_write());
            assert_eq!(sg.gap(), *expected);
        }
        // Next move wraps the gap and advances start.
        assert!(sg.on_write());
        assert_eq!(sg.gap(), 4);
        assert_eq!(sg.map(0), 1); // start advanced by one
    }

    #[test]
    fn psi_throttles_gap_movement() {
        let mut sg = StartGap::new(8, 100);
        for _ in 0..99 {
            assert!(!sg.on_write());
        }
        assert!(sg.on_write());
        assert_eq!(sg.gap_moves(), 1);
    }

    #[test]
    fn hot_line_wear_spreads_over_all_physical_lines() {
        // Adversarial stream: every write hits logical line 0. With
        // start-gap, the physical victim changes as the mapping rotates.
        let lines = 8;
        let mut sg = StartGap::new(lines, 4);
        let mut wear = vec![0u64; lines + 1];
        for _ in 0..10_000 {
            wear[sg.map(0)] += 1;
            sg.on_write();
        }
        let touched = wear.iter().filter(|w| **w > 0).count();
        assert_eq!(touched, lines + 1, "all physical lines absorb wear");
        let max = *wear.iter().max().expect("non-empty");
        // Without leveling one line would take all 10k writes.
        assert!(max < 3000, "wear concentrated: {wear:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_panics() {
        StartGap::new(4, 1).map(4);
    }
}
