//! # cim-pcm — phase-change-memory device and crossbar models
//!
//! The analog heart of the TDO-CIM accelerator (Sections II-A/II-B of the
//! paper): multi-level PCM cells programmed by set/reset pulses, organized
//! in a crossbar that computes matrix-vector products via Ohm's and
//! Kirchhoff's laws, read out through shared ADCs, with 8-bit operands
//! bit-sliced across pairs of 4-bit devices.
//!
//! The crate also owns the Table I energy/latency constants
//! ([`PcmEnergyModel`]) and the Equation-1 lifetime model ([`wear`]),
//! because endurance — the 1e6..1e8-write budget of PCM — is the resource
//! the TDO-CIM compiler transformations conserve.
//!
//! Despite the crate name, the device physics is pluggable: the
//! [`DeviceModel`] trait ([`device`]) bundles cell, ADC, energy and
//! endurance parameters per technology, with the paper's PCM part
//! ([`PcmDevice`]) and an HfOx ReRAM-style part ([`ReramDevice`]) as the
//! built-in instances.
//!
//! ```
//! use cim_pcm::cell::CellConfig;
//! use cim_pcm::crossbar::Crossbar;
//!
//! let mut xbar = Crossbar::new(4, 4, CellConfig::default());
//! xbar.program_row(0, &[1, 2, 3, 4]);
//! let out = xbar.dot_levels(&[2, 0, 0, 0]);
//! assert_eq!(out, vec![2, 4, 6, 8]);
//! ```

pub mod adc;
pub mod cell;
pub mod crossbar;
pub mod device;
pub mod energy;
pub mod pulse;
pub mod quant;
pub mod wear;

pub use adc::{AdcArray, AdcConfig};
pub use cell::{CellConfig, PcmCell};
pub use crossbar::Crossbar;
pub use device::{DeviceKind, DeviceModel, PcmDevice, ReramDevice};
pub use energy::PcmEnergyModel;
pub use quant::QuantParams;

/// Numerical fidelity of the crossbar compute path.
///
/// The paper's evaluation is value-independent (energy and latency depend
/// only on operation counts), so this knob exists for functional
/// validation: `Exact` lets end-to-end tests require bit-identical results
/// against host execution, while `Int8` exercises the real quantized
/// bit-sliced datapath.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Fidelity {
    /// Compute in f32 from the shadow copy of the installed operand
    /// (energy/latency/wear accounting unchanged).
    #[default]
    Exact,
    /// Compute through 8-bit quantization, nibble crossbars, ADC and
    /// digital recombination.
    Int8,
}

impl Fidelity {
    /// Whether results are numerically identical to host execution.
    pub fn is_exact(&self) -> bool {
        matches!(self, Fidelity::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_default_is_exact() {
        assert!(Fidelity::default().is_exact());
        assert!(!Fidelity::Int8.is_exact());
    }
}
