//! Multi-level PCM cell model.
//!
//! A cell stores one of `2^bits` conductance levels (the paper uses IBM's
//! 4-bit PCM device \[4\]). Programming is modelled as a reset pulse followed
//! by a partial-set pulse whose strength selects the level — a
//! program-and-verify staircase abstracted to one step. Every program
//! operation wears the device; endurance is the central non-ideality the
//! TDO-CIM transformations optimize for.

use crate::pulse::Pulse;
use rand::Rng;

/// Static parameters of a PCM cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellConfig {
    /// Bits stored per cell (paper: 4).
    pub bits: u8,
    /// Conductance of the fully amorphous state, in microsiemens.
    pub g_min_us: f64,
    /// Conductance of the fully crystalline state, in microsiemens.
    pub g_max_us: f64,
    /// Relative sigma of programming/read conductance noise (0 disables).
    pub noise_sigma: f64,
}

impl Default for CellConfig {
    fn default() -> Self {
        // Conductance window of ~0.1 uS .. 20 uS, typical for doped-GST PCM.
        CellConfig { bits: 4, g_min_us: 0.1, g_max_us: 20.0, noise_sigma: 0.0 }
    }
}

impl CellConfig {
    /// Number of distinct programmable levels.
    pub fn levels(&self) -> u16 {
        1u16 << self.bits
    }

    /// Ideal conductance for a level, linear in the level index.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the level count.
    pub fn conductance_us(&self, level: u8) -> f64 {
        assert!((level as u16) < self.levels(), "level {level} out of range");
        let max = (self.levels() - 1) as f64;
        self.g_min_us + (self.g_max_us - self.g_min_us) * level as f64 / max
    }
}

/// One phase-change memory cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcmCell {
    level: u8,
    writes: u64,
}

impl Default for PcmCell {
    fn default() -> Self {
        PcmCell::new()
    }
}

impl PcmCell {
    /// A fresh cell in the fully-reset (level 0, amorphous) state.
    pub fn new() -> Self {
        PcmCell { level: 0, writes: 0 }
    }

    /// Stored level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Number of program operations endured so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Programs the cell to `level` via reset + partial set, counting one
    /// wear event. Returns the pulses applied (for inspection/tests).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for `cfg`.
    pub fn program(&mut self, cfg: &CellConfig, level: u8) -> Vec<Pulse> {
        self.program_level(cfg, level);
        let mut pulses = vec![Pulse::reset()];
        if level > 0 {
            let strength = level as f64 / (cfg.levels() - 1) as f64;
            pulses.push(Pulse::set(strength));
        }
        pulses
    }

    /// Programs the cell without materializing the pulse train — the hot
    /// path for row-granular installs, where the per-cell `Vec<Pulse>` of
    /// [`PcmCell::program`] would dominate the simulator's wall clock.
    /// Wear and stored level are identical to `program`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range for `cfg`.
    #[inline]
    pub fn program_level(&mut self, cfg: &CellConfig, level: u8) {
        assert!((level as u16) < cfg.levels(), "level {level} out of range");
        self.writes += 1;
        self.level = level;
    }

    /// Senses the conductance in microsiemens, optionally with programming
    /// noise drawn from `rng`.
    pub fn conductance_us<R: Rng + ?Sized>(&self, cfg: &CellConfig, rng: Option<&mut R>) -> f64 {
        let ideal = cfg.conductance_us(self.level);
        match (cfg.noise_sigma > 0.0, rng) {
            (true, Some(rng)) => {
                // Box-Muller standard normal.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (ideal * (1.0 + cfg.noise_sigma * z)).max(0.0)
            }
            _ => ideal,
        }
    }

    /// Whether the cell has exceeded the given endurance budget (writes).
    pub fn is_worn_out(&self, endurance_writes: u64) -> bool {
        self.writes >= endurance_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_cell_is_reset() {
        let c = PcmCell::new();
        assert_eq!(c.level(), 0);
        assert_eq!(c.writes(), 0);
    }

    #[test]
    fn program_sets_level_and_wears() {
        let cfg = CellConfig::default();
        let mut c = PcmCell::new();
        let pulses = c.program(&cfg, 9);
        assert_eq!(c.level(), 9);
        assert_eq!(c.writes(), 1);
        assert_eq!(pulses.len(), 2);
        assert!(pulses[0].melts());
        assert!(pulses[1].crystallizes());
    }

    #[test]
    fn program_to_zero_is_reset_only() {
        let cfg = CellConfig::default();
        let mut c = PcmCell::new();
        let pulses = c.program(&cfg, 0);
        assert_eq!(pulses.len(), 1);
        assert!(pulses[0].melts());
    }

    #[test]
    fn conductance_monotonic_in_level() {
        let cfg = CellConfig::default();
        let mut prev = -1.0;
        for level in 0..cfg.levels() as u8 {
            let g = cfg.conductance_us(level);
            assert!(g > prev, "conductance must increase with level");
            prev = g;
        }
        assert!((cfg.conductance_us(0) - cfg.g_min_us).abs() < 1e-12);
        assert!((cfg.conductance_us(15) - cfg.g_max_us).abs() < 1e-12);
    }

    #[test]
    fn wear_accumulates_per_program() {
        let cfg = CellConfig::default();
        let mut c = PcmCell::new();
        for i in 0..100u8 {
            c.program(&cfg, i % 16);
        }
        assert_eq!(c.writes(), 100);
        assert!(c.is_worn_out(100));
        assert!(!c.is_worn_out(101));
    }

    #[test]
    fn noisy_read_stays_near_ideal() {
        let cfg = CellConfig { noise_sigma: 0.05, ..CellConfig::default() };
        let mut c = PcmCell::new();
        c.program(&cfg, 15);
        let mut rng = StdRng::seed_from_u64(7);
        let ideal = cfg.conductance_us(15);
        let mut sum = 0.0;
        let n = 1000;
        for _ in 0..n {
            let g = c.conductance_us(&cfg, Some(&mut rng));
            assert!(g >= 0.0);
            sum += g;
        }
        let mean = sum / n as f64;
        assert!((mean - ideal).abs() / ideal < 0.02, "mean {mean} vs ideal {ideal}");
    }

    #[test]
    fn noiseless_read_is_exact() {
        let cfg = CellConfig::default();
        let mut c = PcmCell::new();
        c.program(&cfg, 7);
        let g = c.conductance_us::<StdRng>(&cfg, None);
        assert_eq!(g, cfg.conductance_us(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overrange_level_panics() {
        let cfg = CellConfig::default();
        let mut c = PcmCell::new();
        c.program(&cfg, 16);
    }
}
