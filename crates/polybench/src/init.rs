//! Deterministic data initialization.
//!
//! PolyBench initializes arrays with index formulas; we use a variant
//! with *small integer* values so that every intermediate of every kernel
//! stays inside the exactly-representable f32 integer range at test
//! sizes. Host execution, exact-fidelity CIM execution and the Rust
//! references then agree bit-for-bit, making end-to-end equivalence tests
//! sharp instead of tolerance-based.

use crate::Kernel;

/// Fills one array of a kernel with its deterministic initial contents.
/// Scalars (`alpha`, `beta`) keep their source-level initializers and are
/// left untouched.
pub fn init_array(kernel: Kernel, name: &str, data: &mut [f32]) {
    if data.len() == 1 && (name == "alpha" || name == "beta") {
        return;
    }
    // Outputs that the kernels zero themselves still get junk here; the
    // kernel's own init statements must win (and do — that is part of
    // what the equivalence tests check). Accumulator outputs (mvt x1/x2,
    // conv out, gemm C) get defined values.
    let seed = init_seed(kernel, name);
    for (i, v) in data.iter_mut().enumerate() {
        *v = init_value(seed, i);
    }
}

fn init_seed(kernel: Kernel, name: &str) -> u32 {
    name.bytes()
        .fold(kernel.name().len() as u32 + 1, |h, b| h.wrapping_mul(31).wrapping_add(b as u32))
}

/// The small-integer hash fill behind [`init_array`]: the value written
/// at flat index `flat` for a given array `seed`, always in `{-2..2}`.
/// Exported so other workload suites (e.g. the `workloads` crate's GEMM
/// chains) can share the exact recipe under their own seeding.
pub fn init_value(seed: u32, flat: usize) -> f32 {
    let h = seed.wrapping_add(flat as u32).wrapping_mul(2654435761);
    ((h >> 16) % 5) as f32 - 2.0 // values in {-2..2}
}

/// Fills one row-major *panel* of a larger `rows x cols` array with the
/// values [`init_array`] would put there — the streaming initializer for
/// [`crate::Dataset::XLarge`] operands, where the working set is staged
/// through tile-sized panels instead of materialized whole. `panel` is
/// `panel_rows x panel_cols` and covers the rectangle whose top-left
/// element is `(row0, col0)`.
///
/// Bit-for-bit identical to slicing the output of [`init_array`], which
/// the tests pin.
///
/// # Panics
///
/// Panics if the panel does not fit inside the `rows x cols` array or
/// `panel.len()` mismatches the panel shape.
#[allow(clippy::too_many_arguments)]
pub fn init_array_panel(
    kernel: Kernel,
    name: &str,
    rows: usize,
    cols: usize,
    row0: usize,
    col0: usize,
    panel_rows: usize,
    panel_cols: usize,
    panel: &mut [f32],
) {
    assert_eq!(panel.len(), panel_rows * panel_cols, "panel buffer shape mismatch");
    assert!(row0 + panel_rows <= rows, "panel exceeds array height");
    assert!(col0 + panel_cols <= cols, "panel exceeds array width");
    let seed = init_seed(kernel, name);
    for r in 0..panel_rows {
        for c in 0..panel_cols {
            panel[r * panel_cols + c] = init_value(seed, (row0 + r) * cols + (col0 + c));
        }
    }
}

/// An initializer closure for `tdo_cim`-style executors.
pub fn init_fn(kernel: Kernel) -> impl Fn(&str, &mut [f32]) {
    move |name, data| init_array(kernel, name, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_and_bounded() {
        let mut a = vec![0f32; 64];
        let mut b = vec![0f32; 64];
        init_array(Kernel::Gemm, "A", &mut a);
        init_array(Kernel::Gemm, "A", &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-2.0..=2.0).contains(v) && v.fract() == 0.0));
        assert!(a.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn different_arrays_differ() {
        let mut a = vec![0f32; 64];
        let mut b = vec![0f32; 64];
        init_array(Kernel::Gemm, "A", &mut a);
        init_array(Kernel::Gemm, "B", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn panel_init_matches_whole_array_init() {
        let (rows, cols) = (12, 20);
        let mut whole = vec![0f32; rows * cols];
        init_array(Kernel::Gemm, "A", &mut whole);
        // Every aligned and ragged panel of a few shapes must reproduce
        // the corresponding slice of the whole-array fill exactly.
        for (row0, col0, pr, pc) in [(0, 0, 12, 20), (4, 8, 3, 5), (11, 19, 1, 1), (0, 16, 12, 4)] {
            let mut panel = vec![0f32; pr * pc];
            init_array_panel(Kernel::Gemm, "A", rows, cols, row0, col0, pr, pc, &mut panel);
            for r in 0..pr {
                for c in 0..pc {
                    let got = panel[r * pc + c];
                    let want = whole[(row0 + r) * cols + (col0 + c)];
                    assert_eq!(got.to_bits(), want.to_bits(), "({row0},{col0}) r={r} c={c}");
                }
            }
        }
    }

    #[test]
    fn scalars_keep_source_initializers() {
        let mut alpha = vec![2.0f32];
        init_array(Kernel::Gemm, "alpha", &mut alpha);
        assert_eq!(alpha, vec![2.0]);
    }
}
