//! Deterministic data initialization.
//!
//! PolyBench initializes arrays with index formulas; we use a variant
//! with *small integer* values so that every intermediate of every kernel
//! stays inside the exactly-representable f32 integer range at test
//! sizes. Host execution, exact-fidelity CIM execution and the Rust
//! references then agree bit-for-bit, making end-to-end equivalence tests
//! sharp instead of tolerance-based.

use crate::Kernel;

/// Fills one array of a kernel with its deterministic initial contents.
/// Scalars (`alpha`, `beta`) keep their source-level initializers and are
/// left untouched.
pub fn init_array(kernel: Kernel, name: &str, data: &mut [f32]) {
    if data.len() == 1 && (name == "alpha" || name == "beta") {
        return;
    }
    // Outputs that the kernels zero themselves still get junk here; the
    // kernel's own init statements must win (and do — that is part of
    // what the equivalence tests check). Accumulator outputs (mvt x1/x2,
    // conv out, gemm C) get defined values.
    let seed = name
        .bytes()
        .fold(kernel.name().len() as u32 + 1, |h, b| h.wrapping_mul(31).wrapping_add(b as u32));
    for (i, v) in data.iter_mut().enumerate() {
        let h = seed.wrapping_add(i as u32).wrapping_mul(2654435761);
        *v = ((h >> 16) % 5) as f32 - 2.0; // values in {-2..2}
    }
}

/// An initializer closure for `tdo_cim`-style executors.
pub fn init_fn(kernel: Kernel) -> impl Fn(&str, &mut [f32]) {
    move |name, data| init_array(kernel, name, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_and_bounded() {
        let mut a = vec![0f32; 64];
        let mut b = vec![0f32; 64];
        init_array(Kernel::Gemm, "A", &mut a);
        init_array(Kernel::Gemm, "A", &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-2.0..=2.0).contains(v) && v.fract() == 0.0));
        assert!(a.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn different_arrays_differ() {
        let mut a = vec![0f32; 64];
        let mut b = vec![0f32; 64];
        init_array(Kernel::Gemm, "A", &mut a);
        init_array(Kernel::Gemm, "B", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn scalars_keep_source_initializers() {
        let mut alpha = vec![2.0f32];
        init_array(Kernel::Gemm, "alpha", &mut alpha);
        assert_eq!(alpha, vec![2.0]);
    }
}
