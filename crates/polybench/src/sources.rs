//! Mini-C sources of the PolyBench/C kernels used in the evaluation.
//!
//! The seven kernels of Fig. 6: `2mm`, `3mm`, `gemm`, `conv`, `gesummv`,
//! `bicg`, `mvt`. Sources follow PolyBench/C 3.2 semantics; `gesummv` and
//! `bicg` are written with one loop nest per reduction (PolyBench
//! interleaves two reductions in one nest, which no BLAS-mapping compiler
//! can offload as-is — splitting them is the standard enabling
//! transformation and does not change the computation).

use crate::{Dataset, Kernel};

/// Returns the mini-C source of a kernel at a dataset size.
pub fn source(kernel: Kernel, dataset: Dataset) -> String {
    let n = dataset.base_size();
    match kernel {
        Kernel::Gemm => format!(
            r#"
const int N = {n};
float A[N][N]; float B[N][N]; float C[N][N];
float alpha = 2.0; float beta = 3.0;
void kernel() {{
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {{
      C[i][j] = beta * C[i][j];
      for (int k = 0; k < N; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }}
}}
"#
        ),
        Kernel::TwoMm => format!(
            r#"
const int N = {n};
float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float tmp[N][N];
float alpha = 2.0; float beta = 3.0;
void kernel() {{
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {{
      tmp[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }}
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {{
      D[i][j] = beta * D[i][j];
      for (int k = 0; k < N; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }}
}}
"#
        ),
        Kernel::ThreeMm => format!(
            r#"
const int N = {n};
float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N];
float E[N][N]; float F[N][N]; float G[N][N];
void kernel() {{
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {{
      E[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        E[i][j] += A[i][k] * B[k][j];
    }}
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {{
      F[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        F[i][j] += C[i][k] * D[k][j];
    }}
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {{
      G[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        G[i][j] += E[i][k] * F[k][j];
    }}
}}
"#
        ),
        Kernel::Conv => {
            let out = n - 2;
            format!(
                r#"
const int H = {n}; const int W = {n};
float img[H][W]; float f[3][3]; float out[{out}][{out}];
void kernel() {{
  for (int i = 0; i < H - 2; i++)
    for (int j = 0; j < W - 2; j++)
      for (int r = 0; r < 3; r++)
        for (int s = 0; s < 3; s++)
          out[i][j] += f[r][s] * img[i + r][j + s];
}}
"#
            )
        }
        Kernel::Gesummv => format!(
            r#"
const int N = {n};
float A[N][N]; float B[N][N]; float x[N];
float tmp[N]; float w[N]; float y[N];
float alpha = 2.0; float beta = 3.0;
void kernel() {{
  for (int i = 0; i < N; i++) {{
    tmp[i] = 0.0;
    for (int j = 0; j < N; j++)
      tmp[i] += A[i][j] * x[j];
  }}
  for (int i = 0; i < N; i++) {{
    w[i] = 0.0;
    for (int j = 0; j < N; j++)
      w[i] += B[i][j] * x[j];
  }}
  for (int i = 0; i < N; i++)
    y[i] = alpha * tmp[i] + beta * w[i];
}}
"#
        ),
        Kernel::Bicg => format!(
            r#"
const int N = {n};
float A[N][N]; float p[N]; float r[N]; float q[N]; float s[N];
void kernel() {{
  for (int i = 0; i < N; i++) {{
    q[i] = 0.0;
    for (int j = 0; j < N; j++)
      q[i] += A[i][j] * p[j];
  }}
  for (int j = 0; j < N; j++) {{
    s[j] = 0.0;
    for (int i = 0; i < N; i++)
      s[j] += r[i] * A[i][j];
  }}
}}
"#
        ),
        Kernel::Atax => format!(
            r#"
const int N = {n};
float A[N][N]; float x[N]; float tmp[N]; float y[N];
void kernel() {{
  for (int i = 0; i < N; i++) {{
    tmp[i] = 0.0;
    for (int j = 0; j < N; j++)
      tmp[i] += A[i][j] * x[j];
  }}
  for (int j = 0; j < N; j++) {{
    y[j] = 0.0;
    for (int i = 0; i < N; i++)
      y[j] += A[i][j] * tmp[i];
  }}
}}
"#
        ),
        Kernel::Mvt => format!(
            r#"
const int N = {n};
float A[N][N]; float x1[N]; float x2[N]; float y1[N]; float y2[N];
void kernel() {{
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x1[i] += A[i][j] * y1[j];
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x2[i] += A[j][i] * y2[j];
}}
"#
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_compile() {
        for k in Kernel::ALL_EXTENDED {
            let src = source(k, Dataset::Mini);
            tdo_lang::compile(&src)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", k.name()));
        }
    }

    #[test]
    fn sources_scale_with_dataset() {
        let mini = source(Kernel::Gemm, Dataset::Mini);
        let large = source(Kernel::Gemm, Dataset::Large);
        let xl = source(Kernel::Gemm, Dataset::XLarge);
        assert!(mini.contains("const int N = 16;"));
        assert!(large.contains("const int N = 256;"));
        assert!(xl.contains("const int N = 1024;"));
    }

    #[test]
    fn xlarge_sources_compile() {
        // The front end must handle streaming-scale dimensions; functional
        // execution at this size goes through the accelerator paths.
        for k in [Kernel::Gemm, Kernel::Mvt] {
            let src = source(k, Dataset::XLarge);
            tdo_lang::compile(&src)
                .unwrap_or_else(|e| panic!("{} does not compile at XL: {e}", k.name()));
        }
    }
}
