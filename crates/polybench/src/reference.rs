//! Pure-Rust reference implementations of the kernels.
//!
//! Each function mirrors the mini-C source *operation for operation*
//! (same loop order, same f32 rounding points), so the validation tests
//! can require bitwise equality against both host execution and
//! exact-fidelity CIM execution.

use crate::init::init_array;
use crate::{Dataset, Kernel};

/// Computed output arrays of one kernel, by name.
pub fn reference_outputs(kernel: Kernel, dataset: Dataset) -> Vec<(String, Vec<f32>)> {
    let n = dataset.base_size();
    match kernel {
        Kernel::Gemm => {
            let a = mat(kernel, "A", n, n);
            let b = mat(kernel, "B", n, n);
            let mut c = mat(kernel, "C", n, n);
            gemm_ref(&a, &b, &mut c, n, 2.0, 3.0);
            vec![("C".into(), c)]
        }
        Kernel::TwoMm => {
            let a = mat(kernel, "A", n, n);
            let b = mat(kernel, "B", n, n);
            let c = mat(kernel, "C", n, n);
            let mut d = mat(kernel, "D", n, n);
            let mut tmp = mat(kernel, "tmp", n, n);
            for v in tmp.iter_mut() {
                *v = 0.0;
            }
            gemm_ref(&a, &b, &mut tmp, n, 2.0, 0.0);
            gemm_ref(&tmp, &c, &mut d, n, 1.0, 3.0);
            vec![("tmp".into(), tmp), ("D".into(), d)]
        }
        Kernel::ThreeMm => {
            let a = mat(kernel, "A", n, n);
            let b = mat(kernel, "B", n, n);
            let c = mat(kernel, "C", n, n);
            let d = mat(kernel, "D", n, n);
            let mut e = vec![0f32; n * n];
            let mut f = vec![0f32; n * n];
            let mut g = vec![0f32; n * n];
            gemm_ref(&a, &b, &mut e, n, 1.0, 0.0);
            gemm_ref(&c, &d, &mut f, n, 1.0, 0.0);
            gemm_ref(&e, &f, &mut g, n, 1.0, 0.0);
            vec![("E".into(), e), ("F".into(), f), ("G".into(), g)]
        }
        Kernel::Conv => {
            let img = mat(kernel, "img", n, n);
            let f = mat(kernel, "f", 3, 3);
            let on = n - 2;
            let mut out = mat(kernel, "out", on, on);
            for i in 0..on {
                for j in 0..on {
                    for r in 0..3 {
                        for s in 0..3 {
                            out[i * on + j] += f[r * 3 + s] * img[(i + r) * n + j + s];
                        }
                    }
                }
            }
            vec![("out".into(), out)]
        }
        Kernel::Gesummv => {
            let a = mat(kernel, "A", n, n);
            let b = mat(kernel, "B", n, n);
            let x = mat(kernel, "x", n, 1);
            let mut tmp = vec![0f32; n];
            let mut w = vec![0f32; n];
            let mut y = mat(kernel, "y", n, 1);
            gemv_ref(&a, &x, &mut tmp, n, false);
            gemv_ref(&b, &x, &mut w, n, false);
            for i in 0..n {
                y[i] = 2.0 * tmp[i] + 3.0 * w[i];
            }
            vec![("tmp".into(), tmp), ("w".into(), w), ("y".into(), y)]
        }
        Kernel::Bicg => {
            let a = mat(kernel, "A", n, n);
            let p = mat(kernel, "p", n, 1);
            let r = mat(kernel, "r", n, 1);
            let mut q = vec![0f32; n];
            let mut s = vec![0f32; n];
            gemv_ref(&a, &p, &mut q, n, false);
            gemv_ref(&a, &r, &mut s, n, true);
            vec![("q".into(), q), ("s".into(), s)]
        }
        Kernel::Atax => {
            let a = mat(kernel, "A", n, n);
            let x = mat(kernel, "x", n, 1);
            let mut tmp = vec![0f32; n];
            let mut y = vec![0f32; n];
            gemv_ref(&a, &x, &mut tmp, n, false);
            gemv_ref(&a, &tmp, &mut y, n, true);
            vec![("tmp".into(), tmp), ("y".into(), y)]
        }
        Kernel::Mvt => {
            let a = mat(kernel, "A", n, n);
            let y1 = mat(kernel, "y1", n, 1);
            let y2 = mat(kernel, "y2", n, 1);
            let mut x1 = mat(kernel, "x1", n, 1);
            let mut x2 = mat(kernel, "x2", n, 1);
            for i in 0..n {
                for j in 0..n {
                    x1[i] += a[i * n + j] * y1[j];
                }
            }
            for i in 0..n {
                for j in 0..n {
                    x2[i] += a[j * n + i] * y2[j];
                }
            }
            vec![("x1".into(), x1), ("x2".into(), x2)]
        }
    }
}

fn mat(kernel: Kernel, name: &str, rows: usize, cols: usize) -> Vec<f32> {
    let mut data = vec![0f32; rows * cols];
    init_array(kernel, name, &mut data);
    data
}

/// `C = alpha*A*B + beta*C`, mirroring the source's evaluation order:
/// scale first, then accumulate `alpha * A[i][k] * B[k][j]` per `k`.
fn gemm_ref(a: &[f32], b: &[f32], c: &mut [f32], n: usize, alpha: f32, beta: f32) {
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] *= beta;
            for k in 0..n {
                c[i * n + j] += alpha * a[i * n + k] * b[k * n + j];
            }
        }
    }
}

/// Row-panel reference for the streamed GEMM path: computes only
/// `C[row0 .. row0+panel_rows][*]` of the `gemm` kernel
/// (`C = beta*C + alpha*A*B`), reading the matching `A` row panel.
/// `a_panel` is `panel_rows x n` (the panel a streaming executor would
/// stage), `b` is the full `n x n` operand, and `c_panel` holds the
/// panel's rows of `C` on entry and exit.
///
/// Accumulation order per element is identical to [`reference_outputs`]'s
/// whole-array `gemm`, so a streamed run that concatenates panel results
/// is bit-for-bit equal to the unstreamed reference — the invariant the
/// `Dataset::XLarge` streaming tests pin at Mini scale.
pub fn gemm_panel_ref(
    a_panel: &[f32],
    b: &[f32],
    c_panel: &mut [f32],
    n: usize,
    alpha: f32,
    beta: f32,
) {
    let rows = c_panel.len() / n;
    assert_eq!(a_panel.len(), rows * n, "A panel must match the C panel's rows");
    for i in 0..rows {
        for j in 0..n {
            c_panel[i * n + j] *= beta;
            for k in 0..n {
                c_panel[i * n + j] += alpha * a_panel[i * n + k] * b[k * n + j];
            }
        }
    }
}

/// `y += op(A) * x` with `y` pre-zeroed by the caller, source order.
fn gemv_ref(a: &[f32], x: &[f32], y: &mut [f32], n: usize, trans: bool) {
    if trans {
        // for j { s[j] = 0; for i s[j] += r[i]*A[i][j] } shape.
        for j in 0..n {
            for i in 0..n {
                y[j] += x[i] * a[i * n + j];
            }
        }
    } else {
        for i in 0..n {
            for j in 0..n {
                y[i] += a[i * n + j] * x[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_non_trivial() {
        for k in Kernel::ALL_EXTENDED {
            let outs = reference_outputs(k, Dataset::Mini);
            assert!(!outs.is_empty(), "{}", k.name());
            for (name, data) in outs {
                assert!(data.iter().any(|v| *v != 0.0), "{}::{name} is identically zero", k.name());
                assert!(data.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn gemm_reference_hand_check() {
        // 1x1 check through the public path is awkward; verify the helper.
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![1.0, 1.0, 1.0, 1.0];
        gemm_ref(&a, &b, &mut c, 2, 2.0, 3.0);
        assert_eq!(c, vec![2.0 + 3.0, 4.0 + 3.0, 6.0 + 3.0, 8.0 + 3.0]);
    }

    #[test]
    fn panel_reference_streams_bit_for_bit() {
        use crate::init::init_array_panel;
        // Unstreamed reference at Mini...
        let outs = reference_outputs(Kernel::Gemm, Dataset::Mini);
        let (_, whole) = &outs[0];
        // ...vs panel-by-panel streaming with a ragged panel height.
        let n = Dataset::Mini.base_size();
        let b = mat(Kernel::Gemm, "B", n, n);
        let mut streamed = vec![0f32; n * n];
        let panel_rows = 5; // does not divide 16: exercises the tail panel
        let mut row0 = 0;
        while row0 < n {
            let pr = panel_rows.min(n - row0);
            let mut a_panel = vec![0f32; pr * n];
            init_array_panel(Kernel::Gemm, "A", n, n, row0, 0, pr, n, &mut a_panel);
            let c_panel = &mut streamed[row0 * n..(row0 + pr) * n];
            init_array_panel(Kernel::Gemm, "C", n, n, row0, 0, pr, n, c_panel);
            gemm_panel_ref(&a_panel, &b, c_panel, n, 2.0, 3.0);
            row0 += pr;
        }
        let whole_bits: Vec<u32> = whole.iter().map(|v| v.to_bits()).collect();
        let streamed_bits: Vec<u32> = streamed.iter().map(|v| v.to_bits()).collect();
        assert_eq!(whole_bits, streamed_bits);
    }

    #[test]
    fn transposed_gemv_reference() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![1.0, 1.0];
        let mut y = vec![0.0, 0.0];
        gemv_ref(&a, &x, &mut y, 2, true);
        assert_eq!(y, vec![4.0, 6.0]);
    }
}
