//! # polybench — the evaluation workload suite
//!
//! The seven PolyBench/C linear-algebra kernels of the TDO-CIM evaluation
//! (Section IV, Fig. 6): GEMM-like `2mm`, `3mm`, `gemm`, `conv` and
//! GEMV-like `gesummv`, `bicg`, `mvt`. Each kernel comes as a mini-C
//! [`source`], a deterministic [`init_fn`], and a pure-Rust
//! [`reference_outputs`] implementation for validation.
//!
//! ```
//! use polybench::{Kernel, Dataset};
//!
//! let src = polybench::source(Kernel::Gemm, Dataset::Mini);
//! assert!(src.contains("C[i][j] += alpha * A[i][k] * B[k][j];"));
//! assert!(Kernel::Gemm.is_gemm_like());
//! assert!(!Kernel::Mvt.is_gemm_like());
//! ```

pub mod init;
pub mod reference;
pub mod sources;

pub use init::{init_array, init_array_panel, init_fn, init_value};
pub use reference::{gemm_panel_ref, reference_outputs};
pub use sources::source;

/// The evaluation kernels, in the order of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Two chained matrix multiplications.
    TwoMm,
    /// Three matrix multiplications.
    ThreeMm,
    /// General matrix multiplication.
    Gemm,
    /// 3x3 2-D convolution.
    Conv,
    /// Summed matrix-vector products.
    Gesummv,
    /// BiCG sub-kernel (A p and A^T r).
    Bicg,
    /// Matrix-vector product and transposed product.
    Mvt,
    /// `y = A^T (A x)` — extension kernel beyond the paper's seven.
    Atax,
}

impl Kernel {
    /// All kernels in Fig. 6 order (the paper's evaluation set).
    pub const ALL: [Kernel; 7] = [
        Kernel::TwoMm,
        Kernel::ThreeMm,
        Kernel::Gemm,
        Kernel::Conv,
        Kernel::Gesummv,
        Kernel::Bicg,
        Kernel::Mvt,
    ];

    /// The paper's set plus extension kernels handled by the same flow.
    pub const ALL_EXTENDED: [Kernel; 8] = [
        Kernel::TwoMm,
        Kernel::ThreeMm,
        Kernel::Gemm,
        Kernel::Conv,
        Kernel::Gesummv,
        Kernel::Bicg,
        Kernel::Mvt,
        Kernel::Atax,
    ];

    /// The paper's name for the kernel.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::TwoMm => "2mm",
            Kernel::ThreeMm => "3mm",
            Kernel::Gemm => "gemm",
            Kernel::Conv => "conv",
            Kernel::Gesummv => "gesummv",
            Kernel::Bicg => "bicg",
            Kernel::Mvt => "mvt",
            Kernel::Atax => "atax",
        }
    }

    /// Whether the paper classes it as GEMM-like (high compute intensity)
    /// as opposed to GEMV-like.
    pub fn is_gemm_like(&self) -> bool {
        matches!(self, Kernel::TwoMm | Kernel::ThreeMm | Kernel::Gemm | Kernel::Conv)
    }

    /// Output arrays checked by validation.
    pub fn outputs(&self) -> &'static [&'static str] {
        match self {
            Kernel::TwoMm => &["tmp", "D"],
            Kernel::ThreeMm => &["E", "F", "G"],
            Kernel::Gemm => &["C"],
            Kernel::Conv => &["out"],
            Kernel::Gesummv => &["tmp", "w", "y"],
            Kernel::Bicg => &["q", "s"],
            Kernel::Mvt => &["x1", "x2"],
            Kernel::Atax => &["tmp", "y"],
        }
    }

    /// Multiply-accumulate count at a dataset size.
    pub fn macs(&self, dataset: Dataset) -> u64 {
        let n = dataset.base_size() as u64;
        match self {
            Kernel::Gemm => n * n * n,
            Kernel::TwoMm => 2 * n * n * n,
            Kernel::ThreeMm => 3 * n * n * n,
            Kernel::Conv => (n - 2) * (n - 2) * 9,
            Kernel::Gesummv => 2 * n * n,
            Kernel::Bicg => 2 * n * n,
            Kernel::Mvt => 2 * n * n,
            Kernel::Atax => 2 * n * n,
        }
    }
}

/// Problem sizes (square operands of `base_size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataset {
    /// 16 — unit tests.
    Mini,
    /// 64 — integration tests.
    #[default]
    Small,
    /// 128 — figure regeneration default.
    Medium,
    /// 256 — slower, closer to paper scale (exactly one 256x256 tile).
    Large,
    /// 1024 — streaming scale: operands span a 4x4 block grid, so a
    /// single kernel exceeds any one crossbar and must be wave-planned
    /// (or streamed in tile-sized panels; see `docs/WORKLOADS.md`).
    XLarge,
}

impl Dataset {
    /// All datasets, smallest first.
    pub const ALL: [Dataset; 5] =
        [Dataset::Mini, Dataset::Small, Dataset::Medium, Dataset::Large, Dataset::XLarge];

    /// The names [`Dataset::parse`] accepts, for `--help` text.
    pub const NAMES: &'static str = "mini|small|medium|large|xl(arge)";

    /// Square dimension of the operands.
    pub fn base_size(&self) -> usize {
        match self {
            Dataset::Mini => 16,
            Dataset::Small => 64,
            Dataset::Medium => 128,
            Dataset::Large => 256,
            Dataset::XLarge => 1024,
        }
    }

    /// Parses a dataset name (`mini`/`small`/`medium`/`large`/`xl` or
    /// `xlarge`).
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "mini" => Some(Dataset::Mini),
            "small" => Some(Dataset::Small),
            "medium" => Some(Dataset::Medium),
            "large" => Some(Dataset::Large),
            "xl" | "xlarge" => Some(Dataset::XLarge),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_metadata() {
        assert_eq!(Kernel::ALL.len(), 7);
        assert_eq!(Kernel::TwoMm.name(), "2mm");
        assert_eq!(Kernel::Gemm.macs(Dataset::Mini), 16 * 16 * 16);
        assert_eq!(Kernel::Mvt.macs(Dataset::Mini), 2 * 16 * 16);
        assert_eq!(Kernel::Conv.macs(Dataset::Mini), 14 * 14 * 9);
    }

    #[test]
    fn gemm_like_split_matches_figure_6() {
        let gemm_like: Vec<&str> =
            Kernel::ALL.iter().filter(|k| k.is_gemm_like()).map(|k| k.name()).collect();
        assert_eq!(gemm_like, vec!["2mm", "3mm", "gemm", "conv"]);
    }

    #[test]
    fn dataset_parsing() {
        assert_eq!(Dataset::parse("MEDIUM"), Some(Dataset::Medium));
        assert_eq!(Dataset::parse("xl"), Some(Dataset::XLarge));
        assert_eq!(Dataset::parse("XLarge"), Some(Dataset::XLarge));
        assert_eq!(Dataset::parse("huge"), None);
        assert_eq!(Dataset::default().base_size(), 64);
    }

    #[test]
    fn datasets_are_sorted_and_xlarge_exceeds_one_tile() {
        let sizes: Vec<usize> = Dataset::ALL.iter().map(|d| d.base_size()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // The paper's crossbar is 256x256: Large fills exactly one tile,
        // XLarge forces a multi-wave (or streamed) schedule.
        assert_eq!(Dataset::Large.base_size(), 256);
        assert!(Dataset::XLarge.base_size() >= 4 * 256);
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(&format!("{d:?}")), Some(d));
        }
    }
}
