//! The GEMM-chain suite end to end: generated chains are offloaded
//! *transparently* (detected and fused by Loop Tactics, never
//! hand-dispatched), results match the native reference bit for bit,
//! and dispatch mode is pure schedule — async and sync agree exactly
//! for every chain shape.

use cim_runtime::DispatchMode;
use proptest::prelude::*;
use tdo_cim::{compile, execute, CompileOptions, ExecOptions, RunResult};
use workloads::chain::init_fn;
use workloads::ChainSpec;

fn run_chain(spec: &ChainSpec, dispatch: DispatchMode) -> (RunResult, tdo_cim::CompiledProgram) {
    let compiled = compile(&spec.source(), &CompileOptions::with_tactics()).expect("compiles");
    let opts = ExecOptions {
        machine: cim_machine::MachineConfig::test_small(),
        accel: cim_accel::AccelConfig::test_small().with_grid(2, 2),
        ..ExecOptions::default()
    }
    .with_dispatch(dispatch);
    let run = execute(&compiled, &opts, &init_fn()).expect("runs");
    (run, compiled)
}

#[test]
fn chain_is_fused_per_layer_and_matches_reference() {
    let spec = ChainSpec { rows: 6, width: 8, batch: 3, layers: 2, heads: 1 };
    let (run, compiled) = run_chain(&spec, DispatchMode::Sync);
    // Transparent offload: one batched call per layer, no serial GEMMs.
    let report = compiled.report.as_ref().expect("tactics ran");
    assert_eq!(report.fused_groups, spec.layers);
    assert_eq!(report.kernels.len(), spec.layers * spec.batch);
    assert!(report.kernels.iter().all(|k| k.offloaded && k.fused), "{report}");
    let text = compiled.pseudo_c();
    assert_eq!(text.matches("polly_cimBlasGemmBatched").count(), spec.layers, "{text}");
    assert!(!text.contains("polly_cimBlasSGemm("), "{text}");
    // The host activations stayed host loops.
    assert!(text.contains("* 0.03125;"), "{text}");
    // Batch elements land on disjoint tile sub-grids concurrently.
    assert!(run.accel.expect("accel used").max_tiles_active > 1);
    // Bit-for-bit against the native reference.
    for (name, want) in spec.reference_outputs() {
        let got = run.array(&name).unwrap_or_else(|| panic!("missing {name}"));
        let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "{name} diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Async dispatch of a chain produces bit-for-bit the results of the
    /// blocking dispatch, and never a slower run, for arbitrary shapes.
    #[test]
    fn chain_async_and_sync_dispatch_agree(
        rows in 1usize..8,
        width in 1usize..10,
        batch in 1usize..4,
        layers in 1usize..4,
    ) {
        let spec = ChainSpec { rows, width, batch, layers, heads: 1 };
        let (sync_run, _) = run_chain(&spec, DispatchMode::Sync);
        let (async_run, _) = run_chain(&spec, DispatchMode::Async);
        for (name, _) in spec.reference_outputs() {
            let s: Vec<u32> =
                sync_run.array(&name).expect("sync array").iter().map(|v| v.to_bits()).collect();
            let a: Vec<u32> =
                async_run.array(&name).expect("async array").iter().map(|v| v.to_bits()).collect();
            prop_assert!(s == a, "{} diverges across dispatch modes", name);
        }
        if batch > 1 {
            prop_assert!(async_run.runtime.expect("stats").async_submits > 0);
        }
        let (t_async, t_sync) = (async_run.host.time.as_ns(), sync_run.host.time.as_ns());
        prop_assert!(t_async <= t_sync * 1.001, "async {} vs sync {}", t_async, t_sync);
    }
}
