//! # workloads — the non-PolyBench workload suite
//!
//! TDO-CIM's evaluation (Fig. 6) stops at seven fixed-size PolyBench
//! kernels; this crate grows the workload axis beyond it, per the
//! roadmap's "scale the workload axis" item:
//!
//! * [`chain`] — inference-style GEMM chains: batched MLP forward
//!   passes whose per-layer GEMMs Loop Tactics fuses into
//!   `polly_cimBlasGemmBatched` calls, exercising tile-partitioned
//!   concurrent dispatch end to end (emitted as plain mini-C and
//!   offloaded *transparently*, never hand-dispatched);
//! * [`stream`] — the `Dataset::XLarge` streamed GEMM: operands larger
//!   than any crossbar staged through tile-sized CMA panels, with an
//!   async schedule that overlaps staging copies against accelerator
//!   compute.
//!
//! The `fig8_workloads` binary in `tdo_bench` sweeps both; see
//! `docs/WORKLOADS.md` for the workload ladder and how to add more.
//!
//! ```
//! use polybench::Dataset;
//! use workloads::ChainSpec;
//!
//! let spec = ChainSpec::for_dataset(Dataset::Mini);
//! assert_eq!((spec.rows, spec.width, spec.batch, spec.layers), (16, 16, 4, 3));
//! assert!(spec.source().contains("H1_0[i][j] += X0[i][k] * W1[k][j];"));
//! ```

pub mod chain;
pub mod stream;

pub use chain::ChainSpec;
pub use stream::{run_gemm, StreamConfig, StreamRun};
