//! Inference-style GEMM chains: the first non-PolyBench workload.
//!
//! An MLP-style forward pass over a *batch* of independent requests:
//! each of `batch` micro-batches (`rows` samples of `width` features)
//! flows through `layers` fully-connected layers sharing per-layer
//! weights, with a host-side activation between layers. The workload is
//! emitted as ordinary mini-C — the transparency premise of the paper —
//! and the expected compiled shape is:
//!
//! * per layer, the `batch` same-shape GEMMs are adjacent and
//!   independent, so Loop Tactics *fuses* them into one
//!   `polly_cimBlasGemmBatched` call whose elements the engine schedules
//!   onto disjoint tile sub-grids concurrently (the PR 3 async path);
//! * the activation nests are pointwise host loops: they match no
//!   kernel shape, stay on the host, and separate the layers' fusion
//!   groups (they read and write every `H` array, so fusing across a
//!   layer boundary would be illegal anyway).
//!
//! The activation is a power-of-two rescale, `h = h * s` with
//! `s = 2^-ceil(log2(4*width))`: it keeps every intermediate bounded
//! (|h| <= 1 after each layer) no matter how deep the chain or how wide
//! the layer, so XLarge chains cannot overflow `f32`. A nonlinear
//! activation would change nothing structurally — any pointwise nest
//! separates the groups the same way.

use polybench::Dataset;

/// Shape of an inference chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSpec {
    /// Samples per micro-batch (the GEMM `m` dimension).
    pub rows: usize,
    /// Feature width of every layer (the GEMM `n` and `k` dimensions).
    pub width: usize,
    /// Independent micro-batches per layer — the expected
    /// `polly_cimBlasGemmBatched` element count.
    pub batch: usize,
    /// Fully-connected layers, each followed by an activation.
    pub layers: usize,
    /// Projection heads per layer. `1` is the plain MLP. With more, each
    /// layer computes `heads` projections of the *same* input through
    /// per-head weights (the Q/K/V shape of attention) and the
    /// activation combines them — so within every `(layer, micro-batch)`
    /// the `heads` GEMMs share their stationary operand, the reuse the
    /// compiler's residency placement pins.
    pub heads: usize,
}

impl ChainSpec {
    /// The suite's default shape at a dataset size: square
    /// `base_size x base_size` layers, four micro-batches, three layers,
    /// single-headed.
    pub fn for_dataset(d: Dataset) -> ChainSpec {
        ChainSpec { rows: d.base_size(), width: d.base_size(), batch: 4, layers: 3, heads: 1 }
    }

    /// Returns the spec with `heads` projection heads per layer.
    pub fn with_heads(mut self, heads: usize) -> ChainSpec {
        self.heads = heads;
        self
    }

    /// The activation's power-of-two rescale factor (see module docs).
    /// The bound covers the head sum: `|H| <= 1` after each layer for
    /// any depth, width and head count.
    pub fn activation_scale(&self) -> f32 {
        let mut e = 0u32;
        while (1usize << e) < 4 * self.width * self.heads {
            e += 1;
        }
        (2.0f32).powi(-(e as i32))
    }

    /// Useful multiply-accumulates of the whole chain.
    pub fn macs(&self) -> u64 {
        (self.batch * self.layers * self.heads * self.rows * self.width * self.width) as u64
    }

    /// Array names: micro-batch inputs.
    pub fn input_name(&self, b: usize) -> String {
        format!("X{b}")
    }

    /// Array names: per-layer weights (layers are 1-based).
    pub fn weight_name(&self, l: usize) -> String {
        format!("W{l}")
    }

    /// Array names: per-layer, per-head weights (`W{l}` when
    /// single-headed, for source compatibility with the plain MLP).
    pub fn head_weight_name(&self, l: usize, h: usize) -> String {
        if self.heads == 1 {
            self.weight_name(l)
        } else {
            format!("W{l}_{h}")
        }
    }

    /// Array names: layer-`l` head-`h` projection of micro-batch `b`
    /// (multi-head chains only).
    pub fn p_name(&self, l: usize, b: usize, h: usize) -> String {
        format!("P{l}_{b}_{h}")
    }

    /// Array names: layer-`l` activations of micro-batch `b`.
    pub fn h_name(&self, l: usize, b: usize) -> String {
        format!("H{l}_{b}")
    }

    /// The final outputs (last layer's activations, one per micro-batch).
    pub fn output_names(&self) -> Vec<String> {
        (0..self.batch).map(|b| self.h_name(self.layers, b)).collect()
    }

    /// Emits the chain as mini-C source.
    ///
    /// # Panics
    ///
    /// Panics on degenerate shapes (any dimension zero).
    pub fn source(&self) -> String {
        assert!(
            self.rows > 0 && self.width > 0 && self.batch > 0 && self.layers > 0 && self.heads > 0,
            "degenerate chain {self:?}"
        );
        let (r, d) = (self.rows, self.width);
        let s = self.activation_scale();
        let mut src = String::new();
        src.push_str(&format!("const int R = {r}; const int D = {d};\n"));
        for b in 0..self.batch {
            src.push_str(&format!("float {}[R][D];\n", self.input_name(b)));
        }
        for l in 1..=self.layers {
            for h in 0..self.heads {
                src.push_str(&format!("float {}[D][D];\n", self.head_weight_name(l, h)));
            }
        }
        if self.heads > 1 {
            for l in 1..=self.layers {
                for b in 0..self.batch {
                    for h in 0..self.heads {
                        src.push_str(&format!("float {}[R][D];\n", self.p_name(l, b, h)));
                    }
                }
            }
        }
        for l in 1..=self.layers {
            for b in 0..self.batch {
                src.push_str(&format!("float {}[R][D];\n", self.h_name(l, b)));
            }
        }
        src.push_str("void kernel() {\n");
        for l in 1..=self.layers {
            if self.heads == 1 {
                // The plain MLP emission, byte-identical to the
                // single-headed suite of earlier revisions.
                let w = self.weight_name(l);
                for b in 0..self.batch {
                    let h = self.h_name(l, b);
                    let x = if l == 1 { self.input_name(b) } else { self.h_name(l - 1, b) };
                    src.push_str(&format!(
                        "  for (int i = 0; i < R; i++)\n    for (int j = 0; j < D; j++) {{\n      \
                         {h}[i][j] = 0.0;\n      for (int k = 0; k < D; k++)\n        \
                         {h}[i][j] += {x}[i][k] * {w}[k][j];\n    }}\n"
                    ));
                }
                for b in 0..self.batch {
                    let h = self.h_name(l, b);
                    src.push_str(&format!(
                        "  for (int i = 0; i < R; i++)\n    for (int j = 0; j < D; j++)\n      \
                         {h}[i][j] = {h}[i][j] * {s};\n"
                    ));
                }
            } else {
                // Multi-head projection: every head of a micro-batch
                // reads the same input through its own weights...
                for b in 0..self.batch {
                    let x = if l == 1 { self.input_name(b) } else { self.h_name(l - 1, b) };
                    for h in 0..self.heads {
                        let p = self.p_name(l, b, h);
                        let w = self.head_weight_name(l, h);
                        src.push_str(&format!(
                            "  for (int i = 0; i < R; i++)\n    for (int j = 0; j < D; j++) {{\n      \
                             {p}[i][j] = 0.0;\n      for (int k = 0; k < D; k++)\n        \
                             {p}[i][j] += {x}[i][k] * {w}[k][j];\n    }}\n"
                        ));
                    }
                }
                // ...and the host-side activation combines the heads.
                for b in 0..self.batch {
                    let h = self.h_name(l, b);
                    let sum = (0..self.heads)
                        .map(|hh| format!("{}[i][j]", self.p_name(l, b, hh)))
                        .collect::<Vec<_>>()
                        .join(" + ");
                    src.push_str(&format!(
                        "  for (int i = 0; i < R; i++)\n    for (int j = 0; j < D; j++)\n      \
                         {h}[i][j] = ({sum}) * {s};\n"
                    ));
                }
            }
        }
        src.push_str("}\n");
        src
    }

    /// Reference outputs: every `H` array in layer-major order, computed
    /// operation-for-operation like the source (same loop order, same
    /// `f32` rounding points), so equivalence tests can require bitwise
    /// equality against host and exact-fidelity CIM execution.
    pub fn reference_outputs(&self) -> Vec<(String, Vec<f32>)> {
        let (r, d) = (self.rows, self.width);
        let s = self.activation_scale();
        let weights: Vec<Vec<Vec<f32>>> = (1..=self.layers)
            .map(|l| {
                (0..self.heads).map(|h| init_mat(&self.head_weight_name(l, h), d * d)).collect()
            })
            .collect();
        let mut cur: Vec<Vec<f32>> =
            (0..self.batch).map(|b| init_mat(&self.input_name(b), r * d)).collect();
        let mut out = Vec::new();
        for l in 1..=self.layers {
            let mut next = Vec::with_capacity(self.batch);
            for x in &cur {
                let heads: Vec<Vec<f32>> = weights[l - 1]
                    .iter()
                    .map(|w| {
                        let mut p = vec![0f32; r * d];
                        for i in 0..r {
                            for j in 0..d {
                                for k in 0..d {
                                    p[i * d + j] += x[i * d + k] * w[k * d + j];
                                }
                            }
                        }
                        p
                    })
                    .collect();
                // The combine mirrors the emitted expression exactly:
                // a lone `h * s` for the plain MLP, and the left-to-right
                // head sum — evaluated in f64 like the interpreter, with
                // one rounding at the store — for multi-head layers.
                let h: Vec<f32> = if self.heads == 1 {
                    heads[0].iter().map(|v| v * s).collect()
                } else {
                    (0..r * d)
                        .map(|idx| {
                            let mut acc = f64::from(heads[0][idx]);
                            for p in &heads[1..] {
                                acc += f64::from(p[idx]);
                            }
                            (acc * f64::from(s)) as f32
                        })
                        .collect()
                };
                next.push(h);
            }
            for (b, h) in next.iter().enumerate() {
                out.push((self.h_name(l, b), h.clone()));
            }
            cur = next;
        }
        out
    }
}

/// Deterministic initial contents of a chain array: small integers in
/// `{-2..2}` via the shared [`polybench::init_value`] hash fill (under
/// this suite's own name seeding), so first-layer intermediates stay
/// exactly representable. `H` arrays are zeroed by the kernel itself;
/// their initial junk must not survive — which the equivalence tests
/// check.
pub fn init_array(name: &str, data: &mut [f32]) {
    let seed = name.bytes().fold(7u32, |h, b| h.wrapping_mul(31).wrapping_add(b as u32));
    for (i, v) in data.iter_mut().enumerate() {
        *v = polybench::init_value(seed, i);
    }
}

/// An initializer closure for `tdo_cim`-style executors.
pub fn init_fn() -> impl Fn(&str, &mut [f32]) {
    |name, data| init_array(name, data)
}

fn init_mat(name: &str, len: usize) -> Vec<f32> {
    let mut data = vec![0f32; len];
    init_array(name, &mut data);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_structure() {
        let spec = ChainSpec { rows: 4, width: 4, batch: 2, layers: 2, heads: 1 };
        let src = spec.source();
        assert!(src.contains("const int R = 4; const int D = 4;"));
        assert!(src.contains("H1_0[i][j] += X0[i][k] * W1[k][j];"), "{src}");
        assert!(src.contains("H2_1[i][j] += H1_1[i][k] * W2[k][j];"), "{src}");
        // Activation scale for width 4: 2^-4 = 0.0625.
        assert!(src.contains("H1_0[i][j] = H1_0[i][j] * 0.0625;"), "{src}");
        assert_eq!(spec.macs(), 2 * 2 * 4 * 4 * 4);
        assert_eq!(spec.output_names(), vec!["H2_0", "H2_1"]);
    }

    #[test]
    fn sources_compile_across_shapes() {
        for spec in [
            ChainSpec { rows: 3, width: 5, batch: 1, layers: 1, heads: 1 },
            ChainSpec { rows: 8, width: 8, batch: 3, layers: 2, heads: 1 },
            ChainSpec { rows: 4, width: 6, batch: 2, layers: 2, heads: 3 },
            ChainSpec::for_dataset(Dataset::Mini),
            ChainSpec::for_dataset(Dataset::Mini).with_heads(2),
        ] {
            tdo_lang::compile(&spec.source())
                .unwrap_or_else(|e| panic!("{spec:?} does not compile: {e}"));
        }
    }

    #[test]
    fn multi_head_source_structure() {
        let spec = ChainSpec { rows: 4, width: 4, batch: 2, layers: 2, heads: 3 };
        let src = spec.source();
        // Heads of one micro-batch share the input through per-head
        // weights...
        assert!(src.contains("P1_0_0[i][j] += X0[i][k] * W1_0[k][j];"), "{src}");
        assert!(src.contains("P1_0_2[i][j] += X0[i][k] * W1_2[k][j];"), "{src}");
        // ...layer 2 consumes the combined activation...
        assert!(src.contains("P2_1_0[i][j] += H1_1[i][k] * W2_0[k][j];"), "{src}");
        // ...and the combine sums the heads before rescaling. Scale for
        // width 4, 3 heads: 2^-ceil(log2(48)) = 2^-6.
        assert!(
            src.contains("H1_0[i][j] = (P1_0_0[i][j] + P1_0_1[i][j] + P1_0_2[i][j]) * 0.015625;"),
            "{src}"
        );
        assert_eq!(spec.macs(), 2 * 2 * 3 * 4 * 4 * 4);
    }

    #[test]
    fn multi_head_reference_is_bounded() {
        let spec = ChainSpec { rows: 5, width: 16, batch: 2, layers: 3, heads: 4 };
        let outs = spec.reference_outputs();
        assert_eq!(outs.len(), spec.layers * spec.batch);
        for (name, data) in &outs {
            assert!(data.iter().any(|v| *v != 0.0), "{name} identically zero");
            assert!(data.iter().all(|v| v.abs() <= 1.0), "{name} exceeds the activation bound");
        }
    }

    #[test]
    fn reference_is_bounded_and_non_trivial() {
        // The power-of-two activation must keep every layer's outputs in
        // [-1, 1] regardless of depth — the no-overflow invariant that
        // makes XLarge chains safe.
        let spec = ChainSpec { rows: 6, width: 32, batch: 2, layers: 5, heads: 1 };
        let outs = spec.reference_outputs();
        assert_eq!(outs.len(), spec.layers * spec.batch);
        for (name, data) in &outs {
            assert!(data.iter().any(|v| *v != 0.0), "{name} identically zero");
            assert!(data.iter().all(|v| v.abs() <= 1.0), "{name} exceeds the activation bound");
        }
    }

    #[test]
    fn activation_scale_is_a_power_of_two() {
        for width in [1, 3, 16, 64, 100, 1024] {
            let s = ChainSpec { rows: 1, width, batch: 1, layers: 1, heads: 1 }.activation_scale();
            assert!(s > 0.0 && s.log2().fract() == 0.0, "width {width}: scale {s}");
            assert!(s * (4 * width) as f32 <= 1.0 + f32::EPSILON);
        }
    }
}
