//! Streamed execution of the `Dataset::XLarge` GEMM.
//!
//! At `XLarge` (N = 1024) a single operand spans a 4x4 grid of
//! paper-sized crossbars, and the three `gemm` operands together occupy
//! 12 MiB of physically contiguous shared memory. This module runs the
//! PolyBench `gemm` kernel (`C = beta*C + alpha*A*B`, `alpha = 2`,
//! `beta = 3`, `polybench` initial data) through the runtime API in two
//! schedules:
//!
//! * **unstreamed** — every operand resident in CMA, one
//!   `cim_blas_sgemm` call; the engine wave-plans the whole block grid;
//! * **streamed** — only `B` stays resident; `A` *and the `C`
//!   accumulator* are staged through two tile-sized panel buffers each
//!   (double-buffered), one `cim_blas_sgemm` per row panel of `C`, with
//!   the result panel read back just before its staging buffer is
//!   reused. The CMA footprint of both streamed operands is bounded by
//!   the panel size instead of `N^2`.
//!
//! Under [`DispatchMode::Async`] the streamed schedule pipelines: while
//! panel `p` computes, the host reads back panel `p-2`'s results and
//! copies panel `p+1`'s inputs into the other staging pair. Every copy
//! is an observation of *that staging buffer only*, so the runtime's
//! buffer-scoped doorbell
//! ([`cim_runtime::CimContext::cim_sync_range`]) lets it proceed while
//! the accelerator is busy — the host pays only the wait left over when
//! it finally observes a result panel. Results are bit-for-bit
//! identical across every schedule and dispatch mode, which the
//! Mini-scale tests pin against `polybench::reference_outputs`.

use cim_accel::estimate::estimate_gemm;
use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_runtime::{CimContext, DispatchMode, DriverConfig, Transpose};
use polybench::{init_array, Dataset, Kernel};

const ALPHA: f32 = 2.0;
const BETA: f32 = 3.0;

/// Configuration of one streamed-GEMM run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Problem size (`n x n` operands).
    pub n: usize,
    /// Rows of `A`/`C` staged per panel (streamed schedule only).
    /// Defaults to the crossbar column count — one tile-row of output.
    pub panel_rows: usize,
    /// Host platform.
    pub machine: MachineConfig,
    /// Accelerator (device and grid already applied).
    pub accel: AccelConfig,
    /// Blocking or submit/overlap dispatch.
    pub dispatch: DispatchMode,
    /// Streamed panels or whole-operand residency.
    pub streamed: bool,
}

impl StreamConfig {
    /// The default configuration at a dataset size: streamed, blocking
    /// dispatch, panels one tile-row tall.
    pub fn new(dataset: Dataset, accel: AccelConfig) -> StreamConfig {
        StreamConfig {
            n: dataset.base_size(),
            panel_rows: accel.cols,
            machine: MachineConfig::default(),
            accel,
            dispatch: DispatchMode::Sync,
            streamed: true,
        }
    }

    /// Returns the configuration with another dispatch mode.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> StreamConfig {
        self.dispatch = dispatch;
        self
    }

    /// Returns the unstreamed (whole-operand) variant.
    pub fn unstreamed(mut self) -> StreamConfig {
        self.streamed = false;
        self
    }
}

/// Everything one run produces: modeled times, the estimator's
/// prediction for the same shapes (lockstep), pipeline counters, the
/// CMA high-water mark, and the result bits.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Wall-clock time of the kernel region (first copy to result
    /// read-back).
    pub elapsed: SimTime,
    /// Accelerator busy time summed over all calls (engine-measured).
    pub accel_busy: SimTime,
    /// The analytic estimator's prediction for the identical sequence of
    /// shapes — must match `accel_busy` to the nanosecond.
    pub predicted_busy: SimTime,
    /// Host time burnt spinning on the status register.
    pub busy_wait: SimTime,
    /// Most physical tiles concurrently active.
    pub max_tiles: u64,
    /// Panels issued (1 for the unstreamed schedule).
    pub panels: usize,
    /// In-flight commands that observation points did not have to wait
    /// for (the buffer-scoped doorbell at work; 0 under blocking
    /// dispatch).
    pub sync_skips: u64,
    /// CMA high-water mark in bytes.
    pub cma_peak: u64,
    /// Result matrix `C`, bit-exact.
    pub c_bits: Vec<u32>,
}

fn host_mat(mach: &mut Machine, name: &str, len: usize) -> u64 {
    let mut data = vec![0f32; len];
    init_array(Kernel::Gemm, name, &mut data);
    let va = mach.alloc_host((len * 4) as u64);
    mach.poke_f32_slice(va, &data);
    va
}

/// Runs the XLarge-style GEMM per `cfg`.
///
/// # Panics
///
/// Panics on runtime errors (allocation failures, device errors) — the
/// configurations the suite sweeps are all expected to run.
pub fn run_gemm(cfg: &StreamConfig) -> StreamRun {
    let n = cfg.n;
    let bytes = (n * n * 4) as u64;
    let mut mach = Machine::new(cfg.machine.clone());
    let drv_cfg = DriverConfig { dispatch: cfg.dispatch, ..DriverConfig::default() };
    let mut ctx = CimContext::new(cfg.accel, drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let bus = mach.cfg.bus;
    let acfg = *ctx.accel().config();

    // Application data lives in ordinary (pageable) host memory; only
    // what the accelerator needs becomes CMA-resident.
    let a_host = host_mat(&mut mach, "A", n * n);
    let b_host = host_mat(&mut mach, "B", n * n);
    let c_host = host_mat(&mut mach, "C", n * n);

    let b_dev = ctx.cim_malloc(&mut mach, bytes).expect("malloc B");

    let t0 = mach.now();
    ctx.cim_host_to_dev(&mut mach, b_dev, b_host, bytes).expect("h2d B");
    let mut accel_busy = SimTime::ZERO;
    let mut predicted_busy = SimTime::ZERO;
    let mut panels = 0usize;
    if cfg.streamed {
        let panel_bytes = (cfg.panel_rows * n * 4) as u64;
        let stage = |ctx: &mut CimContext, mach: &mut Machine, what: &str| {
            ctx.cim_malloc(mach, panel_bytes).unwrap_or_else(|e| panic!("malloc {what}: {e}"))
        };
        let staging_a =
            [stage(&mut ctx, &mut mach, "staging A0"), stage(&mut ctx, &mut mach, "staging A1")];
        let staging_c =
            [stage(&mut ctx, &mut mach, "staging C0"), stage(&mut ctx, &mut mach, "staging C1")];
        // Result rows each C staging buffer still holds: the readback is
        // deferred until just before the buffer is reused, so under
        // async dispatch it overlaps the in-flight panels.
        let mut held: [Option<(u64, u64)>; 2] = [None, None];
        let mut row0 = 0usize;
        while row0 < n {
            let pr = cfg.panel_rows.min(n - row0);
            let len = (pr * n * 4) as u64;
            let off = (row0 * n * 4) as u64;
            let slot = panels % 2;
            // Drain the results this staging pair computed two panels
            // ago — an observation of that C panel only.
            if let Some((prev_off, prev_len)) = held[slot].take() {
                ctx.cim_dev_to_host(&mut mach, c_host + prev_off, staging_c[slot], prev_len)
                    .expect("d2h C panel");
            }
            // Stage the next A and C panels. Under async dispatch these
            // copies are the overlapped host work: each only waits for
            // the command (two panels back) that last used its buffer.
            ctx.cim_host_to_dev(&mut mach, staging_a[slot], a_host + off, len)
                .expect("h2d A panel");
            ctx.cim_host_to_dev(&mut mach, staging_c[slot], c_host + off, len)
                .expect("h2d C panel");
            accel_busy += ctx
                .cim_blas_sgemm(
                    &mut mach,
                    Transpose::No,
                    Transpose::No,
                    pr,
                    n,
                    n,
                    ALPHA,
                    staging_a[slot],
                    n,
                    b_dev,
                    n,
                    BETA,
                    staging_c[slot],
                    n,
                )
                .expect("panel gemm");
            predicted_busy += estimate_gemm(&acfg, &bus, pr, n, n, false, false).time;
            held[slot] = Some((off, len));
            row0 += pr;
            panels += 1;
        }
        // Drain the last (up to) two panels, oldest first.
        for i in 0..2 {
            let slot = (panels + i) % 2;
            if let Some((prev_off, prev_len)) = held[slot].take() {
                ctx.cim_dev_to_host(&mut mach, c_host + prev_off, staging_c[slot], prev_len)
                    .expect("d2h C tail");
            }
        }
    } else {
        let c_dev = ctx.cim_malloc(&mut mach, bytes).expect("malloc C");
        ctx.cim_host_to_dev(&mut mach, c_dev, c_host, bytes).expect("h2d C");
        let a_dev = ctx.cim_malloc(&mut mach, bytes).expect("malloc A");
        ctx.cim_host_to_dev(&mut mach, a_dev, a_host, bytes).expect("h2d A");
        accel_busy += ctx
            .cim_blas_sgemm(
                &mut mach,
                Transpose::No,
                Transpose::No,
                n,
                n,
                n,
                ALPHA,
                a_dev,
                n,
                b_dev,
                n,
                BETA,
                c_dev,
                n,
            )
            .expect("gemm");
        predicted_busy += estimate_gemm(&acfg, &bus, n, n, n, false, false).time;
        panels = 1;
        // Observe the result: pays whatever wait is still outstanding.
        ctx.cim_dev_to_host(&mut mach, c_host, c_dev, bytes).expect("d2h C");
    }
    let elapsed = mach.now() - t0;

    let mut c = vec![0f32; n * n];
    mach.peek_f32_slice(c_host, &mut c);
    let busy_wait = ctx.driver().stats().busy_wait_time;
    let max_tiles = ctx.accel().stats().max_tiles_active;
    StreamRun {
        elapsed,
        accel_busy,
        predicted_busy,
        busy_wait,
        max_tiles,
        panels,
        sync_skips: ctx.stats().selective_sync_skips,
        cma_peak: mach.cma.peak_used(),
        c_bits: c.iter().map(|v| v.to_bits()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cfg() -> StreamConfig {
        let accel = AccelConfig::test_small().with_grid(2, 2);
        StreamConfig {
            machine: MachineConfig::test_small(),
            panel_rows: 4,
            ..StreamConfig::new(Dataset::Mini, accel)
        }
    }

    /// The streamed path at Mini scale, bit-for-bit against both the
    /// unstreamed single call and the pure-Rust PolyBench reference.
    #[test]
    fn streamed_matches_unstreamed_and_reference_bit_for_bit() {
        let streamed = run_gemm(&mini_cfg());
        let unstreamed = run_gemm(&mini_cfg().unstreamed());
        assert_eq!(streamed.panels, 4);
        assert_eq!(unstreamed.panels, 1);
        assert_eq!(streamed.c_bits, unstreamed.c_bits);
        let outs = polybench::reference_outputs(Kernel::Gemm, Dataset::Mini);
        let (_, c_ref) = &outs[0];
        let ref_bits: Vec<u32> = c_ref.iter().map(|v| v.to_bits()).collect();
        assert_eq!(streamed.c_bits, ref_bits);
        // Streaming bounds the CMA footprint: B plus two panel pairs is
        // less than three whole operands.
        assert!(streamed.cma_peak < unstreamed.cma_peak);
        let n = Dataset::Mini.base_size() as u64;
        let panel_pairs = 4 * (4 * n * 4); // 2 A + 2 C panels of 4 rows
        assert_eq!(streamed.cma_peak, n * n * 4 + panel_pairs, "only B is whole-operand");
    }

    /// Async dispatch is pure schedule: identical bits, never slower,
    /// and the staging copies actually overlap (commands skipped at
    /// observation points, wait time reduced).
    #[test]
    fn async_streaming_overlaps_and_matches_sync() {
        let sync = run_gemm(&mini_cfg());
        let asynch = run_gemm(&mini_cfg().with_dispatch(DispatchMode::Async));
        assert_eq!(sync.c_bits, asynch.c_bits);
        assert_eq!(sync.sync_skips, 0);
        assert!(asynch.sync_skips > 0, "staging copies must not wait for disjoint commands");
        assert!(
            asynch.elapsed.as_ns() <= sync.elapsed.as_ns() * 1.001,
            "{} vs {}",
            asynch.elapsed,
            sync.elapsed
        );
        assert!(asynch.busy_wait < sync.busy_wait, "overlap must hide part of the wait");
    }

    /// Engine and estimator stay in lockstep on the streamed shapes.
    #[test]
    fn estimator_lockstep_on_panel_shapes() {
        for cfg in [mini_cfg(), mini_cfg().unstreamed()] {
            let run = run_gemm(&cfg);
            assert!(
                (run.accel_busy.as_ns() - run.predicted_busy.as_ns()).abs() < 1e-6,
                "streamed={}: engine {} vs estimator {}",
                cfg.streamed,
                run.accel_busy,
                run.predicted_busy
            );
            assert!(run.max_tiles > 1, "panels must span multiple tiles");
        }
    }
}
