//! Capacity-aware pin placement under randomized reuse patterns.
//!
//! Random GEMM chains draw their stationary operand from a small weight
//! pool, so reuse intervals interleave arbitrarily — while the cost
//! model is pinned to a 1x1 grid, guaranteeing the concurrent stationary
//! footprint exceeds capacity whenever two live intervals overlap. The
//! planner must (a) account for every candidate as pinned or spilled,
//! (b) never let concurrently live accepted pins exceed the grid, and
//! (c) leave results bit-for-bit identical to the unpinned schedule.

use proptest::prelude::*;
use tdo_ir::interp::{run, PureBackend};
use tdo_ir::{ArrayId, Program};
use tdo_poly::codegen::rebuild_program;
use tdo_poly::scop::extract;
use tdo_tactics::pass::LoopTactics;
use tdo_tactics::{plan_pins, CostModel, OffloadGraph, TacticsConfig};

const N: usize = 8;
const WEIGHTS: usize = 3;

/// A chain of GEMMs; statement `t` computes `C{t} += W{ws[t]} * X`.
fn chain_src(ws: &[usize]) -> String {
    let mut decls = String::new();
    for w in 0..WEIGHTS {
        decls.push_str(&format!("float W{w}[N][N]; "));
    }
    decls.push_str("float X[N][N]; ");
    for t in 0..ws.len() {
        decls.push_str(&format!("float C{t}[N][N]; "));
    }
    let mut body = String::new();
    for (t, w) in ws.iter().enumerate() {
        body.push_str(&format!(
            "for (int i = 0; i < N; i++)
               for (int j = 0; j < N; j++)
                 for (int k = 0; k < N; k++)
                   C{t}[i][j] += W{w}[i][k] * X[k][j];\n"
        ));
    }
    format!("const int N = {N};\n{decls}\nvoid kernel() {{\n{body}}}\n")
}

/// Detect-only offload of the chain (the unpinned baseline schedule).
fn offload(src: &str) -> Program {
    let cfg = TacticsConfig { fusion: false, ..TacticsConfig::default() };
    let prog = tdo_lang::compile(src).expect("compiles");
    let scop = extract(&prog).expect("affine");
    let (tree, report) = LoopTactics::new(cfg).run(&prog, &scop);
    assert!(report.any_offloaded(), "chain must offload");
    rebuild_program(&prog, &scop, &tree)
}

fn run_to_arrays(prog: &Program) -> Vec<Vec<u32>> {
    let mut be = PureBackend::for_program(prog);
    for (i, d) in prog.arrays.iter().enumerate() {
        let data: Vec<f32> =
            (0..d.elem_count()).map(|j| ((i * 13 + j * 5) % 11) as f32 - 5.0).collect();
        be.set_array(ArrayId(i), &data);
    }
    run(prog, &mut be).expect("runs");
    (0..prog.arrays.len())
        .map(|i| be.array(ArrayId(i)).iter().map(|v| v.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn placement_respects_capacity_and_preserves_results(
        ws in collection::vec(0usize..WEIGHTS, 4..10),
    ) {
        let baseline = offload(&chain_src(&ws));

        // A single-tile grid: any two overlapping live intervals exceed
        // capacity, so interleaved reuse must spill.
        let mut cost = CostModel::default();
        cost.accel = cost.accel.with_grid(1, 1);
        let capacity = cost.accel.grid.0 * cost.accel.grid.1;

        let mut graph = OffloadGraph::build(&baseline);
        graph.hoist_syncs();
        graph.elide_syncs();
        let candidates = graph.pin_candidates();
        let plan = plan_pins(&candidates, &cost);

        // Every weight reused at least twice is a candidate (W arrays are
        // never host-written after init, so each has one reuse window).
        let reused =
            (0..WEIGHTS).filter(|w| ws.iter().filter(|&&x| x == *w).count() >= 2).count();
        prop_assert_eq!(candidates.len(), reused);

        // (a) Accounting: pinned + spilled covers every candidate.
        prop_assert_eq!(plan.accepted.len() + plan.spilled.len(), candidates.len());
        prop_assert_eq!(plan.capacity_tiles, capacity);

        // (b) At every schedule point, the tiles held by concurrently
        // live accepted pins stay within the grid (all candidates here
        // are single-block 8x8 operands: one tile each).
        let horizon = plan.accepted.iter().map(|c| c.last_idx).max().unwrap_or(0);
        for idx in 0..=horizon {
            let live = plan
                .accepted
                .iter()
                .filter(|c| c.first_idx <= idx && idx <= c.last_idx)
                .count();
            prop_assert!(live <= capacity, "{live} pins live at {idx} on a {capacity}-tile grid");
        }

        // (c) The pinned schedule is bit-for-bit the unpinned one.
        let pins = graph.insert_pins(&plan.accepted);
        prop_assert_eq!(pins, plan.accepted.len());
        let mut pinned = baseline.clone();
        pinned.body = graph.into_body();
        let (b, p) = (run_to_arrays(&baseline), run_to_arrays(&pinned));
        for (i, (want, got)) in b.iter().zip(&p).enumerate() {
            prop_assert!(want == got, "{} diverges", baseline.arrays[i].name);
        }
    }
}
