//! # tdo-tactics — Loop Tactics for CIM offloading
//!
//! The paper's mid-level optimizer extension (Section III): a declarative
//! matcher/builder framework that detects GEMM/GEMV/conv2d computational
//! patterns on Polly-style schedule trees and transparently rewrites them
//! into calls to the CIM runtime library, without any user intervention.
//!
//! * [`access`] — access-relation matchers with placeholders;
//! * [`detect`] — structural tree shapes combining bands and leaves;
//! * [`kernels`] — matched-kernel descriptors;
//! * [`policy`] — Always vs Selective (cost-model) offload decisions;
//! * [`codegen`] — `polly_cim*` call emission (Listing 1);
//! * [`pass`] — the driver pass with fusion (Listing 2) and compiler
//!   tiling of oversized GEMMs (Listing 3);
//! * [`graph`] — the offload dataflow graph: post-codegen sync hoisting
//!   and residency placement over the emitted runtime calls;
//! * [`pass_manager`] — the explicit pass pipeline running detection
//!   and the graph passes as configurable [`pass_manager::CompilerPass`]
//!   stages, including capacity-aware pin placement.
//!
//! ```
//! use tdo_tactics::pass::{LoopTactics, TacticsConfig};
//!
//! let src = r#"
//!     float A[8][8]; float B[8][8]; float C[8][8];
//!     void kernel() {
//!       for (int i = 0; i < 8; i++)
//!         for (int j = 0; j < 8; j++)
//!           for (int k = 0; k < 8; k++)
//!             C[i][j] += A[i][k] * B[k][j];
//!     }
//! "#;
//! let prog = tdo_lang::compile(src)?;
//! let scop = tdo_poly::scop::extract(&prog)?;
//! let (tree, report) = LoopTactics::new(TacticsConfig::default()).run(&prog, &scop);
//! assert!(report.any_offloaded());
//! let offloaded = tdo_poly::codegen::rebuild_program(&prog, &scop, &tree);
//! assert!(tdo_ir::printer::print_program(&offloaded).contains("polly_cimBlasSGemm"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod access;
pub mod codegen;
pub mod detect;
pub mod graph;
pub mod kernels;
pub mod pass;
pub mod pass_manager;
pub mod policy;

pub use graph::{optimize_offload_schedule, DataflowReport, OffloadGraph, PinCandidate};
pub use kernels::{ConvDesc, GemmDesc, GemvDesc, MatchedKernel};
pub use pass::{KernelReport, LoopTactics, OffloadReport, TacticsConfig};
pub use pass_manager::{
    plan_pins, CompilerPass, PassCtx, PassId, PassManager, PassReport, PinPlan,
};
pub use policy::{CostModel, Decision, OffloadPolicy};
