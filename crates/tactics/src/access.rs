//! Access-relation matchers with placeholders.
//!
//! Loop Tactics matches computational patterns by their *access
//! relations* rather than their syntax: a GEMM update is "a statement
//! whose write is `C[p_i][p_j]` and whose reads are `C[p_i][p_j]`,
//! `A[p_i][p_k]`, `B[p_k][p_j]` under a 3-deep band", for any binding of
//! the placeholders `p_i/p_j/p_k` to induction variables (Chelini et al.,
//! *Declarative Loop Tactics for Domain-Specific Optimization*). This
//! module recognizes those relations on a single SCoP statement.

use tdo_ir::affine::{AffineAccess, AffineExpr};
use tdo_ir::{ArrayId, BinOp, Expr, Program, VarId};
use tdo_poly::scop::ScopStmt;

/// The multiplicative factors of a reduction update, classified.
#[derive(Debug, Clone)]
pub struct ProductParts {
    /// Scalar factors (0-dim loads and float literals), in source order.
    pub scalars: Vec<Expr>,
    /// Array factors with their affine accesses.
    pub tensors: Vec<(Expr, AffineAccess)>,
}

/// Flattens a multiplication tree into classified factors. Returns `None`
/// if any node is not a multiplication over loads/literals.
pub fn flatten_product(prog: &Program, e: &Expr) -> Option<ProductParts> {
    let mut parts = ProductParts { scalars: Vec::new(), tensors: Vec::new() };
    collect_factors(prog, e, &mut parts)?;
    Some(parts)
}

fn collect_factors(prog: &Program, e: &Expr, out: &mut ProductParts) -> Option<()> {
    match e {
        Expr::Bin(BinOp::Mul, l, r) => {
            collect_factors(prog, l, out)?;
            collect_factors(prog, r, out)
        }
        Expr::Float(_) => {
            out.scalars.push(e.clone());
            Some(())
        }
        Expr::Load(a) => {
            let aff = AffineAccess::from_access(a)?;
            if prog.array(a.array).is_scalar() {
                out.scalars.push(e.clone());
            } else {
                out.tensors.push((e.clone(), aff));
            }
            Some(())
        }
        _ => None,
    }
}

/// Folds scalar factors into one `alpha` expression (`1.0` when empty).
pub fn fold_scalars(scalars: &[Expr]) -> Expr {
    scalars.iter().cloned().reduce(Expr::mul).unwrap_or(Expr::Float(1.0))
}

/// Constant-bound extent of a loop dimension `[0, n)`; `None` for
/// non-zero lower bounds or symbolic extents.
pub fn zero_based_extent(lb: &AffineExpr, ub: &AffineExpr) -> Option<usize> {
    if lb.is_constant() && lb.constant == 0 && ub.is_constant() && ub.constant > 0 {
        Some(ub.constant as usize)
    } else {
        None
    }
}

/// Whether an affine access is exactly `[v0][v1]` for the given variables.
pub fn is_2d_vars(acc: &AffineAccess, v0: VarId, v1: VarId) -> bool {
    acc.subs.len() == 2
        && acc.subs[0].as_single_var() == Some(v0)
        && acc.subs[1].as_single_var() == Some(v1)
}

/// Whether an affine access is exactly `[v]`.
pub fn is_1d_var(acc: &AffineAccess, v: VarId) -> bool {
    acc.subs.len() == 1 && acc.subs[0].as_single_var() == Some(v)
}

/// Result of matching a GEMM-style reduction update
/// `C[i][j] += alpha * op(A)[i][k] * B[k][j]`.
#[derive(Debug, Clone)]
pub struct GemmUpdate {
    /// Output array.
    pub c: ArrayId,
    /// Left operand and transposition.
    pub a: ArrayId,
    /// Whether `A` is accessed `[k][i]`.
    pub trans_a: bool,
    /// Right operand (always `[k][j]`).
    pub b: ArrayId,
    /// Extents `(m, n, k)`.
    pub extents: (usize, usize, usize),
    /// Folded scalar factor.
    pub alpha: Expr,
}

/// Matches a 3-deep GEMM update statement.
pub fn match_gemm_update(prog: &Program, stmt: &ScopStmt) -> Option<GemmUpdate> {
    if stmt.domain.len() != 3 {
        return None;
    }
    let (i, j, k) = (stmt.domain[0].var, stmt.domain[1].var, stmt.domain[2].var);
    let m = zero_based_extent(&stmt.domain[0].lb, &stmt.domain[0].ub)?;
    let n = zero_based_extent(&stmt.domain[1].lb, &stmt.domain[1].ub)?;
    let kk = zero_based_extent(&stmt.domain[2].lb, &stmt.domain[2].ub)?;
    if stmt.domain.iter().any(|d| d.step != 1) {
        return None;
    }
    // Write C[i][j].
    if !is_2d_vars(&stmt.write, i, j) {
        return None;
    }
    let c = stmt.write.array;
    // Value: C[i][j] + product (either order).
    let (acc_load, product) = split_reduction(&stmt.assign.value)?;
    let acc_aff = match acc_load {
        Expr::Load(a) => AffineAccess::from_access(a)?,
        _ => return None,
    };
    if acc_aff.array != c || !is_2d_vars(&acc_aff, i, j) {
        return None;
    }
    let parts = flatten_product(prog, product)?;
    if parts.tensors.len() != 2 {
        return None;
    }
    // B is the tensor mentioning j: must be [k][j].
    let (bpos, _) = parts
        .tensors
        .iter()
        .enumerate()
        .find(|(_, (_, aff))| aff.subs.iter().any(|s| s.coeff(j) != 0))?;
    let (_, b_aff) = &parts.tensors[bpos];
    if !is_2d_vars(b_aff, k, j) {
        return None;
    }
    let (_, a_aff) = &parts.tensors[1 - bpos];
    let trans_a = if is_2d_vars(a_aff, i, k) {
        false
    } else if is_2d_vars(a_aff, k, i) {
        true
    } else {
        return None;
    };
    Some(GemmUpdate {
        c,
        a: a_aff.array,
        trans_a,
        b: b_aff.array,
        extents: (m, n, kk),
        alpha: fold_scalars(&parts.scalars),
    })
}

/// Result of matching a GEMV-style update `y[i] += alpha * op(A) * x`.
#[derive(Debug, Clone)]
pub struct GemvUpdate {
    /// Output vector.
    pub y: ArrayId,
    /// Matrix operand.
    pub a: ArrayId,
    /// Whether `A` is accessed `[j][i]` (transposed use).
    pub trans_a: bool,
    /// Input vector.
    pub x: ArrayId,
    /// Extents `(m, k)`.
    pub extents: (usize, usize),
    /// Folded scalar factor.
    pub alpha: Expr,
}

/// Matches a 2-deep GEMV update statement.
pub fn match_gemv_update(prog: &Program, stmt: &ScopStmt) -> Option<GemvUpdate> {
    if stmt.domain.len() != 2 {
        return None;
    }
    let (i, j) = (stmt.domain[0].var, stmt.domain[1].var);
    let m = zero_based_extent(&stmt.domain[0].lb, &stmt.domain[0].ub)?;
    let k = zero_based_extent(&stmt.domain[1].lb, &stmt.domain[1].ub)?;
    if stmt.domain.iter().any(|d| d.step != 1) {
        return None;
    }
    if !is_1d_var(&stmt.write, i) {
        return None;
    }
    let y = stmt.write.array;
    let (acc_load, product) = split_reduction(&stmt.assign.value)?;
    let acc_aff = match acc_load {
        Expr::Load(a) => AffineAccess::from_access(a)?,
        _ => return None,
    };
    if acc_aff.array != y || !is_1d_var(&acc_aff, i) {
        return None;
    }
    let parts = flatten_product(prog, product)?;
    if parts.tensors.len() != 2 {
        return None;
    }
    // x is the 1-D tensor over j; A is the 2-D one.
    let (xpos, _) = parts.tensors.iter().enumerate().find(|(_, (_, aff))| aff.subs.len() == 1)?;
    let (_, x_aff) = &parts.tensors[xpos];
    if !is_1d_var(x_aff, j) {
        return None;
    }
    let (_, a_aff) = &parts.tensors[1 - xpos];
    let trans_a = if is_2d_vars(a_aff, i, j) {
        false
    } else if is_2d_vars(a_aff, j, i) {
        true
    } else {
        return None;
    };
    Some(GemvUpdate {
        y,
        a: a_aff.array,
        trans_a,
        x: x_aff.array,
        extents: (m, k),
        alpha: fold_scalars(&parts.scalars),
    })
}

/// Result of matching an accumulator-scale statement
/// `T[...] = beta * T[...]` or `T[...] = 0.0`.
#[derive(Debug, Clone)]
pub struct InitScale {
    /// Scaled array.
    pub target: ArrayId,
    /// The `beta` expression (`0.0` for zeroing inits).
    pub beta: Expr,
}

/// Matches an init statement of the given rank over the leading band vars.
pub fn match_init_scale(prog: &Program, stmt: &ScopStmt, rank: usize) -> Option<InitScale> {
    if stmt.domain.len() != rank || stmt.write.subs.len() != rank {
        return None;
    }
    for (d, s) in stmt.domain.iter().zip(&stmt.write.subs) {
        if s.as_single_var() != Some(d.var) {
            return None;
        }
        zero_based_extent(&d.lb, &d.ub)?;
    }
    let target = stmt.write.array;
    match &stmt.assign.value {
        Expr::Float(v) if *v == 0.0 => Some(InitScale { target, beta: Expr::Float(0.0) }),
        Expr::Bin(BinOp::Mul, l, r) => {
            let (scalar, load) = match (&**l, &**r) {
                (s, Expr::Load(a)) if !matches!(s, Expr::Load(x) if !prog.array(x.array).is_scalar()) => {
                    (s, a)
                }
                (Expr::Load(a), s) => (s, a),
                _ => return None,
            };
            let aff = AffineAccess::from_access(load)?;
            if aff.array != target || aff != stmt.write {
                return None;
            }
            match scalar {
                Expr::Float(_) => Some(InitScale { target, beta: scalar.clone() }),
                Expr::Load(sa) if prog.array(sa.array).is_scalar() => {
                    Some(InitScale { target, beta: scalar.clone() })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Splits `acc + product` / `product + acc` where `acc` is a load.
fn split_reduction(e: &Expr) -> Option<(&Expr, &Expr)> {
    let Expr::Bin(BinOp::Add, l, r) = e else { return None };
    match (&**l, &**r) {
        (Expr::Load(_), _) => Some((l, r)),
        (_, Expr::Load(_)) => Some((r, l)),
        _ => None,
    }
}

/// Result of matching a conv2d update
/// `out[i][j] += f[r][s] * img[i+r][j+s]` under a 4-deep band.
#[derive(Debug, Clone)]
pub struct ConvUpdate {
    /// Output image.
    pub out: ArrayId,
    /// Input image.
    pub img: ArrayId,
    /// Filter.
    pub filt: ArrayId,
    /// Extents `(out_h, out_w, fh, fw)`.
    pub extents: (usize, usize, usize, usize),
}

/// Matches a 4-deep convolution update statement.
pub fn match_conv_update(prog: &Program, stmt: &ScopStmt) -> Option<ConvUpdate> {
    if stmt.domain.len() != 4 {
        return None;
    }
    let vars: Vec<VarId> = stmt.domain.iter().map(|d| d.var).collect();
    let ext: Vec<usize> =
        stmt.domain.iter().map(|d| zero_based_extent(&d.lb, &d.ub)).collect::<Option<Vec<_>>>()?;
    if stmt.domain.iter().any(|d| d.step != 1) {
        return None;
    }
    let (i, j, r, s) = (vars[0], vars[1], vars[2], vars[3]);
    if !is_2d_vars(&stmt.write, i, j) {
        return None;
    }
    let out = stmt.write.array;
    let (acc_load, product) = split_reduction(&stmt.assign.value)?;
    let acc_aff = match acc_load {
        Expr::Load(a) => AffineAccess::from_access(a)?,
        _ => return None,
    };
    if acc_aff.array != out || !is_2d_vars(&acc_aff, i, j) {
        return None;
    }
    let parts = flatten_product(prog, product)?;
    if parts.tensors.len() != 2 || !parts.scalars.is_empty() {
        return None;
    }
    // The filter is indexed [r][s]; the image [i+r][j+s].
    let (fpos, _) = parts.tensors.iter().enumerate().find(|(_, (_, aff))| is_2d_vars(aff, r, s))?;
    let (_, img_aff) = &parts.tensors[1 - fpos];
    let shifted = |sub: &AffineExpr, a: VarId, b: VarId| {
        sub.constant == 0 && sub.coeff(a) == 1 && sub.coeff(b) == 1 && sub.terms.len() == 2
    };
    if img_aff.subs.len() != 2
        || !shifted(&img_aff.subs[0], i, r)
        || !shifted(&img_aff.subs[1], j, s)
    {
        return None;
    }
    Some(ConvUpdate {
        out,
        img: img_aff.array,
        filt: parts.tensors[fpos].1.array,
        extents: (ext[0], ext[1], ext[2], ext[3]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_lang::compile;
    use tdo_poly::scop::extract;

    fn stmts_of(src: &str) -> (Program, Vec<ScopStmt>) {
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        (prog, scop.stmts)
    }

    #[test]
    fn gemm_update_with_alpha_matches() {
        let (prog, stmts) = stmts_of(
            r#"
            const int M = 4; const int N = 5; const int K = 6;
            float A[M][K]; float B[K][N]; float C[M][N]; float alpha;
            void kernel() {
              for (int i = 0; i < M; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < K; k++)
                    C[i][j] += alpha * A[i][k] * B[k][j];
            }
            "#,
        );
        let u = match_gemm_update(&prog, &stmts[0]).expect("matches");
        assert_eq!(u.extents, (4, 5, 6));
        assert!(!u.trans_a);
        assert_eq!(prog.array(u.a).name, "A");
        assert_eq!(prog.array(u.b).name, "B");
        assert!(matches!(u.alpha, Expr::Load(_)));
    }

    #[test]
    fn reversed_product_order_matches() {
        let (prog, stmts) = stmts_of(
            r#"
            float A[4][4]; float B[4][4]; float C[4][4];
            void kernel() {
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                  for (int k = 0; k < 4; k++)
                    C[i][j] = A[i][k] * B[k][j] + C[i][j];
            }
            "#,
        );
        let u = match_gemm_update(&prog, &stmts[0]).expect("matches");
        assert_eq!(u.alpha, Expr::Float(1.0));
    }

    #[test]
    fn transposed_a_detected() {
        let (prog, stmts) = stmts_of(
            r#"
            float A[4][4]; float B[4][4]; float C[4][4];
            void kernel() {
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                  for (int k = 0; k < 4; k++)
                    C[i][j] += A[k][i] * B[k][j];
            }
            "#,
        );
        let u = match_gemm_update(&prog, &stmts[0]).expect("matches");
        assert!(u.trans_a);
    }

    #[test]
    fn non_gemm_shapes_rejected() {
        // Write target indexed [j][i]: not the canonical pattern.
        let (prog, stmts) = stmts_of(
            r#"
            float A[4][4]; float B[4][4]; float C[4][4];
            void kernel() {
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                  for (int k = 0; k < 4; k++)
                    C[j][i] += A[i][k] * B[k][j];
            }
            "#,
        );
        assert!(match_gemm_update(&prog, &stmts[0]).is_none());
    }

    #[test]
    fn gemv_and_transposed_gemv_match() {
        let (prog, stmts) = stmts_of(
            r#"
            const int N = 8;
            float A[N][N]; float x1[N]; float y1[N]; float x2[N]; float y2[N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  x1[i] += A[i][j] * y1[j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  x2[i] += A[j][i] * y2[j];
            }
            "#,
        );
        let u1 = match_gemv_update(&prog, &stmts[0]).expect("matches");
        assert!(!u1.trans_a);
        assert_eq!(u1.extents, (8, 8));
        let u2 = match_gemv_update(&prog, &stmts[1]).expect("matches");
        assert!(u2.trans_a);
        assert_eq!(prog.array(u2.a).name, "A");
    }

    #[test]
    fn init_scale_variants() {
        let (prog, stmts) = stmts_of(
            r#"
            float C[4][4]; float D[4][4]; float beta;
            void kernel() {
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                  C[i][j] = beta * C[i][j];
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                  D[i][j] = 0.0;
            }
            "#,
        );
        let s1 = match_init_scale(&prog, &stmts[0], 2).expect("beta scale");
        assert!(matches!(s1.beta, Expr::Load(_)));
        let s2 = match_init_scale(&prog, &stmts[1], 2).expect("zero init");
        assert_eq!(s2.beta, Expr::Float(0.0));
        // Wrong rank request fails.
        assert!(match_init_scale(&prog, &stmts[0], 1).is_none());
    }

    #[test]
    fn conv_update_matches() {
        let (prog, stmts) = stmts_of(
            r#"
            const int H = 8; const int W = 8;
            float img[H][W]; float f[3][3]; float out[6][6];
            void kernel() {
              for (int i = 0; i < H - 2; i++)
                for (int j = 0; j < W - 2; j++)
                  for (int r = 0; r < 3; r++)
                    for (int s = 0; s < 3; s++)
                      out[i][j] += f[r][s] * img[i + r][j + s];
            }
            "#,
        );
        let u = match_conv_update(&prog, &stmts[0]).expect("matches");
        assert_eq!(u.extents, (6, 6, 3, 3));
        assert_eq!(prog.array(u.img).name, "img");
        assert_eq!(prog.array(u.filt).name, "f");
    }

    #[test]
    fn conv_with_wrong_shift_rejected() {
        let (prog, stmts) = stmts_of(
            r#"
            float img[8][8]; float f[3][3]; float out[6][6];
            void kernel() {
              for (int i = 0; i < 6; i++)
                for (int j = 0; j < 6; j++)
                  for (int r = 0; r < 3; r++)
                    for (int s = 0; s < 3; s++)
                      out[i][j] += f[r][s] * img[i + s][j + r];
            }
            "#,
        );
        assert!(match_conv_update(&prog, &stmts[0]).is_none());
    }
}
