//! Offload decision policies.
//!
//! The paper offloads every matched kernel ("our approach is completely
//! transparent"), which is [`OffloadPolicy::Always`]. The *Selective*
//! policy adds a TOM-style cost model (Related Work, \[22\]): it compares
//! the predicted accelerator energy — including the host-side wait — with
//! a host execution estimate and offloads only when beneficial. The
//! "Selective Geomean" series of Fig. 6 uses it.

use crate::kernels::MatchedKernel;
use cim_accel::estimate::{estimate_conv2d, estimate_gemm, estimate_gemv, OpEstimate};
use cim_accel::AccelConfig;
use cim_machine::bus::BusConfig;
use tdo_ir::Expr;

/// Which kernels to offload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OffloadPolicy {
    /// Offload every matched kernel (the paper's transparent flow).
    #[default]
    Always,
    /// Offload only kernels the cost model predicts to win.
    Selective,
}

/// Cost model parameters for the Selective policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Accelerator configuration used for estimates.
    pub accel: AccelConfig,
    /// Interconnect timing.
    pub bus: BusConfig,
    /// Host energy per instruction in pJ (Table I: 128).
    pub host_pj_per_inst: f64,
    /// Average host instructions per multiply-accumulate, calibrated
    /// against the costed interpreter (~12: address arithmetic, loads,
    /// multiply-adds, loop overhead share).
    pub host_insts_per_mac: f64,
    /// Host clock in Hz.
    pub host_freq_hz: f64,
    /// Whether the host spin-waits during accelerator runs (energy!).
    pub spin_wait: bool,
    /// Fixed per-call driver overhead in instructions (ioctl + flush +
    /// register writes).
    pub offload_overhead_insts: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            accel: AccelConfig::default(),
            bus: BusConfig::default(),
            host_pj_per_inst: 128.0,
            host_insts_per_mac: 12.0,
            host_freq_hz: 1.2e9,
            spin_wait: true,
            offload_overhead_insts: 6000.0,
        }
    }
}

/// Outcome of a cost-model query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Whether offloading is predicted to save energy.
    pub offload: bool,
    /// Predicted host-only energy in pJ.
    pub host_pj: f64,
    /// Predicted offloaded energy in pJ (device + host driver share).
    pub cim_pj: f64,
}

impl CostModel {
    fn beta_zero(beta: &Expr) -> bool {
        matches!(beta, Expr::Float(v) if *v == 0.0)
    }

    /// Analytic accelerator estimate for a matched kernel. With
    /// `resident`, the stationary operand is modeled as already
    /// installed on its tiles (a pinned reuse); only meaningful when
    /// [`CostModel::single_block`] holds for the operand.
    fn estimate_with(&self, k: &MatchedKernel, resident: bool) -> OpEstimate {
        match k {
            MatchedKernel::Gemm(g) => estimate_gemm(
                &self.accel,
                &self.bus,
                g.m,
                g.n,
                g.k,
                Self::beta_zero(&g.beta),
                resident,
            ),
            MatchedKernel::Gemv(g) => {
                estimate_gemv(&self.accel, &self.bus, g.m, g.k, Self::beta_zero(&g.beta), resident)
            }
            MatchedKernel::Conv(c) => estimate_conv2d(&self.accel, &self.bus, c.h, c.w, c.fh, c.fw),
        }
    }

    /// Analytic accelerator estimate for a matched kernel (cold: the
    /// stationary operand is installed by the call).
    pub fn estimate(&self, k: &MatchedKernel) -> OpEstimate {
        self.estimate_with(k, false)
    }

    /// Whether an `m x k` stationary operand occupies a single crossbar
    /// tile — the condition under which tile residency survives
    /// back-to-back kernels, so a pinned install is paid once.
    pub fn single_block(&self, m: usize, k: usize) -> bool {
        k <= self.accel.rows && m <= self.accel.cols
    }

    /// Stationary-operand extent `(m, k)` of a matched kernel, when it
    /// has one the runtime can keep resident.
    fn stationary_extent(k: &MatchedKernel) -> Option<(usize, usize)> {
        match k {
            MatchedKernel::Gemm(g) => Some((g.m, g.k)),
            MatchedKernel::Gemv(g) => Some((g.m, g.k)),
            MatchedKernel::Conv(_) => None,
        }
    }

    fn decision_from(&self, macs: u64, cim_energy_pj: f64, cim_time_s: f64) -> Decision {
        let host_pj = macs as f64 * self.host_insts_per_mac * self.host_pj_per_inst;
        let wait_pj = if self.spin_wait {
            // Spinning retires ~1 inst/cycle for the accelerator's busy time.
            cim_time_s * self.host_freq_hz * self.host_pj_per_inst
        } else {
            0.0
        };
        let cim_pj = cim_energy_pj + wait_pj + self.offload_overhead_insts * self.host_pj_per_inst;
        Decision { offload: cim_pj < host_pj, host_pj, cim_pj }
    }

    /// Compares offloaded vs host execution for a single, cold kernel
    /// invocation.
    pub fn decide(&self, k: &MatchedKernel) -> Decision {
        let est = self.estimate(k);
        self.decision_from(k.macs(), est.energy.as_pj(), est.time.as_s())
    }

    /// Compares offloaded vs host execution for one call of a run of
    /// `uses` consecutive kernels reusing the same pinned stationary
    /// operand: the crossbar install is paid once (cold call), the
    /// remaining `uses - 1` calls run against resident tiles, and the
    /// decision is made on the per-call average. Falls back to
    /// [`CostModel::decide`] when residency cannot help — a single use,
    /// a multi-tile operand, or a kernel without a stationary operand.
    pub fn decide_reused(&self, k: &MatchedKernel, uses: usize) -> Decision {
        let resident_ok =
            uses > 1 && Self::stationary_extent(k).is_some_and(|(m, kk)| self.single_block(m, kk));
        if !resident_ok {
            return self.decide(k);
        }
        let cold = self.estimate_with(k, false);
        let warm = self.estimate_with(k, true);
        let n = uses as f64;
        let time_s = (cold.time.as_s() + (n - 1.0) * warm.time.as_s()) / n;
        let energy_pj = (cold.energy.as_pj() + (n - 1.0) * warm.energy.as_pj()) / n;
        self.decision_from(k.macs(), energy_pj, time_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{GemmDesc, GemvDesc};
    use tdo_ir::ArrayId;

    fn gemm(n: usize) -> MatchedKernel {
        MatchedKernel::Gemm(GemmDesc {
            c: ArrayId(0),
            a: ArrayId(1),
            b: ArrayId(2),
            m: n,
            n,
            k: n,
            lda: n,
            ldb: n,
            ldc: n,
            trans_a: false,
            alpha: Expr::Float(1.0),
            beta: Expr::Float(0.0),
            stmt_ids: vec![0],
        })
    }

    fn gemv(n: usize) -> MatchedKernel {
        MatchedKernel::Gemv(GemvDesc {
            y: ArrayId(0),
            a: ArrayId(1),
            x: ArrayId(2),
            m: n,
            k: n,
            lda: n,
            trans_a: false,
            alpha: Expr::Float(1.0),
            beta: Expr::Float(1.0),
            stmt_ids: vec![0],
        })
    }

    #[test]
    fn large_gemm_wins_small_gemv_loses() {
        // The central asymmetry of Fig. 6: GEMM-like kernels amortize the
        // crossbar writes over O(n^3) MACs, GEMV-like kernels cannot.
        let cm = CostModel::default();
        let d = cm.decide(&gemm(256));
        assert!(d.offload, "gemm-256: cim {} vs host {}", d.cim_pj, d.host_pj);
        let d = cm.decide(&gemv(256));
        assert!(!d.offload, "gemv-256: cim {} vs host {}", d.cim_pj, d.host_pj);
    }

    #[test]
    fn spin_wait_matters_for_the_decision() {
        let mut cm = CostModel { spin_wait: true, ..CostModel::default() };
        let spin = cm.decide(&gemm(128)).cim_pj;
        cm.spin_wait = false;
        let idle = cm.decide(&gemm(128)).cim_pj;
        assert!(spin > idle);
    }

    #[test]
    fn tiny_kernels_never_offload_under_selective_costs() {
        let cm = CostModel::default();
        let d = cm.decide(&gemm(4));
        assert!(!d.offload, "4x4 gemm cannot amortize the driver overhead");
    }

    #[test]
    fn pinned_gemv_chain_flips_to_offload_once_residency_is_priced() {
        // A stationary-weight GEMV chain is the regression shape: cold,
        // every call pays the full crossbar install and loses to the
        // host; priced as a pinned run, the install amortizes away and
        // the chain flips to offload.
        let cm = CostModel::default();
        assert!(!cm.decide(&gemv(256)).offload, "cold gemv-256 must lose");
        assert_eq!(
            cm.decide_reused(&gemv(256), 1),
            cm.decide(&gemv(256)),
            "single use: no amortization"
        );
        let d = cm.decide_reused(&gemv(256), 8);
        assert!(d.offload, "8-deep pinned chain: cim {} vs host {}", d.cim_pj, d.host_pj);
        assert!(d.cim_pj < cm.decide(&gemv(256)).cim_pj, "amortized cost must drop");
    }

    #[test]
    fn reuse_amortization_requires_a_single_block_operand() {
        // A multi-wave stationary operand cannot stay resident, so reuse
        // must not change the decision.
        let cm = CostModel::default();
        let k = gemm(1024);
        assert_eq!(cm.decide_reused(&k, 16), cm.decide(&k));
    }
}
