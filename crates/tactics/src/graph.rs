//! The offload dataflow graph: post-codegen scheduling of runtime calls.
//!
//! [`crate::codegen`] emits a maximally conservative schedule: every
//! kernel is bracketed by coherence transfers for all of its operands,
//! and every `polly_cimDevToHost` sits at the point of production. This
//! module rebuilds the translation unit's top-level statement sequence
//! as a dependency graph — nodes are runtime calls and host statements,
//! edges are array read/write dependences — and runs two passes over it:
//!
//! 1. **Sync hoisting** ([`OffloadGraph::hoist_syncs`]): each
//!    `polly_cimDevToHost` is *sunk* past subsequent statements that do
//!    not touch the produced array. Under asynchronous dispatch the
//!    d2h call is the observation point that pays the residual wait, so
//!    moving it later widens the window in which independent host code
//!    (and further kernel submissions) overlap the accelerator — for
//!    *chains* of kernels, not just streams.
//! 2. **Residency placement** ([`OffloadGraph::place_residency`]):
//!    redundant `polly_cimHostToDev` syncs — those whose array the host
//!    provably has not written since its previous sync — are elided, and
//!    stationary operands reused by consecutive kernels inside such a
//!    clean window get a `polly_cimPin` call before their first use. The
//!    runtime routes pinned kernels to a stable tile region where the
//!    engine's residency skips the install DMA and row programming.
//!
//! Both passes are value-preserving by construction: the coherence calls
//! move or disappear only where the cache traffic they model is
//! provably redundant, and kernel order never changes — so every
//! schedule stays bit-for-bit identical to the conservative one, which
//! the equivalence tests pin.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use tdo_ir::{ArrayId, CallArg, CallStmt, Expr, Program, Stmt};

/// What the pass did to a translation unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataflowReport {
    /// Top-level nodes in the graph.
    pub nodes: usize,
    /// `polly_cimDevToHost` calls sunk past at least one independent
    /// statement.
    pub hoisted_syncs: usize,
    /// Total statements crossed by the sunk syncs.
    pub hoist_distance: usize,
    /// Redundant `polly_cimHostToDev` calls removed.
    pub elided_syncs: usize,
    /// `polly_cimPin` calls inserted for reused stationary operands.
    pub pins: usize,
}

impl fmt::Display for DataflowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offload dataflow: {} nodes, {} d2h sync(s) hoisted (distance {}), \
             {} redundant h2d sync(s) elided, {} operand(s) pinned",
            self.nodes, self.hoisted_syncs, self.hoist_distance, self.elided_syncs, self.pins
        )
    }
}

/// Node classification, as far as the passes care.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeOp {
    /// A sinkable `polly_cimDevToHost(arr)` observation point.
    DevToHost(ArrayId),
    /// An elidable `polly_cimHostToDev(arr)` coherence sync.
    HostToDev(ArrayId),
    /// An offloaded kernel; `stationary` is the operand the engine
    /// installs on its tiles (GEMM/GEMV `A`), when there is one.
    Kernel { stationary: Option<ArrayId> },
    /// Anything else: host statements, prologue calls, unknown callees.
    Other,
}

/// One top-level statement with its dependence footprint.
#[derive(Debug, Clone)]
struct Node {
    stmt: Stmt,
    op: NodeOp,
    reads: BTreeSet<ArrayId>,
    writes: BTreeSet<ArrayId>,
}

impl Node {
    fn touches(&self, a: ArrayId) -> bool {
        self.reads.contains(&a) || self.writes.contains(&a)
    }
}

/// The dependence graph over a translation unit's top-level statements.
#[derive(Debug, Clone)]
pub struct OffloadGraph {
    nodes: Vec<Node>,
    report: DataflowReport,
}

/// A stationary operand reused by consecutive kernels inside one
/// content window — a candidate for `polly_cimPin`, carrying everything
/// the capacity-aware placement pass needs to score it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinCandidate {
    /// The operand array.
    pub array: ArrayId,
    /// Node index of the first kernel using it (the pin's insertion
    /// point).
    pub first_idx: usize,
    /// Node index of the last kernel in the reuse run — together with
    /// [`PinCandidate::first_idx`] the live interval over which the
    /// operand must hold its tiles.
    pub last_idx: usize,
    /// Kernels in the run.
    pub uses: usize,
    /// Kernel extent `(m, n, k)` parsed from the first call when its
    /// dimensions are literal (`n = 1` for GEMV); `None` for view calls
    /// with dynamic extents, which the placement pass treats as
    /// full-grid occupants of unknown value.
    pub dims: Option<(usize, usize, usize)>,
}

/// Literal `(m, n, k)` of a kernel call, when statically known.
fn kernel_dims(stmt: &Stmt) -> Option<(usize, usize, usize)> {
    let Stmt::Call(c) = stmt else { return None };
    let int_arg = |i: usize| match c.args.get(i) {
        Some(CallArg::Value(Expr::Int(v))) => usize::try_from(*v).ok(),
        _ => None,
    };
    match c.callee.as_str() {
        // (trans_a, trans_b, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc)
        "polly_cimBlasSGemm" => Some((int_arg(2)?, int_arg(3)?, int_arg(4)?)),
        // (trans, m, k, alpha, A, lda, x, beta, y)
        "polly_cimBlasSGemv" => Some((int_arg(1)?, 1, int_arg(2)?)),
        _ => None,
    }
}

fn host_accesses(stmt: &Stmt, reads: &mut BTreeSet<ArrayId>, writes: &mut BTreeSet<ArrayId>) {
    stmt.visit(&mut |s| match s {
        Stmt::Assign(a) => {
            writes.insert(a.target.array);
            for idx in &a.target.idx {
                idx.visit_accesses(&mut |acc| {
                    reads.insert(acc.array);
                });
            }
            a.value.visit_accesses(&mut |acc| {
                reads.insert(acc.array);
            });
        }
        Stmt::For(l) => {
            for e in [&l.lo, &l.hi] {
                e.visit_accesses(&mut |acc| {
                    reads.insert(acc.array);
                });
            }
        }
        Stmt::If(i) => {
            for e in [&i.cond.lhs, &i.cond.rhs] {
                e.visit_accesses(&mut |acc| {
                    reads.insert(acc.array);
                });
            }
        }
        Stmt::Call(c) => {
            // Nested runtime calls (inside compiler-tiled loops) are
            // barriers on everything they mention.
            for arg in &c.args {
                match arg {
                    CallArg::Array(a) => {
                        reads.insert(*a);
                        writes.insert(*a);
                    }
                    CallArg::Value(e) => e.visit_accesses(&mut |acc| {
                        reads.insert(acc.array);
                    }),
                }
            }
        }
    });
}

fn call_arrays(c: &CallStmt) -> Vec<ArrayId> {
    c.args
        .iter()
        .filter_map(|a| match a {
            CallArg::Array(id) => Some(*id),
            CallArg::Value(_) => None,
        })
        .collect()
}

fn scalar_reads(c: &CallStmt, reads: &mut BTreeSet<ArrayId>) {
    for arg in &c.args {
        if let CallArg::Value(e) = arg {
            e.visit_accesses(&mut |acc| {
                reads.insert(acc.array);
            });
        }
    }
}

fn classify(stmt: &Stmt) -> Node {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let op = match stmt {
        Stmt::Call(c) => {
            let arrays = call_arrays(c);
            scalar_reads(c, &mut reads);
            match c.callee.as_str() {
                "polly_cimDevToHost" => {
                    reads.insert(arrays[0]);
                    writes.insert(arrays[0]);
                    NodeOp::DevToHost(arrays[0])
                }
                "polly_cimHostToDev" => {
                    reads.insert(arrays[0]);
                    writes.insert(arrays[0]);
                    NodeOp::HostToDev(arrays[0])
                }
                "polly_cimBlasSGemm" | "polly_cimBlasSGemmView" | "polly_cimBlasSGemv" => {
                    // Arrays in ABI order: [a, b, c] / [a, x, y]. The
                    // output may also be read (beta, accumulation), so it
                    // lands in both sets.
                    reads.extend(arrays.iter().copied());
                    writes.insert(*arrays.last().expect("kernel has operands"));
                    NodeOp::Kernel { stationary: Some(arrays[0]) }
                }
                "polly_cimBlasGemmBatched" => {
                    reads.extend(arrays.iter().copied());
                    for c_arr in arrays.chunks(3).filter_map(|t| t.get(2)) {
                        writes.insert(*c_arr);
                    }
                    NodeOp::Kernel { stationary: None }
                }
                "polly_cimConv2d" => {
                    reads.extend(arrays.iter().copied());
                    writes.insert(*arrays.last().expect("conv has operands"));
                    NodeOp::Kernel { stationary: None }
                }
                _ => {
                    // Prologue and memory management: a barrier on every
                    // array it names.
                    reads.extend(arrays.iter().copied());
                    writes.extend(arrays.iter().copied());
                    NodeOp::Other
                }
            }
        }
        other => {
            host_accesses(other, &mut reads, &mut writes);
            NodeOp::Other
        }
    };
    Node { stmt: stmt.clone(), op, reads, writes }
}

impl OffloadGraph {
    /// Builds the graph over a program's top-level statement sequence.
    pub fn build(prog: &Program) -> OffloadGraph {
        let nodes: Vec<Node> = prog.body.iter().map(classify).collect();
        let report = DataflowReport { nodes: nodes.len(), ..DataflowReport::default() };
        OffloadGraph { nodes, report }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> DataflowReport {
        self.report
    }

    /// Sinks every `polly_cimDevToHost` past subsequent statements that
    /// do not touch its array — widening the async overlap window — and
    /// returns how many moved.
    pub fn hoist_syncs(&mut self) -> usize {
        let mut moved = 0;
        // Back to front, so sinking one sync cannot starve an earlier
        // one of its own sink window.
        for i in (0..self.nodes.len()).rev() {
            let NodeOp::DevToHost(arr) = self.nodes[i].op else { continue };
            let mut dist = 0;
            while i + dist + 1 < self.nodes.len() && !self.nodes[i + dist + 1].touches(arr) {
                dist += 1;
            }
            if dist > 0 {
                let node = self.nodes.remove(i);
                self.nodes.insert(i + dist, node);
                moved += 1;
                self.report.hoist_distance += dist;
            }
        }
        self.report.hoisted_syncs += moved;
        moved
    }

    /// Elides coherence syncs for arrays the host has not written since
    /// their previous sync. Returns how many were removed.
    pub fn elide_syncs(&mut self) -> usize {
        // Walk once, tracking which arrays are "clean" (device-synced,
        // not host-written since).
        let mut clean: BTreeSet<ArrayId> = BTreeSet::new();
        let mut elided = 0;
        let mut kept: Vec<Node> = Vec::with_capacity(self.nodes.len());
        for node in self.nodes.drain(..) {
            match node.op {
                NodeOp::HostToDev(a) => {
                    if clean.contains(&a) {
                        elided += 1;
                        continue;
                    }
                    clean.insert(a);
                    kept.push(node);
                }
                NodeOp::DevToHost(a) => {
                    // The flush leaves the host's lines for the range
                    // clean; it dirties nothing.
                    clean.insert(a);
                    kept.push(node);
                }
                NodeOp::Kernel { .. } => {
                    // The device writes through uncacheable accesses, so
                    // the host cache stays clean — but the conservative
                    // runtime relies on the next h2d of a written array
                    // to invalidate crossbar residency sourced from it,
                    // so a kernel write must end the array's clean
                    // window (keeping that h2d) all the same.
                    for w in &node.writes {
                        clean.remove(w);
                    }
                    kept.push(node);
                }
                NodeOp::Other => {
                    for w in &node.writes {
                        clean.remove(w);
                    }
                    kept.push(node);
                }
            }
        }
        self.nodes = kept;
        self.report.elided_syncs += elided;
        elided
    }

    /// Collects the stationary operands reused across kernels with no
    /// intervening write to them (host write, kept h2d, or a kernel
    /// producing into the operand) — the pin candidates of the
    /// placement pass, in schedule order.
    pub fn pin_candidates(&self) -> Vec<PinCandidate> {
        let mut window: BTreeMap<ArrayId, usize> = BTreeMap::new();
        let mut next_window = 0usize;
        let mut runs: BTreeMap<(ArrayId, usize), PinCandidate> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let NodeOp::Kernel { stationary: Some(a) } = node.op {
                let w = *window.entry(a).or_insert_with(|| {
                    next_window += 1;
                    next_window
                });
                runs.entry((a, w))
                    .and_modify(|c| {
                        c.last_idx = i;
                        c.uses += 1;
                    })
                    .or_insert(PinCandidate {
                        array: a,
                        first_idx: i,
                        last_idx: i,
                        uses: 1,
                        dims: kernel_dims(&node.stmt),
                    });
            }
            if matches!(node.op, NodeOp::DevToHost(_)) {
                continue; // a pure flush changes no contents
            }
            for w in &node.writes {
                // Writing an array (including a kernel writing its own
                // output) starts a new reuse window for it.
                if matches!(node.op, NodeOp::Kernel { stationary: Some(a) } if a == *w) {
                    continue; // a kernel does not clobber its stationary operand
                }
                next_window += 1;
                window.insert(*w, next_window);
            }
        }
        let mut out: Vec<PinCandidate> = runs.into_values().filter(|c| c.uses >= 2).collect();
        out.sort_by_key(|c| c.first_idx);
        out
    }

    /// Inserts a `polly_cimPin` before the first kernel of each accepted
    /// candidate. Returns how many pins were placed.
    pub fn insert_pins(&mut self, accepted: &[PinCandidate]) -> usize {
        let mut pin_at: Vec<(usize, ArrayId)> =
            accepted.iter().map(|c| (c.first_idx, c.array)).collect();
        pin_at.sort_unstable();
        for (offset, (idx, a)) in pin_at.iter().enumerate() {
            let stmt = Stmt::Call(CallStmt {
                callee: "polly_cimPin".into(),
                args: vec![CallArg::Array(*a)],
            });
            self.nodes.insert(idx + offset, classify(&stmt));
        }
        let pins = pin_at.len();
        self.report.pins += pins;
        pins
    }

    /// Elides coherence syncs for arrays the host has not written since
    /// their previous sync, and pins every stationary operand reused by
    /// consecutive kernels inside such a clean window — the
    /// capacity-oblivious legacy pass. Returns `(elided, pins)`.
    pub fn place_residency(&mut self) -> (usize, usize) {
        let elided = self.elide_syncs();
        let candidates = self.pin_candidates();
        let pins = self.insert_pins(&candidates);
        (elided, pins)
    }

    /// The optimized statement sequence.
    pub fn into_body(self) -> Vec<Stmt> {
        self.nodes.into_iter().map(|n| n.stmt).collect()
    }
}

/// Runs both graph passes over a compiled program's top-level schedule,
/// returning the optimized program and a report. Nested runtime calls
/// (inside compiler-tiled loops) are left untouched — the graph is
/// conservative about anything it cannot order statically.
pub fn optimize_offload_schedule(prog: &Program) -> (Program, DataflowReport) {
    let mut graph = OffloadGraph::build(prog);
    graph.hoist_syncs();
    graph.place_residency();
    let report = graph.report();
    let mut out = prog.clone();
    out.body = graph.into_body();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{LoopTactics, TacticsConfig};
    use tdo_ir::interp::{run, PureBackend};
    use tdo_ir::printer::print_program;
    use tdo_lang::compile;
    use tdo_poly::codegen::rebuild_program;
    use tdo_poly::scop::extract;

    fn offload(src: &str, cfg: TacticsConfig) -> Program {
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let (tree, _) = LoopTactics::new(cfg).run(&prog, &scop);
        rebuild_program(&prog, &scop, &tree)
    }

    /// Two GEMMs sharing A and B, with unrelated host code after each
    /// d2h: the canonical hoist + residency shape.
    const SHARED_A: &str = r#"
        const int N = 8;
        float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float s[N];
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                D[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            s[i] = s[i] + 1.0;
        }
    "#;

    fn unfused() -> TacticsConfig {
        TacticsConfig { fusion: false, ..TacticsConfig::default() }
    }

    #[test]
    fn redundant_h2d_elided_and_shared_a_pinned() {
        let prog = offload(SHARED_A, unfused());
        let before = print_program(&prog);
        assert_eq!(before.matches("polly_cimHostToDev(cim_A)").count(), 2);
        let (opt, report) = optimize_offload_schedule(&prog);
        let text = print_program(&opt);
        // Second h2d of A and B (and the never-host-written C/D reloads)
        // are gone; A — reused as the stationary operand — is pinned.
        assert_eq!(text.matches("polly_cimHostToDev(cim_A)").count(), 1, "{text}");
        assert_eq!(text.matches("polly_cimHostToDev(cim_B)").count(), 1, "{text}");
        assert_eq!(text.matches("polly_cimPin(cim_A)").count(), 1, "{text}");
        assert!(report.elided_syncs >= 2, "{report}");
        assert_eq!(report.pins, 1, "{report}");
        // The pin precedes the first kernel.
        let pin = text.find("polly_cimPin(cim_A)").expect("pin");
        let first_gemm = text.find("polly_cimBlasSGemm").expect("gemm");
        assert!(pin < first_gemm, "{text}");
    }

    #[test]
    fn d2h_sinks_past_independent_statements_only() {
        let prog = offload(SHARED_A, unfused());
        let (opt, report) = optimize_offload_schedule(&prog);
        assert!(report.hoisted_syncs >= 1, "{report}");
        let text = print_program(&opt);
        // d2h(C) sank past the D kernel (independent of C) — the D
        // kernel call now precedes it.
        let d2h_c = text.find("polly_cimDevToHost(cim_C)").expect("d2h C");
        let gemm_d = text.rfind("polly_cimBlasSGemm").expect("second gemm");
        assert!(gemm_d < d2h_c, "d2h(C) did not sink past the D kernel: {text}");
    }

    #[test]
    fn optimized_schedule_is_semantically_identical() {
        for cfg in [TacticsConfig::default(), unfused()] {
            let prog = offload(SHARED_A, cfg);
            let (opt, _) = optimize_offload_schedule(&prog);
            let init = |p: &Program, be: &mut PureBackend| {
                for (i, d) in p.arrays.iter().enumerate() {
                    let data: Vec<f32> =
                        (0..d.elem_count()).map(|j| ((i * 13 + j * 5) % 11) as f32 - 5.0).collect();
                    be.set_array(ArrayId(i), &data);
                }
            };
            let mut b1 = PureBackend::for_program(&prog);
            init(&prog, &mut b1);
            run(&prog, &mut b1).expect("baseline runs");
            let mut b2 = PureBackend::for_program(&opt);
            init(&opt, &mut b2);
            run(&opt, &mut b2).expect("optimized runs");
            for (i, decl) in prog.arrays.iter().enumerate() {
                assert_eq!(b1.array(ArrayId(i)), b2.array(ArrayId(i)), "{} diverged", decl.name);
            }
        }
    }

    #[test]
    fn host_consumer_blocks_sinking() {
        // The host reads C right after the d2h: nothing to sink past.
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  C[i][j] = C[i][j] * 2.0;
            }
        "#;
        let prog = offload(src, TacticsConfig::default());
        let (opt, report) = optimize_offload_schedule(&prog);
        assert_eq!(report.hoisted_syncs, 0, "{report}");
        let text = print_program(&opt);
        let d2h = text.find("polly_cimDevToHost(cim_C)").expect("d2h");
        let host = text.find("* 2.0").expect("host consumer");
        assert!(d2h < host, "{text}");
    }

    #[test]
    fn host_write_fences_elision_and_pinning() {
        // The host writes A between the kernels: the second h2d(A) must
        // stay and A must not be pinned.
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  A[i][j] = A[i][j] + 1.0;
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    D[i][j] += A[i][k] * B[k][j];
            }
        "#;
        let prog = offload(src, unfused());
        let (opt, report) = optimize_offload_schedule(&prog);
        let text = print_program(&opt);
        assert_eq!(text.matches("polly_cimHostToDev(cim_A)").count(), 2, "{text}");
        assert!(!text.contains("polly_cimPin(cim_A)"), "{text}");
        assert_eq!(report.pins, 0);
    }

    #[test]
    fn chain_outputs_are_not_pinned_across_layers() {
        // H is written by layer 1 and consumed as layer 2's stationary
        // operand: one use per content version, so no pin.
        let src = r#"
            const int N = 8;
            float X[N][N]; float W1[N][N]; float W2[N][N]; float H[N][N]; float Y[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    H[i][j] += X[i][k] * W1[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    Y[i][j] += H[i][k] * W2[k][j];
            }
        "#;
        let prog = offload(src, unfused());
        let (_, report) = optimize_offload_schedule(&prog);
        assert_eq!(report.pins, 0, "{report}");
    }
}
