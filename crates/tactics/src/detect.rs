//! Structural kernel matchers over schedule trees.
//!
//! Combines the tree shapes Loop Tactics recognizes (band chains over
//! reduction leaves, optionally with an accumulator-scale init statement)
//! with the access-relation matchers of [`crate::access`].

use crate::access::{match_conv_update, match_gemm_update, match_gemv_update, match_init_scale};
use crate::kernels::{ConvDesc, GemmDesc, GemvDesc, MatchedKernel};
use tdo_ir::{Expr, Program};
use tdo_poly::scop::Scop;
use tdo_poly::tree::ScheduleTree;

/// Tries to match a whole subtree as one offloadable kernel.
pub fn match_kernel(prog: &Program, scop: &Scop, tree: &ScheduleTree) -> Option<MatchedKernel> {
    let (dims, inner) = tree.band_chain();
    match (dims.len(), inner) {
        // for i, j, k: C[i][j] += ...      (no init, beta = 1)
        (3, ScheduleTree::Leaf { stmt }) => {
            gemm_from(prog, scop, *stmt, None, Expr::Float(1.0), tree)
        }
        // for i, j: { C[i][j] = beta*C[i][j]; for k: C[i][j] += ... }
        (2, ScheduleTree::Sequence { children }) if children.len() == 2 => {
            let ScheduleTree::Leaf { stmt: init_id } = &children[0] else { return None };
            let (kdims, kinner) = children[1].band_chain();
            let ScheduleTree::Leaf { stmt: upd_id } = kinner else { return None };
            if kdims.len() != 1 {
                return None;
            }
            let init = match_init_scale(prog, &scop.stmts[*init_id], 2)?;
            gemm_from(prog, scop, *upd_id, Some(*init_id), init.beta, tree)
        }
        // for i, j: y[i] += A.. * x..      (gemv, beta = 1)
        (2, ScheduleTree::Leaf { stmt }) => gemv_from(prog, scop, *stmt, None, Expr::Float(1.0)),
        // for i: { y[i] = beta*y[i]; for j: y[i] += ... }
        (1, ScheduleTree::Sequence { children }) if children.len() == 2 => {
            let ScheduleTree::Leaf { stmt: init_id } = &children[0] else { return None };
            let (jdims, jinner) = children[1].band_chain();
            let ScheduleTree::Leaf { stmt: upd_id } = jinner else { return None };
            if jdims.len() != 1 {
                return None;
            }
            let init = match_init_scale(prog, &scop.stmts[*init_id], 1)?;
            gemv_from(prog, scop, *upd_id, Some(*init_id), init.beta)
        }
        // for i, j, r, s: out[i][j] += f[r][s] * img[i+r][j+s]
        (4, ScheduleTree::Leaf { stmt }) => conv_from(prog, scop, *stmt),
        _ => None,
    }
}

fn gemm_from(
    prog: &Program,
    scop: &Scop,
    upd_id: usize,
    init_id: Option<usize>,
    beta: Expr,
    tree: &ScheduleTree,
) -> Option<MatchedKernel> {
    let upd = &scop.stmts[upd_id];
    let u = match_gemm_update(prog, upd)?;
    // The bands traversed must be the statement's own domain.
    let (dims, _) = tree.band_chain();
    for (band, dom) in dims.iter().zip(&upd.domain) {
        if band.var != dom.var {
            return None;
        }
    }
    if let Some(init_id) = init_id {
        // Init must scale the same output.
        if scop.stmts[init_id].write.array != u.c {
            return None;
        }
    }
    let (m, n, k) = u.extents;
    let a_decl = prog.array(u.a);
    let b_decl = prog.array(u.b);
    let c_decl = prog.array(u.c);
    if a_decl.dims.len() != 2 || b_decl.dims.len() != 2 || c_decl.dims.len() != 2 {
        return None;
    }
    let mut stmt_ids = Vec::new();
    if let Some(i) = init_id {
        stmt_ids.push(i);
    }
    stmt_ids.push(upd_id);
    Some(MatchedKernel::Gemm(GemmDesc {
        c: u.c,
        a: u.a,
        b: u.b,
        m,
        n,
        k,
        lda: a_decl.dims[1],
        ldb: b_decl.dims[1],
        ldc: c_decl.dims[1],
        trans_a: u.trans_a,
        alpha: u.alpha,
        beta,
        stmt_ids,
    }))
}

fn gemv_from(
    prog: &Program,
    scop: &Scop,
    upd_id: usize,
    init_id: Option<usize>,
    beta: Expr,
) -> Option<MatchedKernel> {
    let upd = &scop.stmts[upd_id];
    let u = match_gemv_update(prog, upd)?;
    if let Some(init_id) = init_id {
        if scop.stmts[init_id].write.array != u.y {
            return None;
        }
    }
    let (m, k) = u.extents;
    let a_decl = prog.array(u.a);
    if a_decl.dims.len() != 2 {
        return None;
    }
    let mut stmt_ids = Vec::new();
    if let Some(i) = init_id {
        stmt_ids.push(i);
    }
    stmt_ids.push(upd_id);
    Some(MatchedKernel::Gemv(GemvDesc {
        y: u.y,
        a: u.a,
        x: u.x,
        m,
        k,
        lda: a_decl.dims[1],
        trans_a: u.trans_a,
        alpha: u.alpha,
        beta,
        stmt_ids,
    }))
}

fn conv_from(prog: &Program, scop: &Scop, upd_id: usize) -> Option<MatchedKernel> {
    let upd = &scop.stmts[upd_id];
    let u = match_conv_update(prog, upd)?;
    let (oh, ow, fh, fw) = u.extents;
    let img = prog.array(u.img);
    let out = prog.array(u.out);
    let filt = prog.array(u.filt);
    if img.dims.len() != 2 || out.dims.len() != 2 || filt.dims.len() != 2 {
        return None;
    }
    let (h, w) = (img.dims[0], img.dims[1]);
    // The loops must cover the full valid-convolution output, and the
    // filter loops the full filter.
    if oh != h - fh + 1 || ow != w - fw + 1 {
        return None;
    }
    if filt.dims != vec![fh, fw] || out.dims != vec![oh, ow] {
        return None;
    }
    Some(MatchedKernel::Conv(ConvDesc {
        out: u.out,
        img: u.img,
        filt: u.filt,
        h,
        w,
        fh,
        fw,
        stmt_ids: vec![upd_id],
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_lang::compile;
    use tdo_poly::scop::extract;

    fn matched(src: &str) -> Option<MatchedKernel> {
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        match_kernel(&prog, &scop, &scop.tree)
    }

    #[test]
    fn full_gemm_with_init_matches() {
        let k = matched(
            r#"
            const int N = 16;
            float A[N][N]; float B[N][N]; float C[N][N];
            float alpha = 1.0; float beta = 1.0;
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++) {
                  C[i][j] = beta * C[i][j];
                  for (int k = 0; k < N; k++)
                    C[i][j] += alpha * A[i][k] * B[k][j];
                }
            }
            "#,
        )
        .expect("matches");
        let MatchedKernel::Gemm(g) = k else { panic!("expected gemm") };
        assert_eq!((g.m, g.n, g.k), (16, 16, 16));
        assert_eq!(g.stmt_ids.len(), 2);
        assert!(matches!(g.beta, Expr::Load(_)));
    }

    #[test]
    fn bare_accumulation_gemm_matches_with_beta_one() {
        let k = matched(
            r#"
            float A[8][8]; float B[8][8]; float C[8][8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                  for (int k = 0; k < 8; k++)
                    C[i][j] += A[i][k] * B[k][j];
            }
            "#,
        )
        .expect("matches");
        let MatchedKernel::Gemm(g) = k else { panic!() };
        assert_eq!(g.beta, Expr::Float(1.0));
        assert_eq!(g.stmt_ids.len(), 1);
    }

    #[test]
    fn gemv_matches() {
        let k = matched(
            r#"
            float A[8][8]; float x[8]; float y[8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                  y[i] += A[i][j] * x[j];
            }
            "#,
        )
        .expect("matches");
        assert_eq!(k.kind(), "gemv");
    }

    #[test]
    fn conv_matches() {
        let k = matched(
            r#"
            float img[10][12]; float f[3][3]; float out[8][10];
            void kernel() {
              for (int i = 0; i < 8; i++)
                for (int j = 0; j < 10; j++)
                  for (int r = 0; r < 3; r++)
                    for (int s = 0; s < 3; s++)
                      out[i][j] += f[r][s] * img[i + r][j + s];
            }
            "#,
        )
        .expect("matches");
        let MatchedKernel::Conv(c) = k else { panic!() };
        assert_eq!((c.h, c.w, c.fh, c.fw), (10, 12, 3, 3));
    }

    #[test]
    fn partial_output_conv_is_rejected() {
        // Loops cover only half the valid output: offload would overwrite
        // pixels the program never writes.
        assert!(matched(
            r#"
            float img[10][12]; float f[3][3]; float out[4][10];
            void kernel() {
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 10; j++)
                  for (int r = 0; r < 3; r++)
                    for (int s = 0; s < 3; s++)
                      out[i][j] += f[r][s] * img[i + r][j + s];
            }
            "#,
        )
        .is_none());
    }

    #[test]
    fn stencil_is_not_a_gemm() {
        assert!(matched(
            r#"
            float A[8][8]; float B[8][8];
            void kernel() {
              for (int i = 1; i < 7; i++)
                for (int j = 1; j < 7; j++)
                  for (int k = 0; k < 8; k++)
                    B[i][j] += A[i - 1][k] * A[i + 1][k];
            }
            "#,
        )
        .is_none());
    }
}
