//! The compiler pass pipeline.
//!
//! The compiler used to be two hard-wired stages: the monolithic
//! [`LoopTactics`] pass, then an all-or-nothing run of the offload
//! dataflow graph. This module restructures it as an explicit pass
//! manager: every stage is a [`CompilerPass`] running over a shared
//! [`PassCtx`], the [`PassManager`] executes a configurable pass list,
//! and each stage returns a [`PassReport`] of what it changed — the
//! per-pass reporting surfaced by `CompiledProgram` and the figure
//! binaries.
//!
//! The default pipeline, in order:
//!
//! 1. [`DetectOffloadPass`] — Loop Tactics: match kernels on the
//!    schedule tree, fuse, consult the offload policy, and lower the
//!    accepted subtrees to `polly_cim*` runtime calls.
//! 2. [`SyncHoistPass`] — sink each `polly_cimDevToHost` past
//!    subsequent independent statements, widening the async overlap
//!    window.
//! 3. [`ElideSyncsPass`] — remove `polly_cimHostToDev` syncs whose
//!    array the host provably has not written since its previous sync.
//! 4. [`PinPlacementPass`] — capacity-aware residency placement: score
//!    each reused stationary operand with the residency-aware cost
//!    model, and pin as many as the tile grid can hold concurrently,
//!    spilling the least valuable candidates.
//!
//! Ordering constraints: detection must run first (the graph passes
//! operate on the emitted runtime calls); elision must precede pin
//! placement (a kept h2d fences a reuse window, so placement must see
//! the post-elision schedule); hoisting is independent of the other
//! graph passes but runs before them so their walks see the final
//! statement order. Adding a pass means implementing [`CompilerPass`]
//! and inserting it into the list — passes communicate only through
//! [`PassCtx`], so a new pass composes with the existing ones without
//! touching them.

use crate::graph::{OffloadGraph, PinCandidate};
use crate::pass::{LoopTactics, OffloadReport, TacticsConfig};
use crate::policy::CostModel;
use cim_accel::estimate::estimate_gemm;
use std::collections::BTreeMap;
use std::fmt;
use tdo_ir::Program;
use tdo_poly::codegen::rebuild_program;
use tdo_poly::scop::Scop;

/// Identifier of a built-in pipeline stage, for configuring pass lists
/// (ablation axes, the legacy detect-only pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassId {
    /// Loop Tactics detection, fusion, and offload lowering.
    DetectOffload,
    /// d2h sync sinking past independent statements.
    SyncHoist,
    /// Redundant h2d sync elision.
    ElideSyncs,
    /// Capacity-aware stationary-operand pin placement.
    PlacePins,
}

impl PassId {
    /// The full default pipeline, in execution order.
    pub fn all() -> &'static [PassId] {
        &[PassId::DetectOffload, PassId::SyncHoist, PassId::ElideSyncs, PassId::PlacePins]
    }

    fn instantiate(self) -> Box<dyn CompilerPass> {
        match self {
            PassId::DetectOffload => Box::new(DetectOffloadPass),
            PassId::SyncHoist => Box::new(SyncHoistPass),
            PassId::ElideSyncs => Box::new(ElideSyncsPass),
            PassId::PlacePins => Box::new(PinPlacementPass),
        }
    }
}

/// What one pass did to the program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Pass name (stable identifier, e.g. `"pin-placement"`).
    pub name: String,
    /// Whether the pass modified the program.
    pub changed: bool,
    /// One-line human summary of what happened.
    pub summary: String,
    /// Named counters (e.g. `hoisted_syncs`, `pins`, `spills`).
    pub counters: BTreeMap<String, u64>,
}

impl PassReport {
    fn new(name: &str) -> Self {
        PassReport { name: name.into(), ..PassReport::default() }
    }

    fn count(&mut self, key: &str, value: u64) {
        self.counters.insert(key.into(), value);
    }

    /// A named counter's value (0 when the pass did not record it).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<16} changed={:<5} {}", self.name, self.changed, self.summary)?;
        if !self.counters.is_empty() {
            let parts: Vec<String> =
                self.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            write!(f, " [{}]", parts.join(" "))?;
        }
        Ok(())
    }
}

/// The state a pipeline run threads through its passes.
#[derive(Debug)]
pub struct PassCtx<'a> {
    /// The IR straight out of the front-end.
    pub source: &'a Program,
    /// The extracted SCoP, when the program has one.
    pub scop: Option<&'a Scop>,
    /// The program being transformed (starts as a copy of `source`).
    pub prog: Program,
    /// The Loop Tactics report, once detection has run.
    pub offload: Option<OffloadReport>,
    /// Shared configuration (policy, fusion, cost model, device).
    pub cfg: &'a TacticsConfig,
}

impl<'a> PassCtx<'a> {
    /// A fresh context over a front-end program.
    pub fn new(source: &'a Program, scop: Option<&'a Scop>, cfg: &'a TacticsConfig) -> Self {
        PassCtx { source, scop, prog: source.clone(), offload: None, cfg }
    }

    /// Whether detection ran and offloaded at least one kernel — the
    /// graph passes are no-ops otherwise.
    pub fn any_offloaded(&self) -> bool {
        self.offload.as_ref().is_some_and(|r| r.any_offloaded())
    }
}

/// One stage of the compiler pipeline.
pub trait CompilerPass {
    /// Stable pass name (used in reports and ablation flags).
    fn name(&self) -> &'static str;
    /// One-line description of what the pass does.
    fn description(&self) -> &'static str;
    /// Transforms `ctx.prog` in place and reports what changed.
    fn run(&self, ctx: &mut PassCtx) -> PassReport;
}

/// Runs a configured list of passes in order.
pub struct PassManager {
    passes: Vec<Box<dyn CompilerPass>>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager").field("passes", &names).finish()
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::from_ids(PassId::all())
    }
}

impl PassManager {
    /// A manager over the given built-in stages, in the given order.
    pub fn from_ids(ids: &[PassId]) -> Self {
        PassManager { passes: ids.iter().map(|id| id.instantiate()).collect() }
    }

    /// The legacy pipeline: detection and lowering only, conservative
    /// point-wise schedule.
    pub fn detect_only() -> Self {
        PassManager::from_ids(&[PassId::DetectOffload])
    }

    /// Appends a custom pass to the end of the list.
    pub fn push(&mut self, pass: Box<dyn CompilerPass>) {
        self.passes.push(pass);
    }

    /// The names of the configured passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over the context, collecting one report each.
    pub fn run(&self, ctx: &mut PassCtx) -> Vec<PassReport> {
        self.passes.iter().map(|p| p.run(ctx)).collect()
    }
}

/// A [`PassReport`] for a graph pass that had nothing to do.
fn untouched(name: &str, why: &str) -> PassReport {
    PassReport { name: name.into(), changed: false, summary: why.into(), ..PassReport::default() }
}

/// Stage 1: Loop Tactics detection, fusion, and offload lowering.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectOffloadPass;

impl CompilerPass for DetectOffloadPass {
    fn name(&self) -> &'static str {
        "detect-offload"
    }

    fn description(&self) -> &'static str {
        "match GEMM/GEMV/conv kernels on the schedule tree, fuse, and lower to runtime calls"
    }

    fn run(&self, ctx: &mut PassCtx) -> PassReport {
        let mut report = PassReport::new(self.name());
        let Some(scop) = ctx.scop else {
            report.summary = "no static control part".into();
            return report;
        };
        let (tree, offload) = LoopTactics::new(ctx.cfg.clone()).run(ctx.source, scop);
        ctx.prog = rebuild_program(ctx.source, scop, &tree);
        let offloaded = offload.kernels.iter().filter(|k| k.offloaded).count();
        report.changed = offloaded > 0;
        report.summary = format!(
            "{} kernel(s) matched, {} offloaded, {} fused group(s)",
            offload.kernels.len(),
            offloaded,
            offload.fused_groups
        );
        report.count("kernels_matched", offload.kernels.len() as u64);
        report.count("kernels_offloaded", offloaded as u64);
        report.count("fused_groups", offload.fused_groups as u64);
        ctx.offload = Some(offload);
        report
    }
}

/// Stage 2: sink `polly_cimDevToHost` observation points past
/// independent statements.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncHoistPass;

impl CompilerPass for SyncHoistPass {
    fn name(&self) -> &'static str {
        "sync-hoist"
    }

    fn description(&self) -> &'static str {
        "sink d2h syncs past independent statements to widen the async overlap window"
    }

    fn run(&self, ctx: &mut PassCtx) -> PassReport {
        if !ctx.any_offloaded() {
            return untouched(self.name(), "nothing offloaded");
        }
        let mut graph = OffloadGraph::build(&ctx.prog);
        let moved = graph.hoist_syncs();
        let r = graph.report();
        ctx.prog.body = graph.into_body();
        let mut report = PassReport::new(self.name());
        report.changed = moved > 0;
        report.summary =
            format!("{} d2h sync(s) sunk, total distance {}", r.hoisted_syncs, r.hoist_distance);
        report.count("hoisted_syncs", r.hoisted_syncs as u64);
        report.count("hoist_distance", r.hoist_distance as u64);
        report
    }
}

/// Stage 3: elide `polly_cimHostToDev` syncs whose array the host has
/// provably not written since its previous sync.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElideSyncsPass;

impl CompilerPass for ElideSyncsPass {
    fn name(&self) -> &'static str {
        "elide-syncs"
    }

    fn description(&self) -> &'static str {
        "remove h2d coherence syncs for arrays the host has not written since their last sync"
    }

    fn run(&self, ctx: &mut PassCtx) -> PassReport {
        if !ctx.any_offloaded() {
            return untouched(self.name(), "nothing offloaded");
        }
        let mut graph = OffloadGraph::build(&ctx.prog);
        let elided = graph.elide_syncs();
        ctx.prog.body = graph.into_body();
        let mut report = PassReport::new(self.name());
        report.changed = elided > 0;
        report.summary = format!("{elided} redundant h2d sync(s) elided");
        report.count("elided_syncs", elided as u64);
        report
    }
}

/// The placement decision over a set of pin candidates.
#[derive(Debug, Clone, Default)]
pub struct PinPlan {
    /// Candidates accepted for pinning, in schedule order.
    pub accepted: Vec<PinCandidate>,
    /// Candidates spilled because the grid could not hold them alongside
    /// more valuable concurrent pins.
    pub spilled: Vec<PinCandidate>,
    /// Tile capacity of the grid the plan was made against.
    pub capacity_tiles: usize,
}

/// Tiles a candidate's stationary operand occupies while pinned: one
/// for a single-block operand (the only shape tile residency can keep
/// across kernels), the whole grid for anything larger or unknown.
fn footprint_tiles(c: &PinCandidate, cost: &CostModel) -> usize {
    let capacity = cost.accel.grid.0 * cost.accel.grid.1;
    match c.dims {
        Some((m, _, k)) if cost.single_block(m, k) => 1,
        _ => capacity,
    }
}

/// Predicted energy saved by pinning a candidate: the install cost
/// avoided on each of its `uses - 1` warm calls. Unknown-extent
/// candidates score zero — they are the first to spill.
fn candidate_value_pj(c: &PinCandidate, cost: &CostModel) -> f64 {
    let Some((m, n, k)) = c.dims else { return 0.0 };
    if !cost.single_block(m, k) {
        return 0.0;
    }
    let cold = estimate_gemm(&cost.accel, &cost.bus, m, n, k, false, false);
    let warm = estimate_gemm(&cost.accel, &cost.bus, m, n, k, false, true);
    (c.uses as f64 - 1.0) * (cold.energy.as_pj() - warm.energy.as_pj())
}

/// Capacity-aware pin selection: accepts candidates greedily by
/// descending predicted install saving, rejecting any whose footprint
/// would push the tiles held by *concurrently live* accepted pins over
/// the grid's capacity. Liveness is the candidate's first-to-last-use
/// interval; pins whose intervals do not overlap share tiles freely
/// (the runtime recycles dead pins' regions).
pub fn plan_pins(candidates: &[PinCandidate], cost: &CostModel) -> PinPlan {
    let capacity = cost.accel.grid.0 * cost.accel.grid.1;
    let mut scored: Vec<(f64, usize, PinCandidate)> = candidates
        .iter()
        .map(|c| (candidate_value_pj(c, cost), footprint_tiles(c, cost), *c))
        .collect();
    // Highest value first; schedule order breaks ties deterministically.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.2.first_idx.cmp(&b.2.first_idx))
    });
    let mut plan = PinPlan { capacity_tiles: capacity, ..PinPlan::default() };
    let mut held: Vec<(usize, PinCandidate)> = Vec::new(); // (tiles, candidate)
    for (_, tiles, c) in scored {
        let concurrent: usize = held
            .iter()
            .filter(|(_, a)| a.first_idx <= c.last_idx && c.first_idx <= a.last_idx)
            .map(|(t, _)| *t)
            .sum();
        if concurrent + tiles <= capacity {
            held.push((tiles, c));
            plan.accepted.push(c);
        } else {
            plan.spilled.push(c);
        }
    }
    plan.accepted.sort_by_key(|c| c.first_idx);
    plan.spilled.sort_by_key(|c| c.first_idx);
    plan
}

/// Stage 4: capacity-aware residency placement — pin the reused
/// stationary operands the grid can hold, spill the rest.
#[derive(Debug, Clone, Copy, Default)]
pub struct PinPlacementPass;

impl CompilerPass for PinPlacementPass {
    fn name(&self) -> &'static str {
        "pin-placement"
    }

    fn description(&self) -> &'static str {
        "pin reused stationary operands up to the tile grid's capacity, spilling the least valuable"
    }

    fn run(&self, ctx: &mut PassCtx) -> PassReport {
        if !ctx.any_offloaded() {
            return untouched(self.name(), "nothing offloaded");
        }
        let mut graph = OffloadGraph::build(&ctx.prog);
        let candidates = graph.pin_candidates();
        let plan = plan_pins(&candidates, &ctx.cfg.cost);
        let pins = graph.insert_pins(&plan.accepted);
        ctx.prog.body = graph.into_body();
        let mut report = PassReport::new(self.name());
        report.changed = pins > 0;
        report.summary = format!(
            "{} candidate(s): {} pinned, {} spilled (grid capacity {} tile(s))",
            candidates.len(),
            pins,
            plan.spilled.len(),
            plan.capacity_tiles
        );
        report.count("candidates", candidates.len() as u64);
        report.count("pins", pins as u64);
        report.count("spills", plan.spilled.len() as u64);
        report.count("capacity_tiles", plan.capacity_tiles as u64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_ir::printer::print_program;
    use tdo_lang::compile;
    use tdo_poly::scop::extract;

    fn run_pipeline(src: &str, cfg: &TacticsConfig, ids: &[PassId]) -> (Program, Vec<PassReport>) {
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let mut ctx = PassCtx::new(&prog, Some(&scop), cfg);
        let reports = PassManager::from_ids(ids).run(&mut ctx);
        (ctx.prog, reports)
    }

    const SHARED_A: &str = r#"
        const int N = 8;
        float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float s[N];
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                D[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            s[i] = s[i] + 1.0;
        }
    "#;

    fn unfused() -> TacticsConfig {
        TacticsConfig { fusion: false, ..TacticsConfig::default() }
    }

    #[test]
    fn full_pipeline_reproduces_the_legacy_dataflow_schedule() {
        let cfg = unfused();
        let (prog, reports) = run_pipeline(SHARED_A, &cfg, PassId::all());
        let text = print_program(&prog);
        assert_eq!(text.matches("polly_cimHostToDev(cim_A)").count(), 1, "{text}");
        assert_eq!(text.matches("polly_cimPin(cim_A)").count(), 1, "{text}");
        assert_eq!(reports.len(), 4);
        assert_eq!(
            reports.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            ["detect-offload", "sync-hoist", "elide-syncs", "pin-placement"]
        );
        assert!(reports[1].counter("hoisted_syncs") >= 1, "{}", reports[1]);
        assert!(reports[2].counter("elided_syncs") >= 2, "{}", reports[2]);
        assert_eq!(reports[3].counter("pins"), 1, "{}", reports[3]);
        assert_eq!(reports[3].counter("spills"), 0, "{}", reports[3]);
    }

    #[test]
    fn detect_only_pipeline_keeps_the_conservative_schedule() {
        let cfg = unfused();
        let (prog, reports) = run_pipeline(SHARED_A, &cfg, &[PassId::DetectOffload]);
        let text = print_program(&prog);
        assert_eq!(text.matches("polly_cimHostToDev(cim_A)").count(), 2, "{text}");
        assert!(!text.contains("polly_cimPin"), "{text}");
        assert_eq!(reports.len(), 1);
        assert!(reports[0].changed);
    }

    #[test]
    fn graph_passes_are_noops_without_offload() {
        let src = r#"
            float A[8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                A[i] = A[i] * 2.0;
            }
        "#;
        let (prog, reports) = run_pipeline(src, &TacticsConfig::default(), PassId::all());
        assert!(!print_program(&prog).contains("polly_cim"));
        assert!(reports.iter().skip(1).all(|r| !r.changed), "{reports:?}");
    }

    #[test]
    fn plan_spills_least_valuable_when_capacity_exceeded() {
        let mut cost = CostModel::default();
        cost.accel = cost.accel.with_grid(1, 1); // capacity: 1 tile
                                                 // Two single-block candidates with overlapping live intervals;
                                                 // the second is reused more, so it wins the only tile.
        let a = PinCandidate {
            array: tdo_ir::ArrayId(0),
            first_idx: 0,
            last_idx: 6,
            uses: 2,
            dims: Some((8, 8, 8)),
        };
        let b = PinCandidate {
            array: tdo_ir::ArrayId(1),
            first_idx: 1,
            last_idx: 7,
            uses: 4,
            dims: Some((8, 8, 8)),
        };
        let plan = plan_pins(&[a, b], &cost);
        assert_eq!(plan.capacity_tiles, 1);
        assert_eq!(plan.accepted, vec![b]);
        assert_eq!(plan.spilled, vec![a]);
    }

    #[test]
    fn disjoint_intervals_share_the_grid() {
        let mut cost = CostModel::default();
        cost.accel = cost.accel.with_grid(1, 1);
        let a = PinCandidate {
            array: tdo_ir::ArrayId(0),
            first_idx: 0,
            last_idx: 2,
            uses: 2,
            dims: Some((8, 8, 8)),
        };
        let b = PinCandidate {
            array: tdo_ir::ArrayId(1),
            first_idx: 3,
            last_idx: 5,
            uses: 2,
            dims: Some((8, 8, 8)),
        };
        let plan = plan_pins(&[a, b], &cost);
        assert_eq!(plan.accepted.len(), 2, "sequential pins both fit: {plan:?}");
        assert!(plan.spilled.is_empty());
    }

    #[test]
    fn multi_tile_candidates_occupy_the_full_grid() {
        let mut cost = CostModel::default();
        cost.accel = cost.accel.with_grid(2, 2);
        // A 1024x1024 operand exceeds one 256x256 tile: full-grid
        // footprint, zero predicted saving.
        let big = PinCandidate {
            array: tdo_ir::ArrayId(0),
            first_idx: 0,
            last_idx: 4,
            uses: 3,
            dims: Some((1024, 8, 1024)),
        };
        let small = PinCandidate {
            array: tdo_ir::ArrayId(1),
            first_idx: 1,
            last_idx: 5,
            uses: 2,
            dims: Some((8, 8, 8)),
        };
        let plan = plan_pins(&[big, small], &cost);
        assert_eq!(plan.accepted, vec![small], "{plan:?}");
        assert_eq!(plan.spilled, vec![big]);
    }
}
