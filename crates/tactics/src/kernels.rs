//! Matched-kernel descriptors.
//!
//! The output of the Loop Tactics matchers: enough information to emit the
//! runtime calls of Listing 1 (operands, dimensions, leading dimensions,
//! scale factors) plus the statement ids the kernel covers (for the
//! dependence checks of the fusion pass).

use tdo_ir::{ArrayId, Expr};

/// A matched GEMM kernel `C = alpha * op(A) * B + beta * C`.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmDesc {
    /// Output matrix.
    pub c: ArrayId,
    /// Left operand.
    pub a: ArrayId,
    /// Right operand.
    pub b: ArrayId,
    /// Rows of `C`.
    pub m: usize,
    /// Columns of `C`.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Leading dimension of `A`.
    pub lda: usize,
    /// Leading dimension of `B`.
    pub ldb: usize,
    /// Leading dimension of `C`.
    pub ldc: usize,
    /// Whether `op(A) = A^T`.
    pub trans_a: bool,
    /// Scale on the product (an expression: scalar load or literal).
    pub alpha: Expr,
    /// Scale on the accumulator.
    pub beta: Expr,
    /// SCoP statements covered by this kernel.
    pub stmt_ids: Vec<usize>,
}

/// A matched GEMV kernel `y = alpha * op(A) * x + beta * y`.
#[derive(Debug, Clone, PartialEq)]
pub struct GemvDesc {
    /// Output vector.
    pub y: ArrayId,
    /// Matrix operand.
    pub a: ArrayId,
    /// Input vector.
    pub x: ArrayId,
    /// Output length.
    pub m: usize,
    /// Input length.
    pub k: usize,
    /// Leading dimension of `A`.
    pub lda: usize,
    /// Whether `op(A) = A^T`.
    pub trans_a: bool,
    /// Scale on the product.
    pub alpha: Expr,
    /// Scale on the accumulator.
    pub beta: Expr,
    /// SCoP statements covered.
    pub stmt_ids: Vec<usize>,
}

/// A matched valid-padding 2-D convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvDesc {
    /// Output image (`(h-fh+1) x (w-fw+1)`).
    pub out: ArrayId,
    /// Input image (`h x w`).
    pub img: ArrayId,
    /// Filter (`fh x fw`).
    pub filt: ArrayId,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Filter height.
    pub fh: usize,
    /// Filter width.
    pub fw: usize,
    /// SCoP statements covered.
    pub stmt_ids: Vec<usize>,
}

/// Any kernel the Loop Tactics matchers recognize.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchedKernel {
    /// Matrix-matrix multiplication.
    Gemm(GemmDesc),
    /// Matrix-vector multiplication.
    Gemv(GemvDesc),
    /// 2-D convolution.
    Conv(ConvDesc),
}

impl MatchedKernel {
    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            MatchedKernel::Gemm(_) => "gemm",
            MatchedKernel::Gemv(_) => "gemv",
            MatchedKernel::Conv(_) => "conv2d",
        }
    }

    /// Statement ids covered by the kernel.
    pub fn stmt_ids(&self) -> &[usize] {
        match self {
            MatchedKernel::Gemm(g) => &g.stmt_ids,
            MatchedKernel::Gemv(g) => &g.stmt_ids,
            MatchedKernel::Conv(c) => &c.stmt_ids,
        }
    }

    /// Arrays read by the kernel (operands; scale scalars excluded).
    pub fn arrays_read(&self) -> Vec<ArrayId> {
        match self {
            MatchedKernel::Gemm(g) => vec![g.a, g.b, g.c],
            MatchedKernel::Gemv(g) => vec![g.a, g.x, g.y],
            MatchedKernel::Conv(c) => vec![c.img, c.filt],
        }
    }

    /// Arrays written by the kernel.
    pub fn arrays_written(&self) -> Vec<ArrayId> {
        match self {
            MatchedKernel::Gemm(g) => vec![g.c],
            MatchedKernel::Gemv(g) => vec![g.y],
            MatchedKernel::Conv(c) => vec![c.out],
        }
    }

    /// Multiply-accumulate count of the kernel.
    pub fn macs(&self) -> u64 {
        match self {
            MatchedKernel::Gemm(g) => (g.m * g.n * g.k) as u64,
            MatchedKernel::Gemv(g) => (g.m * g.k) as u64,
            MatchedKernel::Conv(c) => ((c.h - c.fh + 1) * (c.w - c.fw + 1) * c.fh * c.fw) as u64,
        }
    }

    /// A human-readable dimension summary.
    pub fn dims_summary(&self) -> String {
        match self {
            MatchedKernel::Gemm(g) => format!("m={} n={} k={}", g.m, g.n, g.k),
            MatchedKernel::Gemv(g) => format!("m={} k={}", g.m, g.k),
            MatchedKernel::Conv(c) => {
                format!("img={}x{} filt={}x{}", c.h, c.w, c.fh, c.fw)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm() -> MatchedKernel {
        MatchedKernel::Gemm(GemmDesc {
            c: ArrayId(0),
            a: ArrayId(1),
            b: ArrayId(2),
            m: 4,
            n: 5,
            k: 6,
            lda: 6,
            ldb: 5,
            ldc: 5,
            trans_a: false,
            alpha: Expr::Float(1.0),
            beta: Expr::Float(0.0),
            stmt_ids: vec![0, 1],
        })
    }

    #[test]
    fn summaries() {
        let k = gemm();
        assert_eq!(k.kind(), "gemm");
        assert_eq!(k.macs(), 120);
        assert_eq!(k.dims_summary(), "m=4 n=5 k=6");
        assert_eq!(k.arrays_written(), vec![ArrayId(0)]);
        assert_eq!(k.stmt_ids(), &[0, 1]);
    }

    #[test]
    fn conv_macs() {
        let k = MatchedKernel::Conv(ConvDesc {
            out: ArrayId(0),
            img: ArrayId(1),
            filt: ArrayId(2),
            h: 6,
            w: 6,
            fh: 3,
            fw: 3,
            stmt_ids: vec![0],
        });
        assert_eq!(k.macs(), 16 * 9);
    }
}
