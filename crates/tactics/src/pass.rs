//! The Loop Tactics pass: detect, fuse, decide, rewrite.
//!
//! "Loop Tactics' passes consume schedule trees and output a CIM-optimized
//! schedule" (Section III-A). The pass walks the schedule tree, matches
//! offloadable kernels, groups adjacent independent same-shape GEMMs into
//! batched calls (the fusion of Listing 2), consults the offload policy,
//! and replaces accepted subtrees with extension nodes carrying the
//! runtime calls of Listing 1. A prologue (`polly_cimInit` +
//! `polly_cimMalloc`) is prepended when anything was offloaded.

use crate::codegen::{batched_calls, gemm_view_call, kernel_calls, prologue};
use crate::detect::match_kernel;
use crate::kernels::{GemmDesc, MatchedKernel};
use crate::policy::{CostModel, OffloadPolicy};
use std::collections::BTreeMap;
use std::fmt;
use tdo_ir::{ArrayId, Expr, Program};
use tdo_poly::deps::kernels_independent;
use tdo_poly::scop::Scop;
use tdo_poly::transforms::{prepend_extension, replace_subtree, tile};
use tdo_poly::tree::ScheduleTree;

/// Configuration of the Loop Tactics pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TacticsConfig {
    /// Offload decision policy.
    pub policy: OffloadPolicy,
    /// Enable kernel fusion into batched calls.
    pub fusion: bool,
    /// Cost model (used by [`OffloadPolicy::Selective`]).
    pub cost: CostModel,
    /// Device number passed to `polly_cimInit`.
    pub device: u32,
    /// Price [`OffloadPolicy::Selective`] decisions assuming the
    /// pin-placement pass keeps reused stationary operands resident, so
    /// a run of kernels sharing one pays its crossbar install once
    /// ([`CostModel::decide_reused`]). Disable when running the legacy
    /// detect-only pipeline, where every call installs cold.
    pub assume_residency: bool,
}

impl Default for TacticsConfig {
    fn default() -> Self {
        TacticsConfig {
            policy: OffloadPolicy::Always,
            fusion: true,
            cost: CostModel::default(),
            device: 0,
            assume_residency: true,
        }
    }
}

/// Per-kernel report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel kind (`gemm`, `gemv`, `conv2d`).
    pub kind: String,
    /// Dimension summary.
    pub dims: String,
    /// Whether it was offloaded.
    pub offloaded: bool,
    /// Whether it was fused into a batched call.
    pub fused: bool,
    /// Decision rationale.
    pub reason: String,
}

/// Result of running the pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OffloadReport {
    /// One entry per matched kernel, in schedule order.
    pub kernels: Vec<KernelReport>,
    /// Arrays that live in device (CMA) buffers.
    pub offloaded_arrays: Vec<ArrayId>,
    /// Number of batched groups formed by fusion.
    pub fused_groups: usize,
}

impl OffloadReport {
    /// Whether anything was offloaded.
    pub fn any_offloaded(&self) -> bool {
        self.kernels.iter().any(|k| k.offloaded)
    }
}

impl fmt::Display for OffloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loop-tactics report: {} kernel(s) matched", self.kernels.len())?;
        for k in &self.kernels {
            writeln!(
                f,
                "  {:<7} {:<28} offloaded={} fused={} ({})",
                k.kind, k.dims, k.offloaded, k.fused, k.reason
            )?;
        }
        writeln!(f, "  fused groups: {}", self.fused_groups)
    }
}

/// The Loop Tactics pass.
#[derive(Debug, Clone, Default)]
pub struct LoopTactics {
    cfg: TacticsConfig,
}

impl LoopTactics {
    /// Creates the pass with a configuration.
    pub fn new(cfg: TacticsConfig) -> Self {
        LoopTactics { cfg }
    }

    /// Runs detection + rewriting on a schedule tree, returning the
    /// CIM-optimized tree and a report.
    pub fn run(&self, prog: &Program, scop: &Scop) -> (ScheduleTree, OffloadReport) {
        let mut report = OffloadReport::default();
        let tree = self.rewrite(prog, scop, &scop.tree, &mut report);
        let tree = if report.any_offloaded() {
            prepend_extension(&tree, prologue(self.cfg.device, &report.offloaded_arrays))
        } else {
            tree
        };
        (tree, report)
    }

    /// Policy decision for a kernel predicted to be one of `reuse`
    /// consecutive calls sharing its stationary operand.
    fn decide(&self, k: &MatchedKernel, reuse: usize) -> (bool, String) {
        match self.cfg.policy {
            OffloadPolicy::Always => (true, "policy=always".into()),
            OffloadPolicy::Selective => {
                let reuse = if self.cfg.assume_residency { reuse } else { 1 };
                let d = self.cfg.cost.decide_reused(k, reuse);
                let amortized =
                    if reuse > 1 { format!(" over {reuse} pinned calls") } else { String::new() };
                let reason = format!(
                    "cost model{}: cim {:.1} uJ vs host {:.1} uJ",
                    amortized,
                    d.cim_pj * 1e-6,
                    d.host_pj * 1e-6
                );
                (d.offload, reason)
            }
        }
    }

    fn note_arrays(&self, k: &MatchedKernel, report: &mut OffloadReport) {
        for a in k.arrays_read().into_iter().chain(k.arrays_written()) {
            if !report.offloaded_arrays.contains(&a) {
                report.offloaded_arrays.push(a);
            }
        }
    }

    fn offload_one(
        &self,
        k: &MatchedKernel,
        report: &mut OffloadReport,
        reason: String,
    ) -> ScheduleTree {
        self.note_arrays(k, report);
        report.kernels.push(KernelReport {
            kind: k.kind().into(),
            dims: k.dims_summary(),
            offloaded: true,
            fused: false,
            reason,
        });
        ScheduleTree::Extension { stmts: kernel_calls(k) }
    }

    fn skip_one(&self, k: &MatchedKernel, report: &mut OffloadReport, reason: String) {
        report.kernels.push(KernelReport {
            kind: k.kind().into(),
            dims: k.dims_summary(),
            offloaded: false,
            fused: false,
            reason,
        });
    }

    fn rewrite(
        &self,
        prog: &Program,
        scop: &Scop,
        tree: &ScheduleTree,
        report: &mut OffloadReport,
    ) -> ScheduleTree {
        if let Some(k) = match_kernel(prog, scop, tree) {
            let (offload, reason) = self.decide(&k, 1);
            if offload {
                return self.offload_one(&k, report, reason);
            }
            self.skip_one(&k, report, reason);
            return tree.clone();
        }
        match tree {
            ScheduleTree::Sequence { children } => {
                self.rewrite_sequence(prog, scop, children, report)
            }
            ScheduleTree::Band { dim, child } => ScheduleTree::Band {
                dim: dim.clone(),
                child: Box::new(self.rewrite(prog, scop, child, report)),
            },
            ScheduleTree::Mark { name, child } => ScheduleTree::Mark {
                name: name.clone(),
                child: Box::new(self.rewrite(prog, scop, child, report)),
            },
            ScheduleTree::Leaf { .. } | ScheduleTree::Extension { .. } => tree.clone(),
        }
    }

    fn rewrite_sequence(
        &self,
        prog: &Program,
        scop: &Scop,
        children: &[ScheduleTree],
        report: &mut OffloadReport,
    ) -> ScheduleTree {
        // Match every child first so fusion can look at neighbours.
        let matches: Vec<Option<MatchedKernel>> =
            children.iter().map(|c| match_kernel(prog, scop, c)).collect();
        // Predicted stationary-operand reuse per kernel, so Selective can
        // amortize the pinned install over the run it belongs to.
        let reuse = predicted_reuse(&matches);
        let mut out: Vec<ScheduleTree> = Vec::new();
        let mut i = 0;
        while i < children.len() {
            let Some(k) = &matches[i] else {
                out.push(self.rewrite(prog, scop, &children[i], report));
                i += 1;
                continue;
            };
            let (offload, reason) = self.decide(k, reuse[i]);
            if !offload {
                self.skip_one(k, report, reason);
                out.push(children[i].clone());
                i += 1;
                continue;
            }
            // Try to grow a fused group of same-shape independent GEMMs.
            if self.cfg.fusion {
                if let MatchedKernel::Gemm(g0) = k {
                    let mut group: Vec<&GemmDesc> = vec![g0];
                    let mut j = i + 1;
                    while j < children.len() {
                        let Some(MatchedKernel::Gemm(gj)) = &matches[j] else { break };
                        if !same_shape(g0, gj) {
                            break;
                        }
                        // Y must be independent of every kernel already in
                        // the group (Listing 2's legality rule).
                        let xs: Vec<&tdo_poly::scop::ScopStmt> = group
                            .iter()
                            .flat_map(|g| g.stmt_ids.iter().map(|id| &scop.stmts[*id]))
                            .collect();
                        let ys: Vec<&tdo_poly::scop::ScopStmt> =
                            gj.stmt_ids.iter().map(|id| &scop.stmts[*id]).collect();
                        if !kernels_independent(&xs, &ys) {
                            break;
                        }
                        let (off_j, _) =
                            self.decide(&matches[j].clone().expect("matched"), reuse[j]);
                        if !off_j {
                            break;
                        }
                        group.push(gj);
                        j += 1;
                    }
                    if group.len() > 1 {
                        for g in &group {
                            self.note_arrays(&MatchedKernel::Gemm((*g).clone()), report);
                            report.kernels.push(KernelReport {
                                kind: "gemm".into(),
                                dims: format!("m={} n={} k={}", g.m, g.n, g.k),
                                offloaded: true,
                                fused: true,
                                reason: format!("fused into batch of {}", group.len()),
                            });
                        }
                        report.fused_groups += 1;
                        out.push(ScheduleTree::Extension { stmts: batched_calls(&group) });
                        i = j;
                        continue;
                    }
                }
            }
            out.push(self.offload_one(k, report, reason));
            i += 1;
        }
        if out.len() == 1 {
            out.pop().expect("len 1")
        } else {
            ScheduleTree::Sequence { children: out }
        }
    }
}

/// The stationary operand a kernel's run of reuse is keyed on, when the
/// runtime can keep one resident.
fn stationary_of(k: &MatchedKernel) -> Option<ArrayId> {
    match k {
        MatchedKernel::Gemm(g) => Some(g.a),
        MatchedKernel::Gemv(g) => Some(g.a),
        MatchedKernel::Conv(_) => None,
    }
}

/// Predicted reuse of each matched kernel's stationary operand within a
/// sequence: the length of the run of consecutive kernels sharing it
/// with no intervening writer. Mirrors the window logic of the
/// pin-placement pass conservatively at the schedule-tree level —
/// unmatched children (host code) are barriers that end every run, and
/// a kernel writing an array ends that array's run.
fn predicted_reuse(matches: &[Option<MatchedKernel>]) -> Vec<usize> {
    fn flush(idxs: Vec<usize>, reuse: &mut [usize]) {
        let n = idxs.len().max(1);
        for i in idxs {
            reuse[i] = n;
        }
    }
    let mut reuse = vec![1usize; matches.len()];
    let mut runs: BTreeMap<ArrayId, Vec<usize>> = BTreeMap::new();
    for (i, m) in matches.iter().enumerate() {
        let Some(k) = m else {
            // Host code may write anything: end every open run.
            for (_, idxs) in std::mem::take(&mut runs) {
                flush(idxs, &mut reuse);
            }
            continue;
        };
        if let Some(a) = stationary_of(k) {
            runs.entry(a).or_default().push(i);
        }
        for w in k.arrays_written() {
            // A kernel does not clobber its own stationary operand.
            if stationary_of(k) == Some(w) {
                continue;
            }
            if let Some(idxs) = runs.remove(&w) {
                flush(idxs, &mut reuse);
            }
        }
    }
    for (_, idxs) in runs {
        flush(idxs, &mut reuse);
    }
    reuse
}

fn same_shape(a: &GemmDesc, b: &GemmDesc) -> bool {
    a.m == b.m
        && a.n == b.n
        && a.k == b.k
        && a.lda == b.lda
        && a.ldb == b.ldb
        && a.ldc == b.ldc
        && a.trans_a == b.trans_a
        && a.alpha == b.alpha
        && a.beta == b.beta
}

/// Compiler-side tiling of an oversized GEMM (Listing 3): tiles the
/// `[i, j, k]` nest with crossbar-sized tiles, orders the tile loops
/// `[ii, kk, jj]` so the `A` tile stays resident across `jj`, and replaces
/// the point loops with a `polly_cimBlasSGemmView` call on the tile.
///
/// Only pure accumulation kernels (`beta == 1`, matched without an init
/// statement) qualify — every tile invocation accumulates into `C`.
/// Returns `None` when the kernel does not qualify or already fits.
pub fn tile_oversized_gemm(
    prog: &mut Program,
    tree: &ScheduleTree,
    g: &GemmDesc,
    crossbar_rows: usize,
    crossbar_cols: usize,
) -> Option<ScheduleTree> {
    if g.trans_a || g.beta != Expr::Float(1.0) {
        return None;
    }
    if g.m <= crossbar_cols && g.k <= crossbar_rows {
        return None; // already fits
    }
    let tm = crossbar_cols.min(g.m) as i64;
    let tn = crossbar_cols.min(g.n) as i64;
    let tk = crossbar_rows.min(g.k) as i64;
    // Tile loop order [ii, kk, jj] (Listing 3).
    let tiled = tile(prog, tree, &[tm, tn, tk], &[0, 2, 1])?;
    // Identify the tile variables from the generated bands: the chain is
    // already in permuted order [ii, kk, jj].
    let (dims, _) = tiled.band_chain();
    let (ii, kk, jj) = (dims[0].var, dims[1].var, dims[2].var);
    let mk_extent = |tile_var, size: i64, total: usize| {
        Expr::sub(
            Expr::min(Expr::add(Expr::Var(tile_var), Expr::Int(size)), Expr::Int(total as i64)),
            Expr::Var(tile_var),
        )
    };
    let call = gemm_view_call(
        g,
        mk_extent(ii, tm, g.m),
        mk_extent(jj, tn, g.n),
        mk_extent(kk, tk, g.k),
        (Expr::Var(ii), Expr::Var(kk)),
        (Expr::Var(kk), Expr::Var(jj)),
        (Expr::Var(ii), Expr::Var(jj)),
    );
    Some(replace_subtree(
        &tiled,
        &|t| matches!(t, ScheduleTree::Mark { name, .. } if name == "point"),
        &mut |_| ScheduleTree::Extension { stmts: vec![call.clone()] },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_ir::interp::{run, PureBackend};
    use tdo_ir::printer::print_program;
    use tdo_lang::compile;
    use tdo_poly::codegen::rebuild_program;
    use tdo_poly::scop::extract;

    const GEMM_SRC: &str = r#"
        const int N = 16;
        float A[N][N]; float B[N][N]; float C[N][N];
        float alpha = 1.5; float beta = 0.5;
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++) {
              C[i][j] = beta * C[i][j];
              for (int k = 0; k < N; k++)
                C[i][j] += alpha * A[i][k] * B[k][j];
            }
        }
    "#;

    fn offload(src: &str, cfg: TacticsConfig) -> (Program, OffloadReport, Program) {
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let pass = LoopTactics::new(cfg);
        let (tree, report) = pass.run(&prog, &scop);
        let new_prog = rebuild_program(&prog, &scop, &tree);
        (prog, report, new_prog)
    }

    #[test]
    fn gemm_is_replaced_by_listing1_calls() {
        let (_, report, new_prog) = offload(GEMM_SRC, TacticsConfig::default());
        assert!(report.any_offloaded());
        let text = print_program(&new_prog);
        assert!(text.contains("polly_cimInit(0);"), "{text}");
        assert!(text.contains("polly_cimMalloc(cim_C);"), "{text}");
        assert!(text.contains("polly_cimBlasSGemm(0, 0, 16, 16, 16, alpha, cim_A, 16, cim_B, 16, beta, cim_C, 16);"), "{text}");
        assert!(text.contains("polly_cimDevToHost(cim_C);"), "{text}");
        // No loops remain.
        assert!(!text.contains("for ("), "{text}");
    }

    #[test]
    fn offloaded_program_is_semantically_equal() {
        let (prog, _, new_prog) = offload(GEMM_SRC, TacticsConfig::default());
        let init = |p: &Program, be: &mut PureBackend| {
            for (i, d) in p.arrays.iter().enumerate() {
                if d.dims.is_empty() {
                    continue;
                }
                let data: Vec<f32> =
                    (0..d.elem_count()).map(|j| ((i * 13 + j * 5) % 11) as f32 - 5.0).collect();
                be.set_array(tdo_ir::ArrayId(i), &data);
            }
        };
        let mut b1 = PureBackend::for_program(&prog);
        init(&prog, &mut b1);
        run(&prog, &mut b1).expect("host runs");
        let mut b2 = PureBackend::for_program(&new_prog);
        init(&new_prog, &mut b2);
        run(&new_prog, &mut b2).expect("offloaded runs");
        let c = prog.array_by_name("C").expect("C");
        let (r1, r2) = (b1.array(c), b2.array(c));
        for (x, y) in r1.iter().zip(r2) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    const LISTING2_SRC: &str = r#"
        const int N = 8;
        float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float E[N][N];
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                D[i][j] += A[i][k] * E[k][j];
        }
    "#;

    #[test]
    fn listing2_kernels_fuse_into_batched_call() {
        let (_, report, new_prog) = offload(LISTING2_SRC, TacticsConfig::default());
        assert_eq!(report.fused_groups, 1);
        assert_eq!(report.kernels.len(), 2);
        assert!(report.kernels.iter().all(|k| k.fused && k.offloaded));
        let text = print_program(&new_prog);
        assert!(text.contains("polly_cimBlasGemmBatched"), "{text}");
        assert!(!text.contains("polly_cimBlasSGemm("), "{text}");
    }

    #[test]
    fn inference_chain_fuses_per_layer_with_host_activations_between() {
        // The workloads crate's GEMM-chain shape in miniature: two
        // layers of two micro-batches each, separated by pointwise
        // activation nests. Each layer's batch must fuse into one
        // batched call; the activations must stay host loops and fence
        // fusion across the layer boundary.
        let src = r#"
            const int R = 4; const int D = 4;
            float X0[R][D]; float X1[R][D];
            float W1[D][D]; float W2[D][D];
            float H1_0[R][D]; float H1_1[R][D]; float H2_0[R][D]; float H2_1[R][D];
            void kernel() {
              for (int i = 0; i < R; i++)
                for (int j = 0; j < D; j++) {
                  H1_0[i][j] = 0.0;
                  for (int k = 0; k < D; k++)
                    H1_0[i][j] += X0[i][k] * W1[k][j];
                }
              for (int i = 0; i < R; i++)
                for (int j = 0; j < D; j++) {
                  H1_1[i][j] = 0.0;
                  for (int k = 0; k < D; k++)
                    H1_1[i][j] += X1[i][k] * W1[k][j];
                }
              for (int i = 0; i < R; i++)
                for (int j = 0; j < D; j++)
                  H1_0[i][j] = H1_0[i][j] * 0.0625;
              for (int i = 0; i < R; i++)
                for (int j = 0; j < D; j++)
                  H1_1[i][j] = H1_1[i][j] * 0.0625;
              for (int i = 0; i < R; i++)
                for (int j = 0; j < D; j++) {
                  H2_0[i][j] = 0.0;
                  for (int k = 0; k < D; k++)
                    H2_0[i][j] += H1_0[i][k] * W2[k][j];
                }
              for (int i = 0; i < R; i++)
                for (int j = 0; j < D; j++) {
                  H2_1[i][j] = 0.0;
                  for (int k = 0; k < D; k++)
                    H2_1[i][j] += H1_1[i][k] * W2[k][j];
                }
            }
        "#;
        let (_, report, new_prog) = offload(src, TacticsConfig::default());
        assert_eq!(report.fused_groups, 2, "{report}");
        assert_eq!(report.kernels.len(), 4);
        assert!(report.kernels.iter().all(|k| k.offloaded && k.fused), "{report}");
        let text = print_program(&new_prog);
        assert_eq!(text.matches("polly_cimBlasGemmBatched").count(), 2, "{text}");
        assert!(!text.contains("polly_cimBlasSGemm("), "{text}");
        // Activations survive as host loops between the two batched calls.
        assert!(text.contains("H1_0[i][j] * 0.0625"), "{text}");
        let first_batched = text.find("polly_cimBlasGemmBatched").expect("layer 1");
        let act = text.find("* 0.0625").expect("activation");
        let last_batched = text.rfind("polly_cimBlasGemmBatched").expect("layer 2");
        assert!(first_batched < act && act < last_batched, "{text}");
    }

    #[test]
    fn fusion_respects_dependences() {
        let src =
            LISTING2_SRC.replace("D[i][j] += A[i][k] * E[k][j];", "D[i][j] += C[i][k] * E[k][j];");
        let (_, report, new_prog) = offload(&src, TacticsConfig::default());
        assert_eq!(report.fused_groups, 0);
        let text = print_program(&new_prog);
        // Two separate calls, still offloaded.
        assert_eq!(text.matches("polly_cimBlasSGemm(").count(), 2);
    }

    #[test]
    fn fusion_can_be_disabled() {
        let cfg = TacticsConfig { fusion: false, ..TacticsConfig::default() };
        let (_, report, new_prog) = offload(LISTING2_SRC, cfg);
        assert_eq!(report.fused_groups, 0);
        assert_eq!(print_program(&new_prog).matches("polly_cimBlasSGemm(").count(), 2);
    }

    #[test]
    fn selective_policy_keeps_tiny_kernels_on_host() {
        let src = r#"
            float A[4][4]; float x[4]; float y[4];
            void kernel() {
              for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++)
                  y[i] += A[i][j] * x[j];
            }
        "#;
        let cfg = TacticsConfig { policy: OffloadPolicy::Selective, ..TacticsConfig::default() };
        let (_, report, new_prog) = offload(src, cfg);
        assert_eq!(report.kernels.len(), 1);
        assert!(!report.kernels[0].offloaded);
        let text = print_program(&new_prog);
        assert!(!text.contains("polly_cim"), "{text}");
        assert!(text.contains("for ("));
    }

    #[test]
    fn non_matching_code_is_untouched() {
        let src = r#"
            float A[8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                A[i] = A[i] * 2.0;
            }
        "#;
        let (_, report, new_prog) = offload(src, TacticsConfig::default());
        assert!(report.kernels.is_empty());
        assert!(!print_program(&new_prog).contains("polly_cim"));
    }

    #[test]
    fn mixed_program_offloads_only_kernels() {
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N]; float s[N];
            void kernel() {
              for (int i = 0; i < N; i++)
                s[i] = s[i] + 1.0;
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
            }
        "#;
        let (_, report, new_prog) = offload(src, TacticsConfig::default());
        assert_eq!(report.kernels.len(), 1);
        let text = print_program(&new_prog);
        assert!(text.contains("s[i] = s[i] + 1.0;"));
        assert!(text.contains("polly_cimBlasSGemm"));
    }

    #[test]
    fn tiled_oversized_gemm_emits_view_calls_and_preserves_semantics() {
        let src = r#"
            const int N = 12;
            float A[N][N]; float B[N][N]; float C[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
            }
        "#;
        let mut prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let Some(MatchedKernel::Gemm(g)) = match_kernel(&prog, &scop, &scop.tree) else {
            panic!("gemm should match")
        };
        // Pretend a 5x5 crossbar so 12 forces tiling with partial tiles.
        let tiled = tile_oversized_gemm(&mut prog, &scop.tree, &g, 5, 5).expect("tiles");
        let tiled_prog = rebuild_program(&prog, &scop, &tiled);
        let text = print_program(&tiled_prog);
        assert!(text.contains("polly_cimBlasSGemmView"), "{text}");
        assert!(text.contains("for (int ii = 0; ii < 12; ii += 5)"), "{text}");
        // Semantics: compare against direct host execution.
        let init = |p: &Program, be: &mut PureBackend| {
            for (i, d) in p.arrays.iter().enumerate() {
                let data: Vec<f32> =
                    (0..d.elem_count()).map(|j| ((i * 7 + j * 3) % 9) as f32 - 4.0).collect();
                be.set_array(tdo_ir::ArrayId(i), &data);
            }
        };
        let base = compile(src).expect("compiles");
        let mut b1 = PureBackend::for_program(&base);
        init(&base, &mut b1);
        run(&base, &mut b1).expect("runs");
        let mut b2 = PureBackend::for_program(&tiled_prog);
        init(&tiled_prog, &mut b2);
        run(&tiled_prog, &mut b2).expect("runs");
        let c = base.array_by_name("C").expect("C");
        for (x, y) in b1.array(c).iter().zip(b2.array(c)) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }
}
