//! Runtime-call generation (the device-mapping rewrite of Listing 1).
//!
//! For each offloaded kernel Loop Tactics emits: coherence transfers for
//! the operands (`polly_cimHostToDev`), the BLAS-style kernel call with
//! "Blas parameters (i.e., values of alpha or leading dimensions)
//! automatically collected or computed", and the result transfer back
//! (`polly_cimDevToHost`). One prologue per program carries
//! `polly_cimInit` and the `polly_cimMalloc` calls.

use crate::kernels::{ConvDesc, GemmDesc, GemvDesc, MatchedKernel};
use tdo_ir::{ArrayId, CallArg, CallStmt, Expr, Stmt};

fn call(callee: &str, args: Vec<CallArg>) -> Stmt {
    Stmt::Call(CallStmt { callee: callee.into(), args })
}

fn int(v: usize) -> CallArg {
    CallArg::Value(Expr::Int(v as i64))
}

fn flag(v: bool) -> CallArg {
    CallArg::Value(Expr::Int(v as i64))
}

fn val(e: &Expr) -> CallArg {
    CallArg::Value(e.clone())
}

fn arr(a: ArrayId) -> CallArg {
    CallArg::Array(a)
}

/// The program prologue: device init plus one `polly_cimMalloc` per array
/// touched by any offloaded kernel (Listing 1, lines 2-7).
pub fn prologue(device: u32, arrays: &[ArrayId]) -> Vec<Stmt> {
    let mut out = vec![call("polly_cimInit", vec![int(device as usize)])];
    for a in arrays {
        out.push(call("polly_cimMalloc", vec![arr(*a)]));
    }
    out
}

/// Calls realizing one matched kernel: input transfers, the kernel call,
/// output transfer.
pub fn kernel_calls(k: &MatchedKernel) -> Vec<Stmt> {
    let mut out = Vec::new();
    for a in k.arrays_read() {
        out.push(call("polly_cimHostToDev", vec![arr(a)]));
    }
    out.push(match k {
        MatchedKernel::Gemm(g) => gemm_call(g),
        MatchedKernel::Gemv(g) => gemv_call(g),
        MatchedKernel::Conv(c) => conv_call(c),
    });
    for a in k.arrays_written() {
        out.push(call("polly_cimDevToHost", vec![arr(a)]));
    }
    out
}

fn gemm_call(g: &GemmDesc) -> Stmt {
    call(
        "polly_cimBlasSGemm",
        vec![
            flag(g.trans_a),
            flag(false),
            int(g.m),
            int(g.n),
            int(g.k),
            val(&g.alpha),
            arr(g.a),
            int(g.lda),
            arr(g.b),
            int(g.ldb),
            val(&g.beta),
            arr(g.c),
            int(g.ldc),
        ],
    )
}

fn gemv_call(g: &GemvDesc) -> Stmt {
    call(
        "polly_cimBlasSGemv",
        vec![
            flag(g.trans_a),
            int(g.m),
            int(g.k),
            val(&g.alpha),
            arr(g.a),
            int(g.lda),
            arr(g.x),
            val(&g.beta),
            arr(g.y),
        ],
    )
}

fn conv_call(c: &ConvDesc) -> Stmt {
    call(
        "polly_cimConv2d",
        vec![arr(c.img), int(c.h), int(c.w), arr(c.filt), int(c.fh), int(c.fw), arr(c.out)],
    )
}

/// Calls realizing a fused group as one batched invocation (Listing 2:
/// "The GEMMs will be replaced by a single polly_cimBlasGemmBatched
/// instead of two calls to polly_cimBlasSGemm").
pub fn batched_calls(group: &[&GemmDesc]) -> Vec<Stmt> {
    let t = group[0];
    let mut out = Vec::new();
    for g in group {
        for a in [g.a, g.b, g.c] {
            out.push(call("polly_cimHostToDev", vec![arr(a)]));
        }
    }
    let mut args = vec![
        flag(t.trans_a),
        flag(false),
        int(t.m),
        int(t.n),
        int(t.k),
        val(&t.alpha),
        int(t.lda),
        int(t.ldb),
        val(&t.beta),
        int(t.ldc),
        int(group.len()),
    ];
    for g in group {
        args.push(arr(g.a));
        args.push(arr(g.b));
        args.push(arr(g.c));
    }
    out.push(call("polly_cimBlasGemmBatched", args));
    for g in group {
        out.push(call("polly_cimDevToHost", vec![arr(g.c)]));
    }
    out
}

/// The per-tile view call used inside compiler-tiled loops (Listing 3):
/// dimensions and origins are expressions over the tile variables.
#[allow(clippy::too_many_arguments)]
pub fn gemm_view_call(
    g: &GemmDesc,
    m: Expr,
    n: Expr,
    k: Expr,
    a_off: (Expr, Expr),
    b_off: (Expr, Expr),
    c_off: (Expr, Expr),
) -> Stmt {
    call(
        "polly_cimBlasSGemmView",
        vec![
            flag(g.trans_a),
            flag(false),
            CallArg::Value(m),
            CallArg::Value(n),
            CallArg::Value(k),
            val(&g.alpha),
            arr(g.a),
            int(g.lda),
            CallArg::Value(a_off.0),
            CallArg::Value(a_off.1),
            arr(g.b),
            int(g.ldb),
            CallArg::Value(b_off.0),
            CallArg::Value(b_off.1),
            val(&g.beta),
            arr(g.c),
            int(g.ldc),
            CallArg::Value(c_off.0),
            CallArg::Value(c_off.1),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_desc() -> GemmDesc {
        GemmDesc {
            c: ArrayId(0),
            a: ArrayId(1),
            b: ArrayId(2),
            m: 4,
            n: 4,
            k: 4,
            lda: 4,
            ldb: 4,
            ldc: 4,
            trans_a: false,
            alpha: Expr::Float(1.0),
            beta: Expr::Float(0.0),
            stmt_ids: vec![0],
        }
    }

    #[test]
    fn kernel_calls_have_listing1_structure() {
        let stmts = kernel_calls(&MatchedKernel::Gemm(gemm_desc()));
        let callees: Vec<&str> = stmts
            .iter()
            .map(|s| match s {
                Stmt::Call(c) => c.callee.as_str(),
                _ => panic!("expected call"),
            })
            .collect();
        assert_eq!(
            callees,
            vec![
                "polly_cimHostToDev",
                "polly_cimHostToDev",
                "polly_cimHostToDev",
                "polly_cimBlasSGemm",
                "polly_cimDevToHost"
            ]
        );
    }

    #[test]
    fn prologue_structure() {
        let stmts = prologue(0, &[ArrayId(0), ArrayId(1)]);
        assert_eq!(stmts.len(), 3);
        let Stmt::Call(c) = &stmts[0] else { panic!() };
        assert_eq!(c.callee, "polly_cimInit");
    }

    #[test]
    fn batched_call_carries_all_problems() {
        let g1 = gemm_desc();
        let g2 = GemmDesc { b: ArrayId(3), c: ArrayId(4), ..gemm_desc() };
        let stmts = batched_calls(&[&g1, &g2]);
        let Some(Stmt::Call(batched)) = stmts
            .iter()
            .find(|s| matches!(s, Stmt::Call(c) if c.callee == "polly_cimBlasGemmBatched"))
        else {
            panic!("no batched call")
        };
        // 11 scalar args + 3 arrays per problem.
        assert_eq!(batched.args.len(), 11 + 6);
    }

    #[test]
    fn parsed_by_runtime_abi() {
        use tdo_ir::interp::calls::parse;
        use tdo_ir::interp::{Backend, PureBackend, ResolvedArg, Value};
        // Build a tiny program so ids resolve, then check the generated
        // gemm call parses under the canonical ABI.
        let mut prog = tdo_ir::Program::new("t");
        for (n, d) in [("C", 16), ("A", 16), ("B", 16)] {
            prog.add_array(n, vec![4, d / 4]);
        }
        let stmts = kernel_calls(&MatchedKernel::Gemm(gemm_desc()));
        let Stmt::Call(c) = &stmts[3] else { panic!() };
        let resolved: Vec<ResolvedArg> = c
            .args
            .iter()
            .map(|a| match a {
                CallArg::Value(Expr::Int(v)) => ResolvedArg::Num(Value::I(*v)),
                CallArg::Value(Expr::Float(v)) => ResolvedArg::Num(Value::F(*v)),
                CallArg::Array(id) => ResolvedArg::Array(*id),
                other => panic!("unexpected arg {other:?}"),
            })
            .collect();
        parse(&c.callee, &resolved).expect("canonical ABI");
        // And the pure backend executes it.
        let mut be = PureBackend::for_program(&prog);
        be.call(&prog, &c.callee, &resolved).expect("executes");
    }
}
