//! In-order core cost model (Arm-A7 class).
//!
//! The paper profiles *dynamic instruction count* in Gem5 and prices the
//! host at a flat 128 pJ/instruction (Table I, including caches). This
//! module mirrors that accounting: callers retire classified instructions;
//! cycles accrue at one instruction per cycle (in-order single-issue) plus
//! per-class penalties and memory stall cycles reported by the cache
//! hierarchy. Energy is `instructions x pj_per_inst`.

use crate::units::{Energy, SimTime};

/// Dynamic instruction classes distinguished by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer ALU operation (address arithmetic, adds, compares).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Load instruction (stall cycles accounted separately).
    Load,
    /// Store instruction.
    Store,
    /// Branch (taken or not).
    Branch,
    /// Anything else (moves, syscall plumbing, nops).
    Other,
}

/// All instruction classes, for iteration in reports.
pub const INST_CLASSES: [InstClass; 9] = [
    InstClass::IntAlu,
    InstClass::IntMul,
    InstClass::FpAdd,
    InstClass::FpMul,
    InstClass::FpDiv,
    InstClass::Load,
    InstClass::Store,
    InstClass::Branch,
    InstClass::Other,
];

/// Dynamic instruction mix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstMix {
    counts: [u64; 9],
}

impl InstMix {
    fn slot(class: InstClass) -> usize {
        INST_CLASSES.iter().position(|c| *c == class).expect("class listed")
    }

    /// Adds `n` instructions of `class`.
    pub fn add(&mut self, class: InstClass, n: u64) {
        self.counts[Self::slot(class)] += n;
    }

    /// Count for one class.
    pub fn count(&self, class: InstClass) -> u64 {
        self.counts[Self::slot(class)]
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another mix into this one.
    pub fn merge(&mut self, other: &InstMix) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }
}

/// Per-class issue latency in cycles for the in-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineCosts {
    /// Cycles per integer ALU op.
    pub int_alu: u64,
    /// Cycles per integer multiply.
    pub int_mul: u64,
    /// Cycles per FP add.
    pub fp_add: u64,
    /// Cycles per FP multiply.
    pub fp_mul: u64,
    /// Cycles per FP divide.
    pub fp_div: u64,
    /// Cycles per load (excluding cache stalls).
    pub load: u64,
    /// Cycles per store.
    pub store: u64,
    /// Cycles per branch.
    pub branch: u64,
    /// Cycles per other instruction.
    pub other: u64,
}

impl Default for PipelineCosts {
    fn default() -> Self {
        // Arm-A7: single-issue in-order; FP pipelined, divide long-latency.
        PipelineCosts {
            int_alu: 1,
            int_mul: 3,
            fp_add: 1,
            fp_mul: 1,
            fp_div: 15,
            load: 1,
            store: 1,
            branch: 1,
            other: 1,
        }
    }
}

impl PipelineCosts {
    /// Cycles for one instruction of `class`.
    pub fn cycles(&self, class: InstClass) -> u64 {
        match class {
            InstClass::IntAlu => self.int_alu,
            InstClass::IntMul => self.int_mul,
            InstClass::FpAdd => self.fp_add,
            InstClass::FpMul => self.fp_mul,
            InstClass::FpDiv => self.fp_div,
            InstClass::Load => self.load,
            InstClass::Store => self.store,
            InstClass::Branch => self.branch,
            InstClass::Other => self.other,
        }
    }
}

/// One in-order core accumulating instructions, cycles and energy.
#[derive(Debug, Clone)]
pub struct Core {
    /// Dynamic instruction mix retired so far.
    pub mix: InstMix,
    cycles: u64,
    stall_cycles: u64,
    spin_insts: u64,
    costs: PipelineCosts,
    freq_hz: f64,
    pj_per_inst: f64,
}

impl Core {
    /// Creates a core at `freq_hz` with `pj_per_inst` energy per instruction.
    pub fn new(freq_hz: f64, pj_per_inst: f64, costs: PipelineCosts) -> Self {
        Core {
            mix: InstMix::default(),
            cycles: 0,
            stall_cycles: 0,
            spin_insts: 0,
            costs,
            freq_hz,
            pj_per_inst,
        }
    }

    /// Core clock frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Retires `n` instructions of `class`.
    pub fn retire(&mut self, class: InstClass, n: u64) {
        self.mix.add(class, n);
        self.cycles += n * self.costs.cycles(class);
    }

    /// Charges `cycles` of memory stall to the core.
    pub fn stall(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.stall_cycles += cycles;
    }

    /// Models a spin-wait (status polling loop) lasting `duration`.
    ///
    /// The loop body is `ldr; cmp; bne` — three instructions every three
    /// cycles — so the core burns roughly one instruction per cycle while
    /// waiting on the accelerator (Section II-E: "the host can either wait
    /// on spinlock or continue with other tasks").
    pub fn spin_wait(&mut self, duration: SimTime) {
        let cycles = duration.to_cycles(self.freq_hz);
        let insts = cycles; // 3 insts / 3 cycles
        let per = insts / 3;
        self.mix.add(InstClass::Load, per);
        self.mix.add(InstClass::IntAlu, per);
        self.mix.add(InstClass::Branch, insts - 2 * per);
        self.spin_insts += insts;
        self.cycles += cycles;
    }

    /// Advances the clock by `duration` without retiring instructions
    /// (WFE/WFI-style waiting: the core clock runs, the pipeline does not).
    pub fn idle_wait(&mut self, duration: SimTime) {
        let cycles = duration.to_cycles(self.freq_hz);
        self.cycles += cycles;
        self.stall_cycles += cycles;
    }

    /// Total cycles elapsed (issue + stalls).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles lost to memory stalls.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Instructions burnt spinning on the accelerator status register.
    pub fn spin_instructions(&self) -> u64 {
        self.spin_insts
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.mix.total()
    }

    /// Wall-clock time elapsed on this core.
    pub fn elapsed(&self) -> SimTime {
        SimTime::from_cycles(self.cycles, self.freq_hz)
    }

    /// Energy consumed: `instructions x pj_per_inst` (Table I host model).
    pub fn energy(&self) -> Energy {
        Energy::from_pj(self.mix.total() as f64 * self.pj_per_inst)
    }

    /// Snapshot of `(instructions, cycles)`, to delta-measure a region.
    pub fn checkpoint(&self) -> (u64, u64) {
        (self.instructions(), self.cycles)
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.mix = InstMix::default();
        self.cycles = 0;
        self.stall_cycles = 0;
        self.spin_insts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::new(1.2e9, 128.0, PipelineCosts::default())
    }

    #[test]
    fn retire_accumulates_mix_and_cycles() {
        let mut c = core();
        c.retire(InstClass::FpMul, 10);
        c.retire(InstClass::FpDiv, 2);
        assert_eq!(c.instructions(), 12);
        assert_eq!(c.cycles(), 10 + 2 * 15);
        assert_eq!(c.mix.count(InstClass::FpMul), 10);
    }

    #[test]
    fn energy_is_flat_per_instruction() {
        let mut c = core();
        c.retire(InstClass::IntAlu, 1000);
        assert!((c.energy().as_pj() - 128_000.0).abs() < 1e-9);
    }

    #[test]
    fn stalls_add_cycles_not_instructions() {
        let mut c = core();
        c.retire(InstClass::Load, 1);
        c.stall(110);
        assert_eq!(c.instructions(), 1);
        assert_eq!(c.cycles(), 111);
        assert_eq!(c.stall_cycles(), 110);
    }

    #[test]
    fn spin_wait_burns_one_inst_per_cycle() {
        let mut c = core();
        c.spin_wait(SimTime::from_us(1.0)); // 1200 cycles at 1.2 GHz
        assert_eq!(c.cycles(), 1200);
        assert_eq!(c.instructions(), 1200);
        assert_eq!(c.spin_instructions(), 1200);
        // Spin energy is what makes GEMV-like offloads lose (Fig. 6).
        assert!((c.energy().as_pj() - 1200.0 * 128.0).abs() < 1e-9);
    }

    #[test]
    fn elapsed_reflects_frequency() {
        let mut c = core();
        c.retire(InstClass::IntAlu, 1200);
        assert!((c.elapsed().as_us() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_and_reset() {
        let mut c = core();
        c.retire(InstClass::IntAlu, 5);
        let (i0, c0) = c.checkpoint();
        assert_eq!((i0, c0), (5, 5));
        c.reset();
        assert_eq!(c.instructions(), 0);
        assert_eq!(c.cycles(), 0);
    }

    #[test]
    fn mix_merge_and_total() {
        let mut a = InstMix::default();
        let mut b = InstMix::default();
        a.add(InstClass::Load, 3);
        b.add(InstClass::Load, 4);
        b.add(InstClass::Store, 1);
        a.merge(&b);
        assert_eq!(a.count(InstClass::Load), 7);
        assert_eq!(a.total(), 8);
    }
}
