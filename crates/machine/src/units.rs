//! Scalar quantity newtypes used across the simulator.
//!
//! Energy is tracked in picojoules and time in nanoseconds, both as `f64`.
//! The newtypes exist so that a joule is never accidentally added to a
//! nanosecond ([C-NEWTYPE]), and so that `Display` can auto-scale into
//! engineering units when printing reports.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An amount of energy, stored internally in picojoules.
///
/// ```
/// use cim_machine::units::Energy;
/// let e = Energy::from_nj(2.0) + Energy::from_pj(500.0);
/// assert!((e.as_nj() - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy {
    pj: f64,
}

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy { pj: 0.0 };

    /// Creates an energy from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy { pj }
    }

    /// Creates an energy from femtojoules.
    pub fn from_fj(fj: f64) -> Self {
        Energy { pj: fj * 1e-3 }
    }

    /// Creates an energy from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy { pj: nj * 1e3 }
    }

    /// Creates an energy from microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy { pj: uj * 1e6 }
    }

    /// Creates an energy from millijoules.
    pub fn from_mj(mj: f64) -> Self {
        Energy { pj: mj * 1e9 }
    }

    /// Returns the energy in picojoules.
    pub fn as_pj(self) -> f64 {
        self.pj
    }

    /// Returns the energy in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.pj * 1e-3
    }

    /// Returns the energy in microjoules.
    pub fn as_uj(self) -> f64 {
        self.pj * 1e-6
    }

    /// Returns the energy in millijoules.
    pub fn as_mj(self) -> f64 {
        self.pj * 1e-9
    }

    /// Returns the energy in joules.
    pub fn as_j(self) -> f64 {
        self.pj * 1e-12
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy { pj: self.pj + rhs.pj }
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.pj += rhs.pj;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy { pj: self.pj - rhs.pj }
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.pj -= rhs.pj;
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy { pj: self.pj * rhs }
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.pj / rhs.pj
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Energy({self})")
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.pj.abs();
        if abs >= 1e12 {
            write!(f, "{:.3} J", self.pj * 1e-12)
        } else if abs >= 1e9 {
            write!(f, "{:.3} mJ", self.pj * 1e-9)
        } else if abs >= 1e6 {
            write!(f, "{:.3} uJ", self.pj * 1e-6)
        } else if abs >= 1e3 {
            write!(f, "{:.3} nJ", self.pj * 1e-3)
        } else {
            write!(f, "{:.3} pJ", self.pj)
        }
    }
}

/// A span of simulated time, stored internally in nanoseconds.
///
/// ```
/// use cim_machine::units::SimTime;
/// let t = SimTime::from_us(1.0) + SimTime::from_ns(500.0);
/// assert!((t.as_us() - 1.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime {
    ns: f64,
}

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime { ns: 0.0 };

    /// Creates a time span from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        SimTime { ns }
    }

    /// Creates a time span from microseconds.
    pub fn from_us(us: f64) -> Self {
        SimTime { ns: us * 1e3 }
    }

    /// Creates a time span from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        SimTime { ns: ms * 1e6 }
    }

    /// Creates a time span from seconds.
    pub fn from_s(s: f64) -> Self {
        SimTime { ns: s * 1e9 }
    }

    /// Creates a time span from a cycle count at the given frequency.
    pub fn from_cycles(cycles: u64, freq_hz: f64) -> Self {
        SimTime { ns: cycles as f64 / freq_hz * 1e9 }
    }

    /// Returns the time span in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.ns
    }

    /// Returns the time span in microseconds.
    pub fn as_us(self) -> f64 {
        self.ns * 1e-3
    }

    /// Returns the time span in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.ns * 1e-6
    }

    /// Returns the time span in seconds.
    pub fn as_s(self) -> f64 {
        self.ns * 1e-9
    }

    /// Returns the number of whole cycles this span covers at `freq_hz`.
    pub fn to_cycles(self, freq_hz: f64) -> u64 {
        (self.ns * 1e-9 * freq_hz).round() as u64
    }

    /// Returns the larger of two time spans.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.ns >= other.ns {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime { ns: self.ns + rhs.ns }
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.ns += rhs.ns;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime { ns: self.ns - rhs.ns }
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime { ns: self.ns * rhs }
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    fn div(self, rhs: SimTime) -> f64 {
        self.ns / rhs.ns
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.ns.abs();
        if abs >= 1e9 {
            write!(f, "{:.3} s", self.ns * 1e-9)
        } else if abs >= 1e6 {
            write!(f, "{:.3} ms", self.ns * 1e-6)
        } else if abs >= 1e3 {
            write!(f, "{:.3} us", self.ns * 1e-3)
        } else {
            write!(f, "{:.3} ns", self.ns)
        }
    }
}

/// Energy-delay product: joules times seconds.
///
/// Lower is better; the paper reports *improvements* (ratios) of this value.
pub fn edp(energy: Energy, time: SimTime) -> f64 {
    energy.as_j() * time.as_s()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_conversions_roundtrip() {
        let e = Energy::from_mj(1.5);
        assert!((e.as_uj() - 1500.0).abs() < 1e-9);
        assert!((e.as_nj() - 1.5e6).abs() < 1e-6);
        assert!((e.as_pj() - 1.5e9).abs() < 1e-3);
    }

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_pj(100.0);
        let b = Energy::from_pj(50.0);
        assert_eq!((a + b).as_pj(), 150.0);
        assert_eq!((a - b).as_pj(), 50.0);
        assert_eq!((a * 2.0).as_pj(), 200.0);
        assert_eq!(a / b, 2.0);
        let total: Energy = [a, b, b].into_iter().sum();
        assert_eq!(total.as_pj(), 200.0);
    }

    #[test]
    fn energy_display_scales() {
        assert_eq!(format!("{}", Energy::from_pj(12.0)), "12.000 pJ");
        assert_eq!(format!("{}", Energy::from_nj(3.9)), "3.900 nJ");
        assert_eq!(format!("{}", Energy::from_mj(32.6)), "32.600 mJ");
    }

    #[test]
    fn time_conversions_and_cycles() {
        let t = SimTime::from_us(1.0);
        assert_eq!(t.to_cycles(1.2e9), 1200);
        let back = SimTime::from_cycles(1200, 1.2e9);
        assert!((back.as_us() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_display_scales() {
        assert_eq!(format!("{}", SimTime::from_ns(2.5)), "2.500 ns");
        assert_eq!(format!("{}", SimTime::from_us(1.0)), "1.000 us");
        assert_eq!(format!("{}", SimTime::from_s(2.0)), "2.000 s");
    }

    #[test]
    fn edp_is_product_of_joules_and_seconds() {
        let e = Energy::from_mj(2.0);
        let t = SimTime::from_ms(3.0);
        assert!((edp(e, t) - 2.0e-3 * 3.0e-3).abs() < 1e-18);
    }

    #[test]
    fn time_max() {
        let a = SimTime::from_ns(5.0);
        let b = SimTime::from_ns(7.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
