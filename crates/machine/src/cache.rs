//! Set-associative write-back cache simulator.
//!
//! Models the Arm-A7 two-level hierarchy of the paper's host (L1-I/D 32 KiB,
//! shared L2 2 MiB). Only the data side is simulated explicitly; instruction
//! fetch energy is folded into the per-instruction constant (Table I:
//! 128 pJ/inst *including cache*). The hierarchy provides the two things the
//! evaluation depends on: miss-driven stall cycles for host run-time, and
//! the dirty-line count that prices the driver's cache flush before each
//! accelerator invocation (Section II-E).
//!
//! Storage is struct-of-arrays: one packed tag row and one packed stamp row
//! per set plus per-set valid/dirty bitmasks, so a lookup touches two small
//! arrays instead of walking `Line` structs. On top of the scalar
//! [`Cache::access_line`] the simulator offers a bulk path —
//! [`Cache::access_run`] / [`Hierarchy::access_block`] — that classifies a
//! constant-stride run at line granularity: one tag lookup per distinct
//! line instead of one per scalar, with stats, LRU stamps and victim
//! choices provably identical to the scalar loop (see
//! `tests/bulk_access_props.rs`).

use std::fmt;

/// Geometry and policy of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, more than 64 ways, or capacity not divisible by
    /// `ways * line_bytes`).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes >= 4);
        assert!(self.ways >= 1 && self.ways <= 64, "valid/dirty bitmasks hold up to 64 ways");
        let per_way = self.size_bytes / self.ways as u64;
        assert!(
            per_way.is_multiple_of(self.line_bytes) && per_way > 0,
            "cache capacity must divide evenly into ways of whole lines"
        );
        (per_way / self.line_bytes) as usize
    }
}

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction or flush.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when the cache was never accessed.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Outcome of a single line-granular cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; `writeback` reports whether a dirty victim was
    /// evicted to the next level.
    Miss {
        /// Dirty victim evicted.
        writeback: bool,
    },
}

/// Aggregate outcome of a bulk [`Cache::access_run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Accesses that hit (per scalar element, exactly as the scalar loop
    /// would count them).
    pub hits: u64,
    /// Accesses that missed (one per absent line).
    pub misses: u64,
    /// Dirty victims evicted to the next level.
    pub writebacks: u64,
}

/// One set-associative, write-back, write-allocate cache level with LRU
/// replacement.
pub struct Cache {
    cfg: CacheConfig,
    nsets: usize,
    ways: usize,
    /// Packed tag array, `nsets * ways`, row-major by set.
    tags: Vec<u64>,
    /// Packed LRU stamps, same layout as `tags`.
    stamps: Vec<u64>,
    /// Per-set valid bitmask (bit `w` = way `w` holds a line).
    valid: Vec<u64>,
    /// Per-set dirty bitmask.
    dirty: Vec<u64>,
    tick: u64,
    stats: CacheStats,
    /// Incrementally maintained count of dirty lines, so the driver's
    /// per-invocation flush decision is O(1) instead of a full scan.
    dirty_count: u64,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache").field("cfg", &self.cfg).field("stats", &self.stats).finish()
    }
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let nsets = cfg.sets();
        Cache {
            cfg,
            nsets,
            ways: cfg.ways,
            tags: vec![0; nsets * cfg.ways],
            stamps: vec![0; nsets * cfg.ways],
            valid: vec![0; nsets],
            dirty: vec![0; nsets],
            tick: 0,
            stats: CacheStats::default(),
            dirty_count: 0,
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.nsets as u64) as usize;
        let tag = line / self.nsets as u64;
        (set, tag)
    }

    /// `count` back-to-back accesses to the line containing `addr` — the
    /// burst a constant-stride run makes before moving to the next line.
    /// Returns the outcome of the *first* access; the remaining `count-1`
    /// are hits by construction. Tick, stamps and stats advance exactly as
    /// `count` scalar [`Cache::access_line`] calls would.
    fn access_line_n(&mut self, addr: u64, write: bool, count: u64) -> LineOutcome {
        debug_assert!(count >= 1);
        self.tick += count;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        let mut m = self.valid[set];
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                self.stamps[base + w] = tick;
                if write {
                    self.dirty_count += u64::from(self.dirty[set] & (1 << w) == 0);
                    self.dirty[set] |= 1 << w;
                }
                self.stats.hits += count;
                return LineOutcome::Hit;
            }
            m &= m - 1;
        }
        self.stats.misses += 1;
        self.stats.hits += count - 1;
        // Choose the first invalid way, else the lowest-indexed LRU victim
        // (ties on stamp break toward the lower way, as `min_by_key` does).
        let victim = match (!self.valid[set]).trailing_zeros() as usize {
            w if w < self.ways => w,
            _ => {
                let mut best = 0;
                for w in 1..self.ways {
                    if self.stamps[base + w] < self.stamps[base + best] {
                        best = w;
                    }
                }
                best
            }
        };
        let vbit = 1u64 << victim;
        let writeback = self.valid[set] & vbit != 0 && self.dirty[set] & vbit != 0;
        if writeback {
            self.stats.writebacks += 1;
            self.dirty_count -= 1;
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = tick;
        self.valid[set] |= vbit;
        if write {
            self.dirty[set] |= vbit;
            self.dirty_count += 1;
        } else {
            self.dirty[set] &= !vbit;
        }
        LineOutcome::Miss { writeback }
    }

    /// Accesses the line containing `addr`; `write` marks the line dirty.
    pub fn access_line(&mut self, addr: u64, write: bool) -> LineOutcome {
        self.access_line_n(addr, write, 1)
    }

    /// Bulk access: `count` scalar accesses at `start`, `start + stride`,
    /// `start + 2*stride`, … with one tag lookup per *distinct line*
    /// instead of one per scalar. A constant stride visits each line in
    /// one consecutive burst, so the aggregate outcome — stats, LRU
    /// stamps, victim choices, dirty bits — is identical to the scalar
    /// loop `for i in 0..count { access_line(start + i*stride, write) }`.
    pub fn access_run(&mut self, start: u64, count: u64, stride: i64, write: bool) -> RunOutcome {
        let mut out = RunOutcome::default();
        let lb = self.cfg.line_bytes;
        let mut done = 0u64;
        let mut addr = start;
        while done < count {
            let k = burst_len(addr, lb, stride, count - done);
            match self.access_line_n(addr, write, k) {
                LineOutcome::Hit => out.hits += k,
                LineOutcome::Miss { writeback } => {
                    out.misses += 1;
                    out.hits += k - 1;
                    out.writebacks += u64::from(writeback);
                }
            }
            addr = addr.wrapping_add((k as i64).wrapping_mul(stride) as u64);
            done += k;
        }
        out
    }

    /// Returns whether the line containing `addr` is present (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        let mut m = self.valid[set];
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                return true;
            }
            m &= m - 1;
        }
        false
    }

    /// Invalidates the whole cache, returning `(valid_lines, dirty_lines)`.
    ///
    /// Dirty lines are counted as write-backs.
    pub fn flush_all(&mut self) -> (u64, u64) {
        let valid: u64 = self.valid.iter().map(|m| m.count_ones() as u64).sum();
        let dirty = self.dirty_count;
        self.valid.fill(0);
        self.dirty.fill(0);
        self.stats.writebacks += dirty;
        self.dirty_count = 0;
        (valid, dirty)
    }

    fn invalidate_way(&mut self, set: usize, way: usize) -> bool {
        let bit = 1u64 << way;
        let was_dirty = self.dirty[set] & bit != 0;
        self.valid[set] &= !bit;
        self.dirty[set] &= !bit;
        if was_dirty {
            self.stats.writebacks += 1;
            self.dirty_count -= 1;
        }
        was_dirty
    }

    /// Flushes (writes back + invalidates) all lines overlapping
    /// `[start, start+len)`, returning `(valid_lines, dirty_lines)` touched.
    ///
    /// When the range spans more line numbers than the cache can hold, the
    /// sets are swept once instead of iterating every line number in the
    /// range — a multi-MiB flush against a small cache costs one pass over
    /// the resident lines, not millions of empty lookups.
    pub fn flush_range(&mut self, start: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let mut valid = 0;
        let mut dirty = 0;
        let first = start / self.cfg.line_bytes;
        let last = (start + len - 1) / self.cfg.line_bytes;
        if last - first >= (self.nsets * self.ways) as u64 {
            for set in 0..self.nsets {
                let base = set * self.ways;
                let mut m = self.valid[set];
                while m != 0 {
                    let w = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let lineno = self.tags[base + w] * self.nsets as u64 + set as u64;
                    if (first..=last).contains(&lineno) {
                        valid += 1;
                        dirty += u64::from(self.invalidate_way(set, w));
                    }
                }
            }
        } else {
            for lineno in first..=last {
                let addr = lineno * self.cfg.line_bytes;
                let (set, tag) = self.index(addr);
                let base = set * self.ways;
                let mut m = self.valid[set];
                while m != 0 {
                    let w = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if self.tags[base + w] == tag {
                        valid += 1;
                        dirty += u64::from(self.invalidate_way(set, w));
                    }
                }
            }
        }
        (valid, dirty)
    }

    /// Number of currently dirty lines (O(1), incrementally maintained).
    pub fn dirty_lines(&self) -> u64 {
        self.dirty_count
    }

    /// `(line_address, dirty)` of every resident line, sorted by address —
    /// for differential tests and diagnostics.
    pub fn resident_lines(&self) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        for set in 0..self.nsets {
            let base = set * self.ways;
            let mut m = self.valid[set];
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                let lineno = self.tags[base + w] * self.nsets as u64 + set as u64;
                out.push((lineno * self.cfg.line_bytes, self.dirty[set] & (1 << w) != 0));
            }
        }
        out.sort_unstable();
        out
    }
}

/// Number of leading elements of the run `addr, addr+stride, …` (at most
/// `remaining`) that fall on the line containing `addr`. A constant
/// stride is monotonic, so these are exactly the consecutive accesses the
/// line receives. Also used with `line_bytes = PAGE_BYTES` to group a run
/// into per-page translation bursts.
pub(crate) fn burst_len(addr: u64, line_bytes: u64, stride: i64, remaining: u64) -> u64 {
    if stride == 0 {
        return remaining;
    }
    let line_base = addr / line_bytes * line_bytes;
    let k = if stride > 0 {
        let to_next = line_base + line_bytes - addr;
        to_next.div_ceil(stride as u64)
    } else {
        (addr - line_base) / stride.unsigned_abs() + 1
    };
    k.min(remaining)
}

/// Where an access was satisfied in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Satisfied by L1.
    L1,
    /// Satisfied by L2.
    L2,
    /// Went to DRAM.
    Dram,
}

/// Latency parameters of the hierarchy, in CPU cycles (DRAM in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLatency {
    /// Extra cycles beyond the pipelined load on an L1 hit.
    pub l1_hit_cycles: u64,
    /// Cycles to reach L2 on an L1 miss.
    pub l2_hit_cycles: u64,
    /// Nanoseconds for a DRAM access on an L2 miss.
    pub dram_ns: f64,
}

impl Default for MemLatency {
    fn default() -> Self {
        // Arm-A7-class small core: pipelined L1, ~10-cycle L2, LPDDR3 DRAM.
        MemLatency { l1_hit_cycles: 0, l2_hit_cycles: 10, dram_ns: 100.0 }
    }
}

/// Outcome of a hierarchy access: where it hit and the stall cycles charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Level that satisfied the access (worst level for multi-line runs).
    pub level: HitLevel,
    /// Stall cycles charged to the core.
    pub stall_cycles: u64,
}

/// Two-level data hierarchy: private L1-D backed by a shared L2.
#[derive(Debug)]
pub struct Hierarchy {
    /// Level-1 data cache.
    pub l1d: Cache,
    /// Shared level-2 cache.
    pub l2: Cache,
    /// Latency model.
    pub lat: MemLatency,
    freq_hz: f64,
}

impl Hierarchy {
    /// Creates a hierarchy from two cache configs and a latency model at the
    /// given core frequency.
    pub fn new(l1: CacheConfig, l2: CacheConfig, lat: MemLatency, freq_hz: f64) -> Self {
        Hierarchy { l1d: Cache::new(l1), l2: Cache::new(l2), lat, freq_hz }
    }

    fn dram_cycles(&self) -> u64 {
        (self.lat.dram_ns * 1e-9 * self.freq_hz).round() as u64
    }

    /// Performs a data access of `bytes` at `addr` (`write` = store).
    ///
    /// Accesses that straddle line boundaries touch every line involved; the
    /// outcome reports the *worst* level reached and total stall cycles.
    pub fn access(&mut self, addr: u64, bytes: u64, write: bool) -> AccessOutcome {
        let line = self.l1d.config().line_bytes;
        let first = addr / line;
        let last = if bytes == 0 { first } else { (addr + bytes - 1) / line };
        let mut stall = 0;
        let mut worst = HitLevel::L1;
        for lineno in first..=last {
            let a = lineno * line;
            self.line_access(a, write, 1, &mut stall, &mut worst);
        }
        AccessOutcome { level: worst, stall_cycles: stall }
    }

    /// One line burst through both levels: `count` consecutive accesses to
    /// the L1 line containing `addr`, the L2 consulted on the first access
    /// exactly as [`Hierarchy::access`] does per scalar.
    fn line_access(
        &mut self,
        addr: u64,
        write: bool,
        count: u64,
        stall: &mut u64,
        worst: &mut HitLevel,
    ) {
        match self.l1d.access_line_n(addr, write, count) {
            LineOutcome::Hit => *stall += count * self.lat.l1_hit_cycles,
            LineOutcome::Miss { writeback } => {
                *stall += (count - 1) * self.lat.l1_hit_cycles;
                // L2 sees line-aligned traffic, as in the scalar path.
                let a = addr / self.l1d.config().line_bytes * self.l1d.config().line_bytes;
                if writeback {
                    // Dirty victim written back into L2.
                    self.l2.access_line(a, true);
                }
                match self.l2.access_line(a, false) {
                    LineOutcome::Hit => {
                        *stall += self.lat.l2_hit_cycles;
                        if *worst == HitLevel::L1 {
                            *worst = HitLevel::L2;
                        }
                    }
                    LineOutcome::Miss { .. } => {
                        *stall += self.lat.l2_hit_cycles + self.dram_cycles();
                        *worst = HitLevel::Dram;
                    }
                }
            }
        }
    }

    /// Bulk access: `count` element accesses of `elem_bytes` at `start`,
    /// `start + stride`, … — classified at line granularity so each
    /// distinct line costs one tag lookup per level instead of one per
    /// scalar. Stats, stamps, victim choices and the returned stall total
    /// are identical to the scalar loop
    /// `for i in 0..count { access(start + i*stride, elem_bytes, write) }`.
    ///
    /// Runs whose elements may straddle a line boundary (element size not
    /// dividing the line size, or a start/stride not multiple of the
    /// element size) take that scalar loop verbatim instead.
    pub fn access_block(
        &mut self,
        start: u64,
        elem_bytes: u64,
        count: u64,
        stride: i64,
        write: bool,
    ) -> AccessOutcome {
        let mut stall = 0u64;
        let mut worst = HitLevel::L1;
        if count == 0 {
            return AccessOutcome { level: worst, stall_cycles: stall };
        }
        let lb = self.l1d.config().line_bytes;
        let aligned = elem_bytes >= 1
            && lb.is_multiple_of(elem_bytes)
            && start.is_multiple_of(elem_bytes)
            && stride.unsigned_abs().is_multiple_of(elem_bytes);
        if !aligned {
            // Straddle-capable scalar path.
            let mut addr = start;
            for _ in 0..count {
                let o = self.access(addr, elem_bytes, write);
                stall += o.stall_cycles;
                worst = worst_of(worst, o.level);
                addr = addr.wrapping_add(stride as u64);
            }
            return AccessOutcome { level: worst, stall_cycles: stall };
        }
        let mut done = 0u64;
        let mut addr = start;
        while done < count {
            let k = burst_len(addr, lb, stride, count - done);
            self.line_access(addr, write, k, &mut stall, &mut worst);
            addr = addr.wrapping_add((k as i64).wrapping_mul(stride) as u64);
            done += k;
        }
        AccessOutcome { level: worst, stall_cycles: stall }
    }

    /// Flushes both levels entirely, returning total `(valid, dirty)` lines.
    pub fn flush_all(&mut self) -> (u64, u64) {
        let (v1, d1) = self.l1d.flush_all();
        let (v2, d2) = self.l2.flush_all();
        (v1 + v2, d1 + d2)
    }

    /// Flushes the address range from both levels, returning `(valid, dirty)`.
    pub fn flush_range(&mut self, start: u64, len: u64) -> (u64, u64) {
        let (v1, d1) = self.l1d.flush_range(start, len);
        let (v2, d2) = self.l2.flush_range(start, len);
        (v1 + v2, d1 + d2)
    }
}

fn worst_of(a: HitLevel, b: HitLevel) -> HitLevel {
    use HitLevel::*;
    match (a, b) {
        (Dram, _) | (_, Dram) => Dram,
        (L2, _) | (_, L2) => L2,
        _ => L1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn config_sets() {
        let cfg = CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 4 };
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small_cache();
        assert!(matches!(c.access_line(0, false), LineOutcome::Miss { writeback: false }));
        assert!(matches!(c.access_line(0, false), LineOutcome::Hit));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Three tags mapping to set 0: line numbers 0, 4, 8 (4 sets).
        c.access_line(0, false);
        c.access_line(4 * 64, false);
        c.access_line(0, false); // refresh tag0
        c.access_line(8 * 64, false); // evicts tag at line 4
        assert!(c.probe(0));
        assert!(!c.probe(4 * 64));
        assert!(c.probe(8 * 64));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(4 * 64, false);
        let out = c.access_line(8 * 64, false); // evicts dirty line 0
        assert!(matches!(out, LineOutcome::Miss { writeback: true }));
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.dirty_lines(), 0);
    }

    #[test]
    fn flush_all_counts_dirty() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(64, false);
        let (valid, dirty) = c.flush_all();
        assert_eq!((valid, dirty), (2, 1));
        assert!(!c.probe(0));
        assert_eq!(c.dirty_lines(), 0);
    }

    #[test]
    fn flush_range_only_touches_range() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(64, true);
        let (valid, dirty) = c.flush_range(0, 64);
        assert_eq!((valid, dirty), (1, 1));
        assert!(!c.probe(0));
        assert!(c.probe(64));
        assert_eq!(c.dirty_lines(), 1);
        assert_eq!(c.flush_range(0, 0), (0, 0));
    }

    #[test]
    fn huge_flush_range_sweeps_sets_once() {
        // Range of 1 GiB against a 512 B cache: takes the set sweep, and
        // returns exactly what the per-line walk would.
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(64, false);
        c.access_line(1 << 31, true); // outside the flushed range
        let (valid, dirty) = c.flush_range(0, 1 << 30);
        assert_eq!((valid, dirty), (2, 1));
        assert!(!c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(1 << 31));
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn dirty_lines_counter() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(64, false);
        assert_eq!(c.dirty_lines(), 1);
        c.access_line(0, true); // re-dirtying is not double counted
        assert_eq!(c.dirty_lines(), 1);
        c.access_line(64, true);
        assert_eq!(c.dirty_lines(), 2);
    }

    #[test]
    fn resident_lines_reports_sorted_state() {
        let mut c = small_cache();
        c.access_line(8 * 64, true);
        c.access_line(0, false);
        assert_eq!(c.resident_lines(), vec![(0, false), (8 * 64, true)]);
    }

    #[test]
    fn access_run_matches_scalar_loop() {
        // Sequential 4-byte run over 4 KiB (64 lines) vs the scalar loop,
        // then a second pass (all hits) and a strided pass.
        for (count, stride, write) in [
            (1024u64, 4i64, false),
            (1024, 4, true),
            (64, 64, false),
            (128, -4, true),
            (7, 0, true),
        ] {
            let mut bulk = small_cache();
            let mut scalar = small_cache();
            let start = 4096u64;
            let out = bulk.access_run(start, count, stride, write);
            let mut hits = 0;
            let mut misses = 0;
            let mut wbs = 0;
            let mut addr = start;
            for _ in 0..count {
                match scalar.access_line(addr, write) {
                    LineOutcome::Hit => hits += 1,
                    LineOutcome::Miss { writeback } => {
                        misses += 1;
                        wbs += u64::from(writeback);
                    }
                }
                addr = addr.wrapping_add(stride as u64);
            }
            assert_eq!(out, RunOutcome { hits, misses, writebacks: wbs }, "{count} {stride}");
            assert_eq!(bulk.stats(), scalar.stats(), "{count} {stride}");
            assert_eq!(bulk.resident_lines(), scalar.resident_lines(), "{count} {stride}");
        }
    }

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(
            CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 },
            CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 },
            MemLatency { l1_hit_cycles: 0, l2_hit_cycles: 10, dram_ns: 100.0 },
            1.0e9,
        )
    }

    #[test]
    fn hierarchy_miss_goes_to_dram_then_l2_then_l1() {
        let mut h = hierarchy();
        let o = h.access(0, 4, false);
        assert_eq!(o.level, HitLevel::Dram);
        assert_eq!(o.stall_cycles, 10 + 100);
        let o = h.access(0, 4, false);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(o.stall_cycles, 0);
        // Evict from tiny L1 but keep in L2.
        for i in 1..=2u64 {
            h.access(i * 512, 4, false);
        }
        let o = h.access(0, 4, false);
        assert_eq!(o.level, HitLevel::L2);
        assert_eq!(o.stall_cycles, 10);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = hierarchy();
        let o = h.access(62, 4, false);
        assert_eq!(o.level, HitLevel::Dram);
        assert_eq!(o.stall_cycles, 2 * 110);
        assert_eq!(h.l1d.stats().misses, 2);
    }

    #[test]
    fn access_block_matches_scalar_loop() {
        for (start, count, stride, write) in [
            (0u64, 1024u64, 4i64, false),
            (128, 300, 4, true),
            (0, 64, 256, false),
            (8192, 33, -4, true),
        ] {
            let mut bulk = hierarchy();
            let mut scalar = hierarchy();
            let o = bulk.access_block(start, 4, count, stride, write);
            let mut stall = 0;
            let mut worst = HitLevel::L1;
            let mut addr = start;
            for _ in 0..count {
                let s = scalar.access(addr, 4, write);
                stall += s.stall_cycles;
                worst = worst_of(worst, s.level);
                addr = addr.wrapping_add(stride as u64);
            }
            assert_eq!(o.stall_cycles, stall, "{start} {count} {stride}");
            assert_eq!(o.level, worst, "{start} {count} {stride}");
            assert_eq!(bulk.l1d.stats(), scalar.l1d.stats());
            assert_eq!(bulk.l2.stats(), scalar.l2.stats());
            assert_eq!(bulk.l1d.resident_lines(), scalar.l1d.resident_lines());
            assert_eq!(bulk.l2.resident_lines(), scalar.l2.resident_lines());
        }
    }

    #[test]
    fn access_block_unaligned_takes_scalar_path() {
        // Elements at odd addresses can straddle lines: the block access
        // must still equal the scalar loop (which it takes verbatim).
        let mut bulk = hierarchy();
        let mut scalar = hierarchy();
        let o = bulk.access_block(61, 4, 16, 6, false);
        let mut stall = 0;
        for i in 0..16u64 {
            stall += scalar.access(61 + 6 * i, 4, false).stall_cycles;
        }
        assert_eq!(o.stall_cycles, stall);
        assert_eq!(bulk.l1d.stats(), scalar.l1d.stats());
    }

    #[test]
    fn hierarchy_flush() {
        let mut h = hierarchy();
        h.access(0, 4, true);
        let (valid, dirty) = h.flush_all();
        // Line present in both levels; dirty only in L1.
        assert_eq!(valid, 2);
        assert_eq!(dirty, 1);
    }

    #[test]
    fn miss_ratio() {
        let mut c = small_cache();
        c.access_line(0, false);
        c.access_line(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
