//! Set-associative write-back cache simulator.
//!
//! Models the Arm-A7 two-level hierarchy of the paper's host (L1-I/D 32 KiB,
//! shared L2 2 MiB). Only the data side is simulated explicitly; instruction
//! fetch energy is folded into the per-instruction constant (Table I:
//! 128 pJ/inst *including cache*). The hierarchy provides the two things the
//! evaluation depends on: miss-driven stall cycles for host run-time, and
//! the dirty-line count that prices the driver's cache flush before each
//! accelerator invocation (Section II-E).

use std::fmt;

/// Geometry and policy of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, or capacity not divisible by `ways * line_bytes`).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes >= 4);
        assert!(self.ways >= 1);
        let per_way = self.size_bytes / self.ways as u64;
        assert!(
            per_way.is_multiple_of(self.line_bytes) && per_way > 0,
            "cache capacity must divide evenly into ways of whole lines"
        );
        (per_way / self.line_bytes) as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction or flush.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when the cache was never accessed.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Outcome of a single line-granular cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; `writeback` reports whether a dirty victim was
    /// evicted to the next level.
    Miss {
        /// Dirty victim evicted.
        writeback: bool,
    },
}

/// One set-associative, write-back, write-allocate cache level with LRU
/// replacement.
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache").field("cfg", &self.cfg).field("stats", &self.stats).finish()
    }
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: (0..sets).map(|_| vec![Line::default(); cfg.ways]).collect(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Accesses the line containing `addr`; `write` marks the line dirty.
    pub fn access_line(&mut self, addr: u64, write: bool) -> LineOutcome {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return LineOutcome::Hit;
        }
        self.stats.misses += 1;
        // Choose an invalid way, else LRU victim.
        let victim = match ways.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) =
                    ways.iter().enumerate().min_by_key(|(_, l)| l.stamp).expect("ways non-empty");
                i
            }
        };
        let writeback = ways[victim].valid && ways[victim].dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        ways[victim] = Line { tag, valid: true, dirty: write, stamp: tick };
        LineOutcome::Miss { writeback }
    }

    /// Returns whether the line containing `addr` is present (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the whole cache, returning `(valid_lines, dirty_lines)`.
    ///
    /// Dirty lines are counted as write-backs.
    pub fn flush_all(&mut self) -> (u64, u64) {
        let mut valid = 0;
        let mut dirty = 0;
        for set in &mut self.sets {
            for line in set {
                if line.valid {
                    valid += 1;
                    if line.dirty {
                        dirty += 1;
                    }
                }
                *line = Line::default();
            }
        }
        self.stats.writebacks += dirty;
        (valid, dirty)
    }

    /// Flushes (writes back + invalidates) all lines overlapping
    /// `[start, start+len)`, returning `(valid_lines, dirty_lines)` touched.
    pub fn flush_range(&mut self, start: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let mut valid = 0;
        let mut dirty = 0;
        let first = start / self.cfg.line_bytes;
        let last = (start + len - 1) / self.cfg.line_bytes;
        for lineno in first..=last {
            let addr = lineno * self.cfg.line_bytes;
            let (set, tag) = self.index(addr);
            for line in &mut self.sets[set] {
                if line.valid && line.tag == tag {
                    valid += 1;
                    if line.dirty {
                        dirty += 1;
                        self.stats.writebacks += 1;
                    }
                    *line = Line::default();
                }
            }
        }
        (valid, dirty)
    }

    /// Number of currently dirty lines.
    pub fn dirty_lines(&self) -> u64 {
        self.sets.iter().flatten().filter(|l| l.valid && l.dirty).count() as u64
    }
}

/// Where an access was satisfied in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Satisfied by L1.
    L1,
    /// Satisfied by L2.
    L2,
    /// Went to DRAM.
    Dram,
}

/// Latency parameters of the hierarchy, in CPU cycles (DRAM in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLatency {
    /// Extra cycles beyond the pipelined load on an L1 hit.
    pub l1_hit_cycles: u64,
    /// Cycles to reach L2 on an L1 miss.
    pub l2_hit_cycles: u64,
    /// Nanoseconds for a DRAM access on an L2 miss.
    pub dram_ns: f64,
}

impl Default for MemLatency {
    fn default() -> Self {
        // Arm-A7-class small core: pipelined L1, ~10-cycle L2, LPDDR3 DRAM.
        MemLatency { l1_hit_cycles: 0, l2_hit_cycles: 10, dram_ns: 100.0 }
    }
}

/// Outcome of a hierarchy access: where it hit and the stall cycles charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Level that satisfied the access.
    pub level: HitLevel,
    /// Stall cycles charged to the core.
    pub stall_cycles: u64,
}

/// Two-level data hierarchy: private L1-D backed by a shared L2.
#[derive(Debug)]
pub struct Hierarchy {
    /// Level-1 data cache.
    pub l1d: Cache,
    /// Shared level-2 cache.
    pub l2: Cache,
    /// Latency model.
    pub lat: MemLatency,
    freq_hz: f64,
}

impl Hierarchy {
    /// Creates a hierarchy from two cache configs and a latency model at the
    /// given core frequency.
    pub fn new(l1: CacheConfig, l2: CacheConfig, lat: MemLatency, freq_hz: f64) -> Self {
        Hierarchy { l1d: Cache::new(l1), l2: Cache::new(l2), lat, freq_hz }
    }

    fn dram_cycles(&self) -> u64 {
        (self.lat.dram_ns * 1e-9 * self.freq_hz).round() as u64
    }

    /// Performs a data access of `bytes` at `addr` (`write` = store).
    ///
    /// Accesses that straddle line boundaries touch every line involved; the
    /// outcome reports the *worst* level reached and total stall cycles.
    pub fn access(&mut self, addr: u64, bytes: u64, write: bool) -> AccessOutcome {
        let line = self.l1d.config().line_bytes;
        let first = addr / line;
        let last = if bytes == 0 { first } else { (addr + bytes - 1) / line };
        let mut stall = 0;
        let mut worst = HitLevel::L1;
        for lineno in first..=last {
            let a = lineno * line;
            match self.l1d.access_line(a, write) {
                LineOutcome::Hit => stall += self.lat.l1_hit_cycles,
                LineOutcome::Miss { writeback } => {
                    if writeback {
                        // Dirty victim written back into L2.
                        self.l2.access_line(a, true);
                    }
                    match self.l2.access_line(a, false) {
                        LineOutcome::Hit => {
                            stall += self.lat.l2_hit_cycles;
                            if worst == HitLevel::L1 {
                                worst = HitLevel::L2;
                            }
                        }
                        LineOutcome::Miss { .. } => {
                            stall += self.lat.l2_hit_cycles + self.dram_cycles();
                            worst = HitLevel::Dram;
                        }
                    }
                }
            }
        }
        AccessOutcome { level: worst, stall_cycles: stall }
    }

    /// Flushes both levels entirely, returning total `(valid, dirty)` lines.
    pub fn flush_all(&mut self) -> (u64, u64) {
        let (v1, d1) = self.l1d.flush_all();
        let (v2, d2) = self.l2.flush_all();
        (v1 + v2, d1 + d2)
    }

    /// Flushes the address range from both levels, returning `(valid, dirty)`.
    pub fn flush_range(&mut self, start: u64, len: u64) -> (u64, u64) {
        let (v1, d1) = self.l1d.flush_range(start, len);
        let (v2, d2) = self.l2.flush_range(start, len);
        (v1 + v2, d1 + d2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn config_sets() {
        let cfg = CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 4 };
        assert_eq!(cfg.sets(), 128);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small_cache();
        assert!(matches!(c.access_line(0, false), LineOutcome::Miss { writeback: false }));
        assert!(matches!(c.access_line(0, false), LineOutcome::Hit));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Three tags mapping to set 0: line numbers 0, 4, 8 (4 sets).
        c.access_line(0, false);
        c.access_line(4 * 64, false);
        c.access_line(0, false); // refresh tag0
        c.access_line(8 * 64, false); // evicts tag at line 4
        assert!(c.probe(0));
        assert!(!c.probe(4 * 64));
        assert!(c.probe(8 * 64));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(4 * 64, false);
        let out = c.access_line(8 * 64, false); // evicts dirty line 0
        assert!(matches!(out, LineOutcome::Miss { writeback: true }));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_all_counts_dirty() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(64, false);
        let (valid, dirty) = c.flush_all();
        assert_eq!((valid, dirty), (2, 1));
        assert!(!c.probe(0));
    }

    #[test]
    fn flush_range_only_touches_range() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(64, true);
        let (valid, dirty) = c.flush_range(0, 64);
        assert_eq!((valid, dirty), (1, 1));
        assert!(!c.probe(0));
        assert!(c.probe(64));
        assert_eq!(c.flush_range(0, 0), (0, 0));
    }

    #[test]
    fn dirty_lines_counter() {
        let mut c = small_cache();
        c.access_line(0, true);
        c.access_line(64, false);
        assert_eq!(c.dirty_lines(), 1);
    }

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(
            CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 },
            CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 },
            MemLatency { l1_hit_cycles: 0, l2_hit_cycles: 10, dram_ns: 100.0 },
            1.0e9,
        )
    }

    #[test]
    fn hierarchy_miss_goes_to_dram_then_l2_then_l1() {
        let mut h = hierarchy();
        let o = h.access(0, 4, false);
        assert_eq!(o.level, HitLevel::Dram);
        assert_eq!(o.stall_cycles, 10 + 100);
        let o = h.access(0, 4, false);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(o.stall_cycles, 0);
        // Evict from tiny L1 but keep in L2.
        for i in 1..=2u64 {
            h.access(i * 512, 4, false);
        }
        let o = h.access(0, 4, false);
        assert_eq!(o.level, HitLevel::L2);
        assert_eq!(o.stall_cycles, 10);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = hierarchy();
        let o = h.access(62, 4, false);
        assert_eq!(o.level, HitLevel::Dram);
        assert_eq!(o.stall_cycles, 2 * 110);
        assert_eq!(h.l1d.stats().misses, 2);
    }

    #[test]
    fn hierarchy_flush() {
        let mut h = hierarchy();
        h.access(0, 4, true);
        let (valid, dirty) = h.flush_all();
        // Line present in both levels; dirty only in L1.
        assert_eq!(valid, 2);
        assert_eq!(dirty, 1);
    }

    #[test]
    fn miss_ratio() {
        let mut c = small_cache();
        c.access_line(0, false);
        c.access_line(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
