//! Sparse physical memory backing store.
//!
//! Physical memory is modelled as a sparse array of 4 KiB frames that are
//! materialized on first touch, so a 2 GiB address space costs nothing
//! until written. All functional data in the simulation (host arrays, CMA
//! shared buffers, accelerator DMA traffic) lives here — there is a single
//! source of truth for values, exactly like the unified DRAM of the
//! emulated platform in Fig. 2 (a) of the paper.

use std::fmt;

/// Size of one backing frame in bytes.
pub const FRAME_BYTES: usize = 4096;

/// Byte-addressable sparse physical memory.
pub struct PhysMem {
    frames: Vec<Option<Box<[u8; FRAME_BYTES]>>>,
    size: u64,
    stats: MemStats,
}

/// Traffic counters for physical memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes read from DRAM (cacheable refills + uncacheable reads).
    pub bytes_read: u64,
    /// Bytes written to DRAM (write-backs + uncacheable writes).
    pub bytes_written: u64,
}

impl fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let resident = self.frames.iter().filter(|f| f.is_some()).count();
        f.debug_struct("PhysMem")
            .field("size", &self.size)
            .field("resident_frames", &resident)
            .field("stats", &self.stats)
            .finish()
    }
}

impl PhysMem {
    /// Creates a physical memory of `size` bytes (rounded up to a frame).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "physical memory must be non-empty");
        let frames = size.div_ceil(FRAME_BYTES as u64) as usize;
        PhysMem { frames: (0..frames).map(|_| None).collect(), size, stats: MemStats::default() }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    fn frame_mut(&mut self, addr: u64) -> &mut [u8; FRAME_BYTES] {
        let idx = (addr / FRAME_BYTES as u64) as usize;
        assert!(
            idx < self.frames.len(),
            "physical address {addr:#x} out of range ({:#x})",
            self.size
        );
        self.frames[idx].get_or_insert_with(|| Box::new([0u8; FRAME_BYTES]))
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) {
        assert!(addr + buf.len() as u64 <= self.size, "read past end of memory");
        self.stats.bytes_read += buf.len() as u64;
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let in_frame = (a % FRAME_BYTES as u64) as usize;
            let n = (FRAME_BYTES - in_frame).min(buf.len() - off);
            let idx = (a / FRAME_BYTES as u64) as usize;
            match &self.frames[idx] {
                Some(frame) => buf[off..off + n].copy_from_slice(&frame[in_frame..in_frame + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the memory size.
    pub fn write(&mut self, addr: u64, buf: &[u8]) {
        assert!(addr + buf.len() as u64 <= self.size, "write past end of memory");
        self.stats.bytes_written += buf.len() as u64;
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let in_frame = (a % FRAME_BYTES as u64) as usize;
            let n = (FRAME_BYTES - in_frame).min(buf.len() - off);
            let frame = self.frame_mut(a);
            frame[in_frame..in_frame + n].copy_from_slice(&buf[off..off + n]);
            off += n;
        }
    }

    /// Reads a little-endian `f32` at `addr`.
    pub fn read_f32(&mut self, addr: u64) -> f32 {
        // Scalar loads are the interpreter's hottest memory call; skip the
        // general range loop when the value sits inside one frame.
        let in_frame = (addr % FRAME_BYTES as u64) as usize;
        if in_frame + 4 <= FRAME_BYTES {
            assert!(addr + 4 <= self.size, "read past end of memory");
            self.stats.bytes_read += 4;
            let idx = (addr / FRAME_BYTES as u64) as usize;
            return match &self.frames[idx] {
                Some(frame) => {
                    f32::from_le_bytes(frame[in_frame..in_frame + 4].try_into().expect("4 bytes"))
                }
                None => 0.0,
            };
        }
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        f32::from_le_bytes(b)
    }

    /// Writes a little-endian `f32` at `addr`.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        let in_frame = (addr % FRAME_BYTES as u64) as usize;
        if in_frame + 4 <= FRAME_BYTES {
            assert!(addr + 4 <= self.size, "write past end of memory");
            self.stats.bytes_written += 4;
            let frame = self.frame_mut(addr);
            frame[in_frame..in_frame + 4].copy_from_slice(&v.to_le_bytes());
            return;
        }
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a contiguous run of `f32`s starting at `addr`.
    ///
    /// Word-aligned runs are copied frame by frame — one bounds check,
    /// stats update and frame lookup per 4 KiB instead of per element.
    pub fn read_f32_slice(&mut self, addr: u64, out: &mut [f32]) {
        if !addr.is_multiple_of(4) {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.read_f32(addr + 4 * i as u64);
            }
            return;
        }
        assert!(addr + 4 * out.len() as u64 <= self.size, "read past end of memory");
        self.stats.bytes_read += 4 * out.len() as u64;
        let mut off = 0usize;
        while off < out.len() {
            let a = addr + 4 * off as u64;
            let in_frame = (a % FRAME_BYTES as u64) as usize;
            let n = ((FRAME_BYTES - in_frame) / 4).min(out.len() - off);
            let idx = (a / FRAME_BYTES as u64) as usize;
            match &self.frames[idx] {
                Some(frame) => {
                    for (j, slot) in out[off..off + n].iter_mut().enumerate() {
                        let s = in_frame + 4 * j;
                        *slot = f32::from_le_bytes(frame[s..s + 4].try_into().expect("4 bytes"));
                    }
                }
                None => out[off..off + n].fill(0.0),
            }
            off += n;
        }
    }

    /// Writes a contiguous run of `f32`s starting at `addr`.
    ///
    /// Word-aligned runs are copied frame by frame, as in
    /// [`PhysMem::read_f32_slice`].
    pub fn write_f32_slice(&mut self, addr: u64, data: &[f32]) {
        if !addr.is_multiple_of(4) {
            for (i, v) in data.iter().enumerate() {
                self.write_f32(addr + 4 * i as u64, *v);
            }
            return;
        }
        assert!(addr + 4 * data.len() as u64 <= self.size, "write past end of memory");
        self.stats.bytes_written += 4 * data.len() as u64;
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + 4 * off as u64;
            let in_frame = (a % FRAME_BYTES as u64) as usize;
            let n = ((FRAME_BYTES - in_frame) / 4).min(data.len() - off);
            let frame = self.frame_mut(a);
            for (j, v) in data[off..off + n].iter().enumerate() {
                let s = in_frame + 4 * j;
                frame[s..s + 4].copy_from_slice(&v.to_le_bytes());
            }
            off += n;
        }
    }

    /// Number of frames currently materialized (for tests / diagnostics).
    pub fn resident_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_before_first_write() {
        let mut m = PhysMem::new(1 << 20);
        let mut buf = [0xAAu8; 16];
        m.read(0x1234, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.resident_frames(), 0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut m = PhysMem::new(1 << 20);
        m.write(0x100, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(0x100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(m.resident_frames(), 1);
    }

    #[test]
    fn frame_straddling_access() {
        let mut m = PhysMem::new(1 << 20);
        let addr = FRAME_BYTES as u64 - 2;
        m.write(addr, &[9, 8, 7, 6]);
        let mut buf = [0u8; 4];
        m.read(addr, &mut buf);
        assert_eq!(buf, [9, 8, 7, 6]);
        assert_eq!(m.resident_frames(), 2);
    }

    #[test]
    fn f32_and_u64_helpers() {
        let mut m = PhysMem::new(1 << 20);
        m.write_f32(64, 3.5);
        assert_eq!(m.read_f32(64), 3.5);
        m.write_u64(128, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(128), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn f32_slice_helpers() {
        let mut m = PhysMem::new(1 << 20);
        let data = [1.0f32, -2.0, 0.5, 1e9];
        m.write_f32_slice(4096, &data);
        let mut out = [0f32; 4];
        m.read_f32_slice(4096, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn f32_slice_across_frames_and_unaligned() {
        let mut m = PhysMem::new(1 << 20);
        let data: Vec<f32> = (0..2048).map(|i| i as f32 * 0.5 - 7.0).collect();
        // Straddles two frame boundaries; word aligned but not frame aligned.
        m.write_f32_slice(FRAME_BYTES as u64 - 36, &data);
        let mut out = vec![0f32; 2048];
        m.read_f32_slice(FRAME_BYTES as u64 - 36, &mut out);
        assert_eq!(out, data);
        // Unaligned base takes the byte-wise path and still round-trips.
        m.write_f32_slice(13, &data[..8]);
        let mut out = vec![0f32; 8];
        m.read_f32_slice(13, &mut out);
        assert_eq!(out, &data[..8]);
    }

    #[test]
    fn traffic_is_counted() {
        let mut m = PhysMem::new(1 << 20);
        m.write(0, &[0u8; 64]);
        let mut buf = [0u8; 32];
        m.read(0, &mut buf);
        assert_eq!(m.stats().bytes_written, 64);
        assert_eq!(m.stats().bytes_read, 32);
        m.reset_stats();
        assert_eq!(m.stats(), MemStats::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut m = PhysMem::new(FRAME_BYTES as u64);
        m.frame_mut(FRAME_BYTES as u64 * 2);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn read_past_end_panics() {
        let mut m = PhysMem::new(16);
        let mut buf = [0u8; 32];
        m.read(0, &mut buf);
    }
}
