//! Contiguous memory allocator (CMA) model.
//!
//! The CIM runtime allocates physically contiguous shared buffers through
//! the Linux CMA API (Section II-E). Compared to a malloc-based scheme,
//! CMA buffers (1) are not limited by the page boundary and (2) need no
//! per-page management in the driver. This is a first-fit free-list
//! allocator over a reserved physical carve-out.

use std::fmt;

/// Error allocating from the CMA region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmaError {
    /// No free block large enough.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Largest free block available.
        largest_free: u64,
    },
    /// `free` called with an address that is not an allocation base.
    InvalidFree {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for CmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmaError::OutOfMemory { requested, largest_free } => write!(
                f,
                "cma region exhausted: requested {requested} bytes, largest free block {largest_free}"
            ),
            CmaError::InvalidFree { addr } => {
                write!(f, "invalid cma free of address {addr:#x}")
            }
        }
    }
}

impl std::error::Error for CmaError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    base: u64,
    len: u64,
}

/// First-fit allocator over a physically contiguous carve-out.
#[derive(Debug, Clone)]
pub struct CmaAllocator {
    base: u64,
    size: u64,
    align: u64,
    free: Vec<Block>,      // sorted by base
    allocated: Vec<Block>, // unsorted
    peak_used: u64,
}

impl CmaAllocator {
    /// Creates an allocator over `[base, base+size)` with the given
    /// minimum alignment (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `align` is not a power of two.
    pub fn new(base: u64, size: u64, align: u64) -> Self {
        assert!(size > 0, "cma region must be non-empty");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        CmaAllocator {
            base,
            size,
            align,
            free: vec![Block { base, len: size }],
            allocated: Vec::new(),
            peak_used: 0,
        }
    }

    /// Base physical address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the region in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.allocated.iter().map(|b| b.len).sum()
    }

    /// High-water mark of allocated bytes.
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Largest currently free block.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|b| b.len).max().unwrap_or(0)
    }

    /// Allocates `len` physically contiguous bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CmaError::OutOfMemory`] when no block fits.
    pub fn alloc(&mut self, len: u64) -> Result<u64, CmaError> {
        let len = len.max(1).next_multiple_of(self.align);
        for i in 0..self.free.len() {
            let blk = self.free[i];
            if blk.len >= len {
                let addr = blk.base;
                if blk.len == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = Block { base: blk.base + len, len: blk.len - len };
                }
                self.allocated.push(Block { base: addr, len });
                self.peak_used = self.peak_used.max(self.used());
                return Ok(addr);
            }
        }
        Err(CmaError::OutOfMemory { requested: len, largest_free: self.largest_free() })
    }

    /// Releases an allocation previously returned by [`CmaAllocator::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`CmaError::InvalidFree`] if `addr` is not an allocation base.
    pub fn free(&mut self, addr: u64) -> Result<(), CmaError> {
        let Some(pos) = self.allocated.iter().position(|b| b.base == addr) else {
            return Err(CmaError::InvalidFree { addr });
        };
        let blk = self.allocated.swap_remove(pos);
        // Insert sorted, then coalesce with neighbours.
        let at = self.free.partition_point(|b| b.base < blk.base);
        self.free.insert(at, blk);
        self.coalesce();
        Ok(())
    }

    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.free.len() {
            if self.free[i].base + self.free[i].len == self.free[i + 1].base {
                self.free[i].len += self.free[i + 1].len;
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Size of the allocation starting at `addr`, if any.
    pub fn allocation_len(&self, addr: u64) -> Option<u64> {
        self.allocated.iter().find(|b| b.base == addr).map(|b| b.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_in_region() {
        let mut c = CmaAllocator::new(0x8000_0000, 1 << 20, 64);
        let a = c.alloc(100).expect("fits");
        assert_eq!(a, 0x8000_0000);
        assert_eq!(c.allocation_len(a), Some(128));
        let b = c.alloc(1).expect("fits");
        assert_eq!(b % 64, 0);
        assert!(b >= a + 128);
    }

    #[test]
    fn exhaustion_reports_largest_free() {
        let mut c = CmaAllocator::new(0, 256, 64);
        c.alloc(128).expect("fits");
        let err = c.alloc(256).unwrap_err();
        assert_eq!(err, CmaError::OutOfMemory { requested: 256, largest_free: 128 });
    }

    #[test]
    fn free_coalesces_neighbours() {
        let mut c = CmaAllocator::new(0, 4096, 64);
        let a = c.alloc(1024).expect("a");
        let b = c.alloc(1024).expect("b");
        let d = c.alloc(1024).expect("d");
        c.free(b).expect("free b");
        c.free(a).expect("free a");
        c.free(d).expect("free d");
        assert_eq!(c.largest_free(), 4096);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn invalid_free_is_an_error() {
        let mut c = CmaAllocator::new(0, 4096, 64);
        let err = c.free(0x1234).unwrap_err();
        assert_eq!(err, CmaError::InvalidFree { addr: 0x1234 });
    }

    #[test]
    fn peak_usage_tracks_high_water() {
        let mut c = CmaAllocator::new(0, 4096, 64);
        let a = c.alloc(2048).expect("a");
        c.free(a).expect("free");
        c.alloc(64).expect("b");
        assert_eq!(c.peak_used(), 2048);
    }

    #[test]
    fn allocations_never_overlap() {
        let mut c = CmaAllocator::new(0, 1 << 16, 64);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for len in [100u64, 4000, 64, 1, 8000, 640] {
            let a = c.alloc(len).expect("fits");
            let l = c.allocation_len(a).expect("tracked");
            for &(b, bl) in &spans {
                assert!(a + l <= b || b + bl <= a, "overlap");
            }
            spans.push((a, l));
        }
    }
}
