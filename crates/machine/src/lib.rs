//! # cim-machine — simulated host platform for the TDO-CIM reproduction
//!
//! This crate models the von Neumann half of the system in Fig. 2 (a) of
//! *TDO-CIM* (DATE 2020): a dual-core Arm-A7-class host with private L1
//! data caches and a shared L2, LPDDR3 main memory, a system bus carrying
//! PMIO and DMA traffic, an MMU and a CMA carve-out for physically
//! contiguous shared buffers.
//!
//! The paper profiles hosts in Gem5 and prices them at 128 pJ/instruction;
//! this crate substitutes an instruction-cost model with a real cache
//! simulator, which preserves the quantities the evaluation depends on
//! (dynamic instruction count, stall time, flush cost, DMA time).
//!
//! ```
//! use cim_machine::{Machine, MachineConfig};
//! use cim_machine::cpu::InstClass;
//!
//! let mut m = Machine::new(MachineConfig::test_small());
//! let va = m.alloc_host(1024);
//! m.host_store_f32(va, 42.0);
//! m.core.retire(InstClass::Store, 1);
//! assert_eq!(m.host_load_f32(va), 42.0);
//! ```

pub mod bus;
pub mod cache;
pub mod cma;
pub mod config;
pub mod cpu;
pub mod mem;
pub mod mmu;
pub mod units;

pub use bus::SystemBus;
pub use cache::Hierarchy;
pub use cma::CmaAllocator;
pub use config::MachineConfig;
pub use cpu::Core;
pub use mem::PhysMem;
pub use mmu::Mmu;
pub use units::{Energy, SimTime};

use mmu::PAGE_BYTES;

/// Base of the host heap in virtual address space.
const HOST_HEAP_BASE: u64 = 0x1000_0000;
/// Base of the virtual window onto the CMA region.
const CMA_VA_BASE: u64 = 0xC000_0000;

/// The simulated host platform: CPU core, caches, memory, MMU, bus, CMA.
///
/// All functional data lives in [`PhysMem`]; host-side accessors perform
/// translation, cache simulation (stall accounting) and the actual byte
/// transfer in one call. The CIM accelerator accesses the same memory via
/// uncacheable DMA (see `cim-accel`), so host caches must be flushed before
/// an offload — exactly the coherence protocol of Section II-E.
#[derive(Debug)]
pub struct Machine {
    /// Platform configuration.
    pub cfg: MachineConfig,
    /// Physical memory.
    pub mem: PhysMem,
    /// L1/L2 data hierarchy.
    pub hier: Hierarchy,
    /// The core executing the application (kernels are single-threaded).
    pub core: Core,
    /// Virtual-to-physical translation.
    pub mmu: Mmu,
    /// Allocator for the physically contiguous shared region.
    pub cma: CmaAllocator,
    /// Shared interconnect.
    pub bus: SystemBus,
    heap_next: u64,
    cma_va_next: u64,
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`].
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let mem = PhysMem::new(cfg.phys_mem_bytes);
        let hier = Hierarchy::new(cfg.l1d, cfg.l2, cfg.mem_latency, cfg.freq_hz);
        let core = Core::new(cfg.freq_hz, cfg.pj_per_inst, cfg.pipeline);
        // Frames for anonymous pages come from below the CMA carve-out.
        let mmu = Mmu::new(0x0010_0000, cfg.cma_base);
        let cma = CmaAllocator::new(cfg.cma_base, cfg.cma_bytes, 64);
        let bus = SystemBus::new(cfg.bus);
        Machine {
            cfg,
            mem,
            hier,
            core,
            mmu,
            cma,
            bus,
            heap_next: HOST_HEAP_BASE,
            cma_va_next: CMA_VA_BASE,
        }
    }

    /// Allocates `bytes` of zeroed host heap (page-granular, demand-mapped)
    /// and returns its virtual address.
    pub fn alloc_host(&mut self, bytes: u64) -> u64 {
        let va = self.heap_next;
        let len = bytes.max(1).next_multiple_of(PAGE_BYTES);
        self.mmu.map_anonymous(va, len);
        self.heap_next += len + PAGE_BYTES; // guard page
        va
    }

    /// Allocates a physically contiguous CMA buffer, maps it into the
    /// virtual address space and returns `(va, pa)`.
    ///
    /// # Errors
    ///
    /// Returns [`cma::CmaError::OutOfMemory`] when the carve-out is full.
    pub fn alloc_cma(&mut self, bytes: u64) -> Result<(u64, u64), cma::CmaError> {
        let pa = self.cma.alloc(bytes)?;
        let len = self.cma.allocation_len(pa).expect("just allocated");
        // The virtual window mirrors the physical page offset so that one
        // linear mapping covers the buffer.
        let va = self.cma_va_next + pa % PAGE_BYTES;
        self.mmu.map_contiguous(va, pa, len);
        self.cma_va_next += (pa % PAGE_BYTES + len).next_multiple_of(PAGE_BYTES) + PAGE_BYTES;
        Ok((va, pa))
    }

    /// Frees a CMA buffer previously returned by [`Machine::alloc_cma`].
    ///
    /// # Errors
    ///
    /// Returns [`cma::CmaError::InvalidFree`] for unknown addresses.
    pub fn free_cma(&mut self, va: u64, pa: u64) -> Result<(), cma::CmaError> {
        let len = self.cma.allocation_len(pa).ok_or(cma::CmaError::InvalidFree { addr: pa })?;
        self.cma.free(pa)?;
        self.mmu.unmap(va, len);
        Ok(())
    }

    fn translate(&self, va: u64) -> u64 {
        self.mmu.translate(va).expect("host access to unmapped page")
    }

    /// Cached host load of an `f32`; charges stall cycles to the core.
    pub fn host_load_f32(&mut self, va: u64) -> f32 {
        let pa = self.translate(va);
        let out = self.hier.access(pa, 4, false);
        self.core.stall(out.stall_cycles);
        self.mem.read_f32(pa)
    }

    /// Cached host store of an `f32`; charges stall cycles to the core.
    pub fn host_store_f32(&mut self, va: u64, v: f32) {
        let pa = self.translate(va);
        let out = self.hier.access(pa, 4, true);
        self.core.stall(out.stall_cycles);
        self.mem.write_f32(pa, v);
    }

    /// Cached host load of a strided run of `f32`s: element `i` comes from
    /// `va + i*stride`. The run is classified at page and cache-line
    /// granularity — one translate per 4 KiB page, one tag lookup per
    /// distinct line — and the aggregate stall is charged to the core
    /// once, with totals identical to calling [`Machine::host_load_f32`]
    /// per element.
    pub fn host_load_f32_run(&mut self, va: u64, stride: i64, out: &mut [f32]) {
        if stride == 4 {
            return self.host_load_f32_slice(va, out);
        }
        if !va.is_multiple_of(4) || stride % 4 != 0 {
            // Words may straddle page boundaries: scalar path.
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.host_load_f32(va.wrapping_add((i as i64 * stride) as u64));
            }
            return;
        }
        let mut done = 0usize;
        let mut addr = va;
        let mut stall = 0u64;
        while done < out.len() {
            // All elements of the burst sit on one VA page: one translate,
            // physically contiguous with the same stride.
            let k = cache::burst_len(addr, PAGE_BYTES, stride, (out.len() - done) as u64) as usize;
            let pa = self.translate(addr);
            stall += self.hier.access_block(pa, 4, k as u64, stride, false).stall_cycles;
            let mut a = pa;
            for slot in &mut out[done..done + k] {
                *slot = self.mem.read_f32(a);
                a = a.wrapping_add(stride as u64);
            }
            addr = addr.wrapping_add((k as i64).wrapping_mul(stride) as u64);
            done += k;
        }
        self.core.stall(stall);
    }

    /// Cached host store of a strided run of `f32`s; the store-side dual
    /// of [`Machine::host_load_f32_run`].
    pub fn host_store_f32_run(&mut self, va: u64, stride: i64, data: &[f32]) {
        if stride == 4 {
            return self.host_store_f32_slice(va, data);
        }
        if !va.is_multiple_of(4) || stride % 4 != 0 {
            for (i, v) in data.iter().enumerate() {
                self.host_store_f32(va.wrapping_add((i as i64 * stride) as u64), *v);
            }
            return;
        }
        let mut done = 0usize;
        let mut addr = va;
        let mut stall = 0u64;
        while done < data.len() {
            let k = cache::burst_len(addr, PAGE_BYTES, stride, (data.len() - done) as u64) as usize;
            let pa = self.translate(addr);
            stall += self.hier.access_block(pa, 4, k as u64, stride, true).stall_cycles;
            let mut a = pa;
            for v in &data[done..done + k] {
                self.mem.write_f32(a, *v);
                a = a.wrapping_add(stride as u64);
            }
            addr = addr.wrapping_add((k as i64).wrapping_mul(stride) as u64);
            done += k;
        }
        self.core.stall(stall);
    }

    /// Cached host load of a contiguous run of `f32`s starting at `va`,
    /// chunked by [`Mmu::translate_run`] so each physically contiguous
    /// stretch costs one cache run and one frame-chunked memory copy.
    pub fn host_load_f32_slice(&mut self, va: u64, out: &mut [f32]) {
        if !va.is_multiple_of(4) {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.host_load_f32(va + 4 * i as u64);
            }
            return;
        }
        let mut done = 0usize;
        let mut stall = 0u64;
        while done < out.len() {
            let want = 4 * (out.len() - done) as u64;
            let (pa, run) = self
                .mmu
                .translate_run(va + 4 * done as u64, want)
                .expect("host access to unmapped page");
            let k = (run / 4) as usize;
            stall += self.hier.access_block(pa, 4, k as u64, 4, false).stall_cycles;
            self.mem.read_f32_slice(pa, &mut out[done..done + k]);
            done += k;
        }
        self.core.stall(stall);
    }

    /// Cached host store of a contiguous run of `f32`s starting at `va`;
    /// the store-side dual of [`Machine::host_load_f32_slice`].
    pub fn host_store_f32_slice(&mut self, va: u64, data: &[f32]) {
        if !va.is_multiple_of(4) {
            for (i, v) in data.iter().enumerate() {
                self.host_store_f32(va + 4 * i as u64, *v);
            }
            return;
        }
        let mut done = 0usize;
        let mut stall = 0u64;
        while done < data.len() {
            let want = 4 * (data.len() - done) as u64;
            let (pa, run) = self
                .mmu
                .translate_run(va + 4 * done as u64, want)
                .expect("host access to unmapped page");
            let k = (run / 4) as usize;
            stall += self.hier.access_block(pa, 4, k as u64, 4, true).stall_cycles;
            self.mem.write_f32_slice(pa, &data[done..done + k]);
            done += k;
        }
        self.core.stall(stall);
    }

    /// Cached host copy of `count` `f32` words from `src` to `dst`,
    /// chunked through a bounded buffer. Equivalent to the per-word
    /// load/store loop for non-overlapping ranges; overlapping ranges take
    /// that loop verbatim to preserve its forward-propagation semantics.
    pub fn host_copy_f32(&mut self, src: u64, dst: u64, count: u64) {
        let overlap = src < dst + 4 * count && dst < src + 4 * count;
        if overlap || !src.is_multiple_of(4) || !dst.is_multiple_of(4) {
            for i in 0..count {
                let v = self.host_load_f32(src + 4 * i);
                self.host_store_f32(dst + 4 * i, v);
            }
            return;
        }
        let mut buf = [0f32; 1024];
        let mut done = 0u64;
        while done < count {
            let k = buf.len().min((count - done) as usize);
            self.host_load_f32_slice(src + 4 * done, &mut buf[..k]);
            self.host_store_f32_slice(dst + 4 * done, &buf[..k]);
            done += k as u64;
        }
    }

    /// Uncacheable (device-side or flushed-region) read of raw bytes at a
    /// *physical* address. Used by the accelerator's DMA engine.
    pub fn uncached_read(&mut self, pa: u64, buf: &mut [u8]) {
        self.mem.read(pa, buf);
    }

    /// Uncacheable write of raw bytes at a *physical* address.
    pub fn uncached_write(&mut self, pa: u64, buf: &[u8]) {
        self.mem.write(pa, buf);
    }

    /// Writes initial data into an array without charging the core
    /// (test-bench initialization, "outside the ROI"). Word-aligned runs
    /// go through [`Mmu::translate_run`] and the frame-chunked memory
    /// path — one translate per page instead of per element.
    pub fn poke_f32_slice(&mut self, va: u64, data: &[f32]) {
        if !va.is_multiple_of(4) {
            for (i, v) in data.iter().enumerate() {
                let pa = self.translate(va + 4 * i as u64);
                self.mem.write_f32(pa, *v);
            }
            return;
        }
        let mut done = 0usize;
        while done < data.len() {
            let want = 4 * (data.len() - done) as u64;
            let (pa, run) = self
                .mmu
                .translate_run(va + 4 * done as u64, want)
                .expect("host access to unmapped page");
            let k = (run / 4) as usize;
            self.mem.write_f32_slice(pa, &data[done..done + k]);
            done += k;
        }
    }

    /// Reads data from an array without charging the core.
    pub fn peek_f32_slice(&mut self, va: u64, out: &mut [f32]) {
        if !va.is_multiple_of(4) {
            for (i, slot) in out.iter_mut().enumerate() {
                let pa = self.translate(va + 4 * i as u64);
                *slot = self.mem.read_f32(pa);
            }
            return;
        }
        let mut done = 0usize;
        while done < out.len() {
            let want = 4 * (out.len() - done) as u64;
            let (pa, run) = self
                .mmu
                .translate_run(va + 4 * done as u64, want)
                .expect("host access to unmapped page");
            let k = (run / 4) as usize;
            self.mem.read_f32_slice(pa, &mut out[done..done + k]);
            done += k;
        }
    }

    /// Models the host performing `duration` of useful, independent
    /// compute — "continue with other tasks" (Section II-E) — while an
    /// offloaded command is in flight. The in-order core retires one
    /// ALU instruction per cycle for the span, so the work is visible in
    /// the instruction mix (and priced at pJ/inst) but, unlike
    /// [`cpu::Core::spin_wait`], none of it is wasted polling. Returns
    /// the number of instructions retired.
    pub fn advance_host(&mut self, duration: SimTime) -> u64 {
        let insts = duration.to_cycles(self.cfg.freq_hz);
        self.core.retire(cpu::InstClass::IntAlu, insts);
        insts
    }

    /// Current wall-clock time on the host core.
    pub fn now(&self) -> SimTime {
        self.core.elapsed()
    }

    /// Host energy so far.
    pub fn host_energy(&self) -> Energy {
        self.core.energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::InstClass;

    #[test]
    fn host_heap_allocations_are_disjoint() {
        let mut m = Machine::new(MachineConfig::test_small());
        let a = m.alloc_host(8192);
        let b = m.alloc_host(100);
        assert!(b >= a + 8192);
        m.host_store_f32(a, 1.0);
        m.host_store_f32(b, 2.0);
        assert_eq!(m.host_load_f32(a), 1.0);
        assert_eq!(m.host_load_f32(b), 2.0);
    }

    #[test]
    fn cma_buffers_are_physically_contiguous() {
        let mut m = Machine::new(MachineConfig::test_small());
        let (va, pa) = m.alloc_cma(3 * PAGE_BYTES).expect("cma");
        assert!(m.mmu.is_contiguous(va, 3 * PAGE_BYTES));
        assert_eq!(m.mmu.translate(va).unwrap(), pa);
        m.free_cma(va, pa).expect("free");
        assert!(m.mmu.translate(va).is_err());
    }

    #[test]
    fn host_access_charges_stalls() {
        let mut m = Machine::new(MachineConfig::test_small());
        let va = m.alloc_host(64);
        m.host_load_f32(va); // cold miss -> stall
        assert!(m.core.stall_cycles() > 0);
        let before = m.core.stall_cycles();
        m.host_load_f32(va); // hit
        assert_eq!(m.core.stall_cycles(), before);
    }

    #[test]
    fn device_sees_host_data_after_flush() {
        let mut m = Machine::new(MachineConfig::test_small());
        let (va, pa) = m.alloc_cma(64).expect("cma");
        m.host_store_f32(va, 7.0);
        // Without a flush the cache holds the dirty line; our PhysMem is
        // write-through functionally, but the protocol still flushes:
        let (_, dirty) = m.hier.flush_range(pa, 64);
        assert_eq!(dirty, 1);
        let mut buf = [0u8; 4];
        m.uncached_read(pa, &mut buf);
        assert_eq!(f32::from_le_bytes(buf), 7.0);
    }

    #[test]
    fn poke_peek_do_not_charge_core() {
        let mut m = Machine::new(MachineConfig::test_small());
        let va = m.alloc_host(1024);
        let insts_before = m.core.instructions();
        let cycles_before = m.core.cycles();
        m.poke_f32_slice(va, &[1.0, 2.0, 3.0]);
        let mut out = [0f32; 3];
        m.peek_f32_slice(va, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(m.core.instructions(), insts_before);
        assert_eq!(m.core.cycles(), cycles_before);
    }

    #[test]
    fn run_accessors_match_scalar_loops() {
        // Bulk load/store runs must charge the same stalls, mutate the
        // caches identically and move the same bytes as the scalar loop.
        for stride in [4i64, 8, 64, -4] {
            let mut bulk = Machine::new(MachineConfig::test_small());
            let mut scalar = Machine::new(MachineConfig::test_small());
            let n = 700usize;
            let span = 4 * n as u64 * stride.unsigned_abs();
            let (vb, vs) = (bulk.alloc_host(span), scalar.alloc_host(span));
            assert_eq!(vb, vs);
            let start = if stride < 0 { vb + span - 4 } else { vb };
            let data: Vec<f32> = (0..n).map(|i| i as f32 - 3.25).collect();
            bulk.host_store_f32_run(start, stride, &data);
            for (i, v) in data.iter().enumerate() {
                scalar.host_store_f32(start.wrapping_add((i as i64 * stride) as u64), *v);
            }
            let mut got = vec![0f32; n];
            bulk.host_load_f32_run(start, stride, &mut got);
            let mut want = vec![0f32; n];
            for (i, slot) in want.iter_mut().enumerate() {
                *slot = scalar.host_load_f32(start.wrapping_add((i as i64 * stride) as u64));
            }
            assert_eq!(got, want, "stride {stride}");
            assert_eq!(got, data, "stride {stride}");
            assert_eq!(bulk.core.stall_cycles(), scalar.core.stall_cycles(), "stride {stride}");
            assert_eq!(bulk.hier.l1d.stats(), scalar.hier.l1d.stats(), "stride {stride}");
            assert_eq!(bulk.hier.l2.stats(), scalar.hier.l2.stats(), "stride {stride}");
        }
    }

    #[test]
    fn host_copy_matches_scalar_loop_values() {
        let mut m = Machine::new(MachineConfig::test_small());
        let src = m.alloc_host(8192);
        let dst = m.alloc_host(8192);
        let data: Vec<f32> = (0..2048).map(|i| (i * 3) as f32).collect();
        m.poke_f32_slice(src, &data);
        m.host_copy_f32(src, dst, 2048);
        let mut out = vec![0f32; 2048];
        m.peek_f32_slice(dst, &mut out);
        assert_eq!(out, data);
        assert!(m.core.stall_cycles() > 0, "copy is a cached host access");
        // Overlapping copy keeps the forward word-loop semantics.
        m.host_copy_f32(dst, dst + 4, 3);
        let mut o = [0f32; 4];
        m.peek_f32_slice(dst, &mut o);
        assert_eq!(o, [data[0], data[0], data[0], data[0]]);
    }

    #[test]
    fn advance_host_retires_useful_work() {
        let mut m = Machine::new(MachineConfig::test_small());
        let insts = m.advance_host(SimTime::from_us(1.0));
        assert_eq!(insts, m.cfg.freq_hz as u64 / 1_000_000);
        assert_eq!(m.core.instructions(), insts);
        assert_eq!(m.core.spin_instructions(), 0, "overlap work is not spinning");
        assert!((m.now().as_us() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn energy_and_time_track_core() {
        let mut m = Machine::new(MachineConfig::test_small());
        m.core.retire(InstClass::IntAlu, 1200);
        assert!((m.now().as_us() - 1.0).abs() < 1e-9);
        assert!((m.host_energy().as_pj() - 1200.0 * 128.0).abs() < 1e-6);
    }
}
