//! Page-granular virtual-to-physical translation.
//!
//! The CIM driver must hand *physical* addresses to the accelerator
//! (Section II-E: "the driver translates the virtual address used by the
//! host processor to a physical address as the accelerator can work only
//! with physical addresses"). User allocations get demand-allocated frames;
//! CMA buffers are mapped physically contiguous so a single base address
//! suffices for DMA.

use std::cell::Cell;
use std::collections::HashMap;

/// Page size used for translation (matches Linux 4 KiB pages).
pub const PAGE_BYTES: u64 = 4096;

/// Error translating a virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// The faulting virtual address.
    pub va: u64,
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unmapped virtual address {:#x}", self.va)
    }
}

impl std::error::Error for TranslateError {}

/// Single-address-space page table with bump-pointer frame allocation.
#[derive(Debug)]
pub struct Mmu {
    table: HashMap<u64, u64>, // vpn -> pfn
    next_frame: u64,
    frame_limit: u64,
    // One-entry TLB: the interpreter's inner loops walk arrays
    // sequentially, so caching the last (vpn, pfn) pair skips the hash
    // lookup on almost every access. `u64::MAX` marks it empty; map only
    // ever adds pages, so only `unmap` must invalidate.
    tlb: Cell<(u64, u64)>,
}

impl Mmu {
    /// Creates an MMU allocating frames in `[frame_base, frame_limit)`
    /// physical bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or unaligned to pages.
    pub fn new(frame_base: u64, frame_limit: u64) -> Self {
        assert!(frame_base < frame_limit, "empty frame pool");
        assert_eq!(frame_base % PAGE_BYTES, 0, "frame base must be page aligned");
        assert_eq!(frame_limit % PAGE_BYTES, 0, "frame limit must be page aligned");
        Mmu {
            table: HashMap::new(),
            next_frame: frame_base / PAGE_BYTES,
            frame_limit,
            tlb: Cell::new((u64::MAX, 0)),
        }
    }

    /// Maps `[va, va+len)` to fresh physical frames (not necessarily
    /// contiguous), demand-allocation style.
    ///
    /// # Panics
    ///
    /// Panics if the physical frame pool is exhausted or a page is already
    /// mapped.
    pub fn map_anonymous(&mut self, va: u64, len: u64) {
        let first = va / PAGE_BYTES;
        let last = (va + len.max(1) - 1) / PAGE_BYTES;
        for vpn in first..=last {
            assert!(!self.table.contains_key(&vpn), "page {vpn:#x} already mapped");
            assert!(
                self.next_frame * PAGE_BYTES < self.frame_limit,
                "physical frame pool exhausted"
            );
            self.table.insert(vpn, self.next_frame);
            self.next_frame += 1;
        }
    }

    /// Maps `[va, va+len)` linearly onto the physically contiguous range
    /// starting at `pa` (used for CMA buffers).
    ///
    /// # Panics
    ///
    /// Panics if `va` and `pa` have different page offsets or a page is
    /// already mapped.
    pub fn map_contiguous(&mut self, va: u64, pa: u64, len: u64) {
        assert_eq!(va % PAGE_BYTES, pa % PAGE_BYTES, "va/pa offsets must agree");
        let pages = (va % PAGE_BYTES + len).div_ceil(PAGE_BYTES);
        for i in 0..pages {
            let vpn = va / PAGE_BYTES + i;
            assert!(!self.table.contains_key(&vpn), "page {vpn:#x} already mapped");
            self.table.insert(vpn, pa / PAGE_BYTES + i);
        }
    }

    /// Removes the mapping for `[va, va+len)`.
    pub fn unmap(&mut self, va: u64, len: u64) {
        let first = va / PAGE_BYTES;
        let last = (va + len.max(1) - 1) / PAGE_BYTES;
        for vpn in first..=last {
            self.table.remove(&vpn);
        }
        self.tlb.set((u64::MAX, 0));
    }

    /// Translates a virtual address to a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] if the page is unmapped.
    pub fn translate(&self, va: u64) -> Result<u64, TranslateError> {
        let vpn = va / PAGE_BYTES;
        let (hit_vpn, hit_pfn) = self.tlb.get();
        if hit_vpn == vpn {
            return Ok(hit_pfn * PAGE_BYTES + va % PAGE_BYTES);
        }
        match self.table.get(&vpn) {
            Some(pfn) => {
                self.tlb.set((vpn, *pfn));
                Ok(pfn * PAGE_BYTES + va % PAGE_BYTES)
            }
            None => Err(TranslateError { va }),
        }
    }

    /// Translates the run `[va, va+len)`, returning `(pa, run_len)` where
    /// `run_len` is the length of the maximal physically *contiguous*
    /// prefix (at most `len`). One table walk per 4 KiB page instead of
    /// one per scalar; the TLB is left holding the last page of the run so
    /// a following run continues without a walk. The run stops early at a
    /// discontiguous or unmapped page — callers resume at `va + run_len`.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] if the *first* page is unmapped.
    pub fn translate_run(&self, va: u64, len: u64) -> Result<(u64, u64), TranslateError> {
        let base = self.translate(va)?;
        if len == 0 {
            return Ok((base, 0));
        }
        let mut off = PAGE_BYTES - va % PAGE_BYTES;
        while off < len {
            let vpn = (va + off) / PAGE_BYTES;
            let Some(&pfn) = self.table.get(&vpn) else { break };
            if pfn * PAGE_BYTES != base + off {
                break;
            }
            self.tlb.set((vpn, pfn));
            off += PAGE_BYTES;
        }
        Ok((base, off.min(len)))
    }

    /// Returns whether `[va, va+len)` is mapped physically contiguously.
    pub fn is_contiguous(&self, va: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let Ok(base) = self.translate(va) else { return false };
        let mut off = PAGE_BYTES - va % PAGE_BYTES;
        while off < len {
            match self.translate(va + off) {
                Ok(pa) if pa == base + off => off += PAGE_BYTES,
                _ => return false,
            }
        }
        true
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_mapping_translates_within_page() {
        let mut m = Mmu::new(0x10_0000, 0x20_0000);
        m.map_anonymous(0x4000_0000, 8192);
        let pa = m.translate(0x4000_0123).expect("mapped");
        assert_eq!(pa % PAGE_BYTES, 0x123);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn unmapped_address_errors() {
        let m = Mmu::new(0x10_0000, 0x20_0000);
        let err = m.translate(0x1234).unwrap_err();
        assert_eq!(err.va, 0x1234);
        assert!(format!("{err}").contains("unmapped"));
    }

    #[test]
    fn contiguous_mapping_is_linear() {
        let mut m = Mmu::new(0x10_0000, 0x20_0000);
        m.map_contiguous(0x5000_0000, 0x8000_0000, 3 * PAGE_BYTES);
        assert_eq!(m.translate(0x5000_0000).unwrap(), 0x8000_0000);
        assert_eq!(m.translate(0x5000_0000 + 2 * PAGE_BYTES + 7).unwrap(), 0x8000_2007);
        assert!(m.is_contiguous(0x5000_0000, 3 * PAGE_BYTES));
    }

    #[test]
    fn anonymous_pages_are_generally_not_contiguous_with_gaps() {
        let mut m = Mmu::new(0x10_0000, 0x20_0000);
        m.map_anonymous(0x1000, PAGE_BYTES);
        m.map_anonymous(0x9000, PAGE_BYTES); // consumes next frame
        m.map_anonymous(0x2000, PAGE_BYTES); // third frame: 0x1000..0x3000 not linear
        assert!(!m.is_contiguous(0x1000, 2 * PAGE_BYTES));
    }

    #[test]
    fn translate_run_covers_contiguous_prefix() {
        let mut m = Mmu::new(0x10_0000, 0x20_0000);
        m.map_contiguous(0x5000_0000, 0x8000_0000, 3 * PAGE_BYTES);
        // Whole range in one run, from an offset within the first page.
        let (pa, run) = m.translate_run(0x5000_0010, 3 * PAGE_BYTES - 0x10).unwrap();
        assert_eq!(pa, 0x8000_0010);
        assert_eq!(run, 3 * PAGE_BYTES - 0x10);
        // Run clipped to the requested length.
        let (_, run) = m.translate_run(0x5000_0000, 100).unwrap();
        assert_eq!(run, 100);
        // Run stops at the end of the mapping (next page unmapped).
        let (_, run) = m.translate_run(0x5000_0000 + 2 * PAGE_BYTES, 4 * PAGE_BYTES).unwrap();
        assert_eq!(run, PAGE_BYTES);
    }

    #[test]
    fn translate_run_stops_at_discontiguity() {
        let mut m = Mmu::new(0x10_0000, 0x20_0000);
        m.map_anonymous(0x1000, PAGE_BYTES);
        m.map_anonymous(0x9000, PAGE_BYTES); // consumes next frame
        m.map_anonymous(0x2000, PAGE_BYTES); // not contiguous with 0x1000
        let (pa, run) = m.translate_run(0x1000, 2 * PAGE_BYTES).unwrap();
        assert_eq!(pa, m.translate(0x1000).unwrap());
        assert_eq!(run, PAGE_BYTES);
        // Resuming past the prefix picks up the next page.
        let (pa2, run2) = m.translate_run(0x1000 + run, PAGE_BYTES).unwrap();
        assert_eq!(pa2, m.translate(0x2000).unwrap());
        assert_eq!(run2, PAGE_BYTES);
        assert!(m.translate_run(0x8_0000, 16).is_err());
    }

    #[test]
    fn unmap_removes_translation() {
        let mut m = Mmu::new(0x10_0000, 0x20_0000);
        m.map_anonymous(0x7000, PAGE_BYTES);
        assert!(m.translate(0x7000).is_ok());
        m.unmap(0x7000, PAGE_BYTES);
        assert!(m.translate(0x7000).is_err());
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut m = Mmu::new(0x10_0000, 0x20_0000);
        m.map_anonymous(0x7000, PAGE_BYTES);
        m.map_anonymous(0x7000, PAGE_BYTES);
    }
}
