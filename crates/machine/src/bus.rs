//! System bus and DMA transfer model.
//!
//! Host, main memory and the CIM accelerator share one interconnect
//! (Fig. 2 (a)). The bus provides two services the accelerator depends on:
//! port-mapped IO to the context registers, and burst DMA between main
//! memory and the accelerator buffers. Accelerator-side accesses are
//! uncacheable, which — together with the driver's pre-invocation flush —
//! enforces coherence over the shared region (Section II-E).

use crate::units::SimTime;

/// Who initiated a bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initiator {
    /// The host CPU (PMIO register accesses, uncached loads/stores).
    Host,
    /// The accelerator's DMA engine.
    Dma,
}

/// Timing parameters of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Sustained DMA bandwidth in bytes per nanosecond (GB/s).
    pub dma_bytes_per_ns: f64,
    /// Fixed setup latency per DMA burst.
    pub dma_setup: SimTime,
    /// Latency of one port-mapped IO register access.
    pub pmio_access: SimTime,
}

impl Default for BusConfig {
    fn default() -> Self {
        // LPDDR3-933 x32: ~7.5 GB/s peak; sustain ~4 GB/s for DMA bursts.
        BusConfig {
            dma_bytes_per_ns: 4.0,
            dma_setup: SimTime::from_ns(200.0),
            pmio_access: SimTime::from_ns(50.0),
        }
    }
}

impl BusConfig {
    /// Time for a DMA burst of `bytes` (setup + sustained transfer; zero
    /// bytes are free). The single timing formula shared by the live bus,
    /// the micro-engine's step model and the analytic estimator.
    pub fn dma_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            SimTime::ZERO
        } else {
            self.dma_setup + SimTime::from_ns(bytes as f64 / self.dma_bytes_per_ns)
        }
    }
}

/// Traffic counters for the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// DMA bytes moved from memory to the accelerator.
    pub dma_bytes_in: u64,
    /// DMA bytes moved from the accelerator to memory.
    pub dma_bytes_out: u64,
    /// Number of DMA bursts.
    pub dma_bursts: u64,
    /// PMIO register reads+writes.
    pub pmio_accesses: u64,
}

/// The shared system interconnect.
#[derive(Debug, Default)]
pub struct SystemBus {
    cfg: BusConfig,
    stats: BusStats,
}

impl SystemBus {
    /// Creates a bus with the given timing configuration.
    pub fn new(cfg: BusConfig) -> Self {
        SystemBus { cfg, stats: BusStats::default() }
    }

    /// Bus timing configuration.
    pub fn config(&self) -> BusConfig {
        self.cfg
    }

    /// Traffic counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Resets traffic counters.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    /// Time for a DMA burst of `bytes` and the bookkeeping for it.
    /// `into_accel` is true when memory is read into accelerator buffers.
    pub fn dma_burst(&mut self, bytes: u64, into_accel: bool) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.stats.dma_bursts += 1;
        if into_accel {
            self.stats.dma_bytes_in += bytes;
        } else {
            self.stats.dma_bytes_out += bytes;
        }
        self.cfg.dma_time(bytes)
    }

    /// Time for one PMIO context-register access.
    pub fn pmio_access(&mut self) -> SimTime {
        self.stats.pmio_accesses += 1;
        self.cfg.pmio_access
    }

    /// Pure estimate of a DMA burst time (no counters touched).
    pub fn estimate_dma(&self, bytes: u64) -> SimTime {
        self.cfg.dma_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_burst_time_scales_with_bytes() {
        let mut bus = SystemBus::new(BusConfig::default());
        let t1 = bus.dma_burst(4096, true);
        let t2 = bus.dma_burst(8192, true);
        assert!(t2 > t1);
        assert_eq!(bus.stats().dma_bursts, 2);
        assert_eq!(bus.stats().dma_bytes_in, 4096 + 8192);
        // setup 200ns + 4096/4 = 1024ns
        assert!((t1.as_ns() - 1224.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_burst_is_free() {
        let mut bus = SystemBus::new(BusConfig::default());
        assert_eq!(bus.dma_burst(0, false), SimTime::ZERO);
        assert_eq!(bus.stats().dma_bursts, 0);
    }

    #[test]
    fn pmio_counted() {
        let mut bus = SystemBus::new(BusConfig::default());
        bus.pmio_access();
        bus.pmio_access();
        assert_eq!(bus.stats().pmio_accesses, 2);
    }

    #[test]
    fn estimate_matches_measured() {
        let mut bus = SystemBus::new(BusConfig::default());
        let est = bus.estimate_dma(65536);
        let got = bus.dma_burst(65536, true);
        assert_eq!(est, got);
    }

    #[test]
    fn directions_tracked_separately() {
        let mut bus = SystemBus::new(BusConfig::default());
        bus.dma_burst(100, true);
        bus.dma_burst(50, false);
        assert_eq!(bus.stats().dma_bytes_in, 100);
        assert_eq!(bus.stats().dma_bytes_out, 50);
    }
}
