//! Host platform configuration (Table I, "Host CPU Spec").

use crate::bus::BusConfig;
use crate::cache::{CacheConfig, MemLatency};
use crate::cpu::PipelineCosts;

/// Complete configuration of the simulated host platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Core clock frequency in Hz (paper: 1.2 GHz).
    pub freq_hz: f64,
    /// Number of Arm-A7 cores (paper: 2; kernels are single-threaded).
    pub cores: usize,
    /// Energy per retired instruction in pJ, including caches (paper: 128).
    pub pj_per_inst: f64,
    /// L1 data cache geometry (paper: 32 KiB).
    pub l1d: CacheConfig,
    /// Shared L2 geometry (paper: 2 MiB).
    pub l2: CacheConfig,
    /// Memory latencies.
    pub mem_latency: MemLatency,
    /// Pipeline issue costs.
    pub pipeline: PipelineCosts,
    /// Interconnect configuration.
    pub bus: BusConfig,
    /// Total physical memory in bytes (paper: 2 GiB LPDDR3).
    pub phys_mem_bytes: u64,
    /// Base physical address of the CMA carve-out for CIM shared buffers.
    pub cma_base: u64,
    /// Size of the CMA carve-out in bytes.
    pub cma_bytes: u64,
    /// Instructions charged per cache line flushed by the driver
    /// (address generation + `DC CIVAC` + loop overhead).
    pub flush_insts_per_line: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            freq_hz: 1.2e9,
            cores: 2,
            pj_per_inst: 128.0,
            l1d: CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 4 },
            l2: CacheConfig { size_bytes: 2 * 1024 * 1024, line_bytes: 64, ways: 8 },
            mem_latency: MemLatency::default(),
            pipeline: PipelineCosts::default(),
            bus: BusConfig::default(),
            phys_mem_bytes: 2 * 1024 * 1024 * 1024,
            cma_base: 0x6000_0000,
            cma_bytes: 256 * 1024 * 1024,
            flush_insts_per_line: 4,
        }
    }
}

impl MachineConfig {
    /// A scaled-down configuration for fast unit tests (same ratios,
    /// smaller caches and memory).
    pub fn test_small() -> Self {
        MachineConfig {
            l1d: CacheConfig { size_bytes: 4 * 1024, line_bytes: 64, ways: 2 },
            l2: CacheConfig { size_bytes: 64 * 1024, line_bytes: 64, ways: 4 },
            phys_mem_bytes: 64 * 1024 * 1024,
            cma_base: 0x0200_0000,
            cma_bytes: 16 * 1024 * 1024,
            ..MachineConfig::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (CMA outside physical memory,
    /// zero frequency, cache geometry errors).
    pub fn validate(&self) {
        assert!(self.freq_hz > 0.0, "frequency must be positive");
        assert!(self.cores >= 1, "need at least one core");
        assert!(self.pj_per_inst >= 0.0, "energy per instruction must be non-negative");
        assert!(
            self.cma_base.checked_add(self.cma_bytes).is_some_and(|e| e <= self.phys_mem_bytes),
            "CMA carve-out must fit in physical memory"
        );
        let _ = self.l1d.sets();
        let _ = self.l2.sets();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = MachineConfig::default();
        assert_eq!(c.freq_hz, 1.2e9);
        assert_eq!(c.cores, 2);
        assert_eq!(c.pj_per_inst, 128.0);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.phys_mem_bytes, 2 * 1024 * 1024 * 1024);
        c.validate();
    }

    #[test]
    fn test_small_is_valid() {
        MachineConfig::test_small().validate();
    }

    #[test]
    #[should_panic(expected = "CMA carve-out")]
    fn cma_outside_memory_panics() {
        let cfg = MachineConfig { cma_base: 4 * 1024 * 1024 * 1024, ..MachineConfig::test_small() };
        cfg.validate();
    }
}
