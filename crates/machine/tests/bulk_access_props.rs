//! Differential properties for the bulk memory-system fast path.
//!
//! The bulk entry points — [`Cache::access_run`], [`Hierarchy::access_block`],
//! `Machine::host_{load,store}_f32_run` — promise results *provably
//! identical* to the scalar loops they replace: same `CacheStats`, same LRU
//! stamps and victim choices (observable as the resident-line sets after any
//! interleaving), same stall cycles, same memory contents. Each property
//! drives a bulk instance and a scalar-only reference through a random
//! interleaving of accesses and flushes decoded from sampled words, and
//! asserts bit-for-bit equality after every operation.

use cim_machine::cache::{Cache, CacheConfig, Hierarchy, LineOutcome, MemLatency, RunOutcome};
use cim_machine::{Machine, MachineConfig};
use proptest::prelude::*;

/// Splits one sampled word into small fields (field order fixed so cases
/// reproduce from the reported inputs).
struct Fields(u64);

impl Fields {
    fn take(&mut self, bits: u32) -> u64 {
        let v = self.0 & ((1 << bits) - 1);
        self.0 >>= bits;
        v
    }
}

fn small_cache() -> Cache {
    // 8 sets x 2 ways x 64 B lines = 1 KiB: small enough that random
    // traffic constantly evicts, exercising victim choice and writebacks.
    Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 2 })
}

fn small_hierarchy() -> Hierarchy {
    Hierarchy::new(
        CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 2 },
        CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 },
        MemLatency { l1_hit_cycles: 0, l2_hit_cycles: 10, dram_ns: 100.0 },
        1.0e9,
    )
}

/// Byte stride decoded from 6 bits: −124..=128 in steps of 4, plus odd
/// strides for the unaligned paths.
fn decode_stride(f: &mut Fields) -> i64 {
    let raw = f.take(6) as i64 - 31; // -31..=32
    if raw == 0 {
        0
    } else {
        raw * 4 + (raw % 3) // mostly word multiples, some odd
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// `Cache::access_run` vs the scalar `access_line` loop under random
    /// interleavings of lines, runs and flushes.
    #[test]
    fn cache_runs_match_scalar_interleaved(words in collection::vec(0u64..u64::MAX, 4..40)) {
        let mut bulk = small_cache();
        let mut scalar = small_cache();
        for w in words {
            let mut f = Fields(w);
            match f.take(2) {
                0 => {
                    let addr = f.take(14);
                    let write = f.take(1) == 1;
                    prop_assert_eq!(bulk.access_line(addr, write), scalar.access_line(addr, write));
                }
                1 => {
                    let count = f.take(9) + 1;
                    let stride = decode_stride(&mut f);
                    let write = f.take(1) == 1;
                    // Keep every address of the run nonnegative.
                    let span = count as i64 * stride.abs();
                    let start = f.take(13) + span.max(0) as u64;
                    let out = bulk.access_run(start, count, stride, write);
                    let mut want = RunOutcome::default();
                    let mut addr = start;
                    for _ in 0..count {
                        match scalar.access_line(addr, write) {
                            LineOutcome::Hit => want.hits += 1,
                            LineOutcome::Miss { writeback } => {
                                want.misses += 1;
                                want.writebacks += u64::from(writeback);
                            }
                        }
                        addr = addr.wrapping_add(stride as u64);
                    }
                    prop_assert_eq!(out, want);
                }
                2 => {
                    let start = f.take(14);
                    // Large lengths trigger the set-sweep flush on both.
                    let len = f.take(24);
                    prop_assert_eq!(bulk.flush_range(start, len), scalar.flush_range(start, len));
                }
                _ => {
                    prop_assert_eq!(bulk.flush_all(), scalar.flush_all());
                }
            }
            prop_assert_eq!(bulk.stats(), scalar.stats());
            prop_assert_eq!(bulk.dirty_lines(), scalar.dirty_lines());
            prop_assert_eq!(bulk.resident_lines(), scalar.resident_lines());
        }
    }

    /// `Hierarchy::access_block` vs the scalar `access` loop: stall
    /// cycles, worst level reached, both levels' stats and resident sets.
    #[test]
    fn hierarchy_blocks_match_scalar_interleaved(words in collection::vec(0u64..u64::MAX, 4..32)) {
        let mut bulk = small_hierarchy();
        let mut scalar = small_hierarchy();
        for w in words {
            let mut f = Fields(w);
            match f.take(2) {
                0 => {
                    let addr = f.take(14);
                    let bytes = 1 << f.take(2); // 1, 2, 4, 8
                    let write = f.take(1) == 1;
                    let a = bulk.access(addr, bytes, write);
                    let b = scalar.access(addr, bytes, write);
                    prop_assert_eq!(a.stall_cycles, b.stall_cycles);
                    prop_assert_eq!(a.level, b.level);
                }
                1 => {
                    let start = f.take(11);
                    let len = f.take(18);
                    prop_assert_eq!(bulk.flush_range(start, len), scalar.flush_range(start, len));
                }
                _ => {
                    let count = f.take(8) + 1;
                    let elem = 1u64 << f.take(2); // 1, 2, 4, 8: odd strides force the scalar path
                    let stride = decode_stride(&mut f);
                    let write = f.take(1) == 1;
                    let span = count as i64 * stride.abs();
                    let start = f.take(12) + span.max(0) as u64;
                    let out = bulk.access_block(start, elem, count, stride, write);
                    let mut stall = 0u64;
                    let mut addr = start;
                    let mut worst = None;
                    for _ in 0..count {
                        let o = scalar.access(addr, elem, write);
                        stall += o.stall_cycles;
                        worst = Some(match (worst, o.level) {
                            (None, l) => l,
                            (Some(w), l) if (l as u8) > (w as u8) => l,
                            (Some(w), _) => w,
                        });
                        addr = addr.wrapping_add(stride as u64);
                    }
                    prop_assert_eq!(out.stall_cycles, stall);
                    prop_assert_eq!(out.level, worst.expect("count >= 1"));
                }
            }
            prop_assert_eq!(bulk.l1d.stats(), scalar.l1d.stats());
            prop_assert_eq!(bulk.l2.stats(), scalar.l2.stats());
            prop_assert_eq!(bulk.l1d.dirty_lines(), scalar.l1d.dirty_lines());
            prop_assert_eq!(bulk.l2.dirty_lines(), scalar.l2.dirty_lines());
            prop_assert_eq!(bulk.l1d.resident_lines(), scalar.l1d.resident_lines());
            prop_assert_eq!(bulk.l2.resident_lines(), scalar.l2.resident_lines());
        }
    }

    /// Machine-level run accessors (translate + cache + memory + stall
    /// charging) vs per-element `host_load_f32`/`host_store_f32`, with
    /// flushes interleaved; memory contents compared byte for byte.
    #[test]
    fn machine_runs_match_scalar_interleaved(words in collection::vec(0u64..u64::MAX, 4..24)) {
        const ELEMS: u64 = 4096; // 16 KiB buffer spanning four pages
        let mut bulk = Machine::new(MachineConfig::test_small());
        let mut scalar = Machine::new(MachineConfig::test_small());
        let vb = bulk.alloc_host(4 * ELEMS);
        let vs = scalar.alloc_host(4 * ELEMS);
        assert_eq!(vb, vs);
        let va = vb;
        for w in words {
            let mut f = Fields(w);
            match f.take(2) {
                0 => {
                    let idx = f.take(12) % ELEMS;
                    let write = f.take(1) == 1;
                    if write {
                        let v = f.take(16) as f32 - 1000.0;
                        bulk.host_store_f32(va + 4 * idx, v);
                        scalar.host_store_f32(va + 4 * idx, v);
                    } else {
                        prop_assert_eq!(
                            bulk.host_load_f32(va + 4 * idx).to_bits(),
                            scalar.host_load_f32(va + 4 * idx).to_bits()
                        );
                    }
                }
                1 => {
                    // Flush a physical range covering part of the buffer.
                    let pa = bulk.mmu.translate(va).expect("mapped");
                    let start = pa + f.take(13);
                    let len = f.take(14);
                    prop_assert_eq!(
                        bulk.hier.flush_range(start, len),
                        scalar.hier.flush_range(start, len)
                    );
                }
                _ => {
                    // Strided run within the buffer: pick stride (in
                    // elements), then a base that keeps both endpoints in
                    // range for the sampled count.
                    let stride_e = f.take(3) as i64 - 3; // -3..=4
                    let count = (f.take(8) + 1).min(if stride_e == 0 {
                        256
                    } else {
                        ELEMS / stride_e.unsigned_abs()
                    }).max(1);
                    let span_e = (count as i64 - 1) * stride_e;
                    let base_min = (-span_e).max(0) as u64;
                    let base_max = (ELEMS as i64 - 1 - span_e.max(0)) as u64;
                    let base = base_min + f.take(12) % (base_max - base_min + 1);
                    let start = va + 4 * base;
                    let stride = 4 * stride_e;
                    if f.take(1) == 1 {
                        let seed = f.take(8) as f32;
                        let data: Vec<f32> =
                            (0..count).map(|i| seed + i as f32 * 0.25).collect();
                        bulk.host_store_f32_run(start, stride, &data);
                        for (i, v) in data.iter().enumerate() {
                            scalar.host_store_f32(
                                start.wrapping_add((i as i64 * stride) as u64),
                                *v,
                            );
                        }
                    } else {
                        let mut got = vec![0f32; count as usize];
                        bulk.host_load_f32_run(start, stride, &mut got);
                        for (i, slot) in got.iter().enumerate() {
                            let want = scalar
                                .host_load_f32(start.wrapping_add((i as i64 * stride) as u64));
                            prop_assert_eq!(slot.to_bits(), want.to_bits());
                        }
                    }
                }
            }
            prop_assert_eq!(bulk.core.stall_cycles(), scalar.core.stall_cycles());
            prop_assert_eq!(bulk.hier.l1d.stats(), scalar.hier.l1d.stats());
            prop_assert_eq!(bulk.hier.l2.stats(), scalar.hier.l2.stats());
            prop_assert_eq!(bulk.hier.l1d.resident_lines(), scalar.hier.l1d.resident_lines());
            prop_assert_eq!(bulk.hier.l2.resident_lines(), scalar.hier.l2.resident_lines());
        }
        // Final functional state: the whole buffer matches byte for byte.
        let mut a = vec![0f32; ELEMS as usize];
        let mut b = vec![0f32; ELEMS as usize];
        bulk.peek_f32_slice(va, &mut a);
        scalar.peek_f32_slice(va, &mut b);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a), bits(&b));
    }
}
