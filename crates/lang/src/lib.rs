//! # tdo-lang — mini-C front-end
//!
//! The entry point of the TDO-CIM flow is "an application written in a
//! high-level language" (Section III-A); the paper uses Clang. This crate
//! provides the equivalent front-end for a C subset sufficient for
//! PolyBench-style kernels: global constants, global `f32` arrays and
//! scalars, counted `for` loops, `if` statements and (compound)
//! assignments. [`compile`] takes source text to a [`tdo_ir::Program`].
//!
//! ```
//! let src = r#"
//!     const int N = 4;
//!     float y[N]; float A[N][N]; float x[N];
//!     void kernel() {
//!       for (int i = 0; i < N; i++)
//!         for (int j = 0; j < N; j++)
//!           y[i] += A[i][j] * x[j];
//!     }
//! "#;
//! let prog = tdo_lang::compile(src)?;
//! assert_eq!(prog.arrays.len(), 3);
//! # Ok::<(), tdo_lang::FrontendError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::{FrontendError, Pos};
pub use lower::compile;
pub use parser::parse;
