//! Front-end diagnostics with source positions.

use std::fmt;

/// A position in the source text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number.
    pub line: u32,
    /// Column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A front-end error (lexing, parsing or semantic analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// Human-readable description.
    pub msg: String,
    /// Where it happened.
    pub pos: Pos,
}

impl FrontendError {
    /// Creates an error at a position.
    pub fn new(msg: impl Into<String>, pos: Pos) -> Self {
        FrontendError { msg: msg.into(), pos }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = FrontendError::new("unexpected token", Pos { line: 3, col: 14 });
        assert_eq!(e.to_string(), "3:14: unexpected token");
    }
}
