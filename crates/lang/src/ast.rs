//! Abstract syntax tree of the mini-C kernel language.

use crate::error::Pos;

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `const int N = <const-expr>;`
    Const {
        /// Constant name.
        name: String,
        /// Value expression (const-evaluated during lowering).
        value: AExpr,
        /// Position.
        pos: Pos,
    },
    /// `float A[N][M];` or `float alpha = 1.5;`
    Array {
        /// Array name.
        name: String,
        /// Dimension expressions (empty for scalars).
        dims: Vec<AExpr>,
        /// Scalar initializer.
        init: Option<f64>,
        /// Position.
        pos: Pos,
    },
    /// `void kernel() { ... }`
    Func {
        /// Function name.
        name: String,
        /// Body statements.
        body: Vec<AStmt>,
        /// Position.
        pos: Pos,
    },
}

/// Comparison in a `for` condition or `if`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ACmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// An l-value (also used as a load expression).
#[derive(Debug, Clone, PartialEq)]
pub struct ALval {
    /// Array or scalar name.
    pub name: String,
    /// Subscripts.
    pub idx: Vec<AExpr>,
    /// Position.
    pub pos: Pos,
}

/// Binary operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ABinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AExpr {
    /// Integer literal.
    Int(i64, Pos),
    /// Float literal.
    Float(f64, Pos),
    /// Identifier or indexed reference.
    Ref(ALval),
    /// Negation.
    Neg(Box<AExpr>, Pos),
    /// Binary operation.
    Bin(ABinOp, Box<AExpr>, Box<AExpr>, Pos),
}

impl AExpr {
    /// Source position of the expression head.
    pub fn pos(&self) -> Pos {
        match self {
            AExpr::Int(_, p) | AExpr::Float(_, p) | AExpr::Neg(_, p) | AExpr::Bin(_, _, _, p) => *p,
            AExpr::Ref(l) => l.pos,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum AStmt {
    /// `for (int i = lo; i < hi; i++) body`
    For {
        /// Induction variable name.
        var: String,
        /// Initialization expression.
        init: AExpr,
        /// Condition operator (`<` or `<=`).
        cmp: ACmp,
        /// Bound expression.
        bound: AExpr,
        /// Step (`i++` is 1).
        step: i64,
        /// Body.
        body: Vec<AStmt>,
        /// Position.
        pos: Pos,
    },
    /// `if (a < b) ... else ...`
    If {
        /// Left comparison operand.
        lhs: AExpr,
        /// Comparison operator.
        cmp: ACmp,
        /// Right comparison operand.
        rhs: AExpr,
        /// Taken branch.
        then_body: Vec<AStmt>,
        /// Else branch.
        else_body: Vec<AStmt>,
        /// Position.
        pos: Pos,
    },
    /// `lval op= expr;`
    Assign {
        /// Destination.
        lval: ALval,
        /// Operator.
        op: AssignOp,
        /// Value.
        value: AExpr,
        /// Position.
        pos: Pos,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_pos_propagates() {
        let p = Pos { line: 2, col: 5 };
        let e = AExpr::Neg(Box::new(AExpr::Int(1, Pos::default())), p);
        assert_eq!(e.pos(), p);
        let l = ALval { name: "A".into(), idx: vec![], pos: p };
        assert_eq!(AExpr::Ref(l).pos(), p);
    }
}
