//! Semantic analysis and lowering from AST to the loop IR.
//!
//! Resolves constants, binds arrays and loop variables, enforces the type
//! discipline (integer index expressions, float data expressions), expands
//! compound assignments and normalizes `<=` loops to exclusive bounds.

use crate::ast::{ABinOp, ACmp, AExpr, ALval, AStmt, AssignOp, Item};
use crate::error::{FrontendError, Pos};
use crate::parser::parse;
use std::collections::HashMap;
use tdo_ir::{Access, ArrayId, CmpOp, Cond, Expr, IfStmt, Program, Stmt, VarId};

/// Compiles source text all the way to an IR [`Program`].
///
/// # Errors
///
/// Lexical, syntactic or semantic errors with source positions.
pub fn compile(src: &str) -> Result<Program, FrontendError> {
    let items = parse(src)?;
    lower(&items)
}

/// Lowers parsed items to an IR [`Program`].
///
/// The entry point is the function named `kernel`, or the only function if
/// there is exactly one.
///
/// # Errors
///
/// Semantic errors (unknown names, rank mismatches, non-integer indices,
/// missing entry point).
pub fn lower(items: &[Item]) -> Result<Program, FrontendError> {
    let mut lw = Lowerer {
        prog: Program::new("kernel"),
        consts: HashMap::new(),
        arrays: HashMap::new(),
        scopes: Vec::new(),
    };
    let mut funcs: Vec<(&String, &Vec<AStmt>, Pos)> = Vec::new();
    for item in items {
        match item {
            Item::Const { name, value, pos } => {
                let v = lw.eval_const(value)?;
                if lw.consts.insert(name.clone(), v).is_some() {
                    return Err(FrontendError::new(format!("constant `{name}` redefined"), *pos));
                }
            }
            Item::Array { name, dims, init, pos } => {
                if lw.arrays.contains_key(name) || lw.consts.contains_key(name) {
                    return Err(FrontendError::new(format!("`{name}` redefined"), *pos));
                }
                if init.is_some() && !dims.is_empty() {
                    return Err(FrontendError::new(
                        format!("array `{name}` cannot have a scalar initializer"),
                        *pos,
                    ));
                }
                let mut extents = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = lw.eval_const(d)?;
                    if v <= 0 {
                        return Err(FrontendError::new(
                            format!("dimension of `{name}` must be positive (got {v})"),
                            d.pos(),
                        ));
                    }
                    extents.push(v as usize);
                }
                let id = if extents.is_empty() {
                    lw.prog.add_scalar(name.clone(), *init)
                } else {
                    lw.prog.add_array(name.clone(), extents)
                };
                lw.arrays.insert(name.clone(), id);
            }
            Item::Func { name, body, pos } => funcs.push((name, body, *pos)),
        }
    }
    let entry = match funcs.iter().find(|(n, _, _)| n.as_str() == "kernel") {
        Some(f) => f,
        None if funcs.len() == 1 => &funcs[0],
        None => {
            return Err(FrontendError::new(
                if funcs.is_empty() {
                    "no function defined".to_string()
                } else {
                    "multiple functions but none named `kernel`".to_string()
                },
                Pos::default(),
            ))
        }
    };
    lw.prog.name = format!("kernel_{}", entry.0).replace("kernel_kernel", "kernel");
    let body = lw.lower_block(entry.1)?;
    lw.prog.body = body;
    Ok(lw.prog)
}

struct Lowerer {
    prog: Program,
    consts: HashMap<String, i64>,
    arrays: HashMap<String, ArrayId>,
    scopes: Vec<(String, VarId)>,
}

impl Lowerer {
    fn eval_const(&self, e: &AExpr) -> Result<i64, FrontendError> {
        match e {
            AExpr::Int(v, _) => Ok(*v),
            AExpr::Float(v, p) => {
                Err(FrontendError::new(format!("expected integer constant, got {v}"), *p))
            }
            AExpr::Ref(l) => {
                if !l.idx.is_empty() {
                    return Err(FrontendError::new("constant expression indexes an array", l.pos));
                }
                self.consts.get(&l.name).copied().ok_or_else(|| {
                    FrontendError::new(format!("`{}` is not a constant", l.name), l.pos)
                })
            }
            AExpr::Neg(inner, _) => Ok(-self.eval_const(inner)?),
            AExpr::Bin(op, a, b, p) => {
                let (a, b) = (self.eval_const(a)?, self.eval_const(b)?);
                match op {
                    ABinOp::Add => Ok(a + b),
                    ABinOp::Sub => Ok(a - b),
                    ABinOp::Mul => Ok(a * b),
                    ABinOp::Div => {
                        if b == 0 {
                            Err(FrontendError::new("constant division by zero", *p))
                        } else {
                            Ok(a / b)
                        }
                    }
                }
            }
        }
    }

    fn lookup_var(&self, name: &str) -> Option<VarId> {
        self.scopes.iter().rev().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    fn lower_block(&mut self, stmts: &[AStmt]) -> Result<Vec<Stmt>, FrontendError> {
        stmts.iter().map(|s| self.lower_stmt(s)).collect()
    }

    fn lower_stmt(&mut self, s: &AStmt) -> Result<Stmt, FrontendError> {
        match s {
            AStmt::For { var, init, cmp, bound, step, body, .. } => {
                let lo = self.lower_index_expr(init)?;
                let mut hi = self.lower_index_expr(bound)?;
                if *cmp == ACmp::Le {
                    hi = Expr::add(hi, Expr::Int(1));
                }
                let v = self.prog.fresh_var(var.clone());
                self.scopes.push((var.clone(), v));
                let body = self.lower_block(body)?;
                self.scopes.pop();
                Ok(Stmt::for_loop(v, lo, hi, *step, body))
            }
            AStmt::If { lhs, cmp, rhs, then_body, else_body, .. } => {
                let cond = Cond {
                    op: lower_cmp(*cmp),
                    lhs: self.lower_value_expr(lhs)?,
                    rhs: self.lower_value_expr(rhs)?,
                };
                Ok(Stmt::If(IfStmt {
                    cond,
                    then_body: self.lower_block(then_body)?,
                    else_body: self.lower_block(else_body)?,
                }))
            }
            AStmt::Assign { lval, op, value, pos } => {
                if self.lookup_var(&lval.name).is_some() {
                    return Err(FrontendError::new(
                        format!("cannot assign to loop variable `{}`", lval.name),
                        *pos,
                    ));
                }
                let target = self.lower_lval(lval)?;
                let rhs = self.lower_value_expr(value)?;
                let value = match op {
                    AssignOp::Set => rhs,
                    AssignOp::Add => Expr::add(Expr::Load(target.clone()), rhs),
                    AssignOp::Sub => Expr::sub(Expr::Load(target.clone()), rhs),
                    AssignOp::Mul => Expr::mul(Expr::Load(target.clone()), rhs),
                    AssignOp::Div => Expr::div(Expr::Load(target.clone()), rhs),
                };
                Ok(Stmt::assign(target, value))
            }
        }
    }

    fn lower_lval(&mut self, l: &ALval) -> Result<Access, FrontendError> {
        let Some(&id) = self.arrays.get(&l.name) else {
            return Err(FrontendError::new(
                format!("`{}` is not a declared array or scalar", l.name),
                l.pos,
            ));
        };
        let rank = self.prog.array(id).dims.len();
        if l.idx.len() != rank {
            return Err(FrontendError::new(
                format!("`{}` has rank {rank}, indexed with {} subscripts", l.name, l.idx.len()),
                l.pos,
            ));
        }
        let idx = l.idx.iter().map(|e| self.lower_index_expr(e)).collect::<Result<Vec<_>, _>>()?;
        Ok(Access { array: id, idx })
    }

    /// Integer-typed expressions: loop variables, constants, int literals.
    fn lower_index_expr(&mut self, e: &AExpr) -> Result<Expr, FrontendError> {
        match e {
            AExpr::Int(v, _) => Ok(Expr::Int(*v)),
            AExpr::Float(v, p) => {
                Err(FrontendError::new(format!("float {v} in integer context"), *p))
            }
            AExpr::Ref(l) => {
                if let Some(v) = self.lookup_var(&l.name) {
                    if !l.idx.is_empty() {
                        return Err(FrontendError::new(
                            format!("loop variable `{}` cannot be indexed", l.name),
                            l.pos,
                        ));
                    }
                    return Ok(Expr::Var(v));
                }
                if let Some(c) = self.consts.get(&l.name) {
                    return Ok(Expr::Int(*c));
                }
                Err(FrontendError::new(
                    format!(
                        "`{}` used in integer context (array elements cannot index arrays)",
                        l.name
                    ),
                    l.pos,
                ))
            }
            AExpr::Neg(inner, _) => Ok(Expr::neg(self.lower_index_expr(inner)?)),
            AExpr::Bin(op, a, b, _) => {
                let a = self.lower_index_expr(a)?;
                let b = self.lower_index_expr(b)?;
                Ok(match op {
                    ABinOp::Add => Expr::add(a, b),
                    ABinOp::Sub => Expr::sub(a, b),
                    ABinOp::Mul => Expr::mul(a, b),
                    ABinOp::Div => Expr::div(a, b),
                })
            }
        }
    }

    /// Float-typed (data) expressions: everything is allowed; identifiers
    /// resolve to loop variables, constants or array loads.
    fn lower_value_expr(&mut self, e: &AExpr) -> Result<Expr, FrontendError> {
        match e {
            AExpr::Int(v, _) => Ok(Expr::Int(*v)),
            AExpr::Float(v, _) => Ok(Expr::Float(*v)),
            AExpr::Ref(l) => {
                if let Some(v) = self.lookup_var(&l.name) {
                    if !l.idx.is_empty() {
                        return Err(FrontendError::new(
                            format!("loop variable `{}` cannot be indexed", l.name),
                            l.pos,
                        ));
                    }
                    return Ok(Expr::Var(v));
                }
                if let Some(c) = self.consts.get(&l.name) {
                    return Ok(Expr::Int(*c));
                }
                let access = self.lower_lval(l)?;
                Ok(Expr::Load(access))
            }
            AExpr::Neg(inner, _) => Ok(Expr::neg(self.lower_value_expr(inner)?)),
            AExpr::Bin(op, a, b, _) => {
                let a = self.lower_value_expr(a)?;
                let b = self.lower_value_expr(b)?;
                Ok(match op {
                    ABinOp::Add => Expr::add(a, b),
                    ABinOp::Sub => Expr::sub(a, b),
                    ABinOp::Mul => Expr::mul(a, b),
                    ABinOp::Div => Expr::div(a, b),
                })
            }
        }
    }
}

fn lower_cmp(c: ACmp) -> CmpOp {
    match c {
        ACmp::Lt => CmpOp::Lt,
        ACmp::Le => CmpOp::Le,
        ACmp::Gt => CmpOp::Gt,
        ACmp::Ge => CmpOp::Ge,
        ACmp::Eq => CmpOp::Eq,
        ACmp::Ne => CmpOp::Ne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_ir::interp::{run, PureBackend};
    use tdo_ir::verify::verify;

    const GEMM_SRC: &str = r#"
        const int N = 4;
        float A[N][N]; float B[N][N]; float C[N][N];
        float alpha = 2.0; float beta = 0.5;
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++) {
              C[i][j] = beta * C[i][j];
              for (int k = 0; k < N; k++)
                C[i][j] += alpha * A[i][k] * B[k][j];
            }
        }
    "#;

    #[test]
    fn gemm_lowers_verifies_and_runs() {
        let p = compile(GEMM_SRC).expect("compiles");
        verify(&p).expect("well-formed");
        let a = p.array_by_name("A").expect("A");
        let b = p.array_by_name("B").expect("B");
        let c = p.array_by_name("C").expect("C");
        let mut be = PureBackend::for_program(&p);
        // A = B = I.
        let mut ident = vec![0f32; 16];
        for i in 0..4 {
            ident[i * 4 + i] = 1.0;
        }
        be.set_array(a, &ident);
        be.set_array(b, &ident);
        be.set_array(c, &[1.0; 16]);
        run(&p, &mut be).expect("runs");
        // C = 2*I*I + 0.5*1 => diag 2.5, off-diag 0.5.
        let out = be.array(c);
        assert_eq!(out[0], 2.5);
        assert_eq!(out[1], 0.5);
    }

    #[test]
    fn le_bound_normalizes_to_exclusive() {
        let src = "float A[5]; void kernel() { for (int i = 0; i <= 4; i++) A[i] = 1.0; }";
        let p = compile(src).expect("compiles");
        let mut be = PureBackend::for_program(&p);
        run(&p, &mut be).expect("runs");
        assert_eq!(be.array(ArrayId(0)), &[1.0; 5]);
    }

    #[test]
    fn sibling_loops_can_reuse_names() {
        let src = r#"
            float A[4]; float B[4];
            void kernel() {
              for (int i = 0; i < 4; i++) A[i] = 1.0;
              for (int i = 0; i < 4; i++) B[i] = 2.0;
            }
        "#;
        let p = compile(src).expect("compiles");
        verify(&p).expect("well-formed");
        assert_eq!(p.vars.len(), 2); // two distinct VarIds named i
    }

    #[test]
    fn unknown_name_is_reported_with_position() {
        let src = "void kernel() { X[0] = 1.0; }";
        let err = compile(src).unwrap_err();
        assert!(err.msg.contains('X'));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn rank_mismatch_rejected() {
        let src = "float A[4][4]; void kernel() { A[0] = 1.0; }";
        let err = compile(src).unwrap_err();
        assert!(err.msg.contains("rank"));
    }

    #[test]
    fn float_index_rejected() {
        let src = "float A[4]; void kernel() { A[1.5] = 1.0; }";
        let err = compile(src).unwrap_err();
        assert!(err.msg.contains("integer context"));
    }

    #[test]
    fn indirect_indexing_rejected() {
        let src =
            "float A[4]; float B[4]; void kernel() { for (int i = 0; i < 4; i++) A[B[i]] = 1.0; }";
        assert!(compile(src).is_err());
    }

    #[test]
    fn loop_variable_assignment_rejected() {
        let src = "float A[4]; void kernel() { for (int i = 0; i < 4; i++) i = 0; }";
        let err = compile(src).unwrap_err();
        assert!(err.msg.contains("loop variable"));
    }

    #[test]
    fn entry_point_selection() {
        let src = "float A[1]; void other() { A[0] = 1.0; }";
        assert!(compile(src).is_ok()); // single function is the entry
        let src2 = "float A[1]; void a() { } void b() { }";
        assert!(compile(src2).is_err()); // ambiguous
    }

    #[test]
    fn const_arithmetic() {
        let src = "const int N = 2 * 3 + 1; float A[N]; void kernel() { A[6] = 1.0; }";
        let p = compile(src).expect("compiles");
        assert_eq!(p.array(ArrayId(0)).dims, vec![7]);
    }

    #[test]
    fn compound_assignments_expand() {
        let src = "float x = 10.0; void kernel() { x *= 2.0; x -= 5.0; x /= 3.0; }";
        let p = compile(src).expect("compiles");
        let mut be = PureBackend::for_program(&p);
        run(&p, &mut be).expect("runs");
        assert_eq!(be.array(ArrayId(0))[0], 5.0);
    }
}
