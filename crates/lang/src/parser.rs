//! Recursive-descent parser for the mini-C kernel language.
//!
//! The accepted subset is what PolyBench-style kernels need: global
//! constants, global `float` arrays/scalars, and functions containing
//! counted `for` loops, `if` statements and (compound) assignments.

use crate::ast::{ABinOp, ACmp, AExpr, ALval, AStmt, AssignOp, Item};
use crate::error::{FrontendError, Pos};
use crate::lexer::{lex, Tok, Token};

/// Parses a full translation unit.
///
/// # Errors
///
/// Lexical or syntactic errors with positions.
pub fn parse(src: &str) -> Result<Vec<Item>, FrontendError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let mut items = Vec::new();
    while !p.peek_is_eof() {
        items.push(p.item()?);
    }
    Ok(items)
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.at]
    }

    fn peek_is_eof(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.at].clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<Pos, FrontendError> {
        let pos = self.pos();
        match &self.peek().tok {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(pos)
            }
            other => Err(FrontendError::new(format!("expected `{p}`, found {other:?}"), pos)),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Pos), FrontendError> {
        let pos = self.pos();
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok((s, pos))
            }
            other => Err(FrontendError::new(format!("expected identifier, found {other:?}"), pos)),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<Pos, FrontendError> {
        let pos = self.pos();
        match &self.peek().tok {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(pos)
            }
            other => Err(FrontendError::new(format!("expected `{kw}`, found {other:?}"), pos)),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn item(&mut self) -> Result<Item, FrontendError> {
        if self.peek_keyword("const") {
            let pos = self.keyword("const")?;
            self.keyword("int")?;
            let (name, _) = self.ident()?;
            self.eat_punct("=")?;
            let value = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Item::Const { name, value, pos });
        }
        if self.peek_keyword("float") {
            let pos = self.keyword("float")?;
            let (name, _) = self.ident()?;
            let mut dims = Vec::new();
            while self.try_punct("[") {
                dims.push(self.expr()?);
                self.eat_punct("]")?;
            }
            let mut init = None;
            if self.try_punct("=") {
                let e = self.expr()?;
                init = Some(match e {
                    AExpr::Float(v, _) => v,
                    AExpr::Int(v, _) => v as f64,
                    AExpr::Neg(inner, _) => match *inner {
                        AExpr::Float(v, _) => -v,
                        AExpr::Int(v, _) => -(v as f64),
                        _ => return Err(FrontendError::new("initializer must be a literal", pos)),
                    },
                    _ => return Err(FrontendError::new("initializer must be a literal", pos)),
                });
            }
            self.eat_punct(";")?;
            return Ok(Item::Array { name, dims, init, pos });
        }
        if self.peek_keyword("void") {
            let pos = self.keyword("void")?;
            let (name, _) = self.ident()?;
            self.eat_punct("(")?;
            self.eat_punct(")")?;
            let body = self.block()?;
            return Ok(Item::Func { name, body, pos });
        }
        Err(FrontendError::new(
            format!("expected `const`, `float` or `void`, found {:?}", self.peek().tok),
            self.pos(),
        ))
    }

    fn block(&mut self) -> Result<Vec<AStmt>, FrontendError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.try_punct("}") {
            if self.peek_is_eof() {
                return Err(FrontendError::new("unexpected end of input in block", self.pos()));
            }
            if self.try_punct(";") {
                continue; // empty statement
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<AStmt>, FrontendError> {
        if matches!(&self.peek().tok, Tok::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<AStmt, FrontendError> {
        if self.peek_keyword("for") {
            return self.for_stmt();
        }
        if self.peek_keyword("if") {
            return self.if_stmt();
        }
        // Assignment.
        let lval = self.lval()?;
        let pos = self.pos();
        let op = if self.try_punct("=") {
            AssignOp::Set
        } else if self.try_punct("+=") {
            AssignOp::Add
        } else if self.try_punct("-=") {
            AssignOp::Sub
        } else if self.try_punct("*=") {
            AssignOp::Mul
        } else if self.try_punct("/=") {
            AssignOp::Div
        } else {
            return Err(FrontendError::new(
                format!("expected assignment operator, found {:?}", self.peek().tok),
                pos,
            ));
        };
        let value = self.expr()?;
        self.eat_punct(";")?;
        Ok(AStmt::Assign { lval, op, value, pos })
    }

    fn cmp_op(&mut self) -> Result<ACmp, FrontendError> {
        let pos = self.pos();
        for (p, c) in [
            ("<=", ACmp::Le),
            (">=", ACmp::Ge),
            ("==", ACmp::Eq),
            ("!=", ACmp::Ne),
            ("<", ACmp::Lt),
            (">", ACmp::Gt),
        ] {
            if self.try_punct(p) {
                return Ok(c);
            }
        }
        Err(FrontendError::new(
            format!("expected comparison operator, found {:?}", self.peek().tok),
            pos,
        ))
    }

    fn for_stmt(&mut self) -> Result<AStmt, FrontendError> {
        let pos = self.keyword("for")?;
        self.eat_punct("(")?;
        self.keyword("int")?;
        let (var, _) = self.ident()?;
        self.eat_punct("=")?;
        let init = self.expr()?;
        self.eat_punct(";")?;
        let (cvar, cpos) = self.ident()?;
        if cvar != var {
            return Err(FrontendError::new(
                format!("loop condition tests `{cvar}` but the loop variable is `{var}`"),
                cpos,
            ));
        }
        let cmp = self.cmp_op()?;
        if !matches!(cmp, ACmp::Lt | ACmp::Le) {
            return Err(FrontendError::new("loop condition must use `<` or `<=`", cpos));
        }
        let bound = self.expr()?;
        self.eat_punct(";")?;
        let (svar, spos) = self.ident()?;
        if svar != var {
            return Err(FrontendError::new(
                format!("loop step updates `{svar}` but the loop variable is `{var}`"),
                spos,
            ));
        }
        let step = if self.try_punct("++") {
            1
        } else if self.try_punct("+=") {
            match self.expr()? {
                AExpr::Int(v, _) if v > 0 => v,
                _ => {
                    return Err(FrontendError::new(
                        "loop step must be a positive integer literal",
                        spos,
                    ))
                }
            }
        } else {
            return Err(FrontendError::new("expected `++` or `+=` in loop step", spos));
        };
        self.eat_punct(")")?;
        let body = self.stmt_or_block()?;
        Ok(AStmt::For { var, init, cmp, bound, step, body, pos })
    }

    fn if_stmt(&mut self) -> Result<AStmt, FrontendError> {
        let pos = self.keyword("if")?;
        self.eat_punct("(")?;
        let lhs = self.expr()?;
        let cmp = self.cmp_op()?;
        let rhs = self.expr()?;
        self.eat_punct(")")?;
        let then_body = self.stmt_or_block()?;
        let else_body = if self.peek_keyword("else") {
            self.keyword("else")?;
            self.stmt_or_block()?
        } else {
            Vec::new()
        };
        Ok(AStmt::If { lhs, cmp, rhs, then_body, else_body, pos })
    }

    fn lval(&mut self) -> Result<ALval, FrontendError> {
        let (name, pos) = self.ident()?;
        let mut idx = Vec::new();
        while self.try_punct("[") {
            idx.push(self.expr()?);
            self.eat_punct("]")?;
        }
        Ok(ALval { name, idx, pos })
    }

    fn expr(&mut self) -> Result<AExpr, FrontendError> {
        self.additive()
    }

    fn additive(&mut self) -> Result<AExpr, FrontendError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let pos = self.pos();
            if self.try_punct("+") {
                let rhs = self.multiplicative()?;
                lhs = AExpr::Bin(ABinOp::Add, Box::new(lhs), Box::new(rhs), pos);
            } else if self.try_punct("-") {
                let rhs = self.multiplicative()?;
                lhs = AExpr::Bin(ABinOp::Sub, Box::new(lhs), Box::new(rhs), pos);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<AExpr, FrontendError> {
        let mut lhs = self.unary()?;
        loop {
            let pos = self.pos();
            if self.try_punct("*") {
                let rhs = self.unary()?;
                lhs = AExpr::Bin(ABinOp::Mul, Box::new(lhs), Box::new(rhs), pos);
            } else if self.try_punct("/") {
                let rhs = self.unary()?;
                lhs = AExpr::Bin(ABinOp::Div, Box::new(lhs), Box::new(rhs), pos);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<AExpr, FrontendError> {
        let pos = self.pos();
        if self.try_punct("-") {
            let inner = self.unary()?;
            return Ok(AExpr::Neg(Box::new(inner), pos));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AExpr, FrontendError> {
        let pos = self.pos();
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(AExpr::Int(v, pos))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(AExpr::Float(v, pos))
            }
            Tok::Ident(_) => Ok(AExpr::Ref(self.lval()?)),
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => Err(FrontendError::new(format!("expected expression, found {other:?}"), pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gemm_source() {
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N];
            float alpha = 1.5; float beta;
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++) {
                  C[i][j] = beta * C[i][j];
                  for (int k = 0; k < N; k++)
                    C[i][j] += alpha * A[i][k] * B[k][j];
                }
            }
        "#;
        let items = parse(src).expect("parses");
        assert_eq!(items.len(), 7);
        assert!(matches!(items[0], Item::Const { .. }));
        assert!(matches!(items.last(), Some(Item::Func { .. })));
    }

    #[test]
    fn rejects_mismatched_loop_variable() {
        let src = "void kernel() { for (int i = 0; j < 4; i++) { } }";
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("loop condition"));
    }

    #[test]
    fn rejects_decreasing_loops() {
        let src = "void kernel() { for (int i = 0; i > 4; i++) { } }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn step_variants() {
        let src = "void kernel() { for (int i = 0; i < 8; i += 2) { } }";
        let items = parse(src).expect("parses");
        let Item::Func { body, .. } = &items[0] else { panic!() };
        let AStmt::For { step, .. } = &body[0] else { panic!() };
        assert_eq!(*step, 2);
    }

    #[test]
    fn if_else_parses() {
        let src = "float x; void kernel() { if (1 < 2) x = 1.0; else x = 2.0; }";
        let items = parse(src).expect("parses");
        let Item::Func { body, .. } = &items[1] else { panic!() };
        let AStmt::If { else_body, .. } = &body[0] else { panic!() };
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn precedence_is_standard() {
        let src = "float x; void kernel() { x = 1.0 + 2.0 * 3.0; }";
        let items = parse(src).expect("parses");
        let Item::Func { body, .. } = &items[1] else { panic!() };
        let AStmt::Assign { value, .. } = &body[0] else { panic!() };
        // + at the top, * nested.
        let AExpr::Bin(ABinOp::Add, _, rhs, _) = value else { panic!("got {value:?}") };
        assert!(matches!(**rhs, AExpr::Bin(ABinOp::Mul, _, _, _)));
    }

    #[test]
    fn error_positions_are_reported() {
        let src = "void kernel() {\n  x ~ 1;\n}";
        let err = parse(src).unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn scalar_initializers() {
        let src = "float a = -2.5; float b = 3; void kernel() { }";
        let items = parse(src).expect("parses");
        let Item::Array { init, .. } = &items[0] else { panic!() };
        assert_eq!(*init, Some(-2.5));
        let Item::Array { init, .. } = &items[1] else { panic!() };
        assert_eq!(*init, Some(3.0));
    }
}
