//! Tokenizer for the mini-C kernel language.

use crate::error::{FrontendError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Punctuation or operator (`"("`, `"+="`, ...).
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Source position of its first character.
    pub pos: Pos,
}

const PUNCTS2: &[&str] = &["+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "++", "--"];
const PUNCTS1: &[&str] =
    &["+", "-", "*", "/", "%", "=", "<", ">", "(", ")", "[", "]", "{", "}", ";", ","];

/// Tokenizes the whole input.
///
/// # Errors
///
/// Returns an error for unrecognized characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        let pos = Pos { line, col };
        // Whitespace.
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            i += 2;
            col += 2;
            while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
            if i + 1 >= n {
                return Err(FrontendError::new("unterminated block comment", pos));
            }
            i += 2;
            col += 2;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            col += (i - start) as u32;
            out.push(Token { tok: Tok::Ident(text), pos });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit()) {
            let start = i;
            let mut is_float = false;
            while i < n
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || ((bytes[i] == '+' || bytes[i] == '-')
                        && i > start
                        && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
            {
                if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                    is_float = true;
                }
                i += 1;
            }
            // Trailing f suffix (C float literals).
            if i < n && (bytes[i] == 'f' || bytes[i] == 'F') {
                is_float = true;
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let text_trim = text.trim_end_matches(['f', 'F']);
            col += (i - start) as u32;
            let tok = if is_float {
                Tok::Float(text_trim.parse::<f64>().map_err(|_| {
                    FrontendError::new(format!("malformed float literal `{text}`"), pos)
                })?)
            } else {
                Tok::Int(text_trim.parse::<i64>().map_err(|_| {
                    FrontendError::new(format!("malformed integer literal `{text}`"), pos)
                })?)
            };
            out.push(Token { tok, pos });
            continue;
        }
        // Two-char punctuation.
        if i + 1 < n {
            let two: String = bytes[i..i + 2].iter().collect();
            if let Some(p) = PUNCTS2.iter().find(|p| **p == two) {
                out.push(Token { tok: Tok::Punct(p), pos });
                i += 2;
                col += 2;
                continue;
            }
        }
        let one = c.to_string();
        if let Some(p) = PUNCTS1.iter().find(|p| **p == one) {
            out.push(Token { tok: Tok::Punct(p), pos });
            i += 1;
            col += 1;
            continue;
        }
        return Err(FrontendError::new(format!("unrecognized character `{c}`"), pos));
    }
    out.push(Token { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).expect("lexes").into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_declaration() {
        let toks = kinds("float A[8];");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("float".into()),
                Tok::Ident("A".into()),
                Tok::Punct("["),
                Tok::Int(8),
                Tok::Punct("]"),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        let toks = kinds("i++ x += 1.5e-2 a <= b");
        assert!(toks.contains(&Tok::Punct("++")));
        assert!(toks.contains(&Tok::Punct("+=")));
        assert!(toks.contains(&Tok::Punct("<=")));
        assert!(toks.contains(&Tok::Float(1.5e-2)));
    }

    #[test]
    fn float_suffix_and_leading_dot() {
        assert!(kinds("1.0f").contains(&Tok::Float(1.0)));
        assert!(kinds("2f").contains(&Tok::Float(2.0)));
        assert!(kinds(".5").contains(&Tok::Float(0.5)));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a // line\n b /* block\n across */ c");
        let idents: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").expect("lexes");
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unrecognized_character_errors() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.msg.contains('$'));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* nope").is_err());
    }
}
