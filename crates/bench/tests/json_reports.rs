//! End-to-end validation of the machine-readable perf-gate pipeline:
//! every figure binary's `--json` output must parse as a valid
//! `cim-bench-v1` report, the vendored criterion sink must emit the
//! same schema, and `bench_compare` must exit nonzero on a doctored
//! regression and zero on a clean diff.
//!
//! Problem sizes are pinned tiny (mini/small) so the full sweep stays
//! test-suite fast even in debug builds.

use cim_report::{BenchReport, SCHEMA};
use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tdo_bench_json_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Runs a figure binary with `--json` into `dir` and validates the file.
fn run_and_validate(exe: &str, suite: &str, extra: &[&str], dir: &Path) -> BenchReport {
    let path = dir.join(format!("BENCH_{suite}.json"));
    let out = Command::new(exe).args(extra).arg("--json").arg(&path).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{suite} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let report = BenchReport::read(&path).expect("valid cim-bench-v1");
    assert_eq!(report.suite, suite, "suite tag must match the binary");
    assert!(!report.records.is_empty(), "{suite}: no records emitted");
    report
}

#[test]
fn every_figure_binary_emits_valid_json() {
    let dir = tmp_dir("figures");
    let table1 = run_and_validate(env!("CARGO_BIN_EXE_table1"), "table1", &[], &dir);
    assert!(table1.records.iter().any(|r| r.name == "host"));

    let fig5 = run_and_validate(env!("CARGO_BIN_EXE_fig5_endurance"), "fig5_endurance", &[], &dir);
    assert!(fig5.records[0].metrics.contains_key("smart_over_naive_x"));

    let mini = ["--dataset", "mini"];
    let edp = run_and_validate(env!("CARGO_BIN_EXE_fig6_edp"), "fig6_edp", &mini, &dir);
    assert_eq!(edp.records.last().expect("records").name, "geomean");
    assert!(edp.records[0].modeled_ns > 0.0, "kernel records carry modeled time");
    let energy = run_and_validate(env!("CARGO_BIN_EXE_fig6_energy"), "fig6_energy", &mini, &dir);
    assert!(energy.records[0].metrics.contains_key("energy_mj"));

    let fig7 = run_and_validate(
        env!("CARGO_BIN_EXE_fig7_overlap"),
        "fig7_overlap",
        &["--size", "24", "--batch", "2"],
        &dir,
    );
    assert_eq!(fig7.records.len(), 3, "one record per schedule");
    assert!(fig7.records.iter().any(|r| r.config.dispatch == "async"));

    let fig8 = run_and_validate(
        env!("CARGO_BIN_EXE_fig8_workloads"),
        "fig8_workloads",
        &["--dataset", "mini", "--stream-dataset", "small"],
        &dir,
    );
    assert!(fig8.records.iter().any(|r| r.name.starts_with("chain_")));
    assert!(fig8.records.iter().any(|r| r.name.starts_with("stream_")));

    let fig9 = run_and_validate(
        env!("CARGO_BIN_EXE_fig9_dataflow"),
        "fig9_dataflow",
        &["--dataset", "mini", "--stream-dataset", "small"],
        &dir,
    );
    let df = fig9
        .records
        .iter()
        .find(|r| r.name == "chain_dataflow_async")
        .expect("dataflow record present");
    assert!(df.hoisted_syncs >= 1, "hoisted syncs must surface in the record");
    assert!(df.installs_skipped >= 1, "install skips must surface in the record");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn criterion_sink_emits_the_same_schema() {
    // The vendored criterion harness hand-rolls its JSON; pin it to the
    // schema cim_report validates so bench_compare can diff both kinds.
    let dir = tmp_dir("criterion");
    let path = dir.join("BENCH_bench_demo.json");
    criterion::write_json("bench_demo", path.to_str().expect("utf-8 path"));
    let report = BenchReport::read(&path).expect("criterion JSON is valid cim-bench-v1");
    assert_eq!(report.suite, "bench_demo");
    let text = std::fs::read_to_string(&path).expect("readable");
    assert!(text.contains(SCHEMA));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_compare_gates_on_doctored_regression() {
    let base_dir = tmp_dir("gate_base");
    let fresh_dir = tmp_dir("gate_fresh");
    let fig5 =
        run_and_validate(env!("CARGO_BIN_EXE_fig5_endurance"), "fig5_endurance", &[], &base_dir);

    let compare = |fresh: &Path| {
        Command::new(env!("CARGO_BIN_EXE_bench_compare"))
            .args(["--baseline"])
            .arg(&base_dir)
            .arg("--fresh")
            .arg(fresh)
            .output()
            .expect("bench_compare runs")
    };

    // Identical fresh run: gate passes.
    let clean = fig5.clone();
    clean.write(&fresh_dir.join(clean.file_name())).expect("write");
    let out = compare(&fresh_dir);
    assert!(out.status.success(), "clean diff must pass: {}", String::from_utf8_lossy(&out.stdout));

    // Doctored modeled time: gate must exit nonzero and name the field.
    let mut doctored = fig5.clone();
    doctored.records[0].modeled_ns *= 1.25;
    doctored.write(&fresh_dir.join(doctored.file_name())).expect("write");
    let out = compare(&fresh_dir);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("modeled_ns"), "regression must be named:\n{stdout}");

    // Missing fresh suite: also a gate failure.
    std::fs::remove_file(fresh_dir.join(fig5.file_name())).expect("rm");
    let out = compare(&fresh_dir);
    assert_eq!(out.status.code(), Some(1), "missing suite must exit 1");

    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&fresh_dir).ok();
}
