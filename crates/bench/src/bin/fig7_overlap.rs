//! Host/accelerator overlap and batch speedup under async dispatch —
//! the study the paper gestures at with "the host can either wait on
//! spinlock or continue with other tasks" (Section III-B) but never
//! plots. Three schedules move the same batch of independent GEMMs:
//!
//! 1. **serial**  — one blocking `cim_blas_sgemm` per element (spin);
//! 2. **batched** — one blocking `cim_blas_gemm_batched` call, elements
//!    scheduled onto disjoint tile sub-grids;
//! 3. **async**   — the batched call under `DispatchMode::Async`, with
//!    the host overlapping its own compute before paying the residual
//!    wait at `cim_sync`.
//!
//! Usage: `cargo run --release -p tdo_bench --bin fig7_overlap --
//!     [--grid KxM] [--batch N] [--size N] [--device pcm|reram]`
//!
//! Results are bit-for-bit identical across all three schedules; only
//! the modeled time and host instruction mix change.

use cim_accel::{AccelConfig, AccelStats};
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_report::{BenchRecord, BenchReport};
use cim_runtime::{CimContext, DevPtr, DispatchMode, DriverConfig, Transpose};
use tdo_bench::{
    batch_from_args_or, bench_config, device_flag_help, device_from_args, emit_report,
    grid_flag_help, grid_from_args_or, handle_help, json_flag_help, size_from_args_or,
};

struct RunOut {
    elapsed: SimTime,
    accel_busy: SimTime,
    busy_wait: SimTime,
    spin_insts: u64,
    max_tiles: u64,
    stats: AccelStats,
    wall: std::time::Duration,
    c_bits: Vec<u32>,
}

#[derive(Clone, Copy, PartialEq)]
enum Schedule {
    Serial,
    Batched,
    Async,
}

fn fill(len: usize, seed: usize) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * 0.25 - 1.5).collect()
}

fn run(
    schedule: Schedule,
    grid: (usize, usize),
    batch: usize,
    n: usize,
    device: cim_pcm::DeviceKind,
) -> RunOut {
    let wall_t0 = std::time::Instant::now();
    let mut mach = Machine::new(MachineConfig::default());
    let accel_cfg = AccelConfig::for_device(device).with_grid(grid.0, grid.1);
    let dispatch =
        if schedule == Schedule::Async { DispatchMode::Async } else { DispatchMode::Sync };
    let drv_cfg = DriverConfig { dispatch, ..DriverConfig::default() };
    let mut ctx = CimContext::new(accel_cfg, drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let dev_mat = |ctx: &mut CimContext, mach: &mut Machine, data: &[f32]| -> DevPtr {
        let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
        mach.poke_f32_slice(dev.va, data);
        dev
    };
    let mut a_list = Vec::new();
    let mut b_list = Vec::new();
    let mut c_list = Vec::new();
    for i in 0..batch {
        a_list.push(dev_mat(&mut ctx, &mut mach, &fill(n * n, 3 + 31 * i)));
        b_list.push(dev_mat(&mut ctx, &mut mach, &fill(n * n, 11 + 17 * i)));
        c_list.push(dev_mat(&mut ctx, &mut mach, &vec![0.0; n * n]));
    }
    let t0 = mach.now();
    let mut accel_busy = SimTime::ZERO;
    match schedule {
        Schedule::Serial => {
            for i in 0..batch {
                accel_busy += ctx
                    .cim_blas_sgemm(
                        &mut mach,
                        Transpose::No,
                        Transpose::No,
                        n,
                        n,
                        n,
                        1.0,
                        a_list[i],
                        n,
                        b_list[i],
                        n,
                        0.0,
                        c_list[i],
                        n,
                    )
                    .expect("sgemm");
            }
        }
        Schedule::Batched | Schedule::Async => {
            accel_busy = ctx
                .cim_blas_gemm_batched(
                    &mut mach,
                    Transpose::No,
                    Transpose::No,
                    n,
                    n,
                    n,
                    1.0,
                    &a_list,
                    n,
                    &b_list,
                    n,
                    0.0,
                    &c_list,
                    n,
                )
                .expect("batched");
            if schedule == Schedule::Async {
                // The host "continues with other tasks": overlap most of
                // the predicted accelerator time with useful compute.
                mach.advance_host(accel_busy * 0.9);
                ctx.cim_sync(&mut mach).expect("sync");
            }
        }
    }
    let elapsed = mach.now() - t0;
    let mut c_bits = Vec::new();
    for c in &c_list {
        let mut out = vec![0f32; n * n];
        mach.peek_f32_slice(c.va, &mut out);
        c_bits.extend(out.iter().map(|v| v.to_bits()));
    }
    let stats = *ctx.accel().stats();
    let busy_wait = ctx.driver().stats().busy_wait_time;
    RunOut {
        elapsed,
        accel_busy,
        busy_wait,
        spin_insts: mach.core.spin_instructions(),
        max_tiles: stats.max_tiles_active,
        stats,
        wall: wall_t0.elapsed(),
        c_bits,
    }
}

fn main() {
    handle_help(
        "fig7_overlap",
        "host/accelerator overlap and batch speedup under async dispatch",
        &[
            grid_flag_help((2, 2)),
            "--batch <N>                             independent GEMMs (default: 4)".into(),
            "--size <N>                              per-GEMM dimension (default: 96)".into(),
            device_flag_help(),
            json_flag_help(),
        ],
    );
    let grid = grid_from_args_or((2, 2));
    let batch = batch_from_args_or(4);
    let device = device_from_args();
    // 96 keeps each GEMM inside one 256-wide tile while leaving the
    // install phase visible; larger sizes just scale the same picture.
    let n = size_from_args_or(96);
    eprintln!(
        "running fig7 overlap study: batch of {batch} {n}x{n} GEMMs on {device}, \
         grid {}x{} ...",
        grid.0, grid.1
    );
    let serial = run(Schedule::Serial, grid, batch, n, device);
    let batched = run(Schedule::Batched, grid, batch, n, device);
    let asynch = run(Schedule::Async, grid, batch, n, device);
    assert_eq!(serial.c_bits, batched.c_bits, "schedules must agree bit-for-bit");
    assert_eq!(serial.c_bits, asynch.c_bits, "schedules must agree bit-for-bit");
    assert!(
        asynch.elapsed.as_ns() < serial.elapsed.as_ns(),
        "async batch must beat the serial sum"
    );

    println!(
        "FIG. 7 — HOST/ACCELERATOR OVERLAP ({batch} x {n}x{n} GEMMs, {device}, {}x{} tiles)",
        grid.0, grid.1
    );
    println!("{}", "=".repeat(78));
    println!(
        "{:<10} {:>13} {:>13} {:>13} {:>12} {:>10}",
        "schedule", "total time", "accel busy", "host wait", "spin insts", "max tiles"
    );
    println!("{}", "-".repeat(78));
    for (name, r) in [("serial", &serial), ("batched", &batched), ("async", &asynch)] {
        println!(
            "{:<10} {:>13} {:>13} {:>13} {:>12} {:>10}",
            name,
            format!("{}", r.elapsed),
            format!("{}", r.accel_busy),
            format!("{}", r.busy_wait),
            r.spin_insts,
            r.max_tiles
        );
    }
    println!("{}", "-".repeat(78));
    println!(
        "batch speedup (tile partitioning):   {:>6.2}x  (serial sum / batched)",
        serial.elapsed / batched.elapsed
    );
    println!(
        "total speedup (+ host overlap):      {:>6.2}x  (serial sum / async)",
        serial.elapsed / asynch.elapsed
    );
    println!(
        "host wait hidden by overlap:         {:>6.1}%  of the batched wait",
        (1.0 - asynch.busy_wait / batched.busy_wait) * 100.0
    );
    println!("\nresults bit-for-bit identical across all three schedules.");

    let mut report = BenchReport::new("fig7_overlap");
    for (name, r) in [("serial", &serial), ("batched", &batched), ("async", &asynch)] {
        report.push(
            BenchRecord {
                name: name.into(),
                config: bench_config(Some(device), Some(grid), None, Some(name)),
                wall_ns: r.wall.as_nanos() as f64,
                modeled_ns: r.elapsed.as_ns(),
                installs: r.stats.rows_programmed,
                installs_skipped: r.stats.install_skips,
                hoisted_syncs: 0,
                max_tiles_active: r.max_tiles,
                metrics: Default::default(),
            }
            .with_metric("accel_busy_ns", r.accel_busy.as_ns())
            .with_metric("busy_wait_ns", r.busy_wait.as_ns())
            .with_metric("spin_insts", r.spin_insts as f64),
        );
    }
    emit_report(&report);
}
