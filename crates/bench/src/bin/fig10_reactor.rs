//! Reactor batching and per-tile DMA channels — the two host/device
//! mechanisms PR 7 adds on top of the paper's single status register
//! and single install bus. Two phases:
//!
//! 1. **doorbell batching** — the fig7 batched workload (independent
//!    async GEMMs on disjoint tile sub-grids) drained once through the
//!    legacy per-future wait loops and once through the ring-buffer
//!    reactor: one batched completion-queue read services every
//!    in-flight command, collapsing the status-read count while leaving
//!    results bit-for-bit identical to the serial reference.
//! 2. **DMA channel sweep** — one install-heavy GEMM whose 2x2 block
//!    wave gathers its stationary operand over 1, 2 and `--channels`
//!    per-tile DMA channels: disjoint tiles stop serializing on one
//!    bus and the install phase shrinks, again bit-for-bit.
//!
//! Usage: `cargo run --release -p tdo_bench --bin fig10_reactor --
//!     [--grid KxM] [--batch N] [--size N] [--channels N]
//!     [--device pcm|reram] [--json PATH]`

use cim_accel::{AccelConfig, MAX_DMA_CHANNELS};
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_report::{BenchRecord, BenchReport};
use cim_runtime::{CimContext, DevPtr, DispatchMode, DriverConfig, Transpose, WaitPolicy};
use tdo_bench::{
    batch_from_args_or, bench_config, device_flag_help, device_from_args, emit_report,
    grid_flag_help, grid_from_args_or, handle_help, json_flag_help, size_from_args_or,
    usize_flag_or,
};

fn fill(len: usize, seed: usize) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * 0.25 - 1.5).collect()
}

fn dev_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
    let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
    mach.poke_f32_slice(dev.va, data);
    dev
}

struct DrainOut {
    status_reads: u64,
    batched_polls: u64,
    completions_polled: u64,
    elapsed: SimTime,
    wall: std::time::Duration,
    c_bits: Vec<u32>,
}

/// Phase 1 run: `batch` independent async GEMMs on disjoint sub-grids;
/// the host overlaps past every completion, then drains all futures.
/// With `reactor` the drain is one batched doorbell sweep; without it,
/// every future pays its own status-register read.
fn run_drain(
    reactor: bool,
    grid: (usize, usize),
    batch: usize,
    n: usize,
    device: cim_pcm::DeviceKind,
) -> DrainOut {
    let wall_t0 = std::time::Instant::now();
    let mut mach = Machine::new(MachineConfig::default());
    let accel_cfg = AccelConfig::for_device(device).with_grid(grid.0, grid.1);
    let drv_cfg = DriverConfig {
        dispatch: DispatchMode::Async,
        wait: WaitPolicy::Poll { interval: SimTime::from_us(1.0), insts_per_poll: 20 },
        reactor,
        ..DriverConfig::default()
    };
    let mut ctx = CimContext::new(accel_cfg, drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let mut c_list = Vec::new();
    let mut busy = SimTime::ZERO;
    for i in 0..batch {
        let a = dev_mat(&mut ctx, &mut mach, &fill(n * n, 3 + 31 * i));
        let b = dev_mat(&mut ctx, &mut mach, &fill(n * n, 11 + 17 * i));
        let c = dev_mat(&mut ctx, &mut mach, &vec![0.0; n * n]);
        busy += ctx
            .cim_blas_sgemm(
                &mut mach,
                Transpose::No,
                Transpose::No,
                n,
                n,
                n,
                1.0,
                a,
                n,
                b,
                n,
                0.0,
                c,
                n,
            )
            .expect("sgemm");
        c_list.push(c);
    }
    let t0 = mach.now();
    // "Continue with other tasks" past every predicted completion: the
    // whole batch retires while the host computes, so the drain below
    // measures pure completion-discovery cost.
    mach.advance_host(busy * 1.1);
    ctx.cim_sync(&mut mach).expect("sync");
    let elapsed = mach.now() - t0;
    let mut c_bits = Vec::new();
    for c in &c_list {
        let mut out = vec![0f32; n * n];
        mach.peek_f32_slice(c.va, &mut out);
        c_bits.extend(out.iter().map(|v| v.to_bits()));
    }
    let d = ctx.driver().stats();
    DrainOut {
        status_reads: d.status_reads,
        batched_polls: d.batched_polls,
        completions_polled: d.completions_polled,
        elapsed,
        wall: wall_t0.elapsed(),
        c_bits,
    }
}

/// Serial blocking reference for phase 1's bit-identity check.
fn run_serial_reference(batch: usize, n: usize, device: cim_pcm::DeviceKind) -> Vec<u32> {
    let mut mach = Machine::new(MachineConfig::default());
    let accel_cfg = AccelConfig::for_device(device);
    let mut ctx = CimContext::new(accel_cfg, DriverConfig::default(), &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let mut c_bits = Vec::new();
    for i in 0..batch {
        let a = dev_mat(&mut ctx, &mut mach, &fill(n * n, 3 + 31 * i));
        let b = dev_mat(&mut ctx, &mut mach, &fill(n * n, 11 + 17 * i));
        let c = dev_mat(&mut ctx, &mut mach, &vec![0.0; n * n]);
        ctx.cim_blas_sgemm(
            &mut mach,
            Transpose::No,
            Transpose::No,
            n,
            n,
            n,
            1.0,
            a,
            n,
            b,
            n,
            0.0,
            c,
            n,
        )
        .expect("sgemm");
        let mut out = vec![0f32; n * n];
        mach.peek_f32_slice(c.va, &mut out);
        c_bits.extend(out.iter().map(|v| v.to_bits()));
    }
    c_bits
}

struct ChannelOut {
    channels: usize,
    channels_active: u64,
    install: SimTime,
    elapsed: SimTime,
    busy_per_channel: Vec<SimTime>,
    wall: std::time::Duration,
    c_bits: Vec<u32>,
}

/// Phase 2 run: one install-heavy GEMM whose stationary operand covers
/// a full block wave of the grid, gathered over `channels` DMA channels.
fn run_channels(channels: usize, grid: (usize, usize), device: cim_pcm::DeviceKind) -> ChannelOut {
    let wall_t0 = std::time::Instant::now();
    let mut mach = Machine::new(MachineConfig::default());
    let accel_cfg =
        AccelConfig::for_device(device).with_grid(grid.0, grid.1).with_dma_channels(channels);
    // One block of A per grid tile: a (rows*gk) x (cols*gm) stationary
    // operand installs as a single full wave of concurrent gathers.
    let (m, k, n) = (accel_cfg.cols * grid.1, accel_cfg.rows * grid.0, 8);
    let mut ctx = CimContext::new(accel_cfg, DriverConfig::default(), &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let a = dev_mat(&mut ctx, &mut mach, &fill(m * k, 3));
    let b = dev_mat(&mut ctx, &mut mach, &fill(k * n, 11));
    let c = dev_mat(&mut ctx, &mut mach, &vec![0.0; m * n]);
    let t0 = mach.now();
    ctx.cim_blas_sgemm(
        &mut mach,
        Transpose::No,
        Transpose::No,
        m,
        n,
        k,
        1.0,
        a,
        k,
        b,
        n,
        0.0,
        c,
        n,
    )
    .expect("sgemm");
    let elapsed = mach.now() - t0;
    let stats = *ctx.accel().stats();
    let busy_per_channel = ctx.accel().dma_channel_busy().to_vec();
    let mut out = vec![0f32; m * n];
    mach.peek_f32_slice(c.va, &mut out);
    ChannelOut {
        channels,
        channels_active: stats.max_dma_channels_active,
        install: stats.install_time,
        elapsed,
        busy_per_channel,
        wall: wall_t0.elapsed(),
        c_bits: out.iter().map(|v| v.to_bits()).collect(),
    }
}

fn main() {
    handle_help(
        "fig10_reactor",
        "reactor doorbell batching and per-tile DMA channel sweep",
        &[
            grid_flag_help((2, 2)),
            "--batch <N>                             independent GEMMs (default: 8)".into(),
            "--size <N>                              per-GEMM dimension (default: 96)".into(),
            "--channels <N>                          top DMA channel count (default: 4)".into(),
            device_flag_help(),
            json_flag_help(),
        ],
    );
    let grid = grid_from_args_or((2, 2));
    let batch = batch_from_args_or(8);
    let n = size_from_args_or(96);
    let top_channels = usize_flag_or("--channels", 4).clamp(1, MAX_DMA_CHANNELS);
    let device = device_from_args();
    eprintln!(
        "running fig10 reactor study: {batch} async {n}x{n} GEMMs on {device}, grid {}x{}, \
         DMA channels up to {top_channels} ...",
        grid.0, grid.1
    );

    // Phase 1: doorbell batching.
    let serial_bits = run_serial_reference(batch, n, device);
    let legacy = run_drain(false, grid, batch, n, device);
    let reactor = run_drain(true, grid, batch, n, device);
    assert_eq!(legacy.c_bits, serial_bits, "legacy drain must match the serial reference");
    assert_eq!(reactor.c_bits, serial_bits, "reactor drain must match the serial reference");
    let read_ratio = legacy.status_reads as f64 / reactor.status_reads.max(1) as f64;
    assert!(
        read_ratio >= 5.0,
        "reactor must cut status reads >= 5x: {} vs {}",
        legacy.status_reads,
        reactor.status_reads
    );

    println!(
        "FIG. 10 — REACTOR DOORBELL BATCHING ({batch} x {n}x{n} async GEMMs, {device}, {}x{} \
         tiles)",
        grid.0, grid.1
    );
    println!("{}", "=".repeat(78));
    println!(
        "{:<10} {:>13} {:>13} {:>16} {:>13}",
        "drain", "status reads", "cq sweeps", "completions/poll", "drain time"
    );
    println!("{}", "-".repeat(78));
    for (name, r) in [("legacy", &legacy), ("reactor", &reactor)] {
        let per_poll = r.completions_polled as f64 / r.batched_polls.max(1) as f64;
        println!(
            "{:<10} {:>13} {:>13} {:>16.2} {:>13}",
            name,
            r.status_reads,
            r.batched_polls,
            per_poll,
            format!("{}", r.elapsed)
        );
    }
    println!("{}", "-".repeat(78));
    println!("status-read reduction:               {read_ratio:>6.2}x  (legacy / reactor)");

    // Phase 2: DMA channel sweep.
    let mut sweep = vec![1usize, 2, top_channels];
    sweep.dedup();
    let runs: Vec<ChannelOut> = sweep.iter().map(|&c| run_channels(c, grid, device)).collect();
    for r in &runs[1..] {
        assert_eq!(r.c_bits, runs[0].c_bits, "channel count must not change results");
    }
    let top = runs.last().expect("sweep is non-empty");
    let full_wave = (grid.0 * grid.1) as u64;
    assert!(
        top.channels_active >= top_channels.min(grid.0 * grid.1) as u64,
        "a full {}-tile wave must overlap {} channels, saw {}",
        full_wave,
        top_channels.min(grid.0 * grid.1),
        top.channels_active
    );
    // `install_time` is the per-tile programming *sum* — invariant under
    // channel count; the overlap win is wall time, where the install
    // clock's DMA gathers stop serializing.
    for pair in runs.windows(2) {
        assert!(
            pair[1].elapsed < pair[0].elapsed,
            "{} channels must beat {}: {} vs {}",
            pair[1].channels,
            pair[0].channels,
            pair[1].elapsed,
            pair[0].elapsed
        );
    }

    println!(
        "\nFIG. 10 — PER-TILE DMA CHANNELS (one {}x{} block wave, {device})",
        grid.0 * 256,
        grid.1 * 256
    );
    println!("{}", "=".repeat(78));
    println!(
        "{:<10} {:>16} {:>14} {:>13} {:>15}",
        "channels", "channels active", "install time", "total time", "busy channels"
    );
    println!("{}", "-".repeat(78));
    for r in &runs {
        let busy_channels = r.busy_per_channel.iter().filter(|t| **t > SimTime::ZERO).count();
        println!(
            "{:<10} {:>16} {:>14} {:>13} {:>15}",
            r.channels,
            r.channels_active,
            format!("{}", r.install),
            format!("{}", r.elapsed),
            busy_channels
        );
    }
    println!("{}", "-".repeat(78));
    println!(
        "wall speedup at {} channels:          {:>6.2}x  (serial bus / {} channels)",
        top.channels,
        runs[0].elapsed / top.elapsed,
        top.channels
    );
    println!("\nresults bit-for-bit identical across drains and channel counts.");

    let mut report = BenchReport::new("fig10_reactor");
    for (name, r) in [("drain_legacy", &legacy), ("drain_reactor", &reactor)] {
        report.push(
            BenchRecord {
                name: name.into(),
                config: bench_config(Some(device), Some(grid), None, Some("async")),
                wall_ns: r.wall.as_nanos() as f64,
                modeled_ns: r.elapsed.as_ns(),
                installs: 0,
                installs_skipped: 0,
                hoisted_syncs: 0,
                max_tiles_active: 0,
                metrics: Default::default(),
            }
            .with_metric("status_reads", r.status_reads as f64)
            .with_metric("batched_polls", r.batched_polls as f64)
            .with_metric("completions_polled", r.completions_polled as f64),
        );
    }
    for r in &runs {
        report.push(
            BenchRecord {
                name: format!("dma_channels_{}", r.channels),
                config: bench_config(Some(device), Some(grid), None, Some("sync")),
                wall_ns: r.wall.as_nanos() as f64,
                modeled_ns: r.elapsed.as_ns(),
                installs: 0,
                installs_skipped: 0,
                hoisted_syncs: 0,
                max_tiles_active: 0,
                metrics: Default::default(),
            }
            .with_metric("install_ns", r.install.as_ns())
            .with_metric("max_dma_channels_active", r.channels_active as f64),
        );
    }
    emit_report(&report);
}
