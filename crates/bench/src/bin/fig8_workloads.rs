//! The workload axis beyond PolyBench (Fig. 8): the inference-style
//! GEMM-chain suite and the streamed `Dataset::XLarge` GEMM.
//!
//! Section A compiles a batched MLP chain (`workloads::chain`) with
//! Loop Tactics — the chain is *detected and offloaded transparently*,
//! its per-layer GEMM batches fused into `polly_cimBlasGemmBatched`
//! calls — and compares three schedules of the same program: fusion
//! disabled (serial `sgemm` per micro-batch), fused under blocking
//! dispatch (batch elements tile-partitioned), and fused under async
//! dispatch. Results are bit-for-bit identical to the native reference
//! in all three.
//!
//! Section B runs the PolyBench `gemm` kernel at a streaming scale
//! (default XLarge, N=1024: a 4x4 grid of paper-sized crossbars) through
//! `workloads::stream`: whole-operand residency vs tile-sized `A`
//! panels double-buffered through bounded CMA staging, with async
//! dispatch overlapping the staging copies against accelerator compute.
//! The analytic estimator replays every shape in lockstep with the
//! engine.
//!
//! Usage: `cargo run --release -p tdo_bench --bin fig8_workloads --
//!     [--dataset D] [--stream-dataset D] [--device pcm|reram]
//!     [--grid KxM] [--batch N] [--layers N]`

use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_report::BenchReport;
use cim_runtime::DispatchMode;
use polybench::Dataset;
use tdo_bench::{
    batch_from_args_or, bench_config, dataset_flag_help, device_flag_help, device_from_args,
    emit_report, grid_flag_help, grid_from_args_or, handle_help, json_flag_help,
    parse_dataset_flag, print_pass_reports, record_from_run, stream_record, usize_flag_or,
    verbose_flag_help,
};
use tdo_cim::{compile, execute, CompileOptions, ExecOptions, RunResult};
use workloads::chain::init_fn;
use workloads::{run_gemm, ChainSpec, StreamConfig};

struct ChainRun {
    label: &'static str,
    run: RunResult,
    batched_calls: u64,
    fused_groups: usize,
    wall: std::time::Duration,
}

fn run_chain(
    spec: &ChainSpec,
    base: &ExecOptions,
    fusion: bool,
    dispatch: DispatchMode,
    label: &'static str,
) -> ChainRun {
    let wall_t0 = std::time::Instant::now();
    let mut copts = CompileOptions::with_tactics();
    copts.tactics.fusion = fusion;
    let compiled = compile(&spec.source(), &copts).expect("chain compiles");
    print_pass_reports(label, &compiled);
    let report = compiled.report.as_ref().expect("tactics ran");
    assert!(report.any_offloaded(), "chain must offload transparently");
    let fused_groups = report.fused_groups;
    let run =
        execute(&compiled, &base.clone().with_dispatch(dispatch), &init_fn()).expect("chain runs");
    let batched_calls = run_stat(&run, |s| s.gemm_batched_calls);
    ChainRun { label, run, batched_calls, fused_groups, wall: wall_t0.elapsed() }
}

fn run_stat(run: &RunResult, f: impl Fn(&cim_runtime::RuntimeStats) -> u64) -> u64 {
    run.runtime.as_ref().map_or(0, f)
}

fn chain_bits(spec: &ChainSpec, run: &RunResult) -> Vec<u32> {
    spec.output_names()
        .iter()
        .flat_map(|n| run.array(n).expect("output present").iter().map(|v| v.to_bits()))
        .collect()
}

fn main() {
    handle_help(
        "fig8_workloads",
        "workload axis: GEMM-chain suite + streamed XLarge GEMM",
        &[
            dataset_flag_help(Dataset::Small) + "  (chain suite)",
            format!("--stream-dataset <{}>   streamed GEMM size (default: XLarge)", Dataset::NAMES),
            device_flag_help(),
            grid_flag_help((2, 2)),
            "--batch <N>                             chain micro-batches (default: 4)".into(),
            "--layers <N>                            chain layers (default: 3)".into(),
            verbose_flag_help(),
            json_flag_help(),
        ],
    );
    let dataset = parse_dataset_flag("--dataset", Dataset::Small);
    let stream_dataset = parse_dataset_flag("--stream-dataset", Dataset::XLarge);
    let device = device_from_args();
    let grid = grid_from_args_or((2, 2));
    let batch = batch_from_args_or(4);
    let layers = usize_flag_or("--layers", 3);

    // ---------------- Section A: the GEMM-chain suite ----------------
    let spec = ChainSpec { batch, layers, ..ChainSpec::for_dataset(dataset) };
    eprintln!(
        "running fig8 chain suite: {}x {} layers of {}x{} GEMMs on {device}, grid {}x{} ...",
        spec.batch, spec.layers, spec.rows, spec.width, grid.0, grid.1
    );
    let working_set = 4
        * (spec.batch * spec.rows * spec.width * (spec.layers + 1)
            + spec.layers * spec.width * spec.width) as u64;
    let mut base = ExecOptions::default().with_device(device).with_tile_grid(grid.0, grid.1);
    if 2 * working_set > base.machine.cma_bytes {
        base = base.with_cma_bytes(2 * working_set);
    }
    let serial = run_chain(&spec, &base, false, DispatchMode::Sync, "serial sgemm");
    let batched = run_chain(&spec, &base, true, DispatchMode::Sync, "batched sync");
    let asynch = run_chain(&spec, &base, true, DispatchMode::Async, "batched async");
    let ref_bits: Vec<u32> = spec
        .reference_outputs()
        .into_iter()
        .filter(|(n, _)| spec.output_names().contains(n))
        .flat_map(|(_, d)| d.into_iter().map(|v| v.to_bits()).collect::<Vec<_>>())
        .collect();
    for r in [&serial, &batched, &asynch] {
        assert_eq!(chain_bits(&spec, &r.run), ref_bits, "{}: diverges from reference", r.label);
    }
    assert_eq!(batched.fused_groups, spec.layers, "one batched group per layer");

    println!(
        "FIG. 8A — GEMM-CHAIN SUITE ({dataset:?}: {} x {} layers of {}x{}x{} GEMMs, {device}, \
         {}x{} tiles)",
        spec.batch, spec.layers, spec.rows, spec.width, spec.width, grid.0, grid.1
    );
    println!("{}", "=".repeat(90));
    println!(
        "{:<14} {:>13} {:>13} {:>14} {:>10} {:>9} {:>9}",
        "schedule", "total time", "host wait", "batched calls", "max tiles", "submits", "energy"
    );
    println!("{}", "-".repeat(90));
    for r in [&serial, &batched, &asynch] {
        let d = r.run.driver.as_ref().expect("driver stats");
        println!(
            "{:<14} {:>13} {:>13} {:>14} {:>10} {:>9} {:>8.2}mJ",
            r.label,
            format!("{}", r.run.wall_time()),
            format!("{}", d.total_wait_time()),
            r.batched_calls,
            r.run.accel.expect("accel").max_tiles_active,
            run_stat(&r.run, |s| s.async_submits),
            r.run.total_energy().as_mj(),
        );
    }
    println!("{}", "-".repeat(90));
    println!(
        "fusion speedup (tile-partitioned batch): {:>6.2}x  (serial / batched sync)",
        serial.run.wall_time() / batched.run.wall_time()
    );
    println!(
        "per-layer fusion: {} layers -> {} batched groups; results bit-for-bit equal to the \
         native reference in all three schedules.",
        spec.layers, batched.fused_groups
    );
    if grid.0 * grid.1 > 1 && spec.batch > 1 {
        assert!(
            batched.run.accel.expect("accel").max_tiles_active > 1,
            "chain batches must span multiple tiles"
        );
        assert!(
            batched.run.wall_time().as_ns() < serial.run.wall_time().as_ns(),
            "fused batches must beat serial dispatch"
        );
    }

    // ---------------- Section B: streamed XLarge GEMM ----------------
    let accel = AccelConfig::for_device(device).with_grid(grid.0, grid.1);
    let n = stream_dataset.base_size();
    eprintln!(
        "running fig8 streamed gemm: {n}x{n} on {device}, grid {}x{} (3 schedules) ...",
        grid.0, grid.1
    );
    let base_cfg = StreamConfig::new(stream_dataset, accel);
    let timed = |cfg: &StreamConfig| {
        let t0 = std::time::Instant::now();
        (run_gemm(cfg), t0.elapsed())
    };
    let (unstreamed, unstreamed_wall) = timed(&base_cfg.clone().unstreamed());
    let (streamed, streamed_wall) = timed(&base_cfg);
    let (streamed_async, streamed_async_wall) =
        timed(&base_cfg.clone().with_dispatch(DispatchMode::Async));
    assert_eq!(unstreamed.c_bits, streamed.c_bits, "streaming must not change results");
    assert_eq!(streamed.c_bits, streamed_async.c_bits, "dispatch must not change results");
    for (label, r) in
        [("unstreamed", &unstreamed), ("streamed", &streamed), ("async", &streamed_async)]
    {
        assert!(
            (r.accel_busy.as_ns() - r.predicted_busy.as_ns()).abs() < 1e-6,
            "{label}: estimator diverged ({} vs {})",
            r.accel_busy,
            r.predicted_busy
        );
    }

    println!();
    println!(
        "FIG. 8B — STREAMED GEMM ({stream_dataset:?}: C = beta*C + alpha*A*B at {n}x{n}, \
         {device}, {}x{} tiles, {}-row panels)",
        grid.0, grid.1, base_cfg.panel_rows
    );
    println!("{}", "=".repeat(90));
    println!(
        "{:<16} {:>13} {:>13} {:>13} {:>8} {:>10} {:>12}",
        "schedule", "total time", "accel busy", "host wait", "panels", "max tiles", "CMA peak"
    );
    println!("{}", "-".repeat(90));
    for (label, r) in [
        ("unstreamed sync", &unstreamed),
        ("streamed sync", &streamed),
        ("streamed async", &streamed_async),
    ] {
        println!(
            "{:<16} {:>13} {:>13} {:>13} {:>8} {:>10} {:>9} MiB",
            label,
            format!("{}", r.elapsed),
            format!("{}", r.accel_busy),
            format!("{}", r.busy_wait),
            r.panels,
            r.max_tiles,
            r.cma_peak / (1024 * 1024),
        );
    }
    println!("{}", "-".repeat(90));
    let hidden =
        SimTime::from_ns((streamed.elapsed.as_ns() - streamed_async.elapsed.as_ns()).max(0.0));
    println!(
        "async-over-sync speedup (streamed):      {:>6.3}x  ({} of staging copy time hidden)",
        streamed.elapsed / streamed_async.elapsed,
        hidden
    );
    println!(
        "CMA footprint: streaming caps the staged operand at 2 panels ({} MiB vs {} MiB peak).",
        streamed.cma_peak / (1024 * 1024),
        unstreamed.cma_peak / (1024 * 1024)
    );
    println!(
        "in-flight commands skipped by buffer-scoped observation points: {}",
        streamed_async.sync_skips
    );
    println!("engine and estimator agree to < 1 ns on every shape (lockstep preserved).");
    // The headline invariants hold whenever the problem actually streams:
    // several panels, each spanning several crossbar blocks. Sub-tile
    // sweep points (e.g. --stream-dataset mini) degenerate to one panel
    // on one tile, where there is nothing to overlap.
    if grid.0 * grid.1 > 1 && n > accel.rows {
        assert!(streamed.max_tiles > 1, "streamed panels must span multiple tiles");
    }
    if streamed.panels > 1 {
        assert!(
            streamed_async.elapsed.as_ns() < streamed.elapsed.as_ns(),
            "async streaming must beat blocking streaming"
        );
    }
    println!("\nresults bit-for-bit identical across all schedules and dispatch modes.");

    let mut report = BenchReport::new("fig8_workloads");
    for (name, dispatch, r) in [
        ("chain_serial", "serial", &serial),
        ("chain_batched_sync", "batched-sync", &batched),
        ("chain_batched_async", "batched-async", &asynch),
    ] {
        let cfg = bench_config(Some(device), Some(grid), Some(dataset), Some(dispatch));
        report.push(
            record_from_run(name, cfg, &r.run, r.wall)
                .with_metric("batched_calls", r.batched_calls as f64)
                .with_metric("fused_groups", r.fused_groups as f64)
                .with_metric(
                    "host_wait_ns",
                    r.run.driver.as_ref().expect("driver stats").total_wait_time().as_ns(),
                ),
        );
    }
    for (name, dispatch, r, wall) in [
        ("stream_unstreamed", "unstreamed-sync", &unstreamed, unstreamed_wall),
        ("stream_sync", "streamed-sync", &streamed, streamed_wall),
        ("stream_async", "streamed-async", &streamed_async, streamed_async_wall),
    ] {
        let cfg = bench_config(Some(device), Some(grid), Some(stream_dataset), Some(dispatch));
        report.push(stream_record(name, cfg, r, wall));
    }
    emit_report(&report);
}
