//! Regenerates Table I: CIM and host system configuration, plus the
//! device/tile sweep matrix the simulator supports beyond the paper's
//! fixed part (see `docs/DEVICES.md`).

use cim_accel::AccelConfig;
use cim_machine::MachineConfig;
use cim_pcm::DeviceKind;
use cim_report::{BenchRecord, BenchReport};
use tdo_bench::{bench_config, emit_report, handle_help, json_flag_help};

fn main() {
    handle_help(
        "table1",
        "CIM and host system configuration (Table I) + sweep matrix",
        &[json_flag_help()],
    );
    let a = AccelConfig::default();
    let e = a.energy;
    let m = MachineConfig::default();

    println!("TABLE I — CIM AND HOST SYSTEM CONFIGURATION");
    println!("{}", "=".repeat(72));
    println!("{:<44} Value", "CIM Parameter");
    println!("{}", "-".repeat(72));
    let tech = format!("IBM PCM 2x({}x{} @4-bit) = {}x{} @8-bit", a.rows, a.cols, a.rows, a.cols);
    println!("{:<44} {tech}", "PCM Crossbar technology");
    println!(
        "{:<44} {} us/GEMV and {} us/row-program",
        "Compute and Write Latency/8-bit",
        e.compute_ns_per_gemv / 1000.0,
        e.write_ns_per_row / 1000.0
    );
    println!(
        "{:<44} {} fJ (2x {} fJ/4-bit PCM)",
        "Compute Energy/8-bit",
        e.compute_fj_per_cell,
        e.compute_fj_per_cell / 2.0
    );
    println!(
        "{:<44} {} pJ (2x {} pJ/4-bit PCM)",
        "Write Energy/8-bit",
        e.write_pj_per_cell,
        e.write_pj_per_cell / 2.0
    );
    println!(
        "{:<44} {} nJ (@1.2GHz)",
        "Energy for Mixed signal circuit", e.mixed_signal_nj_per_gemv
    );
    println!(
        "{:<44} {} pJ/byte-access",
        format!("Input/Output buffer Energy ({:.1}KB)", a.buffer_bytes as f64 / 1024.0),
        e.buffer_pj_per_byte
    );
    println!(
        "{:<44} {} pJ/GEMV weighted sum, {} pJ/extra ALU op",
        "Digital Logic", e.weighted_sum_pj_per_gemv, e.alu_pj_per_op
    );
    println!("{:<44} <{} nJ/GEMV", "Energy for DMA and microEngine", e.dma_engine_nj_per_gemv);
    println!("{}", "-".repeat(72));
    println!("{:<44} ", "Host CPU Spec");
    let cpu = format!("{}x Arm-A7 @{:.1}GHz", m.cores, m.freq_hz / 1e9);
    println!("{cpu:<44} {}GB LPDDR3", m.phys_mem_bytes >> 30);
    println!(
        "{:<44} {} pJ/inst (including cache)",
        format!("L1-I/D-{}KB, L2-{}MB", m.l1d.size_bytes / 1024, m.l2.size_bytes / (1024 * 1024)),
        m.pj_per_inst
    );
    println!("{}", "=".repeat(72));

    println!();
    println!("DEVICE / TILE SWEEP MATRIX (beyond the paper's fixed part)");
    println!("{}", "-".repeat(72));
    println!(
        "{:<26} {:>10} {:>12} {:>10} {:>10}",
        "device", "write pJ", "write ns/row", "read ns", "endurance"
    );
    for kind in DeviceKind::ALL {
        let d = kind.model();
        let de = d.energy();
        println!(
            "{:<26} {:>10} {:>12} {:>10} {:>10.0e}",
            d.name(),
            de.write_pj_per_cell,
            de.write_ns_per_row,
            de.compute_ns_per_gemv,
            d.endurance_writes()
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "tile grid: default {}x{} ({} tile(s)); sweep with fig6_edp --device/--grid",
        a.grid.0,
        a.grid.1,
        a.tile_count()
    );
    println!("{}", "=".repeat(72));

    // Table I is pure configuration — the records pin the platform
    // constants so a silent parameter change trips the perf gate.
    let mut report = BenchReport::new("table1");
    report.push(
        BenchRecord {
            name: "host".into(),
            config: bench_config(None, Some(a.grid), None, None),
            ..BenchRecord::default()
        }
        .with_metric("cores", m.cores as f64)
        .with_metric("freq_hz", m.freq_hz)
        .with_metric("pj_per_inst", m.pj_per_inst),
    );
    for kind in DeviceKind::ALL {
        let d = kind.model();
        let de = d.energy();
        report.push(
            BenchRecord {
                name: format!("device_{}", kind.name()),
                config: bench_config(Some(kind), Some(a.grid), None, None),
                ..BenchRecord::default()
            }
            .with_metric("write_pj_per_cell", de.write_pj_per_cell)
            .with_metric("write_ns_per_row", de.write_ns_per_row)
            .with_metric("compute_ns_per_gemv", de.compute_ns_per_gemv)
            .with_metric("endurance_writes", d.endurance_writes()),
        );
    }
    emit_report(&report);
}
