//! The offload dataflow graph end to end (Fig. 9): compiler sync
//! hoisting + residency placement against PR 4's fused-async baseline.
//!
//! Section A compiles a *multi-head* GEMM chain (`workloads::chain` with
//! `heads > 1`: every layer projects the same input through per-head
//! weights, the Q/K/V shape) three ways:
//!
//! * **fused async** — the PR 4 baseline: Loop Tactics fuses each
//!   layer's `batch * heads` GEMMs into one `polly_cimBlasGemmBatched`,
//!   dispatched asynchronously. Elements sharing a stationary operand
//!   land on *different* tile regions, so every element installs.
//! * **dataflow sync / dataflow async** — fusion off, the *default*
//!   compile path (the full compiler pass pipeline, no opt-in):
//!   redundant `polly_cimHostToDev` syncs are elided, each
//!   `(layer, micro-batch)` input is pinned (`polly_cimPin`) so its
//!   `heads` kernels reuse one install on one region, and every
//!   `polly_cimDevToHost` is sunk past independent host code. Under
//!   async dispatch the per-region doorbells overlap *separate* runtime
//!   calls across micro-batches while the host combine overlaps the
//!   accelerator.
//!
//! All three schedules are asserted bit-for-bit identical to the native
//! reference, the analytic estimator replays the pinned schedule in
//! lockstep with the engine, and the run fails loudly unless at least
//! one sync was hoisted and one install was skipped — the passes cannot
//! silently regress to no-ops.
//!
//! Section B re-runs the streamed XLarge GEMM, now with *both* streamed
//! operands (`A` and the `C` accumulator) panel-resident.
//!
//! Usage: `cargo run --release -p tdo_bench --bin fig9_dataflow --
//!     [--dataset D] [--stream-dataset D] [--device pcm|reram]
//!     [--grid KxM] [--batch N] [--layers N] [--heads N]`

use cim_accel::estimate::estimate_gemm;
use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_report::BenchReport;
use cim_runtime::DispatchMode;
use polybench::Dataset;
use tdo_bench::{
    batch_from_args_or, bench_config, dataset_flag_help, device_flag_help, device_from_args,
    emit_report, grid_flag_help, grid_from_args_or, handle_help, json_flag_help,
    parse_dataset_flag, print_pass_reports, record_from_run, stream_record, usize_flag_or,
    verbose_flag_help,
};
use tdo_cim::{compile, execute, CompileOptions, ExecOptions, RunResult};
use workloads::chain::init_fn;
use workloads::{run_gemm, ChainSpec, StreamConfig};

struct ChainRun {
    label: &'static str,
    run: RunResult,
    hoisted: usize,
    elided: usize,
    pins: usize,
    wall: std::time::Duration,
}

fn run_chain(
    spec: &ChainSpec,
    base: &ExecOptions,
    copts: &CompileOptions,
    dispatch: DispatchMode,
    label: &'static str,
) -> ChainRun {
    let wall_t0 = std::time::Instant::now();
    let compiled = compile(&spec.source(), copts).expect("chain compiles");
    print_pass_reports(label, &compiled);
    let report = compiled.report.as_ref().expect("tactics ran");
    assert!(report.any_offloaded(), "chain must offload transparently");
    let (hoisted, elided, pins) = (
        compiled.pass_counter("hoisted_syncs") as usize,
        compiled.pass_counter("elided_syncs") as usize,
        compiled.pass_counter("pins") as usize,
    );
    let run =
        execute(&compiled, &base.clone().with_dispatch(dispatch), &init_fn()).expect("chain runs");
    ChainRun { label, run, hoisted, elided, pins, wall: wall_t0.elapsed() }
}

fn chain_bits(spec: &ChainSpec, run: &RunResult) -> Vec<u32> {
    spec.output_names()
        .iter()
        .flat_map(|n| run.array(n).expect("output present").iter().map(|v| v.to_bits()))
        .collect()
}

fn main() {
    handle_help(
        "fig9_dataflow",
        "offload dataflow graph: sync hoisting + residency placement vs fused async",
        &[
            dataset_flag_help(Dataset::Small) + "  (chain suite)",
            format!("--stream-dataset <{}>   streamed GEMM size (default: XLarge)", Dataset::NAMES),
            device_flag_help(),
            grid_flag_help((2, 2)),
            "--batch <N>                             chain micro-batches (default: 4)".into(),
            "--layers <N>                            chain layers (default: 3)".into(),
            "--heads <N>                             projection heads per layer (default: 3)"
                .into(),
            verbose_flag_help(),
            json_flag_help(),
        ],
    );
    let dataset = parse_dataset_flag("--dataset", Dataset::Small);
    let stream_dataset = parse_dataset_flag("--stream-dataset", Dataset::XLarge);
    let device = device_from_args();
    let grid = grid_from_args_or((2, 2));
    let batch = batch_from_args_or(4);
    let layers = usize_flag_or("--layers", 3);
    let heads = usize_flag_or("--heads", 3);
    assert!(heads >= 2, "the residency study needs shared stationary operands (--heads >= 2)");

    // ------------- Section A: multi-head chain, three schedules -------------
    let spec = ChainSpec { batch, layers, ..ChainSpec::for_dataset(dataset) }.with_heads(heads);
    eprintln!(
        "running fig9 chain suite: {}x {} layers x {} heads of {}x{} GEMMs on {device}, \
         grid {}x{} ...",
        spec.batch, spec.layers, spec.heads, spec.rows, spec.width, grid.0, grid.1
    );
    let working_set = 4
        * (spec.batch * spec.rows * spec.width * (spec.layers * (spec.heads + 1) + 1)
            + spec.layers * spec.heads * spec.width * spec.width) as u64;
    let mut base = ExecOptions::default().with_device(device).with_tile_grid(grid.0, grid.1);
    if 2 * working_set > base.machine.cma_bytes {
        base = base.with_cma_bytes(2 * working_set);
    }
    // The fused baseline is the legacy conservative schedule (detection +
    // fusion, no graph passes); the dataflow runs use the *default*
    // compile path — the full pass pipeline with no opt-in (fusion is
    // turned off so the per-head kernels stay separate and pinnable).
    let fused_copts = CompileOptions::without_dataflow();
    let mut df_copts = CompileOptions::default();
    df_copts.tactics.fusion = false;
    let fused = run_chain(&spec, &base, &fused_copts, DispatchMode::Async, "fused async");
    let df_sync = run_chain(&spec, &base, &df_copts, DispatchMode::Sync, "dataflow sync");
    let df_async = run_chain(&spec, &base, &df_copts, DispatchMode::Async, "dataflow async");

    let ref_bits: Vec<u32> = spec
        .reference_outputs()
        .into_iter()
        .filter(|(n, _)| spec.output_names().contains(n))
        .flat_map(|(_, d)| d.into_iter().map(|v| v.to_bits()).collect::<Vec<_>>())
        .collect();
    for r in [&fused, &df_sync, &df_async] {
        assert_eq!(chain_bits(&spec, &r.run), ref_bits, "{}: diverges from reference", r.label);
    }

    // The graph passes engaged: syncs hoisted, redundant syncs elided,
    // one pin per (layer, micro-batch) input.
    assert!(df_async.hoisted >= 1, "no d2h sync was hoisted");
    assert!(df_async.elided >= 1, "no redundant h2d sync was elided");
    assert_eq!(df_async.pins, spec.layers * spec.batch, "one pin per shared input");

    // Residency: the pinned schedule installs each shared input once;
    // the fused baseline installs per (element, region) pair.
    let acc_fused = fused.run.accel.expect("accel");
    let acc_df = df_async.run.accel.expect("accel");
    assert!(
        acc_df.rows_programmed < acc_fused.rows_programmed,
        "residency placement must install less than the fused baseline ({} vs {})",
        acc_df.rows_programmed,
        acc_fused.rows_programmed
    );
    assert!(acc_df.install_skips >= 1, "no install was skipped");
    let rt_df = df_async.run.runtime.expect("runtime stats");
    assert_eq!(rt_df.pin_calls as usize, spec.layers * spec.batch);
    assert!(rt_df.pin_hits >= 1, "no pinned kernel hit residency");

    // The headline: hoisting + residency beat the fused-async baseline
    // on wall clock, not just install counts (PCM installs are the
    // expensive phase, and the sunk d2h syncs hide behind host code).
    assert!(
        df_async.run.wall_time().as_ns() < fused.run.wall_time().as_ns(),
        "dataflow schedule must beat the fused-async baseline ({} vs {})",
        df_async.run.wall_time(),
        fused.run.wall_time()
    );

    // Estimator lockstep on the pinned schedule: per (layer,
    // micro-batch), the first head installs cold, the rest are resident.
    let acfg = AccelConfig::for_device(device).with_grid(grid.0, grid.1);
    let bus = base.machine.bus;
    let cold = estimate_gemm(&acfg, &bus, spec.rows, spec.width, spec.width, true, false).time;
    let warm = estimate_gemm(&acfg, &bus, spec.rows, spec.width, spec.width, true, true).time;
    let predicted = (cold + warm * (spec.heads - 1) as f64) * (spec.layers * spec.batch) as f64;
    assert!(
        (acc_df.busy.as_ns() - predicted.as_ns()).abs() < 1e-6,
        "estimator diverged on the pinned schedule: engine {} vs estimator {predicted}",
        acc_df.busy
    );

    println!(
        "FIG. 9A — OFFLOAD DATAFLOW GRAPH ({dataset:?}: {} x {} layers x {} heads of \
         {}x{}x{} GEMMs, {device}, {}x{} tiles)",
        spec.batch, spec.layers, spec.heads, spec.rows, spec.width, spec.width, grid.0, grid.1
    );
    println!("{}", "=".repeat(96));
    println!(
        "{:<15} {:>13} {:>13} {:>9} {:>9} {:>10} {:>9} {:>9}",
        "schedule", "total time", "host wait", "installs", "skipped", "max tiles", "pins", "energy"
    );
    println!("{}", "-".repeat(96));
    for r in [&fused, &df_sync, &df_async] {
        let acc = r.run.accel.expect("accel");
        let d = r.run.driver.as_ref().expect("driver stats");
        println!(
            "{:<15} {:>13} {:>13} {:>9} {:>9} {:>10} {:>9} {:>8.2}mJ",
            r.label,
            format!("{}", r.run.wall_time()),
            format!("{}", d.total_wait_time()),
            acc.rows_programmed,
            acc.install_skips,
            acc.max_tiles_active,
            r.run.runtime.map_or(0, |s| s.pin_calls),
            r.run.total_energy().as_mj(),
        );
    }
    println!("{}", "-".repeat(96));
    let hidden = SimTime::from_ns(
        (df_sync.run.wall_time().as_ns() - df_async.run.wall_time().as_ns()).max(0.0),
    );
    println!(
        "residency win:  {:.2}x fewer crossbar rows programmed than fused async ({} vs {})",
        acc_fused.rows_programmed as f64 / acc_df.rows_programmed as f64,
        acc_df.rows_programmed,
        acc_fused.rows_programmed,
    );
    println!(
        "dataflow-over-fused speedup: {:>6.2}x   hoisting hidden behind host code: {hidden}",
        fused.run.wall_time() / df_async.run.wall_time()
    );
    println!(
        "fig9 stats: hoisted_syncs={} elided_syncs={} pins={} installs_skipped={} \
         installs_dataflow={} installs_fused={} hidden_d2h={hidden}",
        df_async.hoisted,
        df_async.elided,
        df_async.pins,
        acc_df.install_skips,
        acc_df.rows_programmed,
        acc_fused.rows_programmed,
    );
    println!(
        "results bit-for-bit identical to the native reference in all three schedules; \
         estimator in lockstep with the engine on the pinned schedule."
    );

    // ------------- Section B: streamed XLarge, both operands paneled -------------
    let accel = AccelConfig::for_device(device).with_grid(grid.0, grid.1);
    let n = stream_dataset.base_size();
    eprintln!("running fig9 streamed gemm: {n}x{n} on {device}, A and C panel-resident ...");
    let base_cfg = StreamConfig::new(stream_dataset, accel);
    let timed = |cfg: &StreamConfig| {
        let t0 = std::time::Instant::now();
        (run_gemm(cfg), t0.elapsed())
    };
    let (streamed, streamed_wall) = timed(&base_cfg);
    let (streamed_async, streamed_async_wall) =
        timed(&base_cfg.clone().with_dispatch(DispatchMode::Async));
    assert_eq!(streamed.c_bits, streamed_async.c_bits, "dispatch must not change results");
    for (label, r) in [("sync", &streamed), ("async", &streamed_async)] {
        assert!(
            (r.accel_busy.as_ns() - r.predicted_busy.as_ns()).abs() < 1e-6,
            "{label}: estimator diverged ({} vs {})",
            r.accel_busy,
            r.predicted_busy
        );
    }
    println!();
    println!(
        "FIG. 9B — STREAMED GEMM, BOTH OPERANDS PANELED ({stream_dataset:?}: {n}x{n}, {device}, \
         {}x{} tiles, {}-row panels)",
        grid.0, grid.1, base_cfg.panel_rows
    );
    println!("{}", "-".repeat(96));
    for (label, r) in [("streamed sync", &streamed), ("streamed async", &streamed_async)] {
        println!(
            "{:<15} total {:>13}   accel busy {:>13}   panels {:>4}   CMA peak {:>5} MiB   \
             doorbell skips {:>5}",
            label,
            format!("{}", r.elapsed),
            format!("{}", r.accel_busy),
            r.panels,
            r.cma_peak / (1024 * 1024),
            r.sync_skips,
        );
    }
    if streamed.panels > 1 {
        assert!(
            streamed_async.elapsed.as_ns() < streamed.elapsed.as_ns(),
            "async streaming must beat blocking streaming"
        );
    }
    println!(
        "A and C bounded to two panels each: CMA peak {} MiB vs {} MiB for one whole operand \
         more.",
        streamed.cma_peak / (1024 * 1024),
        (streamed.cma_peak + (n * n * 4) as u64) / (1024 * 1024),
    );

    let mut report = BenchReport::new("fig9_dataflow");
    for (name, dispatch, r) in [
        ("chain_fused_async", "fused-async", &fused),
        ("chain_dataflow_sync", "dataflow-sync", &df_sync),
        ("chain_dataflow_async", "dataflow-async", &df_async),
    ] {
        let cfg = bench_config(Some(device), Some(grid), Some(dataset), Some(dispatch));
        let mut rec = record_from_run(name, cfg, &r.run, r.wall)
            .with_metric("elided_syncs", r.elided as f64)
            .with_metric("pins", r.pins as f64)
            .with_metric(
                "host_wait_ns",
                r.run.driver.as_ref().expect("driver stats").total_wait_time().as_ns(),
            );
        rec.hoisted_syncs = r.hoisted as u64;
        report.push(rec);
    }
    for (name, dispatch, r, wall) in [
        ("stream_sync", "streamed-sync", &streamed, streamed_wall),
        ("stream_async", "streamed-async", &streamed_async, streamed_async_wall),
    ] {
        let cfg = bench_config(Some(device), Some(grid), Some(stream_dataset), Some(dispatch));
        report.push(stream_record(name, cfg, r, wall));
    }
    emit_report(&report);
}
