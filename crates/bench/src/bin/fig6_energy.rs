//! Regenerates Fig. 6 (left): energy for host vs host+CIM plus the
//! MACs-per-CIM-write compute intensity, for the seven PolyBench kernels,
//! with the Geomean and Selective Geomean summary rows.
//!
//! Usage: `cargo run --release -p tdo-bench --bin fig6_energy [--dataset=small|medium|large]`

use cim_report::{BenchRecord, BenchReport};
use polybench::Dataset;
use tdo_bench::{
    bench_config, dataset_flag_help, dataset_from_args, emit_report, fig6_geomeans, handle_help,
    json_flag_help, record_from_run, run_fig6,
};

fn main() {
    handle_help(
        "fig6_energy",
        "energy and compute intensity per kernel (Fig. 6 left)",
        &[dataset_flag_help(Dataset::Medium), json_flag_help()],
    );
    let dataset = dataset_from_args();
    eprintln!("running fig6 energy study at {dataset:?} (this simulates every kernel twice) ...");
    let rows = run_fig6(dataset);

    println!("FIG. 6 (LEFT) — ENERGY AND COMPUTE INTENSITY ({dataset:?})");
    println!("{}", "=".repeat(86));
    println!(
        "{:<9} {:>14} {:>14} {:>12} {:>12} {:>16}",
        "kernel", "host (mJ)", "host+CIM (mJ)", "improv.", "selective", "MACs/cim-write"
    );
    println!("{}", "-".repeat(86));
    for r in &rows {
        println!(
            "{:<9} {:>14.4} {:>14.4} {:>11.2}x {:>11.2}x {:>16.1}",
            r.kernel.name(),
            r.always.host_energy().as_mj(),
            r.always.cim_energy().as_mj(),
            r.always.energy_improvement(),
            r.selective_energy_x,
            r.always.macs_per_write()
        );
    }
    println!("{}", "-".repeat(86));
    let (full, selective) = fig6_geomeans(&rows);
    println!("{:<9} {:>43.2}x", "Geomean", full);
    println!("{:<9} {:>43.2}x", "Sel.Geo", selective);
    println!();
    println!("paper annotations: full geomean 3.2x, selective geomean 32.6x;");
    println!("expected shape: GEMM-like kernels (2mm, 3mm, gemm, conv) win large,");
    println!("GEMV-like kernels (gesummv, bicg, mvt) lose and sit at MACs/write ~1.");

    let cfg = bench_config(None, None, Some(dataset), None);
    let mut report = BenchReport::new("fig6_energy");
    for r in &rows {
        report.push(
            record_from_run(r.kernel.name(), cfg.clone(), &r.always.cim, r.wall)
                .with_metric("host_energy_mj", r.always.host_energy().as_mj())
                .with_metric("energy_improvement_x", r.always.energy_improvement())
                .with_metric("selective_energy_x", r.selective_energy_x)
                .with_metric("macs_per_write", r.always.macs_per_write()),
        );
    }
    report.push(
        BenchRecord { name: "geomean".into(), config: cfg, ..BenchRecord::default() }
            .with_metric("energy_improvement_x", full)
            .with_metric("selective_energy_x", selective),
    );
    emit_report(&report);
}
