//! Regenerates Fig. 6 (left): energy for host vs host+CIM plus the
//! MACs-per-CIM-write compute intensity, for the seven PolyBench kernels,
//! with the Geomean and Selective Geomean summary rows.
//!
//! Usage: `cargo run --release -p tdo-bench --bin fig6_energy [--dataset=small|medium|large]`

use polybench::Dataset;
use tdo_bench::{dataset_flag_help, dataset_from_args, fig6_geomeans, handle_help, run_fig6};

fn main() {
    handle_help(
        "fig6_energy",
        "energy and compute intensity per kernel (Fig. 6 left)",
        &[dataset_flag_help(Dataset::Medium)],
    );
    let dataset = dataset_from_args();
    eprintln!("running fig6 energy study at {dataset:?} (this simulates every kernel twice) ...");
    let rows = run_fig6(dataset);

    println!("FIG. 6 (LEFT) — ENERGY AND COMPUTE INTENSITY ({dataset:?})");
    println!("{}", "=".repeat(86));
    println!(
        "{:<9} {:>14} {:>14} {:>12} {:>12} {:>16}",
        "kernel", "host (mJ)", "host+CIM (mJ)", "improv.", "selective", "MACs/cim-write"
    );
    println!("{}", "-".repeat(86));
    for r in &rows {
        println!(
            "{:<9} {:>14.4} {:>14.4} {:>11.2}x {:>11.2}x {:>16.1}",
            r.kernel.name(),
            r.always.host_energy().as_mj(),
            r.always.cim_energy().as_mj(),
            r.always.energy_improvement(),
            r.selective_energy_x,
            r.always.macs_per_write()
        );
    }
    println!("{}", "-".repeat(86));
    let (full, selective) = fig6_geomeans(&rows);
    println!("{:<9} {:>43.2}x", "Geomean", full);
    println!("{:<9} {:>43.2}x", "Sel.Geo", selective);
    println!();
    println!("paper annotations: full geomean 3.2x, selective geomean 32.6x;");
    println!("expected shape: GEMM-like kernels (2mm, 3mm, gemm, conv) win large,");
    println!("GEMV-like kernels (gesummv, bicg, mvt) lose and sit at MACs/write ~1.");
}
