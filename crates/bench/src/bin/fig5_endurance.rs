//! Regenerates Fig. 5: system lifetime vs PCM cell endurance for the
//! Listing-2 workload, naive vs "smart" (fusion) mapping.
//!
//! Following the paper's accounting: square matrices of 4096
//! byte-elements, S = 512 KiB crossbar, writes uniform across the array.
//! The naive mapping writes `B` and `E` to the crossbar and streams `A`;
//! the smart mapping writes the shared `A` once. `B` (write traffic) is
//! the written bytes divided by the kernel-pair execution time, which the
//! analytic accelerator model provides at this scale.

use cim_accel::estimate::estimate_gemm;
use cim_accel::AccelConfig;
use cim_machine::bus::BusConfig;
use cim_report::{BenchRecord, BenchReport};
use tdo_bench::{
    bench_config, device_flag_help, device_from_args, emit_report, handle_help, json_flag_help,
};

fn main() {
    handle_help(
        "fig5_endurance",
        "system lifetime vs PCM endurance, naive vs smart (fusion) mapping",
        &[device_flag_help(), json_flag_help()],
    );
    let wall_t0 = std::time::Instant::now();
    let n = 4096usize;
    let device = device_from_args();
    let model_src = device.model();
    let cfg = AccelConfig::for_device(device);
    let bus = BusConfig::default();

    // Execution time of the two GEMMs (identical under both mappings: the
    // same GEMVs run either way).
    let pair = {
        let mut e = estimate_gemm(&cfg, &bus, n, n, n, false, false);
        e.merge(&estimate_gemm(&cfg, &bus, n, n, n, false, false));
        e
    };
    let exec_s = pair.time.as_s();

    // Write volume per mapping: each written matrix is n*n 8-bit cells.
    let matrix_bytes = (n * n) as f64;
    let naive_bytes = 2.0 * matrix_bytes; // B and E programmed
    let smart_bytes = matrix_bytes; // shared A programmed once
    let b_naive = naive_bytes / exec_s;
    let b_smart = smart_bytes / exec_s;

    // The paper's x-axis is 10..40 Mwrites for its 1e7-nominal PCM part:
    // 1x..4x the nominal budget. Sweep the same 1x..4x band relative to
    // whichever device is selected, through the device's Eq.-1 model.
    let nominal = model_src.endurance_writes();
    let model = model_src.lifetime(512.0 * 1024.0);
    println!(
        "FIG. 5 — SYSTEM LIFETIME vs {} CELL ENDURANCE (Listing 2)",
        device.name().to_uppercase()
    );
    println!("{}", "=".repeat(68));
    println!("workload: 2x GEMM {n}x{n}, shared A; exec time {:.3} s; S = 512 KiB", exec_s);
    println!("device nominal endurance: {:.0e} writes/cell", nominal);
    println!("write traffic: naive {:.2} KB/s, smart {:.2} KB/s", b_naive / 1e3, b_smart / 1e3);
    println!("{}", "-".repeat(68));
    println!(
        "{:>22} {:>20} {:>20}",
        "endurance (Mwrites)", "naive mapping (y)", "smart mapping (y)"
    );
    for step in 0..=6 {
        let e = nominal * (1.0 + 0.5 * step as f64);
        println!(
            "{:>22} {:>20.2} {:>20.2}",
            e / 1e6,
            model.years(e, b_naive),
            model.years(e, b_smart)
        );
    }
    println!("{}", "-".repeat(68));
    println!(
        "smart/naive lifetime ratio: {:.2}x (paper: ~2x)",
        model.years(2.0 * nominal, b_smart) / model.years(2.0 * nominal, b_naive)
    );

    let mut report = BenchReport::new("fig5_endurance");
    report.push(
        BenchRecord {
            name: "listing2_lifetime".into(),
            config: bench_config(Some(device), None, None, None),
            wall_ns: wall_t0.elapsed().as_nanos() as f64,
            modeled_ns: pair.time.as_ns(),
            ..BenchRecord::default()
        }
        .with_metric("write_traffic_naive_bps", b_naive)
        .with_metric("write_traffic_smart_bps", b_smart)
        .with_metric("years_naive_at_2x", model.years(2.0 * nominal, b_naive))
        .with_metric("years_smart_at_2x", model.years(2.0 * nominal, b_smart))
        .with_metric(
            "smart_over_naive_x",
            model.years(2.0 * nominal, b_smart) / model.years(2.0 * nominal, b_naive),
        ),
    );
    emit_report(&report);
}
