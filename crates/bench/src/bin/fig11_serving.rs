//! Multi-tenant serving saturation — the study the paper's platform
//! never reaches: N tenants sharing one tile grid through the
//! `cim_serve` scheduler, driven by open-loop arrivals on the modeled
//! clock. Two phases:
//!
//! 1. **load sweep** — every tenant offers the same deterministic
//!    arrival stream at 0.5x, 1.0x and 2.0x of its lease region's
//!    service rate; per-tenant p50/p99 sojourn latency (arrival to
//!    retire, admission delay included) shows the knee at saturation
//!    while all tenants keep making concurrent progress on disjoint
//!    leases.
//! 2. **adversarial neighbor** — one tenant floods at 4x for the whole
//!    window while three victims offer light load, with two tenants per
//!    lease region so the flood shares tiles with a victim. Run under
//!    deficit-weighted admission and under the FIFO baseline, the
//!    comparison is the victim's *queueing wait* (issue to retire) —
//!    the quantity admission control bounds: fairness caps it near the
//!    co-lessees' quota sum and throttles the adversary, FIFO lets the
//!    flood's backlog swallow the victim. The grep-able
//!    `fig11 isolation:` line carries the counters.
//!
//! Every op is an identity GEMV with a fresh stationary operand, so
//! results are self-checking (`y == x` bit-for-bit) and busy time is
//! install-dominated — saturation is device time, not host pacing.
//!
//! Usage: `cargo run --release -p tdo_bench --bin fig11_serving --
//!     [--grid KxM] [--tenants N] [--ops N] [--device pcm|reram]
//!     [--json PATH]`

use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_report::{BenchRecord, BenchReport};
use cim_runtime::{
    CimContext, CimServer, DevPtr, DispatchMode, DriverConfig, FairnessPolicy, ServePolicy,
    TenantConfig, Transpose,
};
use tdo_bench::{
    bench_config, device_flag_help, device_from_args, emit_report, grid_flag_help,
    grid_from_args_or, handle_help, json_flag_help, usize_flag_or,
};

/// Per-op dimension: a 64x64 stationary install keeps every op's busy
/// time device-dominated on full-size tiles.
const N: usize = 64;

fn fill(len: usize, seed: usize) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * 0.125 - 0.75).collect()
}

fn identity(n: usize) -> Vec<f32> {
    let mut a = vec![0f32; n * n];
    for i in 0..n {
        a[i * n + i] = 1.0;
    }
    a
}

fn dev_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
    let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
    mach.poke_f32_slice(dev.va, data);
    dev
}

/// One self-checking op: `y = I * x` with a fresh identity install, so
/// the expected output is the input, bit for bit.
fn issue_op(ctx: &mut CimContext, mach: &mut Machine, seed: usize) -> (DevPtr, Vec<f32>) {
    let a = dev_mat(ctx, mach, &identity(N));
    let x_data = fill(N, seed);
    let x = dev_mat(ctx, mach, &x_data);
    let y = dev_mat(ctx, mach, &fill(N, seed + 1));
    ctx.cim_blas_sgemv(mach, Transpose::No, N, N, 1.0, a, N, x, 0.0, y).expect("gemv");
    (y, x_data)
}

/// The modeled busy time of one op, measured on a private context —
/// the service time every arrival interval below is scaled from.
fn calibrate_busy(accel_cfg: &AccelConfig) -> SimTime {
    let mut mach = Machine::new(MachineConfig::default());
    let mut ctx = CimContext::new(
        *accel_cfg,
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        &mach,
    );
    ctx.cim_init(&mut mach, 0).expect("init");
    let a = dev_mat(&mut ctx, &mut mach, &identity(N));
    let x = dev_mat(&mut ctx, &mut mach, &fill(N, 11));
    let y = dev_mat(&mut ctx, &mut mach, &fill(N, 12));
    let busy =
        ctx.cim_blas_sgemv(&mut mach, Transpose::No, N, N, 1.0, a, N, x, 0.0, y).expect("gemv");
    ctx.cim_sync(&mut mach).expect("sync");
    assert!(busy > SimTime::ZERO);
    busy
}

struct TenantOut {
    /// Arrival -> retire, sorted (host lag + queueing + service).
    sojourns: Vec<SimTime>,
    /// Issue -> retire, sorted (the wait admission control bounds).
    waits: Vec<SimTime>,
    throttles: u64,
    grants: u64,
    tile_ns: f64,
}

struct ServeOut {
    tenants: Vec<TenantOut>,
    elapsed: SimTime,
    max_tiles_active: u64,
    wall: std::time::Duration,
}

/// Open-loop serving run: per-tenant deterministic arrival streams
/// (`intervals[t]`, `op_counts[t]` ops) merged in time order onto one
/// submission thread. Results self-check at the end.
fn run_serving(
    accel_cfg: &AccelConfig,
    regions: usize,
    fairness: FairnessPolicy,
    intervals: &[SimTime],
    op_counts: &[usize],
) -> ServeOut {
    let wall_t0 = std::time::Instant::now();
    let n_tenants = intervals.len();
    let mut mach = Machine::new(MachineConfig::default());
    let mut server = CimServer::new(
        *accel_cfg,
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        ServePolicy { regions, fairness },
        &mach,
    );
    let mut ctxs: Vec<CimContext> =
        (0..n_tenants).map(|_| server.connect(TenantConfig::default())).collect();
    for ctx in &mut ctxs {
        ctx.cim_init(&mut mach, 0).expect("init");
    }
    let tids: Vec<_> = ctxs.iter().map(|c| c.tenant().expect("tenant")).collect();

    // Deterministic open-loop arrivals, merged across tenants in time
    // order (ties broken by tenant index — no hash-order anywhere).
    let mut arrivals: Vec<(SimTime, usize, usize)> = (0..n_tenants)
        .flat_map(|t| {
            let jitter = intervals[t] * (0.1 * (t + 1) as f64);
            (0..op_counts[t]).map(move |i| (jitter + intervals[t] * i as f64, t, i))
        })
        .collect();
    arrivals.sort_by(|a, b| a.0.as_ns().total_cmp(&b.0.as_ns()).then(a.1.cmp(&b.1)));

    let t0 = mach.now();
    let mut sojourns: Vec<Vec<SimTime>> = vec![Vec::new(); n_tenants];
    let mut waits: Vec<Vec<SimTime>> = vec![Vec::new(); n_tenants];
    let mut checks: Vec<(usize, DevPtr, Vec<f32>)> = Vec::new();
    for (offset, t, i) in arrivals {
        let arrival = t0 + offset;
        if mach.now() < arrival {
            let now = mach.now();
            mach.advance_host(arrival - now);
        }
        let (y, want) = issue_op(&mut ctxs[t], &mut mach, 100 + t * 1009 + i * 17);
        // The tenant's newest command is the last to retire, so its
        // backlog horizon *is* this op's retire instant.
        let wait = server.backlog_of(tids[t], mach.now());
        waits[t].push(wait);
        sojourns[t].push(mach.now() + wait - arrival);
        checks.push((t, y, want));
    }
    for ctx in &mut ctxs {
        ctx.cim_sync(&mut mach).expect("sync");
    }
    let elapsed = mach.now() - t0;
    for (t, y, want) in checks {
        let mut got = vec![0f32; N];
        mach.peek_f32_slice(y.va, &mut got);
        let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "tenant {t} result corrupted under load");
    }
    let max_tiles_active = server.device().borrow().accel.stats().max_tiles_active;
    let tenants = tids
        .iter()
        .zip(&ctxs)
        .enumerate()
        .map(|(t, (&tid, ctx))| {
            let usage = server.usage(tid);
            let mut s = std::mem::take(&mut sojourns[t]);
            let mut w = std::mem::take(&mut waits[t]);
            s.sort_by(|a, b| a.as_ns().total_cmp(&b.as_ns()));
            w.sort_by(|a, b| a.as_ns().total_cmp(&b.as_ns()));
            TenantOut {
                sojourns: s,
                waits: w,
                throttles: ctx.stats().sched_throttles,
                grants: usage.grants,
                tile_ns: usage.tile_ns,
            }
        })
        .collect();
    ServeOut { tenants, elapsed, max_tiles_active, wall: wall_t0.elapsed() }
}

fn percentile(sorted: &[SimTime], p: f64) -> SimTime {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    handle_help(
        "fig11_serving",
        "multi-tenant serving saturation: offered load vs per-tenant latency + isolation",
        &[
            grid_flag_help((2, 2)),
            "--tenants <N>                           tenant count (default: 4)".into(),
            "--ops <N>                               ops per tenant per run (default: 30)".into(),
            device_flag_help(),
            json_flag_help(),
        ],
    );
    let grid = grid_from_args_or((2, 2));
    let n_tenants = usize_flag_or("--tenants", 4).max(2);
    let ops = usize_flag_or("--ops", 30).max(5);
    let device = device_from_args();
    let accel_cfg = AccelConfig::for_device(device).with_grid(grid.0, grid.1);
    let busy = calibrate_busy(&accel_cfg);
    eprintln!(
        "running fig11 serving study: {n_tenants} tenants on a {}x{} grid of {device} tiles, \
         {ops} ops each, service time {busy} ...",
        grid.0, grid.1
    );

    // Phase 1: symmetric load sweep on disjoint per-tile leases.
    let loads = [0.5, 1.0, 2.0];
    let sweep: Vec<ServeOut> = loads
        .iter()
        .map(|load| {
            let interval = busy * (1.0 / load);
            run_serving(
                &accel_cfg,
                0,
                FairnessPolicy::default(),
                &vec![interval; n_tenants],
                &vec![ops; n_tenants],
            )
        })
        .collect();

    println!(
        "FIG. 11 — MULTI-TENANT SERVING SATURATION ({n_tenants} tenants, {}x{} {device} tiles, \
         {ops} identity GEMVs each)",
        grid.0, grid.1
    );
    println!("{}", "=".repeat(78));
    println!(
        "{:<8} {:<8} {:>13} {:>13} {:>10} {:>10}",
        "load", "tenant", "p50 latency", "p99 latency", "throttles", "grants"
    );
    println!("{}", "-".repeat(78));
    for (load, out) in loads.iter().zip(&sweep) {
        for (t, tn) in out.tenants.iter().enumerate() {
            println!(
                "{:<8} {:<8} {:>13} {:>13} {:>10} {:>10}",
                format!("{load:.1}x"),
                format!("t{t}"),
                format!("{}", percentile(&tn.sojourns, 0.50)),
                format!("{}", percentile(&tn.sojourns, 0.99)),
                tn.throttles,
                tn.grants
            );
        }
    }
    println!("{}", "-".repeat(78));

    // Acceptance: every tenant progressed in every run, and the grid
    // actually ran tenants concurrently in space.
    for (load, out) in loads.iter().zip(&sweep) {
        let progressed = out.tenants.iter().filter(|t| t.grants == ops as u64).count();
        assert_eq!(progressed, n_tenants, "all tenants complete their stream at {load}x");
        assert!(
            out.max_tiles_active >= 2,
            "at {load}x at least two tenants' tiles must be active concurrently, saw {}",
            out.max_tiles_active
        );
    }
    let knee = |out: &ServeOut| {
        out.tenants.iter().map(|t| percentile(&t.sojourns, 0.99).as_ns()).fold(0.0, f64::max)
    };
    assert!(knee(&sweep[2]) > knee(&sweep[0]), "2x overload must show a latency knee over 0.5x");
    println!(
        "saturation knee: worst p99 {} at 0.5x -> {} at 2.0x",
        SimTime::from_ns(knee(&sweep[0])),
        SimTime::from_ns(knee(&sweep[2]))
    );

    // Phase 2: adversarial neighbor on shared leases — two tenants per
    // region, the flood (t0) co-leased with a victim, flooding at 4x
    // for the victims' entire arrival window.
    let regions = ((grid.0 * grid.1) / 2).max(1);
    let mut intervals = vec![busy * 2.0; n_tenants];
    intervals[0] = busy * 0.25;
    let mut op_counts = vec![ops; n_tenants];
    op_counts[0] = ops * 8; // same window span as the victims' stream
    let fair = run_serving(&accel_cfg, regions, FairnessPolicy::default(), &intervals, &op_counts);
    let fifo = run_serving(&accel_cfg, regions, FairnessPolicy::Fifo, &intervals, &op_counts);
    // With leases granted in connect order over `regions` slots, tenant
    // `regions` is the first to double up — on the adversary's region.
    let victim = regions.min(n_tenants - 1);
    let v_fair_p99 = percentile(&fair.tenants[victim].waits, 0.99);
    let v_fifo_p99 = percentile(&fifo.tenants[victim].waits, 0.99);
    let adv_throttles = fair.tenants[0].throttles;

    println!("\nadversarial neighbor: t0 floods at 4x all window, victims at 0.5x, shared leases");
    println!("{}", "-".repeat(78));
    println!("{:<22} {:>18} {:>20}", "policy", "victim p99 wait", "adversary throttles");
    for (name, out, p99) in
        [("deficit-weighted", &fair, v_fair_p99), ("fifo baseline", &fifo, v_fifo_p99)]
    {
        println!("{:<22} {:>18} {:>20}", name, format!("{p99}"), out.tenants[0].throttles);
    }
    assert!(adv_throttles > 0, "the flood must trip deficit admission");
    assert_eq!(fifo.tenants[0].throttles, 0, "FIFO never throttles");
    assert!(
        v_fair_p99.as_ns() < v_fifo_p99.as_ns(),
        "fairness must bound the co-lessee victim's wait: fair {v_fair_p99} vs fifo {v_fifo_p99}"
    );
    // The starvation-freedom bound: the victim's wait stays within the
    // co-lessees' quota sum plus in-flight slack.
    let quota = match FairnessPolicy::default() {
        FairnessPolicy::DeficitWeighted { backlog_quota, .. } => backlog_quota,
        FairnessPolicy::Fifo => unreachable!("default policy is deficit-weighted"),
    };
    let bound = quota + quota + busy * 4.0;
    assert!(
        v_fair_p99.as_ns() <= bound.as_ns(),
        "victim p99 wait {v_fair_p99} exceeds the quota-sum bound {bound}"
    );
    let progressed = fair
        .tenants
        .iter()
        .enumerate()
        .filter(|(t, tn)| tn.grants == op_counts[*t] as u64 && tn.tile_ns > 0.0)
        .count();
    assert_eq!(progressed, n_tenants, "isolation never stalls a tenant out");
    println!(
        "fig11 isolation: adversary_throttles={adv_throttles} victim_p99_wait_fair_ns={} \
         victim_p99_wait_fifo_ns={} tenants_progressed={progressed}",
        v_fair_p99.as_ns(),
        v_fifo_p99.as_ns()
    );
    println!("\nresults self-checked bit-for-bit under every load and policy.");

    let mut report = BenchReport::new("fig11_serving");
    for (load, out) in loads.iter().zip(&sweep) {
        let mut rec = BenchRecord {
            name: format!("load_{:03.0}", load * 100.0),
            config: bench_config(Some(device), Some(grid), None, Some("deficit-weighted")),
            wall_ns: out.wall.as_nanos() as f64,
            modeled_ns: out.elapsed.as_ns(),
            installs: 0,
            installs_skipped: 0,
            hoisted_syncs: 0,
            max_tiles_active: out.max_tiles_active,
            metrics: Default::default(),
        };
        for (t, tn) in out.tenants.iter().enumerate() {
            rec = rec
                .with_metric(format!("t{t}_p50_ns"), percentile(&tn.sojourns, 0.50).as_ns())
                .with_metric(format!("t{t}_p99_ns"), percentile(&tn.sojourns, 0.99).as_ns())
                .with_metric(format!("t{t}_throttles"), tn.throttles as f64);
        }
        report.push(rec);
    }
    for (name, out, p99) in
        [("adversarial_fair", &fair, v_fair_p99), ("adversarial_fifo", &fifo, v_fifo_p99)]
    {
        report.push(
            BenchRecord {
                name: name.into(),
                config: bench_config(Some(device), Some(grid), None, Some("adversarial")),
                wall_ns: out.wall.as_nanos() as f64,
                modeled_ns: out.elapsed.as_ns(),
                installs: 0,
                installs_skipped: 0,
                hoisted_syncs: 0,
                max_tiles_active: out.max_tiles_active,
                metrics: Default::default(),
            }
            .with_metric("victim_p99_wait_ns", p99.as_ns())
            .with_metric("adversary_throttles", out.tenants[0].throttles as f64)
            .with_metric("adversary_p99_wait_ns", percentile(&out.tenants[0].waits, 0.99).as_ns()),
        );
    }
    emit_report(&report);
}
