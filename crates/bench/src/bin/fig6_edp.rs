//! Regenerates Fig. 6 (right): energy-delay-product improvement and
//! runtime improvement per kernel — sweepable over device models and
//! tile grids (see `docs/DEVICES.md`).
//!
//! Usage: `cargo run --release -p tdo_bench --bin fig6_edp --
//!     [--dataset=small|medium|large] [--device pcm|reram] [--grid KxM]`

use cim_report::{BenchRecord, BenchReport};
use polybench::Dataset;
use tdo_bench::{
    bench_config, dataset_flag_help, dataset_from_args, device_flag_help, device_from_args,
    emit_report, grid_flag_help, grid_from_args, handle_help, json_flag_help, record_from_run,
    run_fig6_with,
};
use tdo_cim::{geomean, ExecOptions};

fn main() {
    handle_help(
        "fig6_edp",
        "EDP and runtime improvement per kernel (Fig. 6 right)",
        &[
            dataset_flag_help(Dataset::Medium),
            device_flag_help(),
            grid_flag_help((1, 1)),
            json_flag_help(),
        ],
    );
    let dataset = dataset_from_args();
    let device = device_from_args();
    let grid = grid_from_args();
    eprintln!("running fig6 EDP study at {dataset:?} on {device} tiles, grid {grid:?} ...");
    let opts = ExecOptions::default().with_device(device).with_tile_grid(grid.0, grid.1);
    let rows = run_fig6_with(dataset, &opts);

    println!(
        "FIG. 6 (RIGHT) — EDP AND RUNTIME IMPROVEMENT ({dataset:?}, {device}, {}x{} tiles)",
        grid.0, grid.1
    );
    println!("{}", "=".repeat(78));
    println!(
        "{:<9} {:>16} {:>16} {:>16} {:>16}",
        "kernel", "host EDP (J*s)", "cim EDP (J*s)", "EDP improv.", "runtime improv."
    );
    println!("{}", "-".repeat(78));
    for r in &rows {
        println!(
            "{:<9} {:>16.3e} {:>16.3e} {:>15.2}x {:>15.2}x",
            r.kernel.name(),
            r.always.host.edp(),
            r.always.cim.edp(),
            r.always.edp_improvement(),
            r.always.runtime_improvement()
        );
    }
    println!("{}", "-".repeat(78));
    println!(
        "{:<9} {:>50.2}x {:>15.2}x",
        "Geomean",
        geomean(rows.iter().map(|r| r.always.edp_improvement())),
        geomean(rows.iter().map(|r| r.always.runtime_improvement()))
    );
    let best = rows
        .iter()
        .max_by(|a, b| a.always.edp_improvement().total_cmp(&b.always.edp_improvement()))
        .expect("non-empty");
    println!(
        "\nbest EDP improvement: {:.0}x on {} (paper: up to 612x on gemm-like kernels);",
        best.always.edp_improvement(),
        best.kernel.name()
    );
    println!("GEMV-like kernels regress in both EDP and runtime, as in the paper.");

    let cfg = bench_config(Some(device), Some(grid), Some(dataset), None);
    let mut report = BenchReport::new("fig6_edp");
    for r in &rows {
        report.push(
            record_from_run(r.kernel.name(), cfg.clone(), &r.always.cim, r.wall)
                .with_metric("edp_improvement_x", r.always.edp_improvement())
                .with_metric("runtime_improvement_x", r.always.runtime_improvement())
                .with_metric("host_modeled_ns", r.always.host.wall_time().as_ns()),
        );
    }
    report.push(
        BenchRecord { name: "geomean".into(), config: cfg, ..BenchRecord::default() }
            .with_metric(
                "edp_improvement_x",
                geomean(rows.iter().map(|r| r.always.edp_improvement())),
            )
            .with_metric(
                "runtime_improvement_x",
                geomean(rows.iter().map(|r| r.always.runtime_improvement())),
            ),
    );
    emit_report(&report);
}
