//! The perf gate: diffs a fresh set of `BENCH_*.json` reports against a
//! committed baseline directory and exits nonzero on any regression.
//!
//! Deterministic fields (modeled time, install/skip/hoist/tile counters,
//! derived metrics) are held to tight tolerances; host wall-clock — the
//! only nondeterministic field — gets a loose ratio gate that still
//! catches order-of-magnitude regressions (a lost fast path) without
//! flapping on machine noise. See `docs/BENCHMARKS.md`.
//!
//! Usage: `cargo run --release -p tdo_bench --bin bench_compare --
//!     --baseline <dir> --fresh <dir> [--wall-factor F] [--suite NAME ...]`

use cim_report::{compare_reports, BenchReport, Tolerances};
use std::path::{Path, PathBuf};
use tdo_bench::handle_help;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn dir_flag(args: &[String], flag: &str) -> Option<PathBuf> {
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(PathBuf::from(v));
        }
        if a == flag {
            return args.get(i + 1).map(PathBuf::from);
        }
    }
    None
}

/// `BENCH_*.json` files in `dir`, sorted by file name for stable output.
fn bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", dir.display())))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(path)
        })
        .collect();
    out.sort();
    out
}

fn main() {
    handle_help(
        "bench_compare",
        "diff fresh BENCH_*.json reports against a committed baseline",
        &[
            "--baseline <dir>                        directory holding baseline BENCH_*.json"
                .into(),
            "--fresh <dir>                           directory holding freshly generated reports"
                .into(),
            "--wall-factor <F>                       wall-clock regression ratio (default: 3.0)"
                .into(),
            "--suite <NAME>                          only compare the named suite (repeatable)"
                .into(),
        ],
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_dir =
        dir_flag(&args, "--baseline").unwrap_or_else(|| die("--baseline <dir> is required"));
    let fresh_dir = dir_flag(&args, "--fresh").unwrap_or_else(|| die("--fresh <dir> is required"));
    let mut tol = Tolerances::default();
    if let Some(f) = dir_flag(&args, "--wall-factor") {
        let v = f.to_string_lossy().parse::<f64>().ok().filter(|v| *v >= 1.0);
        tol.wall_factor = v.unwrap_or_else(|| die("--wall-factor must be a number >= 1.0"));
    }
    let suites: Vec<String> = {
        let mut s = Vec::new();
        let mut rest: &[String] = &args;
        while let Some(i) = rest.iter().position(|a| a == "--suite" || a.starts_with("--suite=")) {
            if let Some(v) = rest[i].strip_prefix("--suite=") {
                s.push(v.to_string());
            } else if let Some(v) = rest.get(i + 1) {
                s.push(v.clone());
            }
            rest = &rest[i + 1..];
        }
        s
    };

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for base_path in bench_files(&baseline_dir) {
        let file_name = base_path.file_name().expect("bench file").to_string_lossy().to_string();
        let base = BenchReport::read(&base_path)
            .unwrap_or_else(|e| die(&format!("{}: {e}", base_path.display())));
        if !suites.is_empty() && !suites.contains(&base.suite) {
            continue;
        }
        compared += 1;
        let fresh_path = fresh_dir.join(&file_name);
        if !fresh_path.exists() {
            regressions.push(format!(
                "{}: missing from fresh dir {} (suite was not regenerated)",
                file_name,
                fresh_dir.display()
            ));
            continue;
        }
        let fresh = BenchReport::read(&fresh_path)
            .unwrap_or_else(|e| die(&format!("{}: {e}", fresh_path.display())));
        let found = compare_reports(&base, &fresh, &tol);
        eprintln!(
            "{file_name}: {} baseline records vs {} fresh, {} regression(s)",
            base.records.len(),
            fresh.records.len(),
            found.len()
        );
        regressions.extend(found.iter().map(|r| r.to_string()));
    }
    if compared == 0 {
        die(&format!("no BENCH_*.json baselines found under {}", baseline_dir.display()));
    }

    if regressions.is_empty() {
        println!("perf gate PASS: {compared} suite(s), no regressions");
        return;
    }
    println!("perf gate FAIL: {} regression(s) across {compared} suite(s):", regressions.len());
    for r in &regressions {
        println!("  {r}");
    }
    std::process::exit(1);
}
