//! # tdo-bench — figure and table regeneration harness
//!
//! One binary per artifact of the paper's evaluation:
//!
//! * `table1` — the system configuration (Table I);
//! * `fig5_endurance` — lifetime vs PCM endurance, naive vs smart mapping;
//! * `fig6_energy` — energy + MACs-per-write for the seven kernels;
//! * `fig6_edp` — EDP and runtime improvements.
//!
//! Criterion micro-benchmarks (crossbar, compiler, machine, pipeline,
//! ablation) live under `benches/`.

use cim_pcm::DeviceKind;
use polybench::{init_fn, source, Dataset, Kernel};
use tdo_cim::{compile, execute, geomean, Comparison, CompileOptions, ExecOptions};
use tdo_tactics::OffloadPolicy;

/// One row of the Fig. 6 data.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Kernel.
    pub kernel: Kernel,
    /// Host-only vs host+CIM comparison under the Always policy.
    pub always: Comparison,
    /// Energy improvement under the Selective policy (1.0 when the cost
    /// model keeps the kernel on the host).
    pub selective_energy_x: f64,
    /// Whether the Selective policy offloaded anything in this kernel.
    pub selective_offloaded: bool,
}

/// Runs the Fig. 6 study at a dataset size with the paper's default
/// platform (Table-I PCM, single tile).
///
/// # Panics
///
/// Panics if any kernel fails to compile or run (they are all tested).
pub fn run_fig6(dataset: Dataset) -> Vec<Fig6Row> {
    run_fig6_with(dataset, &ExecOptions::default())
}

/// Runs the Fig. 6 study under explicit execution options — the sweep
/// entry point for alternative device models and tile grids.
///
/// # Panics
///
/// Panics if any kernel fails to compile or run (they are all tested).
pub fn run_fig6_with(dataset: Dataset, exec_opts: &ExecOptions) -> Vec<Fig6Row> {
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let src = source(kernel, dataset);
            let init = init_fn(kernel);
            let exec_opts = exec_opts.clone();
            let always = tdo_cim::compare(
                kernel.name(),
                &src,
                &CompileOptions::with_tactics(),
                &exec_opts,
                &init,
            )
            .expect("comparison runs");

            // Selective policy: reuse the Always runs when the decision is
            // all-or-nothing; re-run only mixed cases.
            let mut sel_opts = CompileOptions::with_tactics();
            sel_opts.tactics.policy = OffloadPolicy::Selective;
            let sel_compiled = compile(&src, &sel_opts).expect("compiles");
            let report = sel_compiled.report.as_ref().expect("tactics ran");
            let offloaded = report.kernels.iter().filter(|k| k.offloaded).count();
            let selective_energy_x = if offloaded == 0 {
                1.0
            } else if offloaded == report.kernels.len() {
                always.energy_improvement()
            } else {
                let sel_run = execute(&sel_compiled, &exec_opts, &init).expect("selective runs");
                always.host.total_energy() / sel_run.total_energy()
            };
            Fig6Row { kernel, always, selective_energy_x, selective_offloaded: offloaded > 0 }
        })
        .collect()
}

/// Geometric means over the rows: `(full, selective)` — the "Geomean" and
/// "Selective Geomean" bars of Fig. 6 (left). The selective mean is taken
/// over the kernels the cost model offloads (the beneficial set), which is
/// how the paper's 32.6x vs 3.2x pair reads.
pub fn fig6_geomeans(rows: &[Fig6Row]) -> (f64, f64) {
    let full = geomean(rows.iter().map(|r| r.always.energy_improvement()));
    let selective =
        geomean(rows.iter().filter(|r| r.selective_offloaded).map(|r| r.selective_energy_x));
    (full, selective)
}

/// Parses `--dataset <size>` (or `--dataset=<size>`) from argv, defaulting
/// to Medium, the figure default.
pub fn dataset_from_args() -> Dataset {
    flag_value("--dataset").and_then(|v| Dataset::parse(&v)).unwrap_or(Dataset::Medium)
}

fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if a == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Parses `--device <pcm|reram>` (or `--device=...`) from argv, defaulting
/// to the paper's PCM part.
pub fn device_from_args() -> DeviceKind {
    flag_value("--device").and_then(|v| DeviceKind::parse(&v)).unwrap_or(DeviceKind::Pcm)
}

/// Parses `--grid <KxM>` (or `--grid=KxM`, e.g. `--grid 2x2`) from argv,
/// defaulting to the paper's single tile.
pub fn grid_from_args() -> (usize, usize) {
    grid_from_args_or((1, 1))
}

/// As [`grid_from_args`], with an explicit default — overlap studies
/// default to a multi-tile grid, the figure binaries to the paper's
/// single tile.
pub fn grid_from_args_or(default: (usize, usize)) -> (usize, usize) {
    flag_value("--grid")
        .and_then(|v| {
            let (gk, gm) = v.split_once(['x', 'X'])?;
            Some((gk.trim().parse().ok()?, gm.trim().parse().ok()?))
        })
        .filter(|&(gk, gm)| gk > 0 && gm > 0)
        .unwrap_or(default)
}

/// Parses `--batch <N>` (or `--batch=N`) from argv.
pub fn batch_from_args_or(default: usize) -> usize {
    flag_value("--batch").and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// Parses `--size <N>` (or `--size=N`) from argv — per-kernel problem
/// size for the overlap study.
pub fn size_from_args_or(default: usize) -> usize {
    flag_value("--size").and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}
