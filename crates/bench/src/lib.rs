//! # tdo-bench — figure and table regeneration harness
//!
//! One binary per artifact of the paper's evaluation:
//!
//! * `table1` — the system configuration (Table I);
//! * `fig5_endurance` — lifetime vs PCM endurance, naive vs smart mapping;
//! * `fig6_energy` — energy + MACs-per-write for the seven kernels;
//! * `fig6_edp` — EDP and runtime improvements.
//!
//! Criterion micro-benchmarks (crossbar, compiler, machine, pipeline,
//! ablation) live under `benches/`.

use polybench::{init_fn, source, Dataset, Kernel};
use tdo_cim::{compile, execute, geomean, Comparison, CompileOptions, ExecOptions};
use tdo_tactics::OffloadPolicy;

/// One row of the Fig. 6 data.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Kernel.
    pub kernel: Kernel,
    /// Host-only vs host+CIM comparison under the Always policy.
    pub always: Comparison,
    /// Energy improvement under the Selective policy (1.0 when the cost
    /// model keeps the kernel on the host).
    pub selective_energy_x: f64,
    /// Whether the Selective policy offloaded anything in this kernel.
    pub selective_offloaded: bool,
}

/// Runs the Fig. 6 study at a dataset size.
///
/// # Panics
///
/// Panics if any kernel fails to compile or run (they are all tested).
pub fn run_fig6(dataset: Dataset) -> Vec<Fig6Row> {
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let src = source(kernel, dataset);
            let init = init_fn(kernel);
            let exec_opts = ExecOptions::default();
            let always = tdo_cim::compare(
                kernel.name(),
                &src,
                &CompileOptions::with_tactics(),
                &exec_opts,
                &init,
            )
            .expect("comparison runs");

            // Selective policy: reuse the Always runs when the decision is
            // all-or-nothing; re-run only mixed cases.
            let mut sel_opts = CompileOptions::with_tactics();
            sel_opts.tactics.policy = OffloadPolicy::Selective;
            let sel_compiled = compile(&src, &sel_opts).expect("compiles");
            let report = sel_compiled.report.as_ref().expect("tactics ran");
            let offloaded = report.kernels.iter().filter(|k| k.offloaded).count();
            let selective_energy_x = if offloaded == 0 {
                1.0
            } else if offloaded == report.kernels.len() {
                always.energy_improvement()
            } else {
                let sel_run = execute(&sel_compiled, &exec_opts, &init).expect("selective runs");
                always.host.total_energy() / sel_run.total_energy()
            };
            Fig6Row { kernel, always, selective_energy_x, selective_offloaded: offloaded > 0 }
        })
        .collect()
}

/// Geometric means over the rows: `(full, selective)` — the "Geomean" and
/// "Selective Geomean" bars of Fig. 6 (left). The selective mean is taken
/// over the kernels the cost model offloads (the beneficial set), which is
/// how the paper's 32.6x vs 3.2x pair reads.
pub fn fig6_geomeans(rows: &[Fig6Row]) -> (f64, f64) {
    let full = geomean(rows.iter().map(|r| r.always.energy_improvement()));
    let selective =
        geomean(rows.iter().filter(|r| r.selective_offloaded).map(|r| r.selective_energy_x));
    (full, selective)
}

/// Parses the dataset from argv (defaults to Medium, the figure default).
pub fn dataset_from_args() -> Dataset {
    std::env::args()
        .skip(1)
        .find_map(|a| Dataset::parse(a.trim_start_matches("--dataset=")))
        .unwrap_or(Dataset::Medium)
}
