//! # tdo-bench — figure and table regeneration harness
//!
//! One binary per artifact of the paper's evaluation:
//!
//! * `table1` — the system configuration (Table I);
//! * `fig5_endurance` — lifetime vs PCM endurance, naive vs smart mapping;
//! * `fig6_energy` — energy + MACs-per-write for the seven kernels;
//! * `fig6_edp` — EDP and runtime improvements;
//! * `fig7_overlap` — host/accelerator overlap under async dispatch;
//! * `fig8_workloads` — the workload axis beyond PolyBench: the
//!   inference-style GEMM-chain suite and the streamed XLarge GEMM
//!   (see `docs/WORKLOADS.md`);
//! * `fig9_dataflow` — the offload dataflow graph: sync hoisting,
//!   h2d elision and operand residency on the multi-head chain;
//! * `fig10_reactor` — reactor doorbell batching vs per-future
//!   polling, and the per-tile DMA channel sweep.
//!
//! Every binary accepts `--help` and lists its valid flag values.
//!
//! Criterion micro-benchmarks (crossbar, compiler, machine, pipeline,
//! ablation) live under `benches/`.

use cim_pcm::DeviceKind;
use cim_report::{BenchConfig, BenchRecord, BenchReport};
use polybench::{init_fn, source, Dataset, Kernel};
use std::path::PathBuf;
use tdo_cim::{
    compile, execute, geomean, Comparison, CompileOptions, CompiledProgram, ExecOptions, RunResult,
};
use tdo_tactics::OffloadPolicy;

/// One row of the Fig. 6 data.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Kernel.
    pub kernel: Kernel,
    /// Host-only vs host+CIM comparison under the Always policy.
    pub always: Comparison,
    /// Energy improvement under the Selective policy (1.0 when the cost
    /// model keeps the kernel on the host).
    pub selective_energy_x: f64,
    /// Whether the Selective policy offloaded anything in this kernel.
    pub selective_offloaded: bool,
    /// Host wall-clock spent simulating this kernel's comparisons.
    pub wall: std::time::Duration,
}

/// Runs the Fig. 6 study at a dataset size with the paper's default
/// platform (Table-I PCM, single tile).
///
/// # Panics
///
/// Panics if any kernel fails to compile or run (they are all tested).
pub fn run_fig6(dataset: Dataset) -> Vec<Fig6Row> {
    run_fig6_with(dataset, &ExecOptions::default())
}

/// Runs the Fig. 6 study under explicit execution options — the sweep
/// entry point for alternative device models and tile grids.
///
/// # Panics
///
/// Panics if any kernel fails to compile or run (they are all tested).
pub fn run_fig6_with(dataset: Dataset, exec_opts: &ExecOptions) -> Vec<Fig6Row> {
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let t0 = std::time::Instant::now();
            let src = source(kernel, dataset);
            let init = init_fn(kernel);
            let exec_opts = exec_opts.clone();
            let always = tdo_cim::compare(
                kernel.name(),
                &src,
                &CompileOptions::with_tactics(),
                &exec_opts,
                &init,
            )
            .expect("comparison runs");

            // Selective policy: reuse the Always runs when the decision is
            // all-or-nothing; re-run only mixed cases.
            let mut sel_opts = CompileOptions::with_tactics();
            sel_opts.tactics.policy = OffloadPolicy::Selective;
            let sel_compiled = compile(&src, &sel_opts).expect("compiles");
            print_pass_reports(kernel.name(), &sel_compiled);
            let report = sel_compiled.report.as_ref().expect("tactics ran");
            let offloaded = report.kernels.iter().filter(|k| k.offloaded).count();
            let selective_energy_x = if offloaded == 0 {
                1.0
            } else if offloaded == report.kernels.len() {
                always.energy_improvement()
            } else {
                let sel_run = execute(&sel_compiled, &exec_opts, &init).expect("selective runs");
                always.host.total_energy() / sel_run.total_energy()
            };
            Fig6Row {
                kernel,
                always,
                selective_energy_x,
                selective_offloaded: offloaded > 0,
                wall: t0.elapsed(),
            }
        })
        .collect()
}

/// Geometric means over the rows: `(full, selective)` — the "Geomean" and
/// "Selective Geomean" bars of Fig. 6 (left). The selective mean is taken
/// over the kernels the cost model offloads (the beneficial set), which is
/// how the paper's 32.6x vs 3.2x pair reads.
pub fn fig6_geomeans(rows: &[Fig6Row]) -> (f64, f64) {
    let full = geomean(rows.iter().map(|r| r.always.energy_improvement()));
    let selective =
        geomean(rows.iter().filter(|r| r.selective_offloaded).map(|r| r.selective_energy_x));
    (full, selective)
}

/// Valid `--device` values, for help text.
pub const DEVICE_NAMES: &str = "pcm|reram";

/// Prints a usage message and exits when `--help` (or `-h`) is present
/// in argv. `flags` holds one pre-formatted line per accepted flag; the
/// figure binaries list every valid dataset/device/grid value here
/// instead of silently defaulting on a typo.
pub fn handle_help(binary: &str, about: &str, flags: &[String]) {
    if !std::env::args().skip(1).any(|a| a == "--help" || a == "-h") {
        return;
    }
    println!("{binary} — {about}");
    println!("\nUsage: cargo run --release -p tdo_bench --bin {binary} -- [flags]\n");
    if flags.is_empty() {
        println!("  (no flags)");
    }
    for f in flags {
        println!("  {f}");
    }
    std::process::exit(0);
}

/// Help line for the shared `--dataset` flag.
pub fn dataset_flag_help(default: Dataset) -> String {
    format!("--dataset <{}>   problem size (default: {default:?})", Dataset::NAMES)
}

/// Help line for the shared `--device` flag.
pub fn device_flag_help() -> String {
    format!("--device <{DEVICE_NAMES}>                    device model (default: pcm)")
}

/// Help line for the shared `--grid` flag.
pub fn grid_flag_help(default: (usize, usize)) -> String {
    format!(
        "--grid <KxM>                            tile grid (default: {}x{})",
        default.0, default.1
    )
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2)
}

/// Parses `--dataset <size>` (or `--dataset=<size>`) from argv,
/// defaulting to Medium, the figure default. An unrecognized value is a
/// fatal error listing the valid names — never a silent default.
pub fn dataset_from_args() -> Dataset {
    dataset_from_args_or(Dataset::Medium)
}

/// As [`dataset_from_args`], with an explicit default.
pub fn dataset_from_args_or(default: Dataset) -> Dataset {
    parse_dataset_flag("--dataset", default)
}

/// Parses an arbitrarily named dataset flag (e.g. `--stream-dataset`).
pub fn parse_dataset_flag(flag: &str, default: Dataset) -> Dataset {
    match flag_value(flag) {
        None => default,
        Some(v) => Dataset::parse(&v)
            .unwrap_or_else(|| die(&format!("invalid {flag} '{v}' (valid: {})", Dataset::NAMES))),
    }
}

fn flag_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if a == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Parses `--device <pcm|reram>` (or `--device=...`) from argv,
/// defaulting to the paper's PCM part; unknown device names are fatal.
pub fn device_from_args() -> DeviceKind {
    match flag_value("--device") {
        None => DeviceKind::Pcm,
        Some(v) => DeviceKind::parse(&v)
            .unwrap_or_else(|| die(&format!("invalid --device '{v}' (valid: {DEVICE_NAMES})"))),
    }
}

/// Parses `--grid <KxM>` (or `--grid=KxM`, e.g. `--grid 2x2`) from argv,
/// defaulting to the paper's single tile.
pub fn grid_from_args() -> (usize, usize) {
    grid_from_args_or((1, 1))
}

/// As [`grid_from_args`], with an explicit default — overlap studies
/// default to a multi-tile grid, the figure binaries to the paper's
/// single tile. Malformed or zero-axis grids are fatal.
pub fn grid_from_args_or(default: (usize, usize)) -> (usize, usize) {
    match flag_value("--grid") {
        None => default,
        Some(v) => v
            .split_once(['x', 'X'])
            .and_then(|(gk, gm)| Some((gk.trim().parse().ok()?, gm.trim().parse().ok()?)))
            .filter(|&(gk, gm): &(usize, usize)| gk > 0 && gm > 0)
            .unwrap_or_else(|| {
                die(&format!("invalid --grid '{v}' (expected KxM with K, M >= 1, e.g. 2x2)"))
            }),
    }
}

/// Parses a positive-integer flag (e.g. `--batch 4` or `--batch=4`);
/// non-numeric or zero values are fatal.
pub fn usize_flag_or(flag: &str, default: usize) -> usize {
    match flag_value(flag) {
        None => default,
        Some(v) => {
            v.trim().parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                die(&format!("invalid {flag} '{v}' (expected a positive integer)"))
            })
        }
    }
}

/// Parses `--batch <N>` (or `--batch=N`) from argv.
pub fn batch_from_args_or(default: usize) -> usize {
    usize_flag_or("--batch", default)
}

/// Help line for the shared `--verbose` flag.
pub fn verbose_flag_help() -> String {
    "--verbose                               print per-pass compiler reports".into()
}

/// Whether `--verbose` (or `-v`) is present in argv.
pub fn verbose_from_args() -> bool {
    std::env::args().skip(1).any(|a| a == "--verbose" || a == "-v")
}

/// Under `--verbose`, prints the compiler pass pipeline report of a
/// compiled program to stderr — one line per pass, in pipeline order.
/// The figure binaries call this after every `compile`.
pub fn print_pass_reports(label: &str, compiled: &CompiledProgram) {
    if !verbose_from_args() {
        return;
    }
    eprintln!("{label}: compiler pass pipeline:");
    for p in &compiled.passes {
        eprintln!("  {p}");
    }
}

/// Help line for the shared `--json` flag.
pub fn json_flag_help() -> String {
    "--json <path>                           also write a cim-bench-v1 JSON report".into()
}

/// Parses `--json <path>` (or `--json=path`) from argv — the
/// machine-readable output sink every figure binary supports.
pub fn json_path_from_args() -> Option<PathBuf> {
    flag_value("--json").map(PathBuf::from)
}

/// Writes `report` to the `--json` path when one was given (fatal on
/// I/O errors — a perf gate must not silently skip its own output).
pub fn emit_report(report: &BenchReport) {
    let Some(path) = json_path_from_args() else { return };
    if let Err(e) = report.write(&path) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
    eprintln!("wrote {} ({} records)", path.display(), report.records.len());
}

/// A [`BenchConfig`] with this binary's sweep axes filled in; axes a
/// binary does not expose stay at the schema's "-" placeholder.
pub fn bench_config(
    device: Option<DeviceKind>,
    grid: Option<(usize, usize)>,
    dataset: Option<Dataset>,
    dispatch: Option<&str>,
) -> BenchConfig {
    let mut c = BenchConfig::default();
    if let Some(d) = device {
        c.device = d.name().into();
    }
    if let Some(g) = grid {
        c.grid = g;
    }
    if let Some(d) = dataset {
        c.dataset = format!("{d:?}").to_lowercase();
    }
    if let Some(d) = dispatch {
        c.dispatch = d.into();
    }
    c
}

/// Builds a [`BenchRecord`] from an executed run: modeled wall time plus
/// the accelerator counters the perf gate holds exact. `wall` is the
/// host wall-clock spent producing the run.
pub fn record_from_run(
    name: impl Into<String>,
    config: BenchConfig,
    run: &RunResult,
    wall: std::time::Duration,
) -> BenchRecord {
    let acc = run.accel.unwrap_or_default();
    BenchRecord {
        name: name.into(),
        config,
        wall_ns: wall.as_nanos() as f64,
        modeled_ns: run.wall_time().as_ns(),
        installs: acc.rows_programmed,
        installs_skipped: acc.install_skips,
        hoisted_syncs: 0,
        max_tiles_active: acc.max_tiles_active,
        metrics: Default::default(),
    }
    .with_metric("energy_mj", run.total_energy().as_mj())
}

/// Parses `--size <N>` (or `--size=N`) from argv — per-kernel problem
/// size for the overlap study.
pub fn size_from_args_or(default: usize) -> usize {
    usize_flag_or("--size", default)
}

/// A [`BenchRecord`] for one streamed-GEMM schedule (fig8/fig9 Section B).
/// `StreamRun` exposes no accelerator counters, so those stay zero.
pub fn stream_record(
    name: &str,
    config: BenchConfig,
    r: &workloads::StreamRun,
    wall: std::time::Duration,
) -> BenchRecord {
    BenchRecord {
        name: name.into(),
        config,
        wall_ns: wall.as_nanos() as f64,
        modeled_ns: r.elapsed.as_ns(),
        max_tiles_active: r.max_tiles,
        ..BenchRecord::default()
    }
    .with_metric("accel_busy_ns", r.accel_busy.as_ns())
    .with_metric("busy_wait_ns", r.busy_wait.as_ns())
    .with_metric("panels", r.panels as f64)
    .with_metric("cma_peak_bytes", r.cma_peak as f64)
    .with_metric("sync_skips", r.sync_skips as f64)
}
