//! Criterion benchmarks of the host-platform simulator (cache hierarchy
//! and memory throughput of the *simulator*).

use cim_machine::cache::{CacheConfig, Hierarchy, MemLatency};
use cim_machine::{Machine, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_hierarchy(c: &mut Criterion) {
    let mut h = Hierarchy::new(
        CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 4 },
        CacheConfig { size_bytes: 2 * 1024 * 1024, line_bytes: 64, ways: 8 },
        MemLatency::default(),
        1.2e9,
    );
    c.bench_function("hierarchy_streaming_4k", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                black_box(h.access(addr, 4, false));
                addr = (addr + 4) % (8 * 1024 * 1024);
            }
        })
    });
}

fn bench_host_loads(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::test_small());
    let va = m.alloc_host(64 * 1024);
    for i in 0..1024 {
        m.host_store_f32(va + 4 * i, i as f32);
    }
    c.bench_function("machine_host_load_1k", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for i in 0..1024u64 {
                acc += m.host_load_f32(va + 4 * (i % 1024));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_hierarchy, bench_host_loads);
criterion_main!(benches);
