//! Criterion benchmarks of the host-platform simulator (cache hierarchy
//! and memory throughput of the *simulator*).
//!
//! `hierarchy_streaming_4k` models the same traffic it always has — 1024
//! sequential 4-byte accesses per iteration — but issues it through the
//! bulk [`Hierarchy::access_block`] path the interpreter now uses;
//! `hierarchy_streaming_4k_scalar` keeps the per-scalar loop as the
//! reference point the PR 10 speedup is measured against.

use cim_machine::cache::{CacheConfig, Hierarchy, MemLatency};
use cim_machine::{Machine, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn a7_hierarchy() -> Hierarchy {
    Hierarchy::new(
        CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 4 },
        CacheConfig { size_bytes: 2 * 1024 * 1024, line_bytes: 64, ways: 8 },
        MemLatency::default(),
        1.2e9,
    )
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut h = a7_hierarchy();
    c.bench_function("hierarchy_streaming_4k", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            // 1024 sequential word accesses, classified per line: the
            // wrap point is 4 KiB aligned, so one run never straddles it.
            black_box(h.access_block(addr, 4, 1024, 4, false));
            addr = (addr + 4 * 1024) % (8 * 1024 * 1024);
        })
    });
    let mut h = a7_hierarchy();
    c.bench_function("hierarchy_streaming_4k_scalar", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                black_box(h.access(addr, 4, false));
                addr = (addr + 4) % (8 * 1024 * 1024);
            }
        })
    });
    // Strided run: 16-byte stride touches every fourth word, 4 words per
    // line — the run path still folds them into one lookup per line.
    let mut h = a7_hierarchy();
    c.bench_function("hierarchy_strided_run_1k", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            black_box(h.access_block(addr, 4, 1024, 16, false));
            addr = (addr + 16 * 1024) % (32 * 1024 * 1024);
        })
    });
}

fn bench_host_loads(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::test_small());
    let va = m.alloc_host(64 * 1024);
    for i in 0..1024 {
        m.host_store_f32(va + 4 * i, i as f32);
    }
    c.bench_function("machine_host_load_1k", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for i in 0..1024u64 {
                acc += m.host_load_f32(va + 4 * (i % 1024));
            }
            black_box(acc)
        })
    });
    // The same 1024 loads as one run: one translate per page, one cache
    // classification per line, one stall charge.
    let mut m = Machine::new(MachineConfig::test_small());
    let va = m.alloc_host(64 * 1024);
    for i in 0..1024 {
        m.host_store_f32(va + 4 * i, i as f32);
    }
    let mut buf = vec![0f32; 1024];
    c.bench_function("machine_host_load_run_1k", |b| {
        b.iter(|| {
            m.host_load_f32_run(va, 4, &mut buf);
            black_box(buf[1023])
        })
    });
}

criterion_group!(benches, bench_hierarchy, bench_host_loads);
criterion_main!(benches);
