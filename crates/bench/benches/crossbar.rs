//! Criterion micro-benchmarks of the PCM crossbar simulator itself
//! (simulation throughput, not modelled hardware performance).

use cim_accel::tile::{CimTile, TileKey};
use cim_accel::AccelConfig;
use cim_pcm::{CellConfig, Crossbar, Fidelity};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn key() -> TileKey {
    TileKey {
        base_pa: 0x1000,
        ld: 256,
        transposed: false,
        origin: (0, 0),
        extent: (256, 256),
        generation: 0,
    }
}

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_gemv_256");
    let g: Vec<f32> = (0..256 * 256).map(|i| (i % 17) as f32 - 8.0).collect();
    let x: Vec<f32> = (0..256).map(|i| (i % 13) as f32 - 6.0).collect();
    for fidelity in [Fidelity::Exact, Fidelity::Int8] {
        let cfg = AccelConfig { fidelity, ..AccelConfig::default() };
        let mut tile = CimTile::new(&cfg);
        tile.install(key(), &g, 256, 256);
        group.bench_function(format!("{fidelity:?}"), |b| {
            b.iter(|| black_box(tile.gemv(black_box(&x))))
        });
    }
    group.finish();
}

fn bench_install(c: &mut Criterion) {
    let g: Vec<f32> = (0..256 * 256).map(|i| (i % 17) as f32 - 8.0).collect();
    c.bench_function("tile_install_256x256", |b| {
        b.iter_batched(
            || CimTile::new(&AccelConfig::default()),
            |mut tile| {
                tile.install(key(), black_box(&g), 256, 256);
                tile
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_raw_crossbar(c: &mut Criterion) {
    let mut xbar = Crossbar::new(256, 256, CellConfig::default());
    let levels: Vec<u8> = (0..256).map(|i| (i % 16) as u8).collect();
    for r in 0..256 {
        xbar.program_row(r, &levels);
    }
    let inputs: Vec<i32> = (0..256).map(|i| (i % 255) - 127).collect();
    c.bench_function("crossbar_dot_levels_256", |b| {
        b.iter(|| black_box(xbar.dot_levels(black_box(&inputs))))
    });
}

criterion_group!(benches, bench_gemv, bench_install, bench_raw_crossbar);
criterion_main!(benches);
