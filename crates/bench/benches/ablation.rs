//! Ablation benchmarks: the simulator-side cost of the design choices
//! DESIGN.md calls out (fusion on/off, wait policies, flush coverage).
//! These measure *simulation* throughput; the modelled-cost ablations are
//! printed by the `fig*` binaries and the `fusion_endurance` example.

use cim_machine::units::SimTime;
use cim_runtime::{DriverConfig, FlushMode, WaitPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdo_cim::{compile, execute, CompileOptions, ExecOptions};
use tdo_tactics::PassId;

const LISTING2: &str = r#"
    const int N = 16;
    float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float E[N][N];
    void kernel() {
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            C[i][j] += A[i][k] * B[k][j];
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
          for (int k = 0; k < N; k++)
            D[i][j] += A[i][k] * E[k][j];
    }
"#;

fn init(name: &str, data: &mut [f32]) {
    let seed = name.len();
    data.iter_mut().enumerate().for_each(|(i, v)| *v = ((seed + i) % 5) as f32 - 2.0);
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("offload_listing2");
    group.sample_size(20);
    for fusion in [true, false] {
        let mut opts = CompileOptions::with_tactics();
        opts.tactics.fusion = fusion;
        let compiled = compile(LISTING2, &opts).expect("compiles");
        let exec_opts = ExecOptions::default();
        group.bench_function(format!("fusion_{fusion}"), |b| {
            b.iter(|| black_box(execute(&compiled, &exec_opts, &init).expect("runs")))
        });
    }
    group.finish();
}

fn bench_wait_policies(c: &mut Criterion) {
    let compiled = compile(LISTING2, &CompileOptions::with_tactics()).expect("compiles");
    let mut group = c.benchmark_group("wait_policy");
    group.sample_size(20);
    let policies = [
        ("spin", WaitPolicy::Spin),
        ("poll", WaitPolicy::Poll { interval: SimTime::from_us(10.0), insts_per_poll: 20 }),
    ];
    for (name, wait) in policies {
        let exec_opts = ExecOptions {
            driver: DriverConfig { wait, ..DriverConfig::default() },
            ..ExecOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(execute(&compiled, &exec_opts, &init).expect("runs")))
        });
    }
    group.finish();
}

fn bench_flush_modes(c: &mut Criterion) {
    let compiled = compile(LISTING2, &CompileOptions::with_tactics()).expect("compiles");
    let mut group = c.benchmark_group("flush_mode");
    group.sample_size(20);
    for (name, flush) in [("ranges", FlushMode::Ranges), ("full", FlushMode::Full)] {
        let exec_opts = ExecOptions {
            driver: DriverConfig { flush, ..DriverConfig::default() },
            ..ExecOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(execute(&compiled, &exec_opts, &init).expect("runs")))
        });
    }
    group.finish();
}

fn bench_pass_pipeline(c: &mut Criterion) {
    // Per-pass ablation: compile + execute under the full pipeline and
    // with each graph pass dropped. Fusion is off so the graph passes
    // have separate kernels to hoist around and operands to pin.
    let axes: [(&str, Vec<PassId>); 5] = [
        ("full", PassId::all().to_vec()),
        ("detect_only", vec![PassId::DetectOffload]),
        ("no_hoist", vec![PassId::DetectOffload, PassId::ElideSyncs, PassId::PlacePins]),
        ("no_elide", vec![PassId::DetectOffload, PassId::SyncHoist, PassId::PlacePins]),
        ("no_pin", vec![PassId::DetectOffload, PassId::SyncHoist, PassId::ElideSyncs]),
    ];
    let mut group = c.benchmark_group("pass_pipeline");
    group.sample_size(20);
    for (name, passes) in axes {
        let mut opts = CompileOptions::default().with_passes(&passes);
        opts.tactics.fusion = false;
        let exec_opts = ExecOptions::default();
        group.bench_function(name, |b| {
            b.iter(|| {
                let compiled = compile(black_box(LISTING2), &opts).expect("compiles");
                black_box(execute(&compiled, &exec_opts, &init).expect("runs"))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_wait_policies,
    bench_flush_modes,
    bench_pass_pipeline
);
criterion_main!(benches);
