//! Criterion benchmark of the end-to-end pipeline: compile + simulate a
//! small kernel both host-only and offloaded.

use criterion::{criterion_group, criterion_main, Criterion};
use polybench::{init_fn, source, Dataset, Kernel};
use std::hint::black_box;
use tdo_cim::{compile, execute, CompileOptions, ExecOptions};

fn bench_end_to_end(c: &mut Criterion) {
    let src = source(Kernel::Gemm, Dataset::Mini);
    let host = compile(&src, &CompileOptions::host_only()).expect("compiles");
    let cim = compile(&src, &CompileOptions::with_tactics()).expect("compiles");
    let init = init_fn(Kernel::Gemm);
    let opts = ExecOptions::default();
    let mut group = c.benchmark_group("end_to_end_gemm_mini");
    // Each iteration is ~1 ms and the shared container is noisy; a
    // larger sample count keeps the median stable for the perf gate.
    group.sample_size(60);
    group.bench_function("host_only", |b| {
        b.iter(|| black_box(execute(&host, &opts, &init).expect("runs")))
    });
    group.bench_function("host_cim", |b| {
        b.iter(|| black_box(execute(&cim, &opts, &init).expect("runs")))
    });
    group.finish();
}

fn bench_compile_all(c: &mut Criterion) {
    let sources: Vec<String> = Kernel::ALL.iter().map(|k| source(*k, Dataset::Medium)).collect();
    c.bench_function("compile_all_kernels_tactics", |b| {
        b.iter(|| {
            for src in &sources {
                black_box(compile(src, &CompileOptions::with_tactics()).expect("compiles"));
            }
        })
    });
}

criterion_group!(benches, bench_end_to_end, bench_compile_all);
criterion_main!(benches);
