//! Criterion benchmarks of the compiler stack: front-end, SCoP
//! extraction and the Loop Tactics matchers.

use criterion::{criterion_group, criterion_main, Criterion};
use polybench::{source, Dataset, Kernel};
use std::hint::black_box;
use tdo_tactics::{LoopTactics, TacticsConfig};

fn bench_frontend(c: &mut Criterion) {
    let src = source(Kernel::ThreeMm, Dataset::Medium);
    c.bench_function("frontend_3mm", |b| {
        b.iter(|| black_box(tdo_lang::compile(black_box(&src)).expect("compiles")))
    });
}

fn bench_scop(c: &mut Criterion) {
    let src = source(Kernel::ThreeMm, Dataset::Medium);
    let prog = tdo_lang::compile(&src).expect("compiles");
    c.bench_function("scop_extract_3mm", |b| {
        b.iter(|| black_box(tdo_poly::scop::extract(black_box(&prog)).expect("affine")))
    });
}

fn bench_tactics(c: &mut Criterion) {
    let src = source(Kernel::ThreeMm, Dataset::Medium);
    let prog = tdo_lang::compile(&src).expect("compiles");
    let scop = tdo_poly::scop::extract(&prog).expect("affine");
    let pass = LoopTactics::new(TacticsConfig::default());
    c.bench_function("loop_tactics_3mm", |b| {
        b.iter(|| black_box(pass.run(black_box(&prog), black_box(&scop))))
    });
}

criterion_group!(benches, bench_frontend, bench_scop, bench_tactics);
criterion_main!(benches);
