//! Lockstep sweep: the functional engine and the analytic estimator
//! must never diverge — on busy time, total energy, or any counter —
//! anywhere in the sweep space the figure binaries expose: device model
//! x tile grid x problem shape x fidelity x dispatch (single GEMM,
//! batched with distinct operands, batched with a shared stationary
//! operand). The estimator feeds the Selective offload policy and the
//! Fig. 5 endurance study, so a silent divergence would skew published
//! numbers without failing any functional test.

use cim_accel::estimate::{estimate_gemm, estimate_gemm_batched, OpEstimate};
use cim_accel::regs::{Command, Reg, Status};
use cim_accel::{AccelConfig, AccelStats, CimAccelerator};
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_pcm::{DeviceKind, Fidelity};
use proptest::prelude::*;

fn fill(len: usize, seed: usize) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * 0.25 - 1.5).collect()
}

fn alloc_mat(mach: &mut Machine, data: &[f32]) -> u64 {
    let (_va, pa) = mach.alloc_cma((data.len() * 4) as u64).expect("cma");
    mach.mem.write_f32_slice(pa, data);
    pa
}

/// 8x8 tiles of the selected device technology: small enough that the
/// shape axis exercises multi-wave sharding, with the device's real
/// energy/latency constants.
fn sweep_config(
    device: DeviceKind,
    grid: (usize, usize),
    fidelity: Fidelity,
    dma_channels: usize,
) -> AccelConfig {
    let base =
        AccelConfig { rows: 8, cols: 8, buffer_bytes: 64, ..AccelConfig::for_device(device) };
    AccelConfig { fidelity, ..base }.with_grid(grid.0, grid.1).with_dma_channels(dma_channels)
}

/// The per-tile DMA channel counts the sweeps exercise (serial bus,
/// partially and fully de-serialized installs).
const CHANNEL_SWEEP: [usize; 3] = [1, 2, 4];

fn arm_gemm(
    acc: &mut CimAccelerator,
    (m, n, k): (usize, usize, usize),
    (a, b, c): (u64, u64, u64),
    beta: f32,
) {
    for (r, v) in [
        (Reg::M, m as u64),
        (Reg::N, n as u64),
        (Reg::K, k as u64),
        (Reg::Lda, k as u64),
        (Reg::Ldb, n as u64),
        (Reg::Ldc, n as u64),
        (Reg::AddrA, a),
        (Reg::AddrB, b),
        (Reg::AddrC, c),
        (Reg::Alpha, 1.0f32.to_bits() as u64),
        (Reg::Beta, beta.to_bits() as u64),
        (Reg::TransA, 0),
        (Reg::TransB, 0),
    ] {
        acc.pmio_write(r, v);
    }
}

/// One engine run: a single GEMM, or a batch sharing the template shape.
fn run_engine(
    cfg: AccelConfig,
    (m, n, k): (usize, usize, usize),
    beta: f32,
    batch: Option<(usize, bool)>,
) -> (AccelStats, SimTime) {
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
    let mk_elem = |mach: &mut Machine, i: usize| {
        (
            alloc_mat(mach, &fill(m * k, 3 + 31 * i)),
            alloc_mat(mach, &fill(k * n, 11 + 17 * i)),
            alloc_mat(mach, &fill(m * n, 7 + 5 * i)),
        )
    };
    match batch {
        None => {
            let ptrs = mk_elem(&mut mach, 0);
            arm_gemm(&mut acc, (m, n, k), ptrs, beta);
            acc.pmio_write(Reg::Command, Command::Gemm as u64);
        }
        Some((count, share_a)) => {
            let shared_a = alloc_mat(&mut mach, &fill(m * k, 3));
            let mut raw = Vec::new();
            let mut first = None;
            for i in 0..count {
                let (a, b, c) = mk_elem(&mut mach, i);
                let a = if share_a { shared_a } else { a };
                first.get_or_insert((a, b, c));
                for v in [a, b, c] {
                    raw.extend_from_slice(&v.to_le_bytes());
                }
            }
            let (_va, table) = mach.alloc_cma(raw.len() as u64).expect("cma");
            mach.uncached_write(table, &raw);
            arm_gemm(&mut acc, (m, n, k), first.expect("count >= 1"), beta);
            acc.pmio_write(Reg::BatchCount, count as u64);
            acc.pmio_write(Reg::AddrBatch, table);
            acc.pmio_write(Reg::Command, Command::GemmBatched as u64);
        }
    }
    let dur = acc.execute(&mut mach);
    assert_eq!(acc.regs().status(), Status::Done, "{:?}", acc.last_error());
    (*acc.stats(), dur)
}

/// Asserts every observable the estimator predicts against the engine.
fn assert_lockstep(
    stats: &AccelStats,
    dur: SimTime,
    est: &OpEstimate,
    label: &str,
) -> Result<(), TestCaseError> {
    for (field, engine, estimator) in [
        ("gemvs", stats.gemv_count, est.gemvs),
        ("cell_writes", stats.cell_writes, est.cell_writes),
        ("rows_programmed", stats.rows_programmed, est.rows_programmed),
        ("install_skips", stats.install_skips, est.install_skips),
        ("macs", stats.macs, est.macs),
        ("max_tiles_active", stats.max_tiles_active, est.parallel_tiles),
        ("max_dma_channels_active", stats.max_dma_channels_active, est.dma_channels_active),
    ] {
        prop_assert!(
            engine == estimator,
            "{}: {} diverged — engine {} vs estimator {}",
            label,
            field,
            engine,
            estimator
        );
    }
    prop_assert!(
        (dur.as_ns() - est.time.as_ns()).abs() < 1e-6,
        "{}: time {} vs estimated {}",
        label,
        dur,
        est.time
    );
    let (measured, predicted) = (stats.total_energy().as_pj(), est.energy.as_pj());
    prop_assert!(
        (measured - predicted).abs() <= 1e-9 * predicted.abs().max(1.0),
        "{}: energy {} pJ vs estimated {} pJ",
        label,
        measured,
        predicted
    );
    Ok(())
}

/// Deterministic anchor for the channel model: a full 2x2 wave on four
/// channels overlaps all four gathers (engine and estimator agree on the
/// channel count and stay in lockstep), and de-serializing the install
/// bus strictly shortens the run.
#[test]
fn four_channels_overlap_disjoint_tile_installs() {
    let shape = (16, 2, 16); // 2x2 blocks of 8x8 tiles: one 4-tile wave
    let bus = MachineConfig::test_small().bus;
    let mut durs = Vec::new();
    for channels in CHANNEL_SWEEP {
        let cfg = sweep_config(DeviceKind::Pcm, (2, 2), Fidelity::Exact, channels);
        let (stats, dur) = run_engine(cfg, shape, 0.0, None);
        assert_eq!(stats.max_dma_channels_active, channels.min(4) as u64);
        let est = estimate_gemm(&cfg, &bus, shape.0, shape.1, shape.2, false, false);
        assert_eq!(est.dma_channels_active, stats.max_dma_channels_active);
        assert!((dur.as_ns() - est.time.as_ns()).abs() < 1e-6, "{dur} vs {}", est.time);
        durs.push(dur);
    }
    assert!(durs[1] < durs[0], "2 channels must beat the serial bus");
    assert!(durs[2] < durs[1], "4 channels must beat 2");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Single-GEMM dispatch: engine == estimator over device x grid x
    /// shape x fidelity x beta x DMA channel count.
    #[test]
    fn single_gemm_engine_matches_estimator(
        device_ix in 0usize..DeviceKind::ALL.len(),
        gk in 1usize..4,
        gm in 1usize..4,
        m in 1usize..20,
        n in 1usize..6,
        k in 1usize..20,
        int8 in proptest::bool::ANY,
        beta_zero in proptest::bool::ANY,
        ch_ix in 0usize..CHANNEL_SWEEP.len(),
    ) {
        let device = DeviceKind::ALL[device_ix];
        let fidelity = if int8 { Fidelity::Int8 } else { Fidelity::Exact };
        let channels = CHANNEL_SWEEP[ch_ix];
        let cfg = sweep_config(device, (gk, gm), fidelity, channels);
        let beta = if beta_zero { 0.0 } else { 0.5 };
        let (stats, dur) = run_engine(cfg, (m, n, k), beta, None);
        let bus = MachineConfig::test_small().bus;
        let est = estimate_gemm(&cfg, &bus, m, n, k, beta_zero, false);
        let label =
            format!("{device:?} grid={gk}x{gm} m={m} n={n} k={k} {fidelity:?} ch={channels}");
        assert_lockstep(&stats, dur, &est, &label)?;
    }

    /// Batched dispatch (the fused-kernel path): engine == estimator,
    /// with and without a shared stationary operand.
    #[test]
    fn batched_gemm_engine_matches_estimator(
        device_ix in 0usize..DeviceKind::ALL.len(),
        gk in 1usize..4,
        gm in 1usize..4,
        m in 1usize..12,
        n in 1usize..5,
        k in 1usize..12,
        count in 1usize..5,
        share_a in proptest::bool::ANY,
        ch_ix in 0usize..CHANNEL_SWEEP.len(),
    ) {
        let device = DeviceKind::ALL[device_ix];
        let channels = CHANNEL_SWEEP[ch_ix];
        let cfg = sweep_config(device, (gk, gm), Fidelity::Exact, channels);
        let (stats, dur) = run_engine(cfg, (m, n, k), 0.0, Some((count, share_a)));
        let bus = MachineConfig::test_small().bus;
        let est = estimate_gemm_batched(&cfg, &bus, m, n, k, true, count, share_a);
        let label = format!(
            "{device:?} grid={gk}x{gm} m={m} n={n} k={k} count={count} share_a={share_a} \
             ch={channels}"
        );
        assert_lockstep(&stats, dur, &est, &label)?;
    }
}
