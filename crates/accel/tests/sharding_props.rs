//! Property tests: sharding a GEMM across any tile grid is pure schedule
//! — results stay bit-for-bit identical to the single-tile reference, the
//! physical work (cell writes, MACs) is invariant, and wear spreads over
//! the grid instead of piling onto one tile.

use cim_accel::regs::{Command, Reg, Status};
use cim_accel::{AccelConfig, CimAccelerator};
use cim_machine::{Machine, MachineConfig};
use cim_pcm::Fidelity;
use proptest::prelude::*;

struct GemmCase {
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    beta: f32,
    trans_a: bool,
    a: Vec<f32>,
    b: Vec<f32>,
    c: Vec<f32>,
}

/// Runs the case under `cfg` on a fresh machine, returning the final `C`
/// bits and the accelerator stats.
fn run_case(cfg: AccelConfig, case: &GemmCase) -> (Vec<u32>, cim_accel::AccelStats) {
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
    let alloc = |mach: &mut Machine, data: &[f32]| {
        let (_va, pa) = mach.alloc_cma((data.len() * 4) as u64).expect("cma");
        mach.mem.write_f32_slice(pa, data);
        pa
    };
    let a = alloc(&mut mach, &case.a);
    let b = alloc(&mut mach, &case.b);
    let c = alloc(&mut mach, &case.c);
    let lda = if case.trans_a { case.m } else { case.k };
    for (r, v) in [
        (Reg::M, case.m as u64),
        (Reg::N, case.n as u64),
        (Reg::K, case.k as u64),
        (Reg::Lda, lda as u64),
        (Reg::Ldb, case.n as u64),
        (Reg::Ldc, case.n as u64),
        (Reg::AddrA, a),
        (Reg::AddrB, b),
        (Reg::AddrC, c),
        (Reg::Alpha, case.alpha.to_bits() as u64),
        (Reg::Beta, case.beta.to_bits() as u64),
        (Reg::TransA, case.trans_a as u64),
        (Reg::TransB, 0),
        (Reg::Command, Command::Gemm as u64),
    ] {
        acc.pmio_write(r, v);
    }
    acc.execute(&mut mach);
    assert_eq!(acc.regs().status(), Status::Done, "{:?}", acc.last_error());
    let mut out = vec![0f32; case.m * case.n];
    mach.mem.read_f32_slice(c, &mut out);
    (out.iter().map(|v| v.to_bits()).collect(), *acc.stats())
}

fn fill(len: usize, seed: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * scale - 1.5).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A GEMM split across any tile grid matches the single-tile
    /// reference result bit-for-bit, for both fidelity paths.
    #[test]
    fn any_grid_matches_single_tile_bit_for_bit(
        m in 1usize..24,
        n in 1usize..6,
        k in 1usize..24,
        gk in 1usize..4,
        gm in 1usize..4,
        alpha_q in -4i32..5,
        beta_q in -2i32..3,
        trans_a in proptest::bool::ANY,
        int8 in proptest::bool::ANY,
    ) {
        let case = GemmCase {
            m, n, k,
            alpha: alpha_q as f32 * 0.5,
            beta: beta_q as f32 * 0.5,
            trans_a,
            a: fill(m * k, 3, 0.25),
            b: fill(k * n, 11, 0.125),
            c: fill(m * n, 7, 0.5),
        };
        let fidelity = if int8 { Fidelity::Int8 } else { Fidelity::Exact };
        let base = AccelConfig { fidelity, ..AccelConfig::test_small() };
        let (reference, ref_stats) = run_case(base, &case);
        let (sharded, stats) = run_case(base.with_grid(gk, gm), &case);
        prop_assert_eq!(&sharded, &reference);
        // The schedule changes; the physical work does not.
        prop_assert_eq!(stats.cell_writes, ref_stats.cell_writes);
        prop_assert_eq!(stats.rows_programmed, ref_stats.rows_programmed);
        prop_assert_eq!(stats.macs, ref_stats.macs);
        prop_assert!(stats.busy <= ref_stats.busy);
    }

    /// Wear (endurance) spreads across the grid: with enough tiles for
    /// the block grid, no tile is programmed twice, and the total write
    /// volume matches the single-tile run.
    #[test]
    fn wear_spreads_across_tiles(
        mb in 1usize..4,
        kb in 1usize..4,
    ) {
        // Exact multiples of the 8x8 tile: an mb x kb block grid.
        let (m, k, n) = (8 * mb, 8 * kb, 4);
        let case = GemmCase {
            m, n, k,
            alpha: 1.0,
            beta: 0.0,
            trans_a: false,
            a: fill(m * k, 5, 0.5),
            b: fill(k * n, 9, 0.25),
            c: vec![0.0; m * n],
        };
        let (_, single_stats) = run_case(AccelConfig::test_small(), &case);
        let cfg = AccelConfig::test_small().with_grid(kb, mb);
        let mut mach = Machine::new(MachineConfig::test_small());
        let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
        let alloc = |mach: &mut Machine, data: &[f32]| {
            let (_va, pa) = mach.alloc_cma((data.len() * 4) as u64).expect("cma");
            mach.mem.write_f32_slice(pa, data);
            pa
        };
        let a = alloc(&mut mach, &case.a);
        let b = alloc(&mut mach, &case.b);
        let c = alloc(&mut mach, &case.c);
        for (r, v) in [
            (Reg::M, m as u64), (Reg::N, n as u64), (Reg::K, k as u64),
            (Reg::Lda, k as u64), (Reg::Ldb, n as u64), (Reg::Ldc, n as u64),
            (Reg::AddrA, a), (Reg::AddrB, b), (Reg::AddrC, c),
            (Reg::Alpha, 1.0f32.to_bits() as u64),
            (Reg::Beta, 0.0f32.to_bits() as u64),
            (Reg::Command, Command::Gemm as u64),
        ] {
            acc.pmio_write(r, v);
        }
        acc.execute(&mut mach);
        prop_assert_eq!(acc.regs().status(), Status::Done);
        let wear = acc.tile_wear();
        prop_assert_eq!(wear.len(), kb * mb);
        let total: u64 = wear.iter().map(|w| w.cell_writes).sum();
        prop_assert_eq!(total, single_stats.cell_writes);
        for w in &wear {
            prop_assert_eq!(w.cell_writes, 64);
            prop_assert_eq!(w.max_cell_writes, 1);
        }
    }
}
