//! Determinism regression: host-parallel tile simulation is pure
//! implementation — forcing any `sim_threads` level must reproduce the
//! serial engine bit-for-bit, with identical [`AccelStats`] (including
//! `max_tiles_active` and the timing/energy breakdown) and identical
//! per-tile wear. Proptested over grid shapes, problem shapes, fidelity
//! and dispatch so a scheduling change that reorders accumulation or
//! accounting cannot land silently.

use cim_accel::regs::{Command, Reg, Status};
use cim_accel::{AccelConfig, AccelStats, CimAccelerator, TileWear};
use cim_machine::{Machine, MachineConfig};
use cim_pcm::Fidelity;
use proptest::prelude::*;

fn fill(len: usize, seed: usize) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * 0.25 - 1.5).collect()
}

fn alloc_mat(mach: &mut Machine, data: &[f32]) -> u64 {
    let (_va, pa) = mach.alloc_cma((data.len() * 4) as u64).expect("cma");
    mach.mem.write_f32_slice(pa, data);
    pa
}

struct Observed {
    c_bits: Vec<u32>,
    stats: AccelStats,
    wear: Vec<TileWear>,
}

/// One full run at a forced thread level; everything else fixed.
fn run_at(
    threads: usize,
    grid: (usize, usize),
    (m, n, k): (usize, usize, usize),
    fidelity: Fidelity,
    batch: usize,
) -> Observed {
    let cfg = AccelConfig { fidelity, ..AccelConfig::test_small() }
        .with_grid(grid.0, grid.1)
        .with_sim_threads(threads);
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
    let mut c_pas = Vec::new();
    let mut descr = Vec::new();
    for i in 0..batch {
        let a = alloc_mat(&mut mach, &fill(m * k, 3 + 31 * i));
        let b = alloc_mat(&mut mach, &fill(k * n, 11 + 17 * i));
        let c = alloc_mat(&mut mach, &fill(m * n, 7 + 5 * i));
        descr.extend_from_slice(&[a, b, c]);
        c_pas.push(c);
    }
    for (r, v) in [
        (Reg::M, m as u64),
        (Reg::N, n as u64),
        (Reg::K, k as u64),
        (Reg::Lda, k as u64),
        (Reg::Ldb, n as u64),
        (Reg::Ldc, n as u64),
        (Reg::AddrA, descr[0]),
        (Reg::AddrB, descr[1]),
        (Reg::AddrC, descr[2]),
        (Reg::Alpha, 1.0f32.to_bits() as u64),
        (Reg::Beta, 0.5f32.to_bits() as u64),
        (Reg::TransA, 0),
        (Reg::TransB, 0),
    ] {
        acc.pmio_write(r, v);
    }
    if batch > 1 {
        let mut raw = Vec::new();
        for v in &descr {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let (_va, table) = mach.alloc_cma(raw.len() as u64).expect("cma");
        mach.uncached_write(table, &raw);
        acc.pmio_write(Reg::BatchCount, batch as u64);
        acc.pmio_write(Reg::AddrBatch, table);
        acc.pmio_write(Reg::Command, Command::GemmBatched as u64);
    } else {
        acc.pmio_write(Reg::Command, Command::Gemm as u64);
    }
    acc.execute(&mut mach);
    assert_eq!(acc.regs().status(), Status::Done, "{:?}", acc.last_error());
    let mut c_bits = Vec::new();
    for c in c_pas {
        let mut out = vec![0f32; m * n];
        mach.mem.read_f32_slice(c, &mut out);
        c_bits.extend(out.iter().map(|v| v.to_bits()));
    }
    Observed { c_bits, stats: *acc.stats(), wear: acc.tile_wear() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forced 2- and 4-thread tile simulation reproduces the serial
    /// engine exactly: result bits, complete stats, per-tile wear.
    #[test]
    fn forced_thread_levels_are_bit_identical(
        gk in 1usize..4,
        gm in 1usize..4,
        m in 1usize..24,
        n in 1usize..6,
        k in 1usize..24,
        int8 in proptest::bool::ANY,
        batch in 1usize..4,
    ) {
        let fidelity = if int8 { Fidelity::Int8 } else { Fidelity::Exact };
        let serial = run_at(1, (gk, gm), (m, n, k), fidelity, batch);
        for threads in [2usize, 4] {
            let parallel = run_at(threads, (gk, gm), (m, n, k), fidelity, batch);
            prop_assert!(
                parallel.c_bits == serial.c_bits,
                "threads={}: result bits diverged from serial",
                threads
            );
            prop_assert!(
                parallel.stats == serial.stats,
                "threads={}: stats diverged — parallel {:?} vs serial {:?}",
                threads,
                parallel.stats,
                serial.stats
            );
            prop_assert!(
                parallel.wear == serial.wear,
                "threads={}: tile wear diverged",
                threads
            );
        }
    }
}

/// The auto level (`sim_threads: 0`) resolves to whatever the host
/// offers and must also match the forced-serial run.
#[test]
fn auto_thread_level_matches_serial() {
    let serial = run_at(1, (2, 2), (16, 4, 16), Fidelity::Exact, 2);
    let auto = run_at(0, (2, 2), (16, 4, 16), Fidelity::Exact, 2);
    assert_eq!(auto.c_bits, serial.c_bits);
    assert_eq!(auto.stats, serial.stats);
    assert_eq!(auto.wear, serial.wear);
}
