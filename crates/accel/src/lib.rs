//! # cim-accel — the standalone CIM accelerator
//!
//! "A CIM tile, a micro-engine, and a DMA unit for load and store
//! operations make a standalone accelerator. The core is the CIM tile
//! which computes a standard matrix-vector multiplication (GEMV) of
//! complexity O(N^2) in O(1) constant time. The matrix-matrix computation
//! (GEMM) can be implemented as a series of matrix-vector operations"
//! (Section II-C of the TDO-CIM paper).
//!
//! The accelerator generalizes the paper's single tile to a
//! [`AccelConfig::grid`]-shaped array of tiles built from a pluggable
//! resistive device model ([`cim_pcm::DeviceKind`]). GEMMs larger than
//! one crossbar are *sharded*: the micro-engine spreads the block grid of
//! `op(A)` across physical tiles that install and compute in parallel,
//! accumulating partial columns digitally instead of serializing crossbar
//! views ([`shard`]). A `(1, 1)` grid reproduces the paper's accelerator
//! exactly.
//!
//! The accelerator is driven exactly like the hardware: the host writes
//! dimensions, addresses and scales into memory-mapped [`regs`] and arms
//! the command register; [`CimAccelerator::execute`] then plays the role
//! of the micro-engine, moving real bytes through the machine's shared
//! memory over DMA and accounting energy/latency per Table I.
//!
//! ```
//! use cim_accel::{AccelConfig, CimAccelerator};
//! use cim_accel::regs::{Command, Reg, Status};
//! use cim_machine::{Machine, MachineConfig};
//!
//! let mut mach = Machine::new(MachineConfig::test_small());
//! let mut acc = CimAccelerator::new(AccelConfig::test_small(), mach.cfg.bus);
//! // y = A*x with A = I(2): installs A, streams x, writes y.
//! let (_, a) = mach.alloc_cma(64).unwrap();
//! let (_, x) = mach.alloc_cma(64).unwrap();
//! let (_, y) = mach.alloc_cma(64).unwrap();
//! mach.mem.write_f32_slice(a, &[1.0, 0.0, 0.0, 1.0]);
//! mach.mem.write_f32_slice(x, &[3.0, 4.0]);
//! for (r, v) in [(Reg::M, 2u64), (Reg::N, 1), (Reg::K, 2), (Reg::Lda, 2),
//!                (Reg::Ldb, 1), (Reg::Ldc, 1), (Reg::AddrA, a), (Reg::AddrB, x),
//!                (Reg::AddrC, y)] {
//!     acc.pmio_write(r, v);
//! }
//! acc.pmio_write(Reg::Alpha, 1.0f32.to_bits() as u64);
//! acc.pmio_write(Reg::Beta, 0.0f32.to_bits() as u64);
//! acc.pmio_write(Reg::Command, Command::Gemv as u64);
//! acc.execute(&mut mach);
//! assert_eq!(acc.regs().status(), Status::Done);
//! assert_eq!(mach.mem.read_f32(y), 3.0);
//! ```

pub mod buffers;
pub mod config;
pub mod dma;
pub mod engine;
pub mod estimate;
pub mod regs;
pub mod shard;
pub mod stats;
pub mod tile;
pub mod timeline;

pub use cim_pcm::{DeviceKind, DeviceModel};
pub use config::{AccelConfig, MAX_DMA_CHANNELS};
pub use engine::{ConvParams, EngineError, GemmParams};
pub use estimate::OpEstimate;
pub use shard::{partition_grid, GridRegion};
pub use stats::AccelStats;
pub use tile::{CimTile, TileKey, TileWear};
pub use timeline::{EventKind, Timeline};

use cim_machine::bus::BusConfig;
use cim_machine::units::SimTime;
use cim_machine::Machine;

use buffers::DeviceBuffers;
use dma::DmaEngine;
use regs::{Command, ContextRegisters, Reg, Status};
use timeline::EventKind as Ev;

/// The standalone CIM accelerator of Fig. 2 (b), generalized to a grid
/// of tiles.
#[derive(Debug)]
pub struct CimAccelerator {
    pub(crate) cfg: AccelConfig,
    pub(crate) bus_cfg: BusConfig,
    /// Physical tiles in row-major `(k_lane, m_lane)` order.
    pub(crate) tiles: Vec<CimTile>,
    pub(crate) buffers: DeviceBuffers,
    pub(crate) dma: DmaEngine,
    pub(crate) regs: ContextRegisters,
    pub(crate) timeline: Timeline,
    pub(crate) stats: AccelStats,
    /// Cumulative install-gather DMA time per per-tile channel
    /// (`cfg.dma_channels` entries).
    pub(crate) channel_busy: Vec<SimTime>,
    pub(crate) generation: u64,
    /// Next logical command id (monotonic across the device's lifetime).
    pub(crate) cmd_seq: u64,
    /// First command id of the most recently executed command.
    last_cmd: u64,
    last_error: Option<EngineError>,
}

impl CimAccelerator {
    /// Creates an idle accelerator attached to a bus with `bus_cfg` timing.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AccelConfig::validate`].
    pub fn new(cfg: AccelConfig, bus_cfg: BusConfig) -> Self {
        cfg.validate();
        CimAccelerator {
            tiles: (0..cfg.tile_count()).map(|_| CimTile::new(&cfg)).collect(),
            buffers: DeviceBuffers::new(cfg.buffer_bytes),
            dma: DmaEngine::new(),
            regs: ContextRegisters::new(),
            timeline: Timeline::new(cfg.timeline_capacity),
            stats: AccelStats::default(),
            channel_busy: vec![SimTime::ZERO; cfg.dma_channels],
            generation: 0,
            cmd_seq: 0,
            last_cmd: 0,
            last_error: None,
            cfg,
            bus_cfg,
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// The physical tiles, row-major by `(k_lane, m_lane)`.
    pub fn tiles(&self) -> &[CimTile] {
        &self.tiles
    }

    /// Flat index of the tile at grid lane `(k_lane, m_lane)`.
    pub(crate) fn tile_index(&self, lane: (usize, usize)) -> usize {
        lane.0 * self.cfg.grid.1 + lane.1
    }

    /// Per-tile wear, in grid order — shows how sharding spreads cell
    /// programs across the array (the endurance dimension of Eq. 1).
    pub fn tile_wear(&self) -> Vec<TileWear> {
        let gm = self.cfg.grid.1;
        self.tiles
            .iter()
            .enumerate()
            .map(|(i, t)| TileWear {
                tile: (i / gm, i % gm),
                cell_writes: t.cell_writes(),
                max_cell_writes: t.max_cell_writes(),
            })
            .collect()
    }

    /// Total cell writes absorbed so far by the tiles of `region` — the
    /// region-granular view of [`CimAccelerator::tile_wear`] that the
    /// serving scheduler's wear budgets and wear-aware lease placement
    /// read. Region lanes outside the grid are ignored (a region from a
    /// foreign grid shape contributes only its in-bounds tiles).
    pub fn region_cell_writes(&self, region: &GridRegion) -> u64 {
        let (gk, gm) = self.cfg.grid;
        let (k0, m0) = region.origin;
        let (sk, sm) = region.shape;
        let mut total = 0;
        for k in k0..(k0 + sk).min(gk) {
            for m in m0..(m0 + sm).min(gm) {
                total += self.tiles[k * gm + m].cell_writes();
            }
        }
        total
    }

    /// Host-visible PMIO register write (bus timing is charged by the
    /// driver, which owns the host side of the transaction).
    pub fn pmio_write(&mut self, r: Reg, v: u64) {
        self.regs.write(r, v);
    }

    /// Host-visible PMIO register read.
    pub fn pmio_read(&self, r: Reg) -> u64 {
        self.regs.read(r)
    }

    /// The context register file (for drivers/tests).
    pub fn regs(&self) -> &ContextRegisters {
        &self.regs
    }

    /// Invalidates operand residency: the host rewrote shared memory, so
    /// any installed tile may be stale. Called by the driver on
    /// host-to-device transfers.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
        for tile in &mut self.tiles {
            tile.invalidate();
        }
    }

    /// Current buffer-content generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Range-precise residency invalidation: drops installed operands
    /// whose source bytes overlap `[pa, pa+len)` (conservatively, via
    /// [`TileKey::pa_span`]). Used by the zero-copy sync path so
    /// refreshing one buffer does not evict an unrelated resident
    /// operand.
    pub fn invalidate_range(&mut self, pa: u64, len: u64) {
        for tile in &mut self.tiles {
            if let Some(key) = tile.resident() {
                let (s, l) = key.pa_span();
                let base_inside = key.base_pa >= pa && key.base_pa < pa + len;
                let span_overlaps = s < pa + len && pa < s + l;
                if base_inside || span_overlaps {
                    tile.invalidate();
                }
            }
        }
    }

    /// Records that `tiles` physical tiles were concurrently busy at some
    /// instant — the driver's view when separate in-flight commands
    /// overlap on disjoint regions, which the engine cannot see from
    /// inside any single command.
    pub fn note_tiles_active(&mut self, tiles: u64) {
        self.stats.max_tiles_active = self.stats.max_tiles_active.max(tiles);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &AccelStats {
        &self.stats
    }

    /// Resets statistics (not residency or the timeline).
    pub fn reset_stats(&mut self) {
        self.stats = AccelStats::default();
        self.channel_busy = vec![SimTime::ZERO; self.cfg.dma_channels];
        self.buffers.reset();
        self.dma.reset();
    }

    /// Cumulative install-gather DMA time queued on each per-tile DMA
    /// channel (one entry per configured channel). With the default
    /// single channel this equals the serial install bus occupancy; the
    /// driver mirrors it into `DriverStats` on every batched poll.
    pub fn dma_channel_busy(&self) -> &[SimTime] {
        &self.channel_busy
    }

    /// Recorded event timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Clears the event timeline.
    pub fn clear_timeline(&mut self) {
        self.timeline.clear();
    }

    /// Error from the last failed command, if any.
    pub fn last_error(&self) -> Option<&EngineError> {
        self.last_error.as_ref()
    }

    fn decode_gemm(&self) -> GemmParams {
        let r = &self.regs;
        GemmParams {
            m: r.read_usize(Reg::M),
            n: r.read_usize(Reg::N),
            k: r.read_usize(Reg::K),
            alpha: r.read_f32(Reg::Alpha),
            beta: r.read_f32(Reg::Beta),
            a: r.read(Reg::AddrA),
            lda: r.read_usize(Reg::Lda),
            trans_a: r.read(Reg::TransA) != 0,
            b: r.read(Reg::AddrB),
            ldb: r.read_usize(Reg::Ldb),
            trans_b: r.read(Reg::TransB) != 0,
            c: r.read(Reg::AddrC),
            ldc: r.read_usize(Reg::Ldc),
        }
    }

    fn decode_conv(&self) -> ConvParams {
        let r = &self.regs;
        ConvParams {
            img: r.read(Reg::AddrA),
            h: r.read_usize(Reg::ImgH),
            w: r.read_usize(Reg::ImgW),
            filt: r.read(Reg::AddrB),
            fh: r.read_usize(Reg::FiltH),
            fw: r.read_usize(Reg::FiltW),
            out: r.read(Reg::AddrC),
        }
    }

    /// Runs the armed command to completion, returning the busy duration.
    /// On success the status register reads [`Status::Done`]; malformed
    /// commands leave [`Status::Error`] and record [`Self::last_error`].
    ///
    /// The duration is *accelerator* time; the driver decides how the host
    /// waits for it (spin or poll), which is where the host-side energy of
    /// Fig. 6 comes from.
    pub fn execute(&mut self, mach: &mut Machine) -> SimTime {
        let t0 = mach.now();
        self.execute_at(mach, t0)
    }

    /// As [`Self::execute`], but places the command's timeline events
    /// starting at `t0` rather than the host's current clock — the entry
    /// point of an async driver whose dispatch queue may hold the command
    /// until earlier in-flight work on the same tiles retires.
    pub fn execute_at(&mut self, mach: &mut Machine, t0: SimTime) -> SimTime {
        let cmd = match Command::decode(self.regs.read(Reg::Command)) {
            Some(c) => c,
            None => {
                self.last_error = Some(EngineError::Unsupported("unknown command opcode".into()));
                self.regs.set_status(Status::Error);
                return SimTime::ZERO;
            }
        };
        if cmd == Command::Nop {
            self.regs.set_status(Status::Idle);
            return SimTime::ZERO;
        }
        self.last_cmd = self.cmd_seq;
        self.regs.set_status(Status::Busy);
        self.timeline.push_on(
            Ev::Trigger,
            None,
            Some(self.last_cmd),
            t0,
            t0,
            format!("{cmd:?} armed"),
        );
        let region = GridRegion::decode(self.regs.read(Reg::Region), self.cfg.grid);
        let result = match cmd {
            Command::Gemm => {
                let p = self.decode_gemm();
                self.run_gemm(mach, &p, region, t0)
            }
            Command::Gemv => {
                let p = GemmParams { n: 1, ldb: 1, ldc: 1, ..self.decode_gemm() };
                self.run_gemm(mach, &p, region, t0)
            }
            Command::GemmBatched => {
                let template = self.decode_gemm();
                let count = self.regs.read_usize(Reg::BatchCount);
                let table = self.regs.read(Reg::AddrBatch);
                self.run_gemm_batched(mach, &template, table, count, t0)
            }
            Command::Conv2d => {
                let p = self.decode_conv();
                self.run_conv2d(mach, &p, t0)
            }
            Command::Nop => unreachable!("handled above"),
        };
        match result {
            Ok(dur) => {
                self.stats.busy += dur;
                self.regs.set_status(Status::Done);
                self.timeline.push_on(
                    Ev::ResultReady,
                    None,
                    Some(self.last_cmd),
                    t0 + dur,
                    t0 + dur,
                    "status := done",
                );
                self.last_error = None;
                dur
            }
            Err(e) => {
                self.last_error = Some(e);
                self.regs.set_status(Status::Error);
                SimTime::ZERO
            }
        }
    }

    /// First logical command id assigned to the most recently executed
    /// command (batched elements count up from it). Identifies the
    /// command in timeline events and driver completion handles.
    pub fn last_cmd(&self) -> u64 {
        self.last_cmd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_machine::MachineConfig;

    fn setup() -> (Machine, CimAccelerator) {
        let mach = Machine::new(MachineConfig::test_small());
        let acc = CimAccelerator::new(AccelConfig::test_small(), mach.cfg.bus);
        (mach, acc)
    }

    fn alloc_mat(mach: &mut Machine, data: &[f32]) -> u64 {
        let (_va, pa) = mach.alloc_cma((data.len() * 4) as u64).expect("cma");
        mach.mem.write_f32_slice(pa, data);
        pa
    }

    fn arm_gemm(acc: &mut CimAccelerator, m: usize, n: usize, k: usize, a: u64, b: u64, c: u64) {
        acc.pmio_write(Reg::M, m as u64);
        acc.pmio_write(Reg::N, n as u64);
        acc.pmio_write(Reg::K, k as u64);
        acc.pmio_write(Reg::Lda, k as u64);
        acc.pmio_write(Reg::Ldb, n as u64);
        acc.pmio_write(Reg::Ldc, n as u64);
        acc.pmio_write(Reg::AddrA, a);
        acc.pmio_write(Reg::AddrB, b);
        acc.pmio_write(Reg::AddrC, c);
        acc.pmio_write(Reg::Alpha, 1.0f32.to_bits() as u64);
        acc.pmio_write(Reg::Beta, 0.0f32.to_bits() as u64);
        acc.pmio_write(Reg::TransA, 0);
        acc.pmio_write(Reg::TransB, 0);
        acc.pmio_write(Reg::Command, Command::Gemm as u64);
    }

    fn read_mat(mach: &mut Machine, pa: u64, len: usize) -> Vec<f32> {
        let mut out = vec![0f32; len];
        mach.mem.read_f32_slice(pa, &mut out);
        out
    }

    #[test]
    fn small_gemm_is_correct() {
        let (mut mach, mut acc) = setup();
        // 2x3 * 3x2 = 2x2.
        let a = alloc_mat(&mut mach, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = alloc_mat(&mut mach, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = alloc_mat(&mut mach, &[0.0; 4]);
        arm_gemm(&mut acc, 2, 2, 3, a, b, c);
        let dur = acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done);
        assert!(dur.as_ns() > 0.0);
        assert_eq!(read_mat(&mut mach, c, 4), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_beta_accumulates() {
        let (mut mach, mut acc) = setup();
        let a = alloc_mat(&mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let b = alloc_mat(&mut mach, &[2.0, 0.0, 0.0, 2.0]);
        let c = alloc_mat(&mut mach, &[10.0, 10.0, 10.0, 10.0]);
        arm_gemm(&mut acc, 2, 2, 2, a, b, c);
        acc.pmio_write(Reg::Alpha, 1.5f32.to_bits() as u64);
        acc.pmio_write(Reg::Beta, 0.5f32.to_bits() as u64);
        acc.execute(&mut mach);
        // C = 1.5*(2*I) + 0.5*10 = 3*I + 5.
        assert_eq!(read_mat(&mut mach, c, 4), vec![8.0, 5.0, 5.0, 8.0]);
    }

    #[test]
    fn tiled_gemm_larger_than_crossbar() {
        let (mut mach, mut acc) = setup(); // 8x8 crossbar
        let n = 12usize;
        let av: Vec<f32> = (0..n * n).map(|i| ((i * 7) % 5) as f32 - 2.0).collect();
        let bv: Vec<f32> = (0..n * n).map(|i| ((i * 3) % 7) as f32 - 3.0).collect();
        let a = alloc_mat(&mut mach, &av);
        let b = alloc_mat(&mut mach, &bv);
        let c = alloc_mat(&mut mach, &vec![0.0; n * n]);
        arm_gemm(&mut acc, n, n, n, a, b, c);
        acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done);
        let got = read_mat(&mut mach, c, n * n);
        for i in 0..n {
            for j in 0..n {
                let mut acc_v = 0.0f32;
                for kk in 0..n {
                    acc_v += av[i * n + kk] * bv[kk * n + j];
                }
                assert!((got[i * n + j] - acc_v).abs() < 1e-3, "C[{i}][{j}]");
            }
        }
        // 2x2 tiles of A, each installed once: rows = (8+4) + (8+4).
        assert_eq!(acc.stats().rows_programmed, 24);
    }

    #[test]
    fn transposed_a_gemv() {
        let (mut mach, mut acc) = setup();
        // y = A^T x, A = [[1,2],[3,4]] => A^T x with x=[1,1] is [4,6].
        let a = alloc_mat(&mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let x = alloc_mat(&mut mach, &[1.0, 1.0]);
        let y = alloc_mat(&mut mach, &[0.0, 0.0]);
        acc.pmio_write(Reg::M, 2);
        acc.pmio_write(Reg::K, 2);
        acc.pmio_write(Reg::Lda, 2);
        acc.pmio_write(Reg::AddrA, a);
        acc.pmio_write(Reg::AddrB, x);
        acc.pmio_write(Reg::AddrC, y);
        acc.pmio_write(Reg::Alpha, 1.0f32.to_bits() as u64);
        acc.pmio_write(Reg::Beta, 0.0f32.to_bits() as u64);
        acc.pmio_write(Reg::TransA, 1);
        acc.pmio_write(Reg::Command, Command::Gemv as u64);
        acc.execute(&mut mach);
        assert_eq!(read_mat(&mut mach, y, 2), vec![4.0, 6.0]);
    }

    #[test]
    fn batched_gemm_shares_installed_a() {
        let (mut mach, mut acc) = setup();
        let a = alloc_mat(&mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let b1 = alloc_mat(&mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let b2 = alloc_mat(&mut mach, &[5.0, 6.0, 7.0, 8.0]);
        let c1 = alloc_mat(&mut mach, &[0.0; 4]);
        let c2 = alloc_mat(&mut mach, &[0.0; 4]);
        // Descriptor table: (a, b1, c1), (a, b2, c2).
        let mut raw = Vec::new();
        for v in [a, b1, c1, a, b2, c2] {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let (_va, table) = mach.alloc_cma(raw.len() as u64).expect("cma");
        mach.uncached_write(table, &raw);
        arm_gemm(&mut acc, 2, 2, 2, a, b1, c1);
        acc.pmio_write(Reg::BatchCount, 2);
        acc.pmio_write(Reg::AddrBatch, table);
        acc.pmio_write(Reg::Command, Command::GemmBatched as u64);
        acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done);
        assert_eq!(read_mat(&mut mach, c1, 4), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(read_mat(&mut mach, c2, 4), vec![5.0, 6.0, 7.0, 8.0]);
        // A installed once: 2 rows, not 4 — the Listing-2 endurance win.
        assert_eq!(acc.stats().rows_programmed, 2);
        assert_eq!(acc.stats().cell_writes, 4);
    }

    /// Runs a batch of `count` independent GEMMs (distinct operands) on
    /// `cfg`, returning the concatenated `C` results and the stats.
    fn run_batch_with(cfg: AccelConfig, n: usize, count: usize) -> (Vec<f32>, AccelStats, SimTime) {
        let mut mach = Machine::new(MachineConfig::test_small());
        let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
        let mut descr = Vec::new();
        let mut c_pas = Vec::new();
        for i in 0..count {
            let av: Vec<f32> = (0..n * n).map(|j| ((i * 31 + j * 7) % 11) as f32 - 5.0).collect();
            let bv: Vec<f32> = (0..n * n).map(|j| ((i * 17 + j * 3) % 13) as f32 - 6.0).collect();
            let a = alloc_mat(&mut mach, &av);
            let b = alloc_mat(&mut mach, &bv);
            let c = alloc_mat(&mut mach, &vec![0.0; n * n]);
            descr.extend_from_slice(&[a, b, c]);
            c_pas.push(c);
        }
        let mut raw = Vec::new();
        for v in &descr {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let (_va, table) = mach.alloc_cma(raw.len() as u64).expect("cma");
        mach.uncached_write(table, &raw);
        arm_gemm(&mut acc, n, n, n, descr[0], descr[1], descr[2]);
        acc.pmio_write(Reg::BatchCount, count as u64);
        acc.pmio_write(Reg::AddrBatch, table);
        acc.pmio_write(Reg::Command, Command::GemmBatched as u64);
        let dur = acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done, "{:?}", acc.last_error());
        let mut out = Vec::new();
        for c in c_pas {
            out.extend(read_mat(&mut mach, c, n * n));
        }
        (out, *acc.stats(), dur)
    }

    #[test]
    fn batched_partitions_grid_and_beats_serial() {
        // Four independent 8x8 GEMMs on 8x8 tiles: a 2x2 grid runs them
        // on four disjoint one-tile regions concurrently.
        let (serial_c, serial_stats, serial_dur) = run_batch_with(AccelConfig::test_small(), 8, 4);
        let (sharded_c, sharded_stats, sharded_dur) =
            run_batch_with(AccelConfig::test_small().with_grid(2, 2), 8, 4);
        assert_eq!(sharded_c, serial_c, "partitioned batch diverged");
        assert_eq!(sharded_stats.cell_writes, serial_stats.cell_writes);
        assert_eq!(sharded_stats.macs, serial_stats.macs);
        assert_eq!(serial_stats.max_tiles_active, 1);
        assert_eq!(sharded_stats.max_tiles_active, 4, "all regions active in one round");
        assert!(
            sharded_dur.as_ns() < 0.5 * serial_dur.as_ns(),
            "batch {sharded_dur} not faster than serial {serial_dur}"
        );
    }

    #[test]
    fn batched_run_matches_estimate_on_partitioned_grid() {
        for (count, grid) in [(4usize, (2usize, 2usize)), (3, (2, 2)), (5, (4, 1))] {
            let cfg = AccelConfig::test_small().with_grid(grid.0, grid.1);
            let (_, stats, dur) = run_batch_with(cfg, 8, count);
            let est = estimate::estimate_gemm_batched(
                &cfg,
                &Machine::new(MachineConfig::test_small()).cfg.bus,
                8,
                8,
                8,
                true,
                count,
                false,
            );
            assert_eq!(stats.gemv_count, est.gemvs, "count={count} grid={grid:?}");
            assert_eq!(stats.cell_writes, est.cell_writes);
            assert_eq!(stats.rows_programmed, est.rows_programmed);
            assert_eq!(stats.macs, est.macs);
            assert_eq!(stats.max_tiles_active, est.parallel_tiles);
            assert!(
                (dur.as_ns() - est.time.as_ns()).abs() < 1e-6,
                "count={count} grid={grid:?}: time {dur} vs {}",
                est.time
            );
            let measured = stats.total_energy();
            assert!(
                (measured.as_pj() - est.energy.as_pj()).abs() / est.energy.as_pj() < 1e-9,
                "energy {measured} vs {}",
                est.energy
            );
        }
    }

    #[test]
    fn dependent_batch_serializes() {
        // Two batch elements writing the same C must not be modeled as
        // concurrent: the schedule falls back to the serial chain.
        let mut mach = Machine::new(MachineConfig::test_small());
        let cfg = AccelConfig::test_small().with_grid(2, 2);
        let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
        let a = alloc_mat(&mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let b = alloc_mat(&mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let c = alloc_mat(&mut mach, &[0.0; 4]);
        let mut raw = Vec::new();
        for v in [a, b, c, a, c, c] {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let (_va, table) = mach.alloc_cma(raw.len() as u64).expect("cma");
        mach.uncached_write(table, &raw);
        arm_gemm(&mut acc, 2, 2, 2, a, b, c);
        acc.pmio_write(Reg::Beta, 0.0f32.to_bits() as u64);
        acc.pmio_write(Reg::BatchCount, 2);
        acc.pmio_write(Reg::AddrBatch, table);
        acc.pmio_write(Reg::Command, Command::GemmBatched as u64);
        acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done);
        // Element 2 consumed element 1's output: C := I * C.
        assert_eq!(read_mat(&mut mach, c, 4), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(acc.stats().max_tiles_active, 1, "dependent batch stays serial");
    }

    #[test]
    fn conv2d_matches_reference() {
        // A 3x3 filter needs at least 3*fw word lines: use a 32x32 tile.
        let mut mach = Machine::new(MachineConfig::test_small());
        let cfg = AccelConfig { rows: 32, cols: 32, ..AccelConfig::test_small() };
        let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
        let (h, w) = (6usize, 6usize);
        let img: Vec<f32> = (0..h * w).map(|i| (i % 5) as f32 - 2.0).collect();
        let filt = [1.0f32, 0.0, -1.0, 2.0, 0.5, -2.0, 1.0, -1.0, 0.0];
        let ipa = alloc_mat(&mut mach, &img);
        let fpa = alloc_mat(&mut mach, &filt);
        let (oh, ow) = (h - 2, w - 2);
        let opa = alloc_mat(&mut mach, &vec![0.0; oh * ow]);
        acc.pmio_write(Reg::AddrA, ipa);
        acc.pmio_write(Reg::AddrB, fpa);
        acc.pmio_write(Reg::AddrC, opa);
        acc.pmio_write(Reg::ImgH, h as u64);
        acc.pmio_write(Reg::ImgW, w as u64);
        acc.pmio_write(Reg::FiltH, 3);
        acc.pmio_write(Reg::FiltW, 3);
        acc.pmio_write(Reg::Command, Command::Conv2d as u64);
        acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done, "{:?}", acc.last_error());
        let got = read_mat(&mut mach, opa, oh * ow);
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc_v = 0.0f32;
                for fr in 0..3 {
                    for fc in 0..3 {
                        acc_v += filt[fr * 3 + fc] * img[(oi + fr) * w + oj + fc];
                    }
                }
                assert!((got[oi * ow + oj] - acc_v).abs() < 1e-3, "out[{oi}][{oj}]");
            }
        }
    }

    #[test]
    fn trans_b_is_rejected() {
        let (mut mach, mut acc) = setup();
        let a = alloc_mat(&mut mach, &[0.0; 4]);
        arm_gemm(&mut acc, 2, 2, 2, a, a, a);
        acc.pmio_write(Reg::TransB, 1);
        let dur = acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Error);
        assert_eq!(dur, SimTime::ZERO);
        assert!(matches!(acc.last_error(), Some(EngineError::Unsupported(_))));
    }

    #[test]
    fn generation_bump_invalidates_residency() {
        let (mut mach, mut acc) = setup();
        let a = alloc_mat(&mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let b = alloc_mat(&mut mach, &[1.0, 1.0, 1.0, 1.0]);
        let c = alloc_mat(&mut mach, &[0.0; 4]);
        arm_gemm(&mut acc, 2, 2, 2, a, b, c);
        acc.execute(&mut mach);
        let w1 = acc.stats().cell_writes;
        // Same GEMM again: resident, no new writes.
        arm_gemm(&mut acc, 2, 2, 2, a, b, c);
        acc.execute(&mut mach);
        assert_eq!(acc.stats().cell_writes, w1);
        // Host rewrites shared memory -> must reinstall.
        acc.bump_generation();
        arm_gemm(&mut acc, 2, 2, 2, a, b, c);
        acc.execute(&mut mach);
        assert_eq!(acc.stats().cell_writes, 2 * w1);
    }

    #[test]
    fn functional_run_matches_estimate() {
        let (mut mach, mut acc) = setup();
        let n = 8usize;
        let av: Vec<f32> = (0..n * n).map(|i| i as f32 * 0.1).collect();
        let a = alloc_mat(&mut mach, &av);
        let b = alloc_mat(&mut mach, &av);
        let c = alloc_mat(&mut mach, &vec![0.0; n * n]);
        arm_gemm(&mut acc, n, n, n, a, b, c);
        let dur = acc.execute(&mut mach);
        let est = estimate::estimate_gemm(acc.config(), &mach.cfg.bus, n, n, n, true, false);
        assert_eq!(acc.stats().gemv_count, est.gemvs);
        assert_eq!(acc.stats().cell_writes, est.cell_writes);
        assert_eq!(acc.stats().rows_programmed, est.rows_programmed);
        assert_eq!(acc.stats().macs, est.macs);
        assert!((dur.as_ns() - est.time.as_ns()).abs() < 1e-6, "time {dur} vs {}", est.time);
        let measured = acc.stats().total_energy();
        assert!(
            (measured.as_pj() - est.energy.as_pj()).abs() / est.energy.as_pj() < 1e-9,
            "energy {measured} vs {}",
            est.energy
        );
    }

    #[test]
    fn conv_run_matches_estimate() {
        let (mut mach, mut acc) = setup();
        let (h, w) = (10usize, 10usize);
        let img: Vec<f32> = (0..h * w).map(|i| i as f32 * 0.01).collect();
        let filt = [0.5f32, -0.5, 0.25, 0.75];
        let ipa = alloc_mat(&mut mach, &img);
        let fpa = alloc_mat(&mut mach, &filt);
        let (oh, ow) = (h - 1, w - 1);
        let opa = alloc_mat(&mut mach, &vec![0.0; oh * ow]);
        acc.pmio_write(Reg::AddrA, ipa);
        acc.pmio_write(Reg::AddrB, fpa);
        acc.pmio_write(Reg::AddrC, opa);
        acc.pmio_write(Reg::ImgH, h as u64);
        acc.pmio_write(Reg::ImgW, w as u64);
        acc.pmio_write(Reg::FiltH, 2);
        acc.pmio_write(Reg::FiltW, 2);
        acc.pmio_write(Reg::Command, Command::Conv2d as u64);
        let dur = acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done, "{:?}", acc.last_error());
        let est = estimate::estimate_conv2d(acc.config(), &mach.cfg.bus, h, w, 2, 2);
        assert_eq!(acc.stats().gemv_count, est.gemvs);
        assert_eq!(acc.stats().cell_writes, est.cell_writes);
        assert_eq!(acc.stats().macs, est.macs);
        assert!((dur.as_ns() - est.time.as_ns()).abs() < 1e-6, "time {dur} vs {}", est.time);
    }

    /// Runs one GEMM under `cfg` on a fresh machine, returning `C`.
    fn run_gemm_with(cfg: AccelConfig, n: usize, av: &[f32], bv: &[f32]) -> (Vec<f32>, AccelStats) {
        let mut mach = Machine::new(MachineConfig::test_small());
        let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
        let a = alloc_mat(&mut mach, av);
        let b = alloc_mat(&mut mach, bv);
        let c = alloc_mat(&mut mach, &vec![0.0; n * n]);
        arm_gemm(&mut acc, n, n, n, a, b, c);
        acc.execute(&mut mach);
        assert_eq!(acc.regs().status(), Status::Done, "{:?}", acc.last_error());
        (read_mat(&mut mach, c, n * n), *acc.stats())
    }

    #[test]
    fn sharded_gemm_bit_identical_to_single_tile() {
        // 20x20 GEMM on 8x8 tiles: a 3x3 block grid over several shapes.
        let n = 20usize;
        let av: Vec<f32> = (0..n * n).map(|i| ((i * 7) % 23) as f32 * 0.37 - 4.0).collect();
        let bv: Vec<f32> = (0..n * n).map(|i| ((i * 13) % 19) as f32 * 0.21 - 2.0).collect();
        let (reference, ref_stats) = run_gemm_with(AccelConfig::test_small(), n, &av, &bv);
        for grid in [(2, 1), (1, 2), (2, 2), (3, 3), (4, 2)] {
            let cfg = AccelConfig::test_small().with_grid(grid.0, grid.1);
            let (got, stats) = run_gemm_with(cfg, n, &av, &bv);
            assert_eq!(got, reference, "grid {grid:?} diverged");
            // Work is invariant; only the schedule changes.
            assert_eq!(stats.cell_writes, ref_stats.cell_writes);
            assert_eq!(stats.macs, ref_stats.macs);
            assert!(stats.busy <= ref_stats.busy, "sharding must not slow down");
        }
    }

    #[test]
    fn sharded_run_matches_estimate() {
        let mut mach = Machine::new(MachineConfig::test_small());
        let cfg = AccelConfig::test_small().with_grid(2, 2);
        let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
        let n = 20usize;
        let av: Vec<f32> = (0..n * n).map(|i| (i % 9) as f32 * 0.5 - 2.0).collect();
        let a = alloc_mat(&mut mach, &av);
        let b = alloc_mat(&mut mach, &av);
        let c = alloc_mat(&mut mach, &vec![0.0; n * n]);
        arm_gemm(&mut acc, n, n, n, a, b, c);
        let dur = acc.execute(&mut mach);
        let est = estimate::estimate_gemm(acc.config(), &mach.cfg.bus, n, n, n, true, false);
        assert_eq!(acc.stats().gemv_count, est.gemvs);
        assert_eq!(acc.stats().cell_writes, est.cell_writes);
        assert_eq!(acc.stats().rows_programmed, est.rows_programmed);
        assert_eq!(acc.stats().macs, est.macs);
        assert_eq!(acc.stats().max_tiles_active, est.parallel_tiles);
        assert_eq!(acc.stats().max_tiles_active, 4);
        assert!((dur.as_ns() - est.time.as_ns()).abs() < 1e-6, "time {dur} vs {}", est.time);
        let measured = acc.stats().total_energy();
        assert!(
            (measured.as_pj() - est.energy.as_pj()).abs() / est.energy.as_pj() < 1e-9,
            "energy {measured} vs {}",
            est.energy
        );
    }

    #[test]
    fn sharding_spreads_wear_across_tiles() {
        // A 16x16 operand is a 2x2 block grid on 8x8 tiles. One tile eats
        // all four installs; a 2x2 grid takes one install each.
        let n = 16usize;
        let av: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32).collect();
        let run = |cfg: AccelConfig| {
            let mut mach = Machine::new(MachineConfig::test_small());
            let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
            let a = alloc_mat(&mut mach, &av);
            let b = alloc_mat(&mut mach, &av);
            let c = alloc_mat(&mut mach, &vec![0.0; n * n]);
            arm_gemm(&mut acc, n, n, n, a, b, c);
            acc.execute(&mut mach);
            assert_eq!(acc.regs().status(), Status::Done);
            acc.tile_wear()
        };
        let single = run(AccelConfig::test_small());
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].max_cell_writes, 4, "one tile reprogrammed per block");
        let sharded = run(AccelConfig::test_small().with_grid(2, 2));
        assert_eq!(sharded.len(), 4);
        let total: u64 = sharded.iter().map(|w| w.cell_writes).sum();
        assert_eq!(total, single[0].cell_writes, "same write volume overall");
        for w in &sharded {
            assert_eq!(w.cell_writes, 64, "tile {:?} takes exactly its block", w.tile);
            assert_eq!(w.max_cell_writes, 1, "no cell reprogrammed");
        }
    }

    #[test]
    fn sharded_timeline_shows_parallel_occupancy() {
        let mut mach = Machine::new(MachineConfig::test_small());
        let cfg = AccelConfig::test_small().with_grid(2, 2);
        let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
        let n = 16usize;
        let av: Vec<f32> = (0..n * n).map(|i| (i % 3) as f32).collect();
        let a = alloc_mat(&mut mach, &av);
        let b = alloc_mat(&mut mach, &av);
        let c = alloc_mat(&mut mach, &vec![0.0; n * n]);
        arm_gemm(&mut acc, n, n, n, a, b, c);
        acc.execute(&mut mach);
        let occ = acc.timeline().tile_occupancy();
        assert_eq!(occ.len(), 4, "all four tiles appear in the timeline");
        assert!(occ.iter().all(|(_, busy)| busy.as_ns() > 0.0));
    }

    #[test]
    fn timeline_records_trigger_and_done() {
        let (mut mach, mut acc) = setup();
        let a = alloc_mat(&mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let b = alloc_mat(&mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let c = alloc_mat(&mut mach, &[0.0; 4]);
        arm_gemm(&mut acc, 2, 2, 2, a, b, c);
        acc.execute(&mut mach);
        let kinds: Vec<_> = acc.timeline().events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Trigger));
        assert!(kinds.contains(&EventKind::WriteCrossbar));
        assert!(kinds.contains(&EventKind::Compute));
        assert!(kinds.contains(&EventKind::ResultReady));
    }
}
