//! The micro-engine: GEMM/GEMV/batched/conv2d execution.
//!
//! "The micro-engine translates the high-level parameters stored in the
//! context registers into a series of circuit-level operations such as
//! loading the data from shared memory to row/column buffers, configuring
//! the mask values, triggering the computation on CIM tile, and writing
//! back the results from the output buffers to the shared memory.
//! Additionally, it manages the control flow involved in decomposing GEMM
//! to a series of GEMVs and supports double buffering" (Section II-C).
//!
//! Mapping: the stationary operand is `op(A)` loaded *transposed* into the
//! crossbar (`G[k][m] = op(A)[m][k]`) so that word lines carry the
//! reduction dimension and bit lines produce output rows. Each GEMV
//! streams one column of `B` and produces one column segment of `C`.
//! K- and M-dimensions larger than one crossbar are sharded across the
//! configured tile grid ([`crate::shard`]): within a wave, up to
//! `grid.0 * grid.1` tiles install and compute in parallel, reduction
//! lanes accumulate partial columns digitally, and only block waves
//! beyond the grid serialize through read-modify-write of `C` (Listing
//! 3's tiling is the compiler-side counterpart that maximizes tile
//! reuse).

use cim_machine::units::SimTime;
use cim_machine::Machine;

use crate::buffers::BufferKind;
use crate::shard::{partition_grid, plan_waves, GridRegion, InstallClock, Wave};
use crate::tile::{GemvReceipt, InstallReceipt, TileKey};
use crate::timeline::EventKind;
use crate::CimAccelerator;

/// One pending tile install of a wave: the gathered operand plus every
/// datum phase 3 needs to account for it. Produced serially (DMA order),
/// consumed by the (possibly parallel) programming phase.
struct InstallJob {
    key: TileKey,
    idx: usize,
    lane: (usize, usize),
    ch: usize,
    g: Vec<f32>,
    kt: usize,
    mt: usize,
    m0: usize,
    k0: usize,
    dma_t: SimTime,
}

/// One tile GEMV of a wave step: `(tile index, x offset, x length)`.
type GemvUnit = (usize, usize, usize);

/// Errors detected by the micro-engine while decoding a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The requested variant is not implemented in hardware.
    Unsupported(String),
    /// Dimensions or leading dimensions are inconsistent.
    BadDims(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Unsupported(s) => write!(f, "unsupported operation: {s}"),
            EngineError::BadDims(s) => write!(f, "bad dimensions: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Decoded GEMM parameters (row-major operands, physical addresses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmParams {
    /// Rows of `C` / rows of `op(A)`.
    pub m: usize,
    /// Columns of `C` / columns of `op(B)`.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Scale on the product.
    pub alpha: f32,
    /// Scale on the existing `C`.
    pub beta: f32,
    /// Physical address of `A`.
    pub a: u64,
    /// Leading dimension (row stride in elements) of `A`.
    pub lda: usize,
    /// Whether `op(A) = A^T`.
    pub trans_a: bool,
    /// Physical address of `B`.
    pub b: u64,
    /// Leading dimension of `B`.
    pub ldb: usize,
    /// Whether `op(B) = B^T` (not supported by the engine).
    pub trans_b: bool,
    /// Physical address of `C`.
    pub c: u64,
    /// Leading dimension of `C`.
    pub ldc: usize,
}

impl GemmParams {
    /// Conservative physical byte ranges `(base, len)` touched by this
    /// GEMM as `[A, B, C]`, over-approximated to whole leading-dimension
    /// rows. Used to decide whether batch elements are independent and
    /// may be modeled as running concurrently on disjoint tile regions.
    fn ranges(&self) -> [(u64, u64); 3] {
        let a_rows = if self.trans_a { self.k } else { self.m };
        let span = |rows: usize, ld: usize| 4 * (rows.saturating_mul(ld)) as u64;
        [
            (self.a, span(a_rows, self.lda)),
            (self.b, span(self.k, self.ldb)),
            (self.c, span(self.m, self.ldc)),
        ]
    }

    fn validate(&self) -> Result<(), EngineError> {
        if self.trans_b {
            return Err(EngineError::Unsupported("transposed B operand".into()));
        }
        if self.m == 0 || self.n == 0 || self.k == 0 {
            return Err(EngineError::BadDims(format!(
                "m={}, n={}, k={} must be positive",
                self.m, self.n, self.k
            )));
        }
        // op(A) is m x k: row-major A is m x lda (or k x lda transposed).
        let min_lda = if self.trans_a { self.m } else { self.k };
        if self.lda < min_lda || self.ldb < self.n || self.ldc < self.n {
            return Err(EngineError::BadDims(format!(
                "lda={} (min {min_lda}), ldb={} (min {}), ldc={} (min {})",
                self.lda, self.ldb, self.n, self.ldc, self.n
            )));
        }
        Ok(())
    }
}

/// Decoded single-channel 2-D convolution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// Physical address of the `h x w` image.
    pub img: u64,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Physical address of the `fh x fw` filter.
    pub filt: u64,
    /// Filter height.
    pub fh: usize,
    /// Filter width.
    pub fw: usize,
    /// Physical address of the `(h-fh+1) x (w-fw+1)` output.
    pub out: u64,
}

/// Whether the batch elements may be modeled as running concurrently:
/// every element's `C` range must be disjoint from every *other*
/// element's `A`, `B` and `C` ranges (aliasing within one element is the
/// single-GEMM in-place case and does not order elements against each
/// other). Ranges are conservative over-approximations, so a false
/// negative merely serializes the schedule — never the reverse.
fn batch_is_independent(params: &[GemmParams]) -> bool {
    let overlap = |(b1, l1): (u64, u64), (b2, l2): (u64, u64)| b1 < b2 + l2 && b2 < b1 + l1;
    let ranges: Vec<[(u64, u64); 3]> = params.iter().map(GemmParams::ranges).collect();
    for (i, r_i) in ranges.iter().enumerate() {
        let c = r_i[2];
        for (j, r_j) in ranges.iter().enumerate() {
            if i != j && r_j.iter().any(|&r| overlap(c, r)) {
                return false;
            }
        }
    }
    true
}

impl CimAccelerator {
    /// Per-step time of one GEMV wave: crossbar compute (all active tiles
    /// fire simultaneously) vs. the aggregate DMA traffic of the step,
    /// moved as one gather descriptor chain per direction. With double
    /// buffering (Section II-C) DMA overlaps compute. Shared by the
    /// functional engine and the analytic estimator so they can never
    /// diverge.
    pub(crate) fn gemv_step_time(&self, in_bytes: u64, out_rmw_bytes: u64) -> (SimTime, SimTime) {
        let compute = self.cfg.energy.compute_time(1);
        let dma = self.bus_cfg.dma_time(in_bytes) + self.bus_cfg.dma_time(out_rmw_bytes);
        if self.cfg.double_buffering {
            (compute.max(dma), dma)
        } else {
            (compute + dma, dma)
        }
    }

    /// How many host worker threads to simulate `units` independent tiles
    /// of one wave with. `sim_threads = 0` engages the host's parallelism
    /// only for paper-geometry tiles (small test crossbars would pay more
    /// in thread spawns than they save); an explicit `n > 1` always
    /// forces `n` workers so the determinism tests can exercise the
    /// parallel path on any shape.
    fn tile_workers(&self, units: usize) -> usize {
        if units <= 1 {
            return 1;
        }
        match self.cfg.sim_threads {
            0 => {
                let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                if hw <= 1 || self.cfg.rows * self.cfg.cols < 64 * 64 {
                    1
                } else {
                    hw.min(units)
                }
            }
            n => n.min(units),
        }
    }

    /// Programs the jobs' operands into their (pairwise distinct) target
    /// tiles, serially or on scoped worker threads, returning one receipt
    /// per job in job order. Tile programming is pure host-side work —
    /// it never touches the machine or the stats — so the execution order
    /// is unobservable and the receipts are bit-for-bit identical for any
    /// worker count.
    fn install_jobs(&mut self, jobs: &[InstallJob]) -> Vec<InstallReceipt> {
        let workers = self.tile_workers(jobs.len());
        if workers <= 1 {
            return jobs
                .iter()
                .map(|j| self.tiles[j.idx].install(j.key, &j.g, j.kt, j.mt))
                .collect();
        }
        let mut jpos_of_tile: Vec<Option<usize>> = vec![None; self.tiles.len()];
        for (jpos, job) in jobs.iter().enumerate() {
            debug_assert!(jpos_of_tile[job.idx].is_none(), "a wave installs one block per tile");
            jpos_of_tile[job.idx] = Some(jpos);
        }
        // `iter_mut` hands out provably disjoint `&mut` tiles to pair
        // with their jobs; chunks then split both sides identically.
        let mut paired: Vec<(usize, &mut crate::tile::CimTile)> = self
            .tiles
            .iter_mut()
            .enumerate()
            .filter_map(|(i, t)| jpos_of_tile[i].map(|jpos| (jpos, t)))
            .collect();
        let mut done: Vec<Option<(usize, InstallReceipt)>> = Vec::new();
        done.resize_with(paired.len(), || None);
        let chunk = paired.len().div_ceil(workers);
        std::thread::scope(|s| {
            for (pc, dc) in paired.chunks_mut(chunk).zip(done.chunks_mut(chunk)) {
                s.spawn(move || {
                    for ((jpos, tile), slot) in pc.iter_mut().zip(dc.iter_mut()) {
                        let job = &jobs[*jpos];
                        *slot = Some((*jpos, tile.install(job.key, &job.g, job.kt, job.mt)));
                    }
                });
            }
        });
        let zero = InstallReceipt { rows_programmed: 0, cells_written: 0, resident_hit: false };
        let mut receipts = vec![zero; jobs.len()];
        for (jpos, receipt) in done.into_iter().flatten() {
            receipts[jpos] = receipt;
        }
        receipts
    }

    /// Computes one wave step's tile GEMVs ahead of the accounting loop,
    /// in parallel, returning results in unit order. `None` means "stay
    /// serial": the caller computes each GEMV inline at its original
    /// program point. GEMV reads tiles immutably and never touches the
    /// machine, so hoisting it off the accounting loop changes nothing
    /// observable.
    fn gemv_units(&self, units: &[GemvUnit], x: &[f32]) -> Option<Vec<(Vec<f32>, GemvReceipt)>> {
        let workers = self.tile_workers(units.len());
        if workers <= 1 {
            return None;
        }
        let mut out: Vec<Option<(Vec<f32>, GemvReceipt)>> = Vec::new();
        out.resize_with(units.len(), || None);
        let chunk = units.len().div_ceil(workers);
        let tiles = &self.tiles;
        std::thread::scope(|s| {
            for (uc, oc) in units.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (&(idx, s0, len), slot) in uc.iter().zip(oc.iter_mut()) {
                        *slot = Some(tiles[idx].gemv(&x[s0..s0 + len]));
                    }
                });
            }
        });
        Some(out.into_iter().map(|o| o.expect("worker filled every slot")).collect())
    }

    /// Installs one wave's missing blocks on the [`InstallClock`]
    /// schedule (serial DMA, parallel row programming). Returns the
    /// phase duration (zero when everything was resident). Lanes are
    /// relative to `region`, which pins the wave to a sub-array of the
    /// physical grid.
    ///
    /// Three phases: (1) serial residency checks + DMA gathers in block
    /// order — DMA mutates the machine, so its issue order is part of the
    /// model; (2) pure tile programming, parallelizable across the wave's
    /// distinct tiles; (3) serial accounting in block order, so stats,
    /// timeline and the install clock are identical for any worker count.
    #[allow(clippy::too_many_arguments)]
    fn install_wave(
        &mut self,
        mach: &mut Machine,
        p: &GemmParams,
        region: GridRegion,
        cmd: Option<u64>,
        wave: &Wave,
        t0: SimTime,
        t: SimTime,
    ) -> SimTime {
        let channels = self.cfg.dma_channels;
        let mut clock = InstallClock::with_channels(channels);
        let mut jobs: Vec<InstallJob> = Vec::new();
        for ms in &wave.m_spans {
            for ks in &wave.k_spans {
                let (k0, kt) = (ks.start, ks.len);
                let (m0, mt) = (ms.start, ms.len);
                let key = TileKey {
                    base_pa: p.a,
                    ld: p.lda,
                    transposed: p.trans_a,
                    origin: (m0, k0),
                    extent: (kt, mt),
                    generation: self.generation,
                };
                let lane = (region.origin.0 + ks.lane, region.origin.1 + ms.lane);
                let idx = self.tile_index(lane);
                if self.tiles[idx].resident() == Some(&key) {
                    self.stats.install_skips += 1;
                    continue;
                }
                // Gather op(A)[m0..m0+mt][k0..k0+kt] transposed into G.
                let mut g = vec![0f32; kt * mt];
                for r in 0..kt {
                    if p.trans_a {
                        // op(A)[m][k] = A[k][m]: row k0+r of A, cols m0..
                        let base = p.a + 4 * ((k0 + r) * p.lda + m0) as u64;
                        self.dma.read_f32s(mach, base, &mut g[r * mt..(r + 1) * mt]);
                    } else {
                        // op(A)[m][k] = A[m][k]: column k0+r of A, rows m0..
                        let base = p.a + 4 * (m0 * p.lda + k0 + r) as u64;
                        self.dma.read_f32s_strided(
                            mach,
                            base,
                            mt,
                            p.lda,
                            &mut g[r * mt..(r + 1) * mt],
                        );
                    }
                }
                let tile_bytes = (kt * mt * 4) as u64;
                let dma_t = self.bus_cfg.dma_time(tile_bytes);
                // Per-tile DMA channel: the wave-local tile picks its
                // channel, identically replayed by the estimator.
                let ch = (ks.lane * region.shape.1 + ms.lane) % channels;
                self.buffers.stage(BufferKind::Column, kt * mt);
                self.stats.buffers += self.cfg.energy.buffer_energy(2 * (kt * mt) as u64);
                jobs.push(InstallJob { key, idx, lane, ch, g, kt, mt, m0, k0, dma_t });
            }
        }
        let receipts = self.install_jobs(&jobs);
        let mut channel_mask = 0u32;
        for (job, receipt) in jobs.iter().zip(&receipts) {
            debug_assert!(!receipt.resident_hit);
            let install_t = self.cfg.energy.write_time(receipt.rows_programmed);
            self.stats.cell_writes += receipt.cells_written;
            self.stats.rows_programmed += receipt.rows_programmed;
            self.stats.crossbar_write += self.cfg.energy.write_energy(receipt.cells_written);
            self.stats.install_time += install_t;
            self.stats.dma_exposed_time += job.dma_t;
            self.channel_busy[job.ch] += job.dma_t;
            channel_mask |= 1 << job.ch;
            let program_start = clock.add_on(job.ch, job.dma_t, install_t);
            self.timeline.push_on(
                EventKind::WriteCrossbar,
                Some(job.lane),
                cmd,
                t0 + t + program_start,
                t0 + t + program_start + install_t,
                format!("install A tile m0={} k0={} ({}x{})", job.m0, job.k0, job.kt, job.mt),
            );
        }
        self.stats.max_dma_channels_active =
            self.stats.max_dma_channels_active.max(u64::from(channel_mask.count_ones()));
        clock.finish()
    }

    /// Executes a GEMM confined to `region` (the full grid for commands
    /// whose [`crate::regs::Reg::Region`] register is zero), returning
    /// the busy duration. The historical serial entry point with the
    /// region made explicit.
    pub(crate) fn run_gemm(
        &mut self,
        mach: &mut Machine,
        p: &GemmParams,
        region: GridRegion,
        t0: SimTime,
    ) -> Result<SimTime, EngineError> {
        let cmd = self.next_cmd();
        let (dur, tiles) = self.run_gemm_region(mach, p, region, Some(cmd), t0)?;
        self.stats.max_tiles_active = self.stats.max_tiles_active.max(tiles);
        Ok(dur)
    }

    /// Executes a GEMM confined to `region`, returning the busy duration
    /// and the most tiles the command had active in any wave. The block
    /// grid of `op(A)` runs in waves over the region's tiles: per wave,
    /// all tiles compute in parallel and reduction lanes accumulate
    /// partial `C` columns digitally before the single read-modify-write.
    /// Does not touch [`crate::AccelStats::max_tiles_active`] — callers
    /// modeling concurrent commands aggregate tile occupancy themselves.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn run_gemm_region(
        &mut self,
        mach: &mut Machine,
        p: &GemmParams,
        region: GridRegion,
        cmd: Option<u64>,
        t0: SimTime,
    ) -> Result<(SimTime, u64), EngineError> {
        p.validate()?;
        let tr = self.cfg.rows;
        let tc = self.cfg.cols;
        let waves = plan_waves(tr, tc, region.shape, p.m, p.k);
        let mut t = SimTime::ZERO;
        let mut tiles_peak = 0u64;
        let mut x = vec![0f32; region.shape.0 * tr];
        let mut cseg = vec![0f32; tc];

        for wave in &waves {
            tiles_peak = tiles_peak.max(wave.tiles_active() as u64);
            t += self.install_wave(mach, p, region, cmd, wave, t0, t);

            // The wave's tile GEMVs in accounting order — used to compute
            // each step's results ahead of the serial loop when worker
            // threads are engaged.
            let mut units: Vec<GemvUnit> = Vec::with_capacity(wave.tiles_active());
            for ms in &wave.m_spans {
                for ks in &wave.k_spans {
                    let idx =
                        self.tile_index((region.origin.0 + ks.lane, region.origin.1 + ms.lane));
                    units.push((idx, ks.lane * tr, ks.len));
                }
            }

            let reads_c = !(wave.first_k && p.beta == 0.0);
            for j in 0..p.n {
                // Stream column j of B: one segment per reduction lane,
                // broadcast along the output lanes.
                let mut in_bytes = 0u64;
                for ks in &wave.k_spans {
                    let bbase = p.b + 4 * (ks.start * p.ldb + j) as u64;
                    let seg = &mut x[ks.lane * tr..ks.lane * tr + ks.len];
                    self.dma.read_f32s_strided(mach, bbase, ks.len, p.ldb, seg);
                    in_bytes += (ks.len * 4) as u64;
                }
                let mut precomputed = self.gemv_units(&units, &x).map(Vec::into_iter);
                let mut out_bytes = 0u64;
                for ms in &wave.m_spans {
                    let (m0, mt) = (ms.start, ms.len);
                    // Read-modify-write the C column segment once per
                    // output lane, regardless of how many reduction lanes
                    // feed it.
                    let cbase = p.c + 4 * (m0 * p.ldc + j) as u64;
                    if reads_c {
                        self.dma.read_f32s_strided(mach, cbase, mt, p.ldc, &mut cseg[..mt]);
                    }
                    if wave.first_k {
                        for i in 0..mt {
                            cseg[i] = if p.beta == 0.0 { 0.0 } else { p.beta * cseg[i] };
                        }
                    }
                    for ks in &wave.k_spans {
                        let idx =
                            self.tile_index((region.origin.0 + ks.lane, region.origin.1 + ms.lane));
                        let seg = &x[ks.lane * tr..ks.lane * tr + ks.len];
                        let (y, receipt) = match precomputed.as_mut() {
                            Some(it) => it.next().expect("one result per unit"),
                            None => self.tiles[idx].gemv(seg),
                        };
                        // Accumulate the partial column; lanes beyond the
                        // first cost one extra adder pass in the digital
                        // block.
                        for i in 0..mt {
                            cseg[i] += p.alpha * y[i];
                        }
                        let reduce_ops = if ks.lane == 0 { 0 } else { mt as u64 };
                        self.account_gemv(
                            receipt.active_cells,
                            receipt.useful_macs,
                            ks.len,
                            mt,
                            receipt.extra_alu_ops + 2 * mt as u64 + reduce_ops,
                        );
                        if j < 2 {
                            self.timeline.push_on(
                                EventKind::Compute,
                                Some((region.origin.0 + ks.lane, region.origin.1 + ms.lane)),
                                cmd,
                                t0 + t,
                                t0 + t + self.cfg.energy.compute_time(1),
                                format!("gemv j={j} (tile m0={m0} k0={})", ks.start),
                            );
                        }
                    }
                    // Scatter back (strided store, element-wise).
                    for i in 0..mt {
                        let addr = cbase + 4 * (i * p.ldc) as u64;
                        mach.uncached_write(addr, &cseg[i].to_le_bytes());
                    }
                    out_bytes += (mt * 4 * if reads_c { 2 } else { 1 }) as u64;
                }
                let (step, dma_t) = self.gemv_step_time(in_bytes, out_bytes);
                t += step;
                if dma_t > self.cfg.energy.compute_time(1) {
                    self.stats.dma_exposed_time += dma_t - self.cfg.energy.compute_time(1);
                }
            }
        }
        Ok((t, tiles_peak))
    }

    fn account_gemv(
        &mut self,
        active_cells: u64,
        macs: u64,
        in_bytes: usize,
        out_bytes: usize,
        alu_ops: u64,
    ) {
        self.stats.gemv_count += 1;
        self.stats.macs += macs;
        self.stats.crossbar_compute += self.cfg.energy.compute_energy(active_cells);
        self.stats.mixed_signal += self.cfg.energy.mixed_signal_energy(1);
        self.stats.digital += self.cfg.energy.digital_energy(1, alu_ops);
        self.stats.dma_engine += self.cfg.energy.dma_engine_energy(1);
        self.buffers.stage(BufferKind::Row, in_bytes);
        self.buffers.stage(BufferKind::Output, out_bytes);
        self.stats.buffers += self.cfg.energy.buffer_energy(2 * (in_bytes + out_bytes) as u64);
        self.stats.compute_time += self.cfg.energy.compute_time(1);
    }

    /// Executes a batch of GEMMs sharing dimensions and scales; the
    /// descriptor table holds `(addr_a, addr_b, addr_c)` triples. Batches
    /// that share `A` hit tile residency and skip reprogramming — the
    /// fusion endurance win of Listing 2.
    ///
    /// Independent elements (pairwise disjoint `C` ranges that no other
    /// element reads) are scheduled round-robin onto the disjoint tile
    /// sub-grids planned by [`partition_grid`]: each region runs its
    /// elements back-to-back and the batch finishes when the slowest
    /// region does, so the modeled busy time can be a fraction of the
    /// serial sum. Dependent batches fall back to the serial full-grid
    /// chain. Results are identical either way — elements always execute
    /// functionally in index order; only the timing schedule changes.
    pub(crate) fn run_gemm_batched(
        &mut self,
        mach: &mut Machine,
        template: &GemmParams,
        table_pa: u64,
        count: usize,
        t0: SimTime,
    ) -> Result<SimTime, EngineError> {
        if count == 0 {
            return Err(EngineError::BadDims("empty batch".into()));
        }
        let (descr, table_t) = self.dma.read_u64s(mach, table_pa, count * 3);
        let params: Vec<GemmParams> = (0..count)
            .map(|i| GemmParams {
                a: descr[3 * i],
                b: descr[3 * i + 1],
                c: descr[3 * i + 2],
                ..*template
            })
            .collect();
        let regions = if batch_is_independent(&params) {
            partition_grid(self.cfg.grid, count)
        } else {
            vec![GridRegion::full(self.cfg.grid)]
        };
        let nr = regions.len();
        // Per-region clocks, relative to the end of the table read.
        let mut chain = vec![SimTime::ZERO; nr];
        let mut round_tiles = 0u64;
        for (i, p) in params.iter().enumerate() {
            let r = i % nr;
            if r == 0 && i > 0 {
                // A full round of concurrent commands has been issued.
                self.stats.max_tiles_active = self.stats.max_tiles_active.max(round_tiles);
                round_tiles = 0;
            }
            let cmd = self.next_cmd();
            let (dur, tiles) =
                self.run_gemm_region(mach, p, regions[r], Some(cmd), t0 + table_t + chain[r])?;
            chain[r] += dur;
            round_tiles += tiles;
        }
        self.stats.max_tiles_active = self.stats.max_tiles_active.max(round_tiles);
        let busy = chain.iter().fold(SimTime::ZERO, |a, &b| a.max(b));
        Ok(table_t + busy)
    }

    /// Fresh logical command id (tags timeline events; one per armed
    /// command, one per batched element).
    pub(crate) fn next_cmd(&mut self) -> u64 {
        let id = self.cmd_seq;
        self.cmd_seq += 1;
        id
    }

    /// Executes a single-channel 2-D convolution by installing the filter
    /// as a doubly-blocked Toeplitz operand: word lines carry `fh`
    /// consecutive image-row segments, bit lines produce a run of output
    /// pixels, so one GEMV computes `seg` outputs with all `fh*fw` taps.
    /// Convolution always runs on tile `(0, 0)`; its Toeplitz operand is
    /// far smaller than a crossbar, so sharding buys nothing.
    pub(crate) fn run_conv2d(
        &mut self,
        mach: &mut Machine,
        p: &ConvParams,
        t0: SimTime,
    ) -> Result<SimTime, EngineError> {
        if p.fh == 0 || p.fw == 0 || p.h < p.fh || p.w < p.fw {
            return Err(EngineError::BadDims(format!(
                "image {}x{} filter {}x{}",
                p.h, p.w, p.fh, p.fw
            )));
        }
        let cmd = self.next_cmd();
        let out_h = p.h - p.fh + 1;
        let out_w = p.w - p.fw + 1;
        let seg_in = self.cfg.rows / p.fh;
        if seg_in < p.fw {
            return Err(EngineError::Unsupported(format!(
                "filter width {} exceeds per-row segment {seg_in}",
                p.fw
            )));
        }
        let seg_out = (seg_in - (p.fw - 1)).min(out_w).min(self.cfg.cols);
        let in_dim = p.fh * seg_in;

        // Fetch the filter and build the Toeplitz operand.
        let mut filt = vec![0f32; p.fh * p.fw];
        let mut t = self.dma.read_f32s(mach, p.filt, &mut filt);
        let mut g = vec![0f32; in_dim * seg_out];
        for fr in 0..p.fh {
            for fc in 0..p.fw {
                for c in 0..seg_out {
                    let r = fr * seg_in + c + fc;
                    g[r * seg_out + c] = filt[fr * p.fw + fc];
                }
            }
        }
        let key = TileKey {
            base_pa: p.filt,
            ld: p.fw,
            transposed: false,
            origin: (0, 0),
            extent: (in_dim, seg_out),
            generation: self.generation,
        };
        self.stats.max_tiles_active = self.stats.max_tiles_active.max(1);
        if self.tiles[0].resident() == Some(&key) {
            self.stats.install_skips += 1;
        } else {
            let receipt = self.tiles[0].install(key, &g, in_dim, seg_out);
            let install_t = self.cfg.energy.write_time(receipt.rows_programmed);
            self.stats.cell_writes += receipt.cells_written;
            self.stats.rows_programmed += receipt.rows_programmed;
            self.stats.crossbar_write += self.cfg.energy.write_energy(receipt.cells_written);
            self.stats.install_time += install_t;
            self.buffers.stage(BufferKind::Column, in_dim * seg_out);
            self.stats.buffers += self.cfg.energy.buffer_energy(2 * (in_dim * seg_out) as u64);
            self.timeline.push_on(
                EventKind::WriteCrossbar,
                Some((0, 0)),
                Some(cmd),
                t0 + t,
                t0 + t + install_t,
                format!("install Toeplitz filter ({in_dim}x{seg_out})"),
            );
            t += install_t;
        }

        let mut v = vec![0f32; in_dim];
        let mut first = true;
        for oi in 0..out_h {
            let mut s0 = 0;
            while s0 < out_w {
                let n_out = seg_out.min(out_w - s0);
                v.iter_mut().for_each(|x| *x = 0.0);
                let valid = seg_in.min(p.w - s0);
                for fr in 0..p.fh {
                    let base = p.img + 4 * ((oi + fr) * p.w + s0) as u64;
                    let mut seg = vec![0f32; valid];
                    self.dma.read_f32s(mach, base, &mut seg);
                    v[fr * seg_in..fr * seg_in + valid].copy_from_slice(&seg);
                }
                let (y, receipt) = self.tiles[0].gemv(&v);
                // Accumulate into the existing output (the kernel is a
                // reduction: out[i][j] += ...), read-modify-write via DMA.
                let obase = p.out + 4 * (oi * out_w + s0) as u64;
                let mut oseg = vec![0f32; n_out];
                self.dma.read_f32s(mach, obase, &mut oseg);
                for (o, yv) in oseg.iter_mut().zip(&y[..n_out]) {
                    *o += yv;
                }
                self.dma.write_f32s(mach, obase, &oseg);
                let in_bytes = (p.fh * valid * 4) as u64;
                let out_bytes = (2 * n_out * 4) as u64;
                let (step, dma_t) = self.gemv_step_time(in_bytes, out_bytes);
                t += step;
                let useful = (p.fh * p.fw * n_out) as u64;
                self.account_gemv(
                    receipt.active_cells,
                    useful,
                    p.fh * valid,
                    n_out,
                    receipt.extra_alu_ops,
                );
                if dma_t > self.cfg.energy.compute_time(1) {
                    self.stats.dma_exposed_time += dma_t - self.cfg.energy.compute_time(1);
                }
                if first {
                    self.timeline.push_on(
                        EventKind::Compute,
                        Some((0, 0)),
                        Some(cmd),
                        t0 + t - step,
                        t0 + t,
                        format!("conv gemv row {oi}, seg {s0} (+{n_out})"),
                    );
                    first = false;
                }
                s0 += n_out;
            }
        }
        Ok(t)
    }
}
