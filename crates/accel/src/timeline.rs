//! Event timeline of an offloaded kernel (Fig. 2 (d)).
//!
//! The figure shows the host preparing data and writing configuration
//! registers, the trigger, DMA buffer fills overlapped with compute and
//! accumulation, the result store, and the final "result ready" status
//! update. [`Timeline`] records those events with start/end times so the
//! `timeline` example can render the same picture.

use cim_machine::units::SimTime;
use std::fmt;

/// What happened during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Host wrote the configuration and armed the command register.
    Trigger,
    /// DMA filled an input buffer from shared memory.
    FillBuffer,
    /// Crossbar rows were programmed (stationary operand install).
    WriteCrossbar,
    /// Analog GEMV on the crossbar.
    Compute,
    /// Digital accumulation / weighted sum.
    Accumulate,
    /// Result written back to shared memory.
    StoreResult,
    /// Status register flipped to done.
    ResultReady,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Trigger => "trigger",
            EventKind::FillBuffer => "fill-buffer",
            EventKind::WriteCrossbar => "write-crossbar",
            EventKind::Compute => "compute",
            EventKind::Accumulate => "accumulate",
            EventKind::StoreResult => "store-result",
            EventKind::ResultReady => "result-ready",
        };
        f.write_str(s)
    }
}

/// One timeline interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Physical tile `(k_lane, m_lane)` the event occupied, if the event
    /// is tile-specific (installs and computes are; trigger/status flips
    /// are not).
    pub tile: Option<(usize, usize)>,
    /// Logical command the event belongs to. Every armed command gets a
    /// fresh id; the elements of a batched GEMM each get their own, so a
    /// concurrent batch can be untangled per command in the rendering.
    pub cmd: Option<u64>,
    /// Start time (relative to machine epoch).
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
    /// Free-form detail (e.g. `"install A tile m0=0 k0=8"`).
    pub label: String,
}

/// Bounded recorder of accelerator events.
#[derive(Debug, Clone)]
pub struct Timeline {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl Timeline {
    /// Creates a timeline retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Timeline { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Records an event not pinned to a tile (dropped silently past
    /// capacity, counted).
    pub fn push(
        &mut self,
        kind: EventKind,
        start: SimTime,
        end: SimTime,
        label: impl Into<String>,
    ) {
        self.push_on(kind, None, None, start, end, label);
    }

    /// Records an event occupying the physical tile `tile` on behalf of
    /// logical command `cmd` — the per-tile, per-command occupancy view
    /// of a sharded or batched run.
    pub fn push_on(
        &mut self,
        kind: EventKind,
        tile: Option<(usize, usize)>,
        cmd: Option<u64>,
        start: SimTime,
        end: SimTime,
        label: impl Into<String>,
    ) {
        if self.events.len() < self.capacity {
            self.events.push(Event { kind, tile, cmd, start, end, label: label.into() });
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Busy time per physical tile: the summed durations of the recorded
    /// tile-pinned events, sorted by tile coordinate. A balanced sharded
    /// run shows near-equal occupancy across the grid.
    pub fn tile_occupancy(&self) -> Vec<((usize, usize), SimTime)> {
        let mut acc: Vec<((usize, usize), SimTime)> = Vec::new();
        for e in &self.events {
            let Some(tile) = e.tile else { continue };
            match acc.iter_mut().find(|(t, _)| *t == tile) {
                Some((_, busy)) => *busy += e.end - e.start,
                None => acc.push((tile, e.end - e.start)),
            }
        }
        acc.sort_by_key(|(t, _)| *t);
        acc
    }

    /// Renders an ASCII table of the recorded events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>7} {:>5} {:>14} {:>14} {:>12}  {}\n",
            "event", "tile", "cmd", "start", "end", "duration", "detail"
        ));
        for e in &self.events {
            let tile = e.tile.map_or_else(|| "-".to_string(), |(a, b)| format!("({a},{b})"));
            let cmd = e.cmd.map_or_else(|| "-".to_string(), |c| format!("#{c}"));
            out.push_str(&format!(
                "{:<16} {:>7} {:>5} {:>14} {:>14} {:>12}  {}\n",
                e.kind.to_string(),
                tile,
                cmd,
                format!("{}", e.start),
                format!("{}", e.end),
                format!("{}", e.end - e.start),
                e.label
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} further events elided\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_render() {
        let mut t = Timeline::new(8);
        t.push(
            EventKind::Trigger,
            SimTime::ZERO,
            SimTime::from_ns(50.0),
            "write context registers",
        );
        t.push(EventKind::Compute, SimTime::from_us(1.0), SimTime::from_us(2.0), "gemv 0");
        assert_eq!(t.events().len(), 2);
        let r = t.render();
        assert!(r.contains("trigger"));
        assert!(r.contains("compute"));
        assert!(r.contains("gemv 0"));
    }

    #[test]
    fn capacity_bound_counts_drops() {
        let mut t = Timeline::new(1);
        t.push(EventKind::Compute, SimTime::ZERO, SimTime::ZERO, "a");
        t.push(EventKind::Compute, SimTime::ZERO, SimTime::ZERO, "b");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 1);
        assert!(t.render().contains("elided"));
        t.clear();
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn kinds_have_display_names() {
        assert_eq!(EventKind::WriteCrossbar.to_string(), "write-crossbar");
        assert_eq!(EventKind::ResultReady.to_string(), "result-ready");
    }

    #[test]
    fn tile_occupancy_sums_per_tile() {
        let mut t = Timeline::new(8);
        let us = SimTime::from_us;
        t.push(EventKind::Trigger, SimTime::ZERO, us(1.0), "untiled");
        t.push_on(EventKind::Compute, Some((0, 0)), Some(0), us(1.0), us(3.0), "a");
        t.push_on(EventKind::Compute, Some((0, 1)), Some(1), us(1.0), us(2.0), "b");
        t.push_on(EventKind::WriteCrossbar, Some((0, 0)), Some(0), us(3.0), us(4.0), "c");
        let occ = t.tile_occupancy();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].0, (0, 0));
        assert!((occ[0].1.as_us() - 3.0).abs() < 1e-9);
        assert!((occ[1].1.as_us() - 1.0).abs() < 1e-9);
        assert!(t.render().contains("(0,1)"));
    }

    #[test]
    fn events_carry_command_ids() {
        let mut t = Timeline::new(4);
        t.push_on(EventKind::Compute, Some((0, 0)), Some(7), SimTime::ZERO, SimTime::ZERO, "x");
        t.push(EventKind::Trigger, SimTime::ZERO, SimTime::ZERO, "y");
        assert_eq!(t.events()[0].cmd, Some(7));
        assert_eq!(t.events()[1].cmd, None);
        assert!(t.render().contains("#7"));
    }
}
