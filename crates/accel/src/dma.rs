//! DMA engine of the accelerator.
//!
//! "A CIM tile, a micro-engine, and a DMA unit for load and store
//! operations make a standalone accelerator" (Section II-C). The DMA moves
//! bursts between shared main memory and the tile buffers using
//! *uncacheable* accesses, which — after the driver's flush — keeps the
//! shared region coherent without hardware snooping (Section II-E).

use cim_machine::units::SimTime;
use cim_machine::Machine;

/// Accumulated DMA statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DmaStats {
    /// Bytes read from memory.
    pub bytes_in: u64,
    /// Bytes written to memory.
    pub bytes_out: u64,
    /// Time spent on the bus.
    pub busy: SimTime,
}

/// The load/store engine.
#[derive(Debug, Clone, Default)]
pub struct DmaEngine {
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates an idle DMA engine.
    pub fn new() -> Self {
        DmaEngine::default()
    }

    /// Statistics so far.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Resets statistics.
    pub fn reset(&mut self) {
        self.stats = DmaStats::default();
    }

    /// Reads `out.len() * 4` bytes of `f32`s from physical address `pa`.
    /// Returns the burst time.
    pub fn read_f32s(&mut self, mach: &mut Machine, pa: u64, out: &mut [f32]) -> SimTime {
        let bytes = (out.len() * 4) as u64;
        let mut raw = vec![0u8; out.len() * 4];
        mach.uncached_read(pa, &mut raw);
        for (i, chunk) in raw.chunks_exact(4).enumerate() {
            out[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let t = mach.bus.dma_burst(bytes, true);
        self.stats.bytes_in += bytes;
        self.stats.busy += t;
        t
    }

    /// Reads a *strided* sequence: `count` f32s spaced `stride_elems`
    /// apart (used to gather a matrix column). One burst per element group
    /// is pessimistic, so this is modelled as a single burst of the
    /// gathered payload plus one setup.
    #[allow(clippy::needless_range_loop)]
    pub fn read_f32s_strided(
        &mut self,
        mach: &mut Machine,
        pa: u64,
        count: usize,
        stride_elems: usize,
        out: &mut [f32],
    ) -> SimTime {
        assert!(out.len() >= count, "output buffer too small");
        for i in 0..count {
            let mut b = [0u8; 4];
            mach.uncached_read(pa + (i * stride_elems * 4) as u64, &mut b);
            out[i] = f32::from_le_bytes(b);
        }
        let bytes = (count * 4) as u64;
        let t = mach.bus.dma_burst(bytes, true);
        self.stats.bytes_in += bytes;
        self.stats.busy += t;
        t
    }

    /// Writes `data` as little-endian `f32`s to physical address `pa`.
    pub fn write_f32s(&mut self, mach: &mut Machine, pa: u64, data: &[f32]) -> SimTime {
        let bytes = (data.len() * 4) as u64;
        let mut raw = Vec::with_capacity(data.len() * 4);
        for v in data {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        mach.uncached_write(pa, &raw);
        let t = mach.bus.dma_burst(bytes, false);
        self.stats.bytes_out += bytes;
        self.stats.busy += t;
        t
    }

    /// Reads `count` little-endian `u64`s (batch descriptors).
    pub fn read_u64s(&mut self, mach: &mut Machine, pa: u64, count: usize) -> (Vec<u64>, SimTime) {
        let bytes = (count * 8) as u64;
        let mut raw = vec![0u8; count * 8];
        mach.uncached_read(pa, &mut raw);
        let vals = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect();
        let t = mach.bus.dma_burst(bytes, true);
        self.stats.bytes_in += bytes;
        self.stats.busy += t;
        (vals, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_machine::MachineConfig;

    fn setup() -> (Machine, DmaEngine, u64) {
        let mut m = Machine::new(MachineConfig::test_small());
        let (_va, pa) = m.alloc_cma(4096).expect("cma");
        (m, DmaEngine::new(), pa)
    }

    #[test]
    fn f32_roundtrip_through_memory() {
        let (mut m, mut dma, pa) = setup();
        let data = [1.0f32, -2.5, 3.25, 0.0];
        let t_w = dma.write_f32s(&mut m, pa, &data);
        let mut out = [0f32; 4];
        let t_r = dma.read_f32s(&mut m, pa, &mut out);
        assert_eq!(out, data);
        assert!(t_w.as_ns() > 0.0 && t_r.as_ns() > 0.0);
        assert_eq!(dma.stats().bytes_in, 16);
        assert_eq!(dma.stats().bytes_out, 16);
    }

    #[test]
    fn strided_read_gathers_column() {
        let (mut m, mut dma, pa) = setup();
        // 4x4 row-major matrix; gather column 1.
        let mat: Vec<f32> = (0..16).map(|i| i as f32).collect();
        dma.write_f32s(&mut m, pa, &mat);
        let mut col = [0f32; 4];
        dma.read_f32s_strided(&mut m, pa + 4, 4, 4, &mut col);
        assert_eq!(col, [1.0, 5.0, 9.0, 13.0]);
    }

    #[test]
    fn u64_descriptor_read() {
        let (mut m, mut dma, pa) = setup();
        let descr = [0x1111u64, 0x2222, 0x3333];
        let mut raw = Vec::new();
        for d in &descr {
            raw.extend_from_slice(&d.to_le_bytes());
        }
        m.uncached_write(pa, &raw);
        let (vals, _) = dma.read_u64s(&mut m, pa, 3);
        assert_eq!(vals, descr);
    }

    #[test]
    fn busy_time_accumulates() {
        let (mut m, mut dma, pa) = setup();
        dma.write_f32s(&mut m, pa, &[0.0; 64]);
        dma.read_f32s(&mut m, pa, &mut [0f32; 64]);
        assert!(dma.stats().busy.as_ns() > 0.0);
        dma.reset();
        assert_eq!(dma.stats(), DmaStats::default());
    }
}
