//! Sharding plan: how a GEMM's block grid maps onto the physical tiles.
//!
//! The stationary operand `op(A)` is partitioned into `ceil(k / rows) x
//! ceil(m / cols)` blocks. On a single tile the micro-engine used to walk
//! those blocks serially, reprogramming the crossbar between them; with a
//! `(gk, gm)` tile grid it instead processes them in *waves* of up to
//! `gk * gm` blocks, one block per physical tile. Within a wave all tiles
//! hold their block simultaneously: a streamed `B` column fans out across
//! the `gm` output lanes, the `gk` reduction lanes fire in parallel, and
//! the digital block sums the partial columns before the single
//! read-modify-write of `C` — "accumulate partial columns instead of
//! serializing crossbar views".
//!
//! The planner here is the single source of truth for that decomposition:
//! both the functional micro-engine ([`crate::engine`]) and the analytic
//! estimator ([`crate::estimate`]) replay the identical plan, which is
//! what keeps them bit-for-bit and nanosecond-for-nanosecond in lockstep.

use cim_machine::units::SimTime;

/// Pipelined clock of one wave's install phase: block DMA gathers
/// serialize on the shared bus while row programming runs in parallel
/// across the wave's tiles, so the phase ends when the last tile whose
/// DMA completed also finishes programming. The single timing formula
/// shared by the micro-engine and the analytic estimator.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct InstallClock {
    dma_clock: SimTime,
    finish: SimTime,
}

impl InstallClock {
    /// Accounts one block install (`dma_t` bus time, then `program_t` of
    /// row programming on that block's tile). Returns the time the
    /// block's DMA completes — when its tile starts programming.
    pub fn add(&mut self, dma_t: SimTime, program_t: SimTime) -> SimTime {
        self.dma_clock += dma_t;
        self.finish = self.finish.max(self.dma_clock + program_t);
        self.dma_clock
    }

    /// Duration of the whole install phase (zero if nothing installed).
    pub fn finish(&self) -> SimTime {
        self.finish
    }
}

/// One block span along a single axis, pinned to a grid lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First element covered (in the K or M dimension).
    pub start: usize,
    /// Number of elements covered (at most the tile's rows or cols).
    pub len: usize,
    /// Physical grid coordinate along this axis.
    pub lane: usize,
}

/// One wave: the cross product of its K-spans and M-spans, each block on
/// the physical tile `(k_span.lane, m_span.lane)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wave {
    /// Reduction-axis spans active in this wave (parallel grid rows).
    pub k_spans: Vec<Span>,
    /// Output-axis spans active in this wave (parallel grid columns).
    pub m_spans: Vec<Span>,
    /// Whether this wave covers `k = 0` — it then owns the `beta`
    /// handling; later waves over the same M-spans accumulate into `C`.
    pub first_k: bool,
}

impl Wave {
    /// Number of physical tiles active in this wave.
    pub fn tiles_active(&self) -> usize {
        self.k_spans.len() * self.m_spans.len()
    }
}

fn partition(total: usize, chunk: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut at = 0;
    while at < total {
        let len = chunk.min(total - at);
        spans.push((at, len));
        at += len;
    }
    spans
}

/// Plans the wave schedule for an `m x k` stationary operand on tiles of
/// `rows x cols` arranged in a `grid = (gk, gm)` array. M-waves are the
/// outer loop and K-waves the inner loop, mirroring the single-tile block
/// walk; a `(1, 1)` grid therefore degenerates to exactly the historical
/// one-block-per-wave schedule.
///
/// # Panics
///
/// Panics if any geometry component is zero.
pub fn plan_waves(rows: usize, cols: usize, grid: (usize, usize), m: usize, k: usize) -> Vec<Wave> {
    assert!(rows > 0 && cols > 0 && grid.0 > 0 && grid.1 > 0, "degenerate geometry");
    let k_blocks = partition(k, rows);
    let m_blocks = partition(m, cols);
    let mut waves = Vec::new();
    for mw in m_blocks.chunks(grid.1) {
        for (wi, kw) in k_blocks.chunks(grid.0).enumerate() {
            waves.push(Wave {
                k_spans: kw
                    .iter()
                    .enumerate()
                    .map(|(lane, &(start, len))| Span { start, len, lane })
                    .collect(),
                m_spans: mw
                    .iter()
                    .enumerate()
                    .map(|(lane, &(start, len))| Span { start, len, lane })
                    .collect(),
                first_k: wi == 0,
            });
        }
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_grid_replays_block_walk() {
        // 20x20 operand on 8x8 tiles: 3x3 blocks, one per wave, K inner.
        let waves = plan_waves(8, 8, (1, 1), 20, 20);
        assert_eq!(waves.len(), 9);
        assert!(waves.iter().all(|w| w.tiles_active() == 1));
        // First M-block sees K-waves 0, 8, 16 in order.
        let k_starts: Vec<usize> = waves[..3].iter().map(|w| w.k_spans[0].start).collect();
        assert_eq!(k_starts, vec![0, 8, 16]);
        assert!(waves[0].first_k);
        assert!(!waves[1].first_k);
        // All blocks land on lane (0, 0).
        assert!(waves.iter().all(|w| w.k_spans[0].lane == 0 && w.m_spans[0].lane == 0));
    }

    #[test]
    fn full_grid_collapses_to_one_wave() {
        let waves = plan_waves(8, 8, (2, 2), 16, 16);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].tiles_active(), 4);
        assert!(waves[0].first_k);
        let lanes: Vec<usize> = waves[0].k_spans.iter().map(|s| s.lane).collect();
        assert_eq!(lanes, vec![0, 1]);
    }

    #[test]
    fn ragged_edges_shrink_spans() {
        let waves = plan_waves(8, 8, (2, 2), 12, 20);
        // K: 8 + 8 + 4 over 2 lanes -> two K-waves; M: 8 + 4 in one wave.
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].k_spans.len(), 2);
        assert_eq!(waves[1].k_spans.len(), 1);
        assert_eq!(waves[1].k_spans[0], Span { start: 16, len: 4, lane: 0 });
        assert_eq!(waves[0].m_spans[1], Span { start: 8, len: 4, lane: 1 });
        assert!(!waves[1].first_k);
    }

    #[test]
    fn coverage_is_exact_and_disjoint() {
        for (m, k, grid) in [(30, 17, (2, 3)), (8, 8, (4, 4)), (65, 1, (2, 2))] {
            let waves = plan_waves(8, 8, grid, m, k);
            let mut covered = vec![0u32; m * k];
            for w in &waves {
                for ks in &w.k_spans {
                    for ms in &w.m_spans {
                        for kk in ks.start..ks.start + ks.len {
                            for mm in ms.start..ms.start + ms.len {
                                covered[mm * k + kk] += 1;
                            }
                        }
                    }
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "m={m} k={k} grid={grid:?}");
        }
    }
}
