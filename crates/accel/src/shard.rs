//! Sharding plan: how a GEMM's block grid maps onto the physical tiles.
//!
//! The stationary operand `op(A)` is partitioned into `ceil(k / rows) x
//! ceil(m / cols)` blocks. On a single tile the micro-engine used to walk
//! those blocks serially, reprogramming the crossbar between them; with a
//! `(gk, gm)` tile grid it instead processes them in *waves* of up to
//! `gk * gm` blocks, one block per physical tile. Within a wave all tiles
//! hold their block simultaneously: a streamed `B` column fans out across
//! the `gm` output lanes, the `gk` reduction lanes fire in parallel, and
//! the digital block sums the partial columns before the single
//! read-modify-write of `C` — "accumulate partial columns instead of
//! serializing crossbar views".
//!
//! The planner here is the single source of truth for that decomposition:
//! both the functional micro-engine ([`crate::engine`]) and the analytic
//! estimator ([`crate::estimate`]) replay the identical plan, which is
//! what keeps them bit-for-bit and nanosecond-for-nanosecond in lockstep.

use cim_machine::units::SimTime;

/// Pipelined clock of one wave's install phase: block DMA gathers
/// serialize *per channel* while row programming runs in parallel
/// across the wave's tiles, so the phase ends when the last tile whose
/// DMA completed also finishes programming. With one channel (the
/// default) every gather queues on the same modeled bus — the paper's
/// behavior; with `c` channels a wave's gathers on distinct tiles
/// overlap (each tile's traffic lands on channel `tile mod c`). The
/// single timing formula shared by the micro-engine and the analytic
/// estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct InstallClock {
    dma_clocks: Vec<SimTime>,
    finish: SimTime,
}

impl Default for InstallClock {
    /// One channel: the historical fully-serial install bus.
    fn default() -> Self {
        InstallClock::with_channels(1)
    }
}

impl InstallClock {
    /// A clock with `channels` independent DMA channels.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is zero.
    pub fn with_channels(channels: usize) -> Self {
        assert!(channels > 0, "install clock needs at least one DMA channel");
        InstallClock { dma_clocks: vec![SimTime::ZERO; channels], finish: SimTime::ZERO }
    }

    /// Number of DMA channels.
    pub fn channels(&self) -> usize {
        self.dma_clocks.len()
    }

    /// Accounts one block install on channel 0 (`dma_t` bus time, then
    /// `program_t` of row programming on that block's tile). Returns the
    /// time the block's DMA completes — when its tile starts programming.
    pub fn add(&mut self, dma_t: SimTime, program_t: SimTime) -> SimTime {
        self.add_on(0, dma_t, program_t)
    }

    /// As [`InstallClock::add`], with the gather queued on `channel`.
    ///
    /// # Panics
    ///
    /// Panics when `channel` is out of range.
    pub fn add_on(&mut self, channel: usize, dma_t: SimTime, program_t: SimTime) -> SimTime {
        let clock = &mut self.dma_clocks[channel];
        *clock += dma_t;
        self.finish = self.finish.max(*clock + program_t);
        *clock
    }

    /// Duration of the whole install phase (zero if nothing installed).
    pub fn finish(&self) -> SimTime {
        self.finish
    }
}

/// A rectangular sub-array of the physical tile grid, in grid-lane
/// coordinates: `origin = (k_lane, m_lane)`, `shape = (gk, gm)`. Commands
/// dispatched to disjoint regions occupy disjoint tiles and can run
/// concurrently; [`partition_grid`] plans such a decomposition for a
/// batch of independent kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridRegion {
    /// First `(k_lane, m_lane)` covered.
    pub origin: (usize, usize),
    /// Lanes covered along each axis.
    pub shape: (usize, usize),
}

impl GridRegion {
    /// The region covering the whole `grid`.
    pub fn full(grid: (usize, usize)) -> Self {
        GridRegion { origin: (0, 0), shape: grid }
    }

    /// Number of physical tiles in the region.
    pub fn tiles(&self) -> usize {
        self.shape.0 * self.shape.1
    }

    /// Packs the region into a context-register word: four 16-bit lanes
    /// `(origin_k, origin_m, shape_k, shape_m)`. The all-zero word (a
    /// freshly reset register file) decodes back to the full grid, so
    /// hosts that never write [`crate::regs::Reg::Region`] keep the
    /// historical whole-grid behavior.
    pub fn encode(&self) -> u64 {
        ((self.origin.0 as u64) << 48)
            | ((self.origin.1 as u64) << 32)
            | ((self.shape.0 as u64) << 16)
            | self.shape.1 as u64
    }

    /// Decodes a [`GridRegion::encode`] word against the physical `grid`,
    /// clamping out-of-range values so a malformed register can never
    /// address tiles that do not exist. A zero shape decodes to the full
    /// grid.
    pub fn decode(word: u64, grid: (usize, usize)) -> GridRegion {
        let shape = (((word >> 16) & 0xffff) as usize, (word & 0xffff) as usize);
        if shape.0 == 0 || shape.1 == 0 {
            return GridRegion::full(grid);
        }
        let origin = (
            (word >> 48) as usize % grid.0.max(1),
            ((word >> 32) & 0xffff) as usize % grid.1.max(1),
        );
        GridRegion {
            origin,
            shape: (shape.0.min(grid.0 - origin.0), shape.1.min(grid.1 - origin.1)),
        }
    }

    /// Whether two regions share any physical tile.
    pub fn overlaps(&self, other: &GridRegion) -> bool {
        let disjoint_k = self.origin.0 + self.shape.0 <= other.origin.0
            || other.origin.0 + other.shape.0 <= self.origin.0;
        let disjoint_m = self.origin.1 + self.shape.1 <= other.origin.1
            || other.origin.1 + other.shape.1 <= self.origin.1;
        !(disjoint_k || disjoint_m)
    }
}

/// Partitions a `(gk, gm)` tile grid into up to `count` disjoint
/// [`GridRegion`]s, one per concurrent command of a batch. The planner
/// picks the `(pk, pm)` split with the most regions not exceeding
/// `count`, tie-broken toward square regions, and balances ragged lane
/// counts so no region is more than one lane wider than another. A
/// `(1, 1)` grid (the paper's single tile) always yields one full-grid
/// region — the serial schedule.
///
/// Deterministic: the same inputs always produce the same partition, so
/// the analytic estimator can replay the engine's schedule exactly.
///
/// # Panics
///
/// Panics if the grid has a zero axis.
pub fn partition_grid(grid: (usize, usize), count: usize) -> Vec<GridRegion> {
    let (gk, gm) = grid;
    assert!(gk > 0 && gm > 0, "degenerate grid");
    let want = count.max(1).min(gk * gm);
    let mut best = (1usize, 1usize);
    for pk in 1..=gk {
        for pm in 1..=gm {
            let n = pk * pm;
            if n > want {
                continue;
            }
            let better = n > best.0 * best.1
                || (n == best.0 * best.1 && pk.abs_diff(pm) < best.0.abs_diff(best.1));
            if better {
                best = (pk, pm);
            }
        }
    }
    let (pk, pm) = best;
    let k_chunks = balance(gk, pk);
    let m_chunks = balance(gm, pm);
    let mut regions = Vec::with_capacity(pk * pm);
    for &(k0, klen) in &k_chunks {
        for &(m0, mlen) in &m_chunks {
            regions.push(GridRegion { origin: (k0, m0), shape: (klen, mlen) });
        }
    }
    regions
}

/// Splits `total` lanes into `parts` contiguous chunks whose sizes differ
/// by at most one.
fn balance(total: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((at, len));
        at += len;
    }
    out
}

/// One block span along a single axis, pinned to a grid lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First element covered (in the K or M dimension).
    pub start: usize,
    /// Number of elements covered (at most the tile's rows or cols).
    pub len: usize,
    /// Physical grid coordinate along this axis.
    pub lane: usize,
}

/// One wave: the cross product of its K-spans and M-spans, each block on
/// the physical tile `(k_span.lane, m_span.lane)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wave {
    /// Reduction-axis spans active in this wave (parallel grid rows).
    pub k_spans: Vec<Span>,
    /// Output-axis spans active in this wave (parallel grid columns).
    pub m_spans: Vec<Span>,
    /// Whether this wave covers `k = 0` — it then owns the `beta`
    /// handling; later waves over the same M-spans accumulate into `C`.
    pub first_k: bool,
}

impl Wave {
    /// Number of physical tiles active in this wave.
    pub fn tiles_active(&self) -> usize {
        self.k_spans.len() * self.m_spans.len()
    }
}

fn partition(total: usize, chunk: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut at = 0;
    while at < total {
        let len = chunk.min(total - at);
        spans.push((at, len));
        at += len;
    }
    spans
}

/// Plans the wave schedule for an `m x k` stationary operand on tiles of
/// `rows x cols` arranged in a `grid = (gk, gm)` array. M-waves are the
/// outer loop and K-waves the inner loop, mirroring the single-tile block
/// walk; a `(1, 1)` grid therefore degenerates to exactly the historical
/// one-block-per-wave schedule.
///
/// # Panics
///
/// Panics if any geometry component is zero.
pub fn plan_waves(rows: usize, cols: usize, grid: (usize, usize), m: usize, k: usize) -> Vec<Wave> {
    assert!(rows > 0 && cols > 0 && grid.0 > 0 && grid.1 > 0, "degenerate geometry");
    let k_blocks = partition(k, rows);
    let m_blocks = partition(m, cols);
    let mut waves = Vec::new();
    for mw in m_blocks.chunks(grid.1) {
        for (wi, kw) in k_blocks.chunks(grid.0).enumerate() {
            waves.push(Wave {
                k_spans: kw
                    .iter()
                    .enumerate()
                    .map(|(lane, &(start, len))| Span { start, len, lane })
                    .collect(),
                m_spans: mw
                    .iter()
                    .enumerate()
                    .map(|(lane, &(start, len))| Span { start, len, lane })
                    .collect(),
                first_k: wi == 0,
            });
        }
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_clock_single_channel_serializes() {
        let mut c = InstallClock::default();
        assert_eq!(c.channels(), 1);
        let dma = SimTime::from_ns(10.0);
        let prog = SimTime::from_ns(100.0);
        // Two blocks: DMAs queue back to back, programming overlaps.
        assert_eq!(c.add(dma, prog), dma);
        assert_eq!(c.add(dma, prog), dma * 2.0);
        assert_eq!(c.finish(), dma * 2.0 + prog);
    }

    #[test]
    fn install_clock_channels_overlap_gathers() {
        // Same two blocks on two channels: both DMAs run concurrently,
        // so the phase ends one DMA + one program after it starts.
        let dma = SimTime::from_ns(10.0);
        let prog = SimTime::from_ns(100.0);
        let mut c = InstallClock::with_channels(2);
        assert_eq!(c.add_on(0, dma, prog), dma);
        assert_eq!(c.add_on(1, dma, prog), dma);
        assert_eq!(c.finish(), dma + prog);
        // A third block reuses channel 0 and queues behind its gather.
        assert_eq!(c.add_on(0, dma, prog), dma * 2.0);
        assert_eq!(c.finish(), dma * 2.0 + prog);
    }

    #[test]
    #[should_panic(expected = "at least one DMA channel")]
    fn install_clock_rejects_zero_channels() {
        let _ = InstallClock::with_channels(0);
    }

    #[test]
    fn single_tile_grid_replays_block_walk() {
        // 20x20 operand on 8x8 tiles: 3x3 blocks, one per wave, K inner.
        let waves = plan_waves(8, 8, (1, 1), 20, 20);
        assert_eq!(waves.len(), 9);
        assert!(waves.iter().all(|w| w.tiles_active() == 1));
        // First M-block sees K-waves 0, 8, 16 in order.
        let k_starts: Vec<usize> = waves[..3].iter().map(|w| w.k_spans[0].start).collect();
        assert_eq!(k_starts, vec![0, 8, 16]);
        assert!(waves[0].first_k);
        assert!(!waves[1].first_k);
        // All blocks land on lane (0, 0).
        assert!(waves.iter().all(|w| w.k_spans[0].lane == 0 && w.m_spans[0].lane == 0));
    }

    #[test]
    fn full_grid_collapses_to_one_wave() {
        let waves = plan_waves(8, 8, (2, 2), 16, 16);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].tiles_active(), 4);
        assert!(waves[0].first_k);
        let lanes: Vec<usize> = waves[0].k_spans.iter().map(|s| s.lane).collect();
        assert_eq!(lanes, vec![0, 1]);
    }

    #[test]
    fn ragged_edges_shrink_spans() {
        let waves = plan_waves(8, 8, (2, 2), 12, 20);
        // K: 8 + 8 + 4 over 2 lanes -> two K-waves; M: 8 + 4 in one wave.
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].k_spans.len(), 2);
        assert_eq!(waves[1].k_spans.len(), 1);
        assert_eq!(waves[1].k_spans[0], Span { start: 16, len: 4, lane: 0 });
        assert_eq!(waves[0].m_spans[1], Span { start: 8, len: 4, lane: 1 });
        assert!(!waves[1].first_k);
    }

    #[test]
    fn partition_grid_is_disjoint_and_covers() {
        for (grid, count) in
            [((2, 2), 4), ((2, 2), 3), ((4, 1), 4), ((1, 4), 2), ((3, 3), 5), ((2, 3), 100)]
        {
            let regions = partition_grid(grid, count);
            assert!(!regions.is_empty());
            assert!(regions.len() <= count, "grid {grid:?} count {count}");
            let covered: usize = regions.iter().map(GridRegion::tiles).sum();
            for (i, a) in regions.iter().enumerate() {
                for b in &regions[i + 1..] {
                    assert!(!a.overlaps(b), "{a:?} vs {b:?}");
                }
            }
            assert!(covered <= grid.0 * grid.1);
            // Every lane belongs to some region (full coverage).
            let owned = |k: usize, m: usize| {
                regions.iter().any(|r| {
                    (r.origin.0..r.origin.0 + r.shape.0).contains(&k)
                        && (r.origin.1..r.origin.1 + r.shape.1).contains(&m)
                })
            };
            for k in 0..grid.0 {
                for m in 0..grid.1 {
                    assert!(owned(k, m), "lane ({k},{m}) unowned for {grid:?}/{count}");
                }
            }
        }
    }

    #[test]
    fn single_tile_grid_never_partitions() {
        let regions = partition_grid((1, 1), 8);
        assert_eq!(regions, vec![GridRegion::full((1, 1))]);
    }

    #[test]
    fn partition_prefers_square_regions() {
        // 2x2 grid, batch of 2: split one axis, keeping 2-tile regions.
        let regions = partition_grid((2, 2), 2);
        assert_eq!(regions.len(), 2);
        assert!(regions.iter().all(|r| r.tiles() == 2));
        // Batch of 4: one tile each.
        let regions = partition_grid((2, 2), 4);
        assert_eq!(regions.len(), 4);
        assert!(regions.iter().all(|r| r.tiles() == 1));
    }

    #[test]
    fn region_overlap_geometry() {
        let a = GridRegion { origin: (0, 0), shape: (2, 1) };
        let b = GridRegion { origin: (0, 1), shape: (2, 1) };
        let c = GridRegion { origin: (1, 0), shape: (1, 2) };
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn coverage_is_exact_and_disjoint() {
        for (m, k, grid) in [(30, 17, (2, 3)), (8, 8, (4, 4)), (65, 1, (2, 2))] {
            let waves = plan_waves(8, 8, grid, m, k);
            let mut covered = vec![0u32; m * k];
            for w in &waves {
                for ks in &w.k_spans {
                    for ms in &w.m_spans {
                        for kk in ks.start..ks.start + ks.len {
                            for mm in ms.start..ms.start + ms.len {
                                covered[mm * k + kk] += 1;
                            }
                        }
                    }
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "m={m} k={k} grid={grid:?}");
        }
    }
}
