//! Row, column and output buffers of the CIM tile.
//!
//! "The row/column buffers act as data and mask registers for the
//! crossbar. During write operation, the column buffers contain the data
//! that has to be written on the crossbar, and the row buffers supply a
//! row-enable signal. Similarly, during a compute operation, the column
//! buffers supply column-enable signal and the row buffers latch the
//! inputs" (Section II-B). Each byte moved in or out of a buffer costs
//! 5.4 pJ (Table I); this module counts those accesses.

/// Which buffer a transfer touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// Input latch on the word lines.
    Row,
    /// Data/mask register on the bit lines.
    Column,
    /// Result register behind the ADCs.
    Output,
}

/// Byte-access accounting for the tile's SRAM buffers.
#[derive(Debug, Clone)]
pub struct DeviceBuffers {
    capacity: usize,
    accesses: u64,
    peak_resident: usize,
}

impl DeviceBuffers {
    /// Creates the buffer set with a total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        DeviceBuffers { capacity, accesses: 0, peak_resident: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records a fill of `bytes` into a buffer followed by its drain
    /// (write + read = two accesses per byte), e.g. DMA -> row buffer ->
    /// DAC. Oversized transfers are legal and modelled as multiple passes.
    pub fn stage(&mut self, _kind: BufferKind, bytes: usize) {
        self.accesses += 2 * bytes as u64;
        self.peak_resident = self.peak_resident.max(bytes.min(self.capacity));
    }

    /// Records a one-way access of `bytes` (e.g. mask broadcast).
    pub fn touch(&mut self, _kind: BufferKind, bytes: usize) {
        self.accesses += bytes as u64;
        self.peak_resident = self.peak_resident.max(bytes.min(self.capacity));
    }

    /// Total byte accesses so far (for the 5.4 pJ/byte energy term).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Largest residency seen, clamped to capacity.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Resets counters.
    pub fn reset(&mut self) {
        self.accesses = 0;
        self.peak_resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_two_accesses_per_byte() {
        let mut b = DeviceBuffers::new(1536);
        b.stage(BufferKind::Row, 256);
        assert_eq!(b.accesses(), 512);
    }

    #[test]
    fn touch_counts_one_access_per_byte() {
        let mut b = DeviceBuffers::new(1536);
        b.touch(BufferKind::Column, 100);
        assert_eq!(b.accesses(), 100);
    }

    #[test]
    fn peak_residency_clamped_to_capacity() {
        let mut b = DeviceBuffers::new(64);
        b.stage(BufferKind::Output, 1000);
        assert_eq!(b.peak_resident(), 64);
    }

    #[test]
    fn reset_clears() {
        let mut b = DeviceBuffers::new(64);
        b.stage(BufferKind::Row, 10);
        b.reset();
        assert_eq!(b.accesses(), 0);
        assert_eq!(b.peak_resident(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        DeviceBuffers::new(0);
    }
}
