//! Accelerator-side energy, timing and wear accounting.

use cim_machine::units::{Energy, SimTime};
use std::fmt;

/// Complete accelerator statistics for a run, broken down by component so
/// reports can show where the energy goes (the write/compute split is what
/// decides GEMM-like vs GEMV-like outcomes in Fig. 6).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccelStats {
    /// Crossbar GEMV operations executed.
    pub gemv_count: u64,
    /// 8-bit cells programmed (the endurance-relevant write count).
    pub cell_writes: u64,
    /// Crossbar rows programmed (latency-relevant).
    pub rows_programmed: u64,
    /// Stationary-operand block installs skipped because the block was
    /// already resident on its tile (fused batches sharing `A`, pinned
    /// operands reused across kernels) — each one is a saved install DMA
    /// plus programming phase.
    pub install_skips: u64,
    /// Useful multiply-accumulates performed on the crossbar.
    pub macs: u64,
    /// Most physical tiles concurrently active in any sharding wave (1
    /// for single-tile runs, up to `grid.0 * grid.1` for sharded GEMMs).
    pub max_tiles_active: u64,
    /// Most per-tile DMA channels concurrently gathering in any install
    /// wave (0 until a wave installs, 1 on the default serial bus, up to
    /// `AccelConfig::dma_channels`).
    pub max_dma_channels_active: u64,
    /// Analog compute energy (200 fJ per active cell).
    pub crossbar_compute: Energy,
    /// Cell programming energy (200 pJ per cell).
    pub crossbar_write: Energy,
    /// DAC/S&H/ADC energy (3.9 nJ per GEMV).
    pub mixed_signal: Energy,
    /// Buffer SRAM energy (5.4 pJ per byte access).
    pub buffers: Energy,
    /// Digital weighted-sum and ALU energy.
    pub digital: Energy,
    /// DMA + micro-engine control energy.
    pub dma_engine: Energy,
    /// Time spent installing stationary operands.
    pub install_time: SimTime,
    /// Time spent computing GEMVs.
    pub compute_time: SimTime,
    /// Time spent on DMA not hidden behind compute.
    pub dma_exposed_time: SimTime,
    /// Total busy time of the accelerator.
    pub busy: SimTime,
}

impl AccelStats {
    /// Total accelerator energy.
    pub fn total_energy(&self) -> Energy {
        self.crossbar_compute
            + self.crossbar_write
            + self.mixed_signal
            + self.buffers
            + self.digital
            + self.dma_engine
    }

    /// Useful MACs per 8-bit cell write — the compute-intensity metric of
    /// Fig. 6 (left), `Number-of-MAC-operations / Number-of-CIM-writes`.
    pub fn macs_per_write(&self) -> f64 {
        if self.cell_writes == 0 {
            f64::INFINITY
        } else {
            self.macs as f64 / self.cell_writes as f64
        }
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, o: &AccelStats) {
        self.gemv_count += o.gemv_count;
        self.cell_writes += o.cell_writes;
        self.rows_programmed += o.rows_programmed;
        self.install_skips += o.install_skips;
        self.macs += o.macs;
        self.max_tiles_active = self.max_tiles_active.max(o.max_tiles_active);
        self.max_dma_channels_active = self.max_dma_channels_active.max(o.max_dma_channels_active);
        self.crossbar_compute += o.crossbar_compute;
        self.crossbar_write += o.crossbar_write;
        self.mixed_signal += o.mixed_signal;
        self.buffers += o.buffers;
        self.digital += o.digital;
        self.dma_engine += o.dma_engine;
        self.install_time += o.install_time;
        self.compute_time += o.compute_time;
        self.dma_exposed_time += o.dma_exposed_time;
        self.busy += o.busy;
    }
}

impl fmt::Display for AccelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "accelerator statistics:")?;
        writeln!(f, "  gemvs            {:>12}", self.gemv_count)?;
        writeln!(f, "  cell writes      {:>12}", self.cell_writes)?;
        writeln!(f, "  rows programmed  {:>12}", self.rows_programmed)?;
        writeln!(f, "  installs skipped {:>12}", self.install_skips)?;
        writeln!(f, "  macs             {:>12}", self.macs)?;
        writeln!(f, "  macs/write       {:>12.2}", self.macs_per_write())?;
        writeln!(f, "  max tiles active {:>12}", self.max_tiles_active)?;
        writeln!(f, "  max dma channels {:>12}", self.max_dma_channels_active)?;
        writeln!(f, "  E crossbar compute {}", self.crossbar_compute)?;
        writeln!(f, "  E crossbar write   {}", self.crossbar_write)?;
        writeln!(f, "  E mixed signal     {}", self.mixed_signal)?;
        writeln!(f, "  E buffers          {}", self.buffers)?;
        writeln!(f, "  E digital          {}", self.digital)?;
        writeln!(f, "  E dma+engine       {}", self.dma_engine)?;
        writeln!(f, "  E total            {}", self.total_energy())?;
        writeln!(f, "  t install          {}", self.install_time)?;
        writeln!(f, "  t compute          {}", self.compute_time)?;
        writeln!(f, "  t dma exposed      {}", self.dma_exposed_time)?;
        writeln!(f, "  t busy             {}", self.busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_energy_sums_components() {
        let s = AccelStats {
            crossbar_compute: Energy::from_pj(1.0),
            crossbar_write: Energy::from_pj(2.0),
            mixed_signal: Energy::from_pj(3.0),
            buffers: Energy::from_pj(4.0),
            digital: Energy::from_pj(5.0),
            dma_engine: Energy::from_pj(6.0),
            ..AccelStats::default()
        };
        assert!((s.total_energy().as_pj() - 21.0).abs() < 1e-12);
    }

    #[test]
    fn macs_per_write() {
        let s = AccelStats { macs: 1000, cell_writes: 10, ..AccelStats::default() };
        assert_eq!(s.macs_per_write(), 100.0);
        let z = AccelStats::default();
        assert!(z.macs_per_write().is_infinite());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AccelStats { gemv_count: 1, macs: 10, ..AccelStats::default() };
        let b = AccelStats { gemv_count: 2, macs: 20, ..AccelStats::default() };
        a.merge(&b);
        assert_eq!(a.gemv_count, 3);
        assert_eq!(a.macs, 30);
    }

    #[test]
    fn display_contains_breakdown() {
        let s = AccelStats::default();
        let text = s.to_string();
        assert!(text.contains("cell writes"));
        assert!(text.contains("macs/write"));
    }
}
