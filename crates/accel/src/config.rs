//! Accelerator configuration (Table I, "CIM Parameter").

use cim_pcm::{AdcConfig, CellConfig, Fidelity, PcmEnergyModel};

/// Static configuration of the CIM accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Crossbar word lines — the stationary operand's *input* dimension
    /// capacity (paper: 256).
    pub rows: usize,
    /// Crossbar bit lines — the stationary operand's *output* dimension
    /// capacity (paper: 256 logical 8-bit columns, realized as two 4-bit
    /// device columns each).
    pub cols: usize,
    /// PCM cell parameters (4-bit IBM PCM).
    pub cell: CellConfig,
    /// Shared-ADC configuration.
    pub adc: AdcConfig,
    /// Energy/latency constants.
    pub energy: PcmEnergyModel,
    /// Input/output buffer capacity in bytes (paper: 1.5 KiB).
    pub buffer_bytes: usize,
    /// Numerical fidelity of the compute path.
    pub fidelity: Fidelity,
    /// Whether the micro-engine double-buffers DMA against compute
    /// (Section II-C).
    pub double_buffering: bool,
    /// Maximum number of timeline events retained.
    pub timeline_capacity: usize,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            rows: 256,
            cols: 256,
            cell: CellConfig::default(),
            adc: AdcConfig::default(),
            energy: PcmEnergyModel::default(),
            buffer_bytes: 1536,
            fidelity: Fidelity::Exact,
            double_buffering: true,
            timeline_capacity: 4096,
        }
    }
}

impl AccelConfig {
    /// A small crossbar for fast unit tests.
    pub fn test_small() -> Self {
        AccelConfig { rows: 8, cols: 8, buffer_bytes: 64, ..AccelConfig::default() }
    }

    /// Logical crossbar capacity in 8-bit cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Crossbar capacity in bytes (one byte per logical 8-bit cell).
    pub fn capacity_bytes(&self) -> usize {
        self.cells()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn validate(&self) {
        assert!(self.rows > 0 && self.cols > 0, "crossbar must be non-empty");
        assert!(self.buffer_bytes > 0, "buffers must be non-empty");
        assert_eq!(self.cell.bits, 4, "8-bit cells are built from two 4-bit devices");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = AccelConfig::default();
        assert_eq!(c.rows, 256);
        assert_eq!(c.cols, 256);
        assert_eq!(c.cells(), 65536);
        assert_eq!(c.buffer_bytes, 1536);
        c.validate();
    }

    #[test]
    fn small_config_valid() {
        AccelConfig::test_small().validate();
    }
}
