//! Accelerator configuration (Table I, "CIM Parameter").

use cim_pcm::{AdcConfig, CellConfig, DeviceKind, Fidelity, PcmEnergyModel};

/// Most per-tile DMA channels a configuration may request: the driver
/// surfaces per-channel busy time in a fixed-size
/// `cim_runtime`-side array, so the knob is bounded.
pub const MAX_DMA_CHANNELS: usize = 8;

/// Static configuration of the CIM accelerator.
///
/// Besides the per-tile crossbar geometry, the configuration carries two
/// sweepable knobs: the resistive [`DeviceKind`] whose physics fills the
/// `cell`/`adc`/`energy` fields ([`AccelConfig::for_device`]) and the
/// tile-grid shape `grid` over which oversized GEMMs are sharded
/// ([`AccelConfig::with_grid`]). `docs/DEVICES.md` tabulates both axes.
///
/// # Examples
///
/// Sweep tile grids for a GEMM four times larger than one crossbar and
/// check how many physical tiles each shape engages:
///
/// ```
/// use cim_accel::{AccelConfig, CimAccelerator};
/// use cim_accel::regs::{Command, Reg, Status};
/// use cim_machine::{Machine, MachineConfig};
///
/// for (grid, expect_tiles) in [((1, 1), 1), ((2, 1), 2), ((2, 2), 4)] {
///     let cfg = AccelConfig::test_small().with_grid(grid.0, grid.1);
///     assert_eq!(cfg.tile_count(), expect_tiles);
///
///     // 16x16 GEMM on 8x8 tiles: a 2x2 block grid.
///     let mut mach = Machine::new(MachineConfig::test_small());
///     let mut acc = CimAccelerator::new(cfg, mach.cfg.bus);
///     let n = 16usize;
///     let (_, a) = mach.alloc_cma((n * n * 4) as u64).unwrap();
///     let (_, b) = mach.alloc_cma((n * n * 4) as u64).unwrap();
///     let (_, c) = mach.alloc_cma((n * n * 4) as u64).unwrap();
///     let data: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32 - 3.0).collect();
///     mach.mem.write_f32_slice(a, &data);
///     mach.mem.write_f32_slice(b, &data);
///     for (r, v) in [(Reg::M, n as u64), (Reg::N, n as u64), (Reg::K, n as u64),
///                    (Reg::Lda, n as u64), (Reg::Ldb, n as u64), (Reg::Ldc, n as u64),
///                    (Reg::AddrA, a), (Reg::AddrB, b), (Reg::AddrC, c),
///                    (Reg::Alpha, 1.0f32.to_bits() as u64),
///                    (Reg::Beta, 0.0f32.to_bits() as u64),
///                    (Reg::Command, Command::Gemm as u64)] {
///         acc.pmio_write(r, v);
///     }
///     acc.execute(&mut mach);
///     assert_eq!(acc.regs().status(), Status::Done);
///     // All configured tiles absorb blocks of the 2x2 block grid.
///     assert_eq!(acc.stats().max_tiles_active, expect_tiles as u64);
/// }
/// ```
///
/// Sweep device models — same geometry, different physics:
///
/// ```
/// use cim_accel::AccelConfig;
/// use cim_pcm::DeviceKind;
///
/// let energies: Vec<f64> = DeviceKind::ALL
///     .iter()
///     .map(|&d| AccelConfig::for_device(d).energy.write_pj_per_cell)
///     .collect();
/// assert!(energies[0] > energies[1], "PCM writes cost more than ReRAM");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Crossbar word lines per tile — the stationary operand's *input*
    /// dimension capacity (paper: 256).
    pub rows: usize,
    /// Crossbar bit lines per tile — the stationary operand's *output*
    /// dimension capacity (paper: 256 logical 8-bit columns, realized as
    /// two 4-bit device columns each).
    pub cols: usize,
    /// Tile-grid shape `(k_tiles, m_tiles)`: how many physical tiles sit
    /// along the reduction (word-line) and output (bit-line) axes. The
    /// paper's accelerator is a single tile, `(1, 1)`; larger grids let
    /// the micro-engine shard oversized GEMMs across tiles that compute
    /// in parallel.
    pub grid: (usize, usize),
    /// Which resistive device technology the tiles are built from. This
    /// is a descriptive tag; the operative parameters live in `cell`,
    /// `adc` and `energy` (use [`AccelConfig::for_device`] to keep them
    /// in sync).
    pub device: DeviceKind,
    /// Cell parameters (4-bit multi-level devices).
    pub cell: CellConfig,
    /// Shared-ADC configuration.
    pub adc: AdcConfig,
    /// Energy/latency constants.
    pub energy: PcmEnergyModel,
    /// Input/output buffer capacity in bytes per tile (paper: 1.5 KiB).
    pub buffer_bytes: usize,
    /// Numerical fidelity of the compute path.
    pub fidelity: Fidelity,
    /// Whether the micro-engine double-buffers DMA against compute
    /// (Section II-C).
    pub double_buffering: bool,
    /// Maximum number of timeline events retained.
    pub timeline_capacity: usize,
    /// Per-tile DMA channels feeding the crossbar install path. With one
    /// channel (the default, the paper's single modeled bus) every block
    /// gather of a wave serializes behind the previous one; with `c`
    /// channels a block destined for tile `t` of its wave queues on
    /// channel `t mod c`, so installs on disjoint tiles overlap their
    /// gathers. Bounded by [`MAX_DMA_CHANNELS`]. Row programming was
    /// always parallel across tiles; this knob only de-serializes the
    /// DMA leg of [`crate::shard::InstallClock`].
    pub dma_channels: usize,
    /// Host threads used to simulate independent tiles of one wave.
    /// `0` = auto (use the host's available parallelism when the wave is
    /// wide enough to pay for thread spawns), `1` = always serial, `n > 1`
    /// = force exactly `n` workers whenever a wave has more than one
    /// independent tile (used by the determinism tests). This is a
    /// *simulator throughput* knob only: results, `AccelStats` and wear
    /// counters are bit-for-bit identical for every setting.
    pub sim_threads: usize,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            rows: 256,
            cols: 256,
            grid: (1, 1),
            device: DeviceKind::Pcm,
            cell: CellConfig::default(),
            adc: AdcConfig::default(),
            energy: PcmEnergyModel::default(),
            buffer_bytes: 1536,
            fidelity: Fidelity::Exact,
            double_buffering: true,
            timeline_capacity: 4096,
            dma_channels: 1,
            sim_threads: 0,
        }
    }
}

impl AccelConfig {
    /// A small crossbar for fast unit tests.
    pub fn test_small() -> Self {
        AccelConfig { rows: 8, cols: 8, buffer_bytes: 64, ..AccelConfig::default() }
    }

    /// Paper-geometry configuration built from the given device model's
    /// parameters (cell window, ADC, energy/latency constants).
    pub fn for_device(kind: DeviceKind) -> Self {
        AccelConfig::default().with_device(kind)
    }

    /// Replaces the device technology, refreshing `cell`, `adc` and
    /// `energy` from the device model while keeping geometry, buffers,
    /// fidelity and all other knobs.
    pub fn with_device(self, kind: DeviceKind) -> Self {
        let model = kind.model();
        AccelConfig {
            device: kind,
            cell: model.cell(),
            adc: model.adc(),
            energy: model.energy(),
            ..self
        }
    }

    /// Sets the tile-grid shape `(k_tiles, m_tiles)`.
    pub fn with_grid(self, k_tiles: usize, m_tiles: usize) -> Self {
        AccelConfig { grid: (k_tiles, m_tiles), ..self }
    }

    /// Sets the number of per-tile DMA channels feeding the install
    /// path. `1` (the default) is the paper's single serial bus; more
    /// channels let a wave's block gathers on distinct tiles overlap.
    ///
    /// ```
    /// use cim_accel::AccelConfig;
    ///
    /// let cfg = AccelConfig::test_small().with_dma_channels(4);
    /// assert_eq!(cfg.dma_channels, 4);
    /// // The default stays the single serial install bus.
    /// assert_eq!(AccelConfig::test_small().dma_channels, 1);
    /// cfg.validate();
    /// ```
    pub fn with_dma_channels(self, channels: usize) -> Self {
        AccelConfig { dma_channels: channels, ..self }
    }

    /// Sets the host-side tile-simulation worker count (`0` = auto,
    /// `1` = serial, `n > 1` = force `n` workers). Purely a simulator
    /// throughput knob — modeled results never depend on it.
    pub fn with_sim_threads(self, threads: usize) -> Self {
        AccelConfig { sim_threads: threads, ..self }
    }

    /// Number of physical tiles in the grid.
    pub fn tile_count(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// Logical crossbar capacity in 8-bit cells, across all tiles.
    pub fn cells(&self) -> usize {
        self.rows * self.cols * self.tile_count()
    }

    /// Crossbar capacity in bytes (one byte per logical 8-bit cell).
    pub fn capacity_bytes(&self) -> usize {
        self.cells()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn validate(&self) {
        assert!(self.rows > 0 && self.cols > 0, "crossbar must be non-empty");
        assert!(self.grid.0 > 0 && self.grid.1 > 0, "tile grid must be non-empty");
        assert!(self.buffer_bytes > 0, "buffers must be non-empty");
        assert!(
            (1..=MAX_DMA_CHANNELS).contains(&self.dma_channels),
            "dma_channels must be in 1..={MAX_DMA_CHANNELS}"
        );
        assert_eq!(self.cell.bits, 4, "8-bit cells are built from two 4-bit devices");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_i() {
        let c = AccelConfig::default();
        assert_eq!(c.rows, 256);
        assert_eq!(c.cols, 256);
        assert_eq!(c.grid, (1, 1));
        assert_eq!(c.device, DeviceKind::Pcm);
        assert_eq!(c.cells(), 65536);
        assert_eq!(c.buffer_bytes, 1536);
        c.validate();
    }

    #[test]
    fn small_config_valid() {
        AccelConfig::test_small().validate();
    }

    #[test]
    fn grid_scales_capacity() {
        let c = AccelConfig::default().with_grid(2, 2);
        assert_eq!(c.tile_count(), 4);
        assert_eq!(c.cells(), 4 * 65536);
        c.validate();
    }

    #[test]
    fn with_device_swaps_physics_keeps_geometry() {
        let c = AccelConfig::test_small().with_grid(2, 3).with_device(DeviceKind::Reram);
        assert_eq!(c.device, DeviceKind::Reram);
        assert_eq!(c.rows, 8);
        assert_eq!(c.grid, (2, 3));
        assert_eq!(c.energy, DeviceKind::Reram.model().energy());
        assert_eq!(c.cell, DeviceKind::Reram.model().cell());
        c.validate();
    }

    #[test]
    #[should_panic(expected = "tile grid")]
    fn zero_grid_panics() {
        AccelConfig::default().with_grid(0, 1).validate();
    }

    #[test]
    fn dma_channel_builder_bounds() {
        let c = AccelConfig::default().with_dma_channels(4);
        assert_eq!(c.dma_channels, 4);
        c.validate();
        AccelConfig::default().with_dma_channels(MAX_DMA_CHANNELS).validate();
    }

    #[test]
    #[should_panic(expected = "dma_channels")]
    fn zero_dma_channels_panics() {
        AccelConfig::default().with_dma_channels(0).validate();
    }

    #[test]
    #[should_panic(expected = "dma_channels")]
    fn oversized_dma_channels_panics() {
        AccelConfig::default().with_dma_channels(MAX_DMA_CHANNELS + 1).validate();
    }
}
