//! The CIM tile: nibble crossbar pair + ADCs + digital recombination.
//!
//! One tile of the accelerator's tile array: an 8-bit logical crossbar
//! (256x256 in the paper's geometry) built from two 4-bit resistive
//! device arrays (MSB and LSB nibbles, Section IV) — IBM PCM by default,
//! or any other [`cim_pcm::DeviceModel`] the [`AccelConfig`] selects.
//! Each tile holds one stationary operand at a time; the micro-engine
//! tracks residency so that repeated use of the same operand (fused
//! kernels, reused tiles) programs the devices only once — the paper's
//! endurance optimization.

use cim_pcm::adc::full_scale_for;
use cim_pcm::quant::{
    quantize_tensor, recombine_dot, split_nibbles, to_offset, QuantParams,
    RECOMBINE_ALU_OPS_PER_COLUMN,
};
use cim_pcm::{AdcArray, Crossbar, Fidelity};

use crate::config::AccelConfig;

/// Identity of an installed stationary operand.
///
/// Two requests with equal keys are guaranteed to want the same matrix
/// contents (address, geometry, orientation and a generation number bumped
/// when the host rewrites the buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// Physical base address of the operand in shared memory.
    pub base_pa: u64,
    /// Leading dimension of the source matrix.
    pub ld: usize,
    /// Whether the operand was loaded transposed.
    pub transposed: bool,
    /// Tile origin within the operand (row, col).
    pub origin: (usize, usize),
    /// Active extent `(input_dim, output_dim)`.
    pub extent: (usize, usize),
    /// Generation of the buffer contents (bumped on host writes).
    pub generation: u64,
}

impl TileKey {
    /// Conservative physical byte span `(start, len)` of the source data
    /// this tile was installed from: the contiguous range from the first
    /// to the last element the install read, over-approximated to whole
    /// leading-dimension rows in between. Lets invalidation match
    /// sub-buffer host writes that overlap the operand without containing
    /// its base address.
    pub fn pa_span(&self) -> (u64, u64) {
        let (m0, k0) = self.origin;
        let (kt, mt) = self.extent;
        // The install reads rows k0..k0+kt (transposed) or m0..m0+mt
        // (direct) of the ld-strided source matrix.
        let (first, last) = if self.transposed {
            (k0 * self.ld + m0, (k0 + kt.max(1) - 1) * self.ld + m0 + mt.max(1) - 1)
        } else {
            (m0 * self.ld + k0, (m0 + mt.max(1) - 1) * self.ld + k0 + kt.max(1) - 1)
        };
        let start = self.base_pa + 4 * first as u64;
        (start, 4 * (last - first + 1) as u64)
    }
}

/// Receipt describing the cost of an install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallReceipt {
    /// Crossbar rows programmed.
    pub rows_programmed: u64,
    /// 8-bit cells programmed.
    pub cells_written: u64,
    /// Whether the install was skipped because the operand was resident.
    pub resident_hit: bool,
}

/// Wear summary of one physical tile in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileWear {
    /// Grid lane `(k_lane, m_lane)` of the tile.
    pub tile: (usize, usize),
    /// Total 8-bit cell programs endured by the tile.
    pub cell_writes: u64,
    /// Programs endured by the tile's most-written logical cell.
    pub max_cell_writes: u64,
}

/// Receipt describing the cost of one GEMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemvReceipt {
    /// 8-bit cells in the active region (energy-relevant).
    pub active_cells: u64,
    /// Useful multiply-accumulates.
    pub useful_macs: u64,
    /// Digital ALU operations beyond the weighted sum.
    pub extra_alu_ops: u64,
}

/// One computational memory tile.
#[derive(Debug, Clone)]
pub struct CimTile {
    rows: usize,
    cols: usize,
    msb: Crossbar,
    lsb: Crossbar,
    adc: AdcArray,
    fidelity: Fidelity,
    /// Shadow of the stationary operand in crossbar orientation
    /// (`shadow[r * cols + c]`), used by the exact path.
    shadow: Vec<f32>,
    weight_params: QuantParams,
    active: (usize, usize),
    resident: Option<TileKey>,
}

impl CimTile {
    /// Creates a tile from the accelerator configuration.
    pub fn new(cfg: &AccelConfig) -> Self {
        CimTile {
            rows: cfg.rows,
            cols: cfg.cols,
            msb: Crossbar::new(cfg.rows, cfg.cols, cfg.cell),
            lsb: Crossbar::new(cfg.rows, cfg.cols, cfg.cell),
            adc: AdcArray::new(cfg.adc),
            fidelity: cfg.fidelity,
            shadow: vec![0.0; cfg.rows * cfg.cols],
            weight_params: QuantParams::from_max_abs(0.0),
            active: (0, 0),
            resident: None,
        }
    }

    /// Word-line capacity (input dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bit-line capacity (output dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Currently resident operand, if any.
    pub fn resident(&self) -> Option<&TileKey> {
        self.resident.as_ref()
    }

    /// Installs a stationary operand given in crossbar orientation:
    /// `g[r * out_dim + c]` with `r < in_dim` word lines and `c < out_dim`
    /// bit lines. If `key` matches the resident operand the install is a
    /// no-op costing nothing (the endurance win).
    ///
    /// # Panics
    ///
    /// Panics if the extent exceeds the crossbar or `g` has the wrong size.
    pub fn install(
        &mut self,
        key: TileKey,
        g: &[f32],
        in_dim: usize,
        out_dim: usize,
    ) -> InstallReceipt {
        assert!(in_dim <= self.rows && out_dim <= self.cols, "tile extent exceeds crossbar");
        assert_eq!(g.len(), in_dim * out_dim, "operand size mismatch");
        if self.resident.as_ref() == Some(&key) {
            return InstallReceipt { rows_programmed: 0, cells_written: 0, resident_hit: true };
        }
        let (params, q) = quantize_tensor(g);
        self.weight_params = params;
        let mut msb_levels = vec![0u8; self.cols];
        let mut lsb_levels = vec![0u8; self.cols];
        // The column buffers supply a column-enable mask (Section II-B), so
        // only the active columns are programmed.
        let mask: Vec<bool> = (0..self.cols).map(|c| c < out_dim).collect();
        for r in 0..in_dim {
            for c in 0..out_dim {
                let (m, l) = split_nibbles(to_offset(q[r * out_dim + c]));
                msb_levels[c] = m;
                lsb_levels[c] = l;
            }
            // Both nibble arrays share row drivers and program in lockstep;
            // latency is one row-program, energy covers the 8-bit cells.
            self.msb.program_row_masked(r, &msb_levels, &mask);
            self.lsb.program_row_masked(r, &lsb_levels, &mask);
        }
        for r in 0..in_dim {
            for c in 0..out_dim {
                self.shadow[r * self.cols + c] = g[r * out_dim + c];
            }
        }
        self.active = (in_dim, out_dim);
        self.resident = Some(key);
        InstallReceipt {
            rows_programmed: in_dim as u64,
            cells_written: (in_dim * out_dim) as u64,
            resident_hit: false,
        }
    }

    /// Invalidates residency (e.g. the host rewrote shared memory without
    /// bumping the generation — the driver calls this conservatively).
    pub fn invalidate(&mut self) {
        self.resident = None;
    }

    /// Computes `out[c] = sum_r input[r] * G[r][c]` over the active extent.
    ///
    /// The exact path multiplies the f32 shadow; the int8 path runs the
    /// full quantize / nibble-dot / ADC / recombine / dequantize chain.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the active input dimension or
    /// nothing is installed.
    pub fn gemv(&self, input: &[f32]) -> (Vec<f32>, GemvReceipt) {
        let (in_dim, out_dim) = self.active;
        assert!(self.resident.is_some(), "no operand installed");
        assert_eq!(input.len(), in_dim, "input length mismatch");
        let receipt = GemvReceipt {
            active_cells: (in_dim * out_dim) as u64,
            useful_macs: (in_dim * out_dim) as u64,
            extra_alu_ops: RECOMBINE_ALU_OPS_PER_COLUMN * out_dim as u64,
        };
        let out = match self.fidelity {
            Fidelity::Exact => {
                let mut out = vec![0f32; out_dim];
                for (r, x) in input.iter().enumerate() {
                    if *x == 0.0 {
                        continue;
                    }
                    let row = &self.shadow[r * self.cols..r * self.cols + out_dim];
                    for (o, g) in out.iter_mut().zip(row) {
                        *o += x * g;
                    }
                }
                out
            }
            Fidelity::Int8 => self.gemv_int8(input, in_dim, out_dim),
        };
        (out, receipt)
    }

    fn gemv_int8(&self, input: &[f32], in_dim: usize, out_dim: usize) -> Vec<f32> {
        // Fused quantize: one pass for the scale, one pass filling the
        // padded row buffer and the offset-term input sum — no
        // intermediate `Vec<i8>`. The arithmetic (and therefore every
        // quantized value) is identical to `quantize_tensor`.
        let max_abs = input.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let x_params = QuantParams::from_max_abs(max_abs);
        // Row buffer latches the inputs; pad to the full word-line count.
        let mut x = vec![0i32; self.rows];
        let mut x_sum: i64 = 0;
        for (i, v) in input.iter().enumerate() {
            let q = x_params.quantize(*v);
            x[i] = q as i32;
            x_sum += q as i64;
        }
        let mut msb_dots = vec![0i64; self.msb.cols()];
        let mut lsb_dots = vec![0i64; self.lsb.cols()];
        self.msb.dot_levels_into(&x, &mut msb_dots);
        self.lsb.dot_levels_into(&x, &mut lsb_dots);
        let fs = full_scale_for(in_dim);
        let mut out = vec![0f32; out_dim];
        for c in 0..out_dim {
            let m = self.adc.convert(msb_dots[c], fs);
            let l = self.adc.convert(lsb_dots[c], fs);
            // Digital block: weighted sum of nibble columns + offset term.
            let dot_q = recombine_dot(m, l, x_sum);
            out[c] = dot_q as f32 * self.weight_params.scale * x_params.scale;
        }
        out
    }

    /// Total cell programs endured by both nibble arrays, in 8-bit cells
    /// (the two 4-bit devices of one logical cell count as one write, as
    /// in Table I's per-8-bit figures).
    pub fn cell_writes(&self) -> u64 {
        debug_assert_eq!(self.msb.wear().cell_writes, self.lsb.wear().cell_writes);
        self.msb.wear().cell_writes
    }

    /// Wear of the most-written logical cell.
    pub fn max_cell_writes(&self) -> u64 {
        self.msb.wear().max_cell_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(gen: u64) -> TileKey {
        TileKey {
            base_pa: 0x1000,
            ld: 4,
            transposed: false,
            origin: (0, 0),
            extent: (4, 3),
            generation: gen,
        }
    }

    fn cfg() -> AccelConfig {
        AccelConfig::test_small()
    }

    #[test]
    fn install_then_exact_gemv() {
        let mut t = CimTile::new(&cfg());
        // G is 4x3 in crossbar orientation (inputs x outputs).
        let g = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let r = t.install(key(0), &g, 4, 3);
        assert!(!r.resident_hit);
        assert_eq!(r.rows_programmed, 4);
        assert_eq!(r.cells_written, 4 * 3); // only active columns programmed
        let (y, receipt) = t.gemv(&[1.0, 0.0, 0.0, 2.0]);
        assert_eq!(y, vec![1.0 + 20.0, 2.0 + 22.0, 3.0 + 24.0]);
        assert_eq!(receipt.useful_macs, 12);
        assert_eq!(receipt.active_cells, 12);
    }

    #[test]
    fn resident_hit_skips_programming() {
        let mut t = CimTile::new(&cfg());
        let g = vec![1.0f32; 12];
        let first = t.install(key(0), &g, 4, 3);
        assert!(!first.resident_hit);
        let writes = t.cell_writes();
        let second = t.install(key(0), &g, 4, 3);
        assert!(second.resident_hit);
        assert_eq!(second.cells_written, 0);
        assert_eq!(t.cell_writes(), writes);
    }

    #[test]
    fn generation_bump_forces_reinstall() {
        let mut t = CimTile::new(&cfg());
        let g = vec![1.0f32; 12];
        t.install(key(0), &g, 4, 3);
        let r = t.install(key(1), &g, 4, 3);
        assert!(!r.resident_hit);
    }

    #[test]
    fn invalidate_clears_residency() {
        let mut t = CimTile::new(&cfg());
        let g = vec![1.0f32; 12];
        t.install(key(0), &g, 4, 3);
        t.invalidate();
        let r = t.install(key(0), &g, 4, 3);
        assert!(!r.resident_hit);
    }

    #[test]
    fn int8_path_tracks_exact_within_quantization_error() {
        let mut c = cfg();
        c.fidelity = cim_pcm::Fidelity::Int8;
        let mut t = CimTile::new(&c);
        let g: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) / 3.0).collect();
        t.install(key(0), &g, 4, 3);
        let x = [0.5f32, -1.0, 2.0, 0.25];
        let (y, _) = t.gemv(&x);
        // Reference in f64.
        for (cidx, yc) in y.iter().enumerate() {
            let mut acc = 0.0f64;
            for r in 0..4 {
                acc += g[r * 3 + cidx] as f64 * x[r] as f64;
            }
            // Error bound: |w|max/127 * sum|x| + |x|max/127 * sum|w| (loose).
            assert!((acc - *yc as f64).abs() < 0.2, "col {cidx}: int8 {yc} vs exact {acc}");
        }
    }

    #[test]
    fn reinstall_overwrites_previous_operand() {
        let mut t = CimTile::new(&cfg());
        let g1 = vec![5.0f32; 12];
        t.install(key(0), &g1, 4, 3);
        let g2 = [1.0f32, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let k2 = TileKey { base_pa: 0x2000, extent: (3, 3), ..key(0) };
        t.install(k2, &g2, 3, 3);
        let (y, _) = t.gemv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let mut t = CimTile::new(&cfg());
        t.install(key(0), &[0.0; 12], 4, 3);
        let _ = t.gemv(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds crossbar")]
    fn oversized_install_panics() {
        let mut t = CimTile::new(&cfg());
        t.install(key(0), &vec![0.0; 9 * 8], 9, 8);
    }
}
