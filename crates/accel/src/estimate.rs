//! Analytic cost estimator for accelerator operations.
//!
//! Mirrors the micro-engine's loops without touching data, so costs can be
//! predicted (a) by the offload cost model of the Selective policy,
//! (b) by the Fig. 5 endurance study at sizes too large to simulate
//! functionally, and (c) by tests that pin the functional engine and this
//! estimator together — they must never diverge.

use cim_machine::bus::BusConfig;
use cim_machine::units::{Energy, SimTime};

use crate::config::AccelConfig;

/// Predicted cost of one accelerator operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpEstimate {
    /// Busy time of the accelerator.
    pub time: SimTime,
    /// Total accelerator energy.
    pub energy: Energy,
    /// 8-bit cells programmed.
    pub cell_writes: u64,
    /// Crossbar rows programmed.
    pub rows_programmed: u64,
    /// GEMV operations.
    pub gemvs: u64,
    /// Useful MACs.
    pub macs: u64,
    /// Bytes moved by DMA.
    pub dma_bytes: u64,
}

impl OpEstimate {
    /// Accumulates another estimate.
    pub fn merge(&mut self, o: &OpEstimate) {
        self.time += o.time;
        self.energy += o.energy;
        self.cell_writes += o.cell_writes;
        self.rows_programmed += o.rows_programmed;
        self.gemvs += o.gemvs;
        self.macs += o.macs;
        self.dma_bytes += o.dma_bytes;
    }

    /// Crossbar write traffic in bytes (one byte per 8-bit cell write).
    pub fn write_bytes(&self) -> u64 {
        self.cell_writes
    }
}

fn dma_time(bus: &BusConfig, bytes: u64) -> SimTime {
    if bytes == 0 {
        SimTime::ZERO
    } else {
        bus.dma_setup + SimTime::from_ns(bytes as f64 / bus.dma_bytes_per_ns)
    }
}

/// Estimates `C = alpha*op(A)*B + beta*C` on the accelerator.
///
/// `beta_zero` skips the initial read of `C`; `a_resident` models the
/// stationary operand already being installed (only meaningful when `A`
/// fits in one tile).
///
/// # Panics
///
/// Panics if `a_resident` is set for a multi-tile `A`.
pub fn estimate_gemm(
    cfg: &AccelConfig,
    bus: &BusConfig,
    m: usize,
    n: usize,
    k: usize,
    beta_zero: bool,
    a_resident: bool,
) -> OpEstimate {
    let tr = cfg.rows;
    let tc = cfg.cols;
    if a_resident {
        assert!(m <= tc && k <= tr, "residency only possible for single-tile operands");
    }
    let e = &cfg.energy;
    let mut est = OpEstimate::default();
    let mut m0 = 0;
    while m0 < m {
        let mt = tc.min(m - m0);
        let mut k0 = 0;
        while k0 < k {
            let kt = tr.min(k - k0);
            if !a_resident {
                let tile_bytes = (kt * mt * 4) as u64;
                est.time += dma_time(bus, tile_bytes) + e.write_time(kt as u64);
                est.energy +=
                    e.write_energy((kt * mt) as u64) + e.buffer_energy(2 * (kt * mt) as u64);
                est.cell_writes += (kt * mt) as u64;
                est.rows_programmed += kt as u64;
                est.dma_bytes += tile_bytes;
            }
            let reads_c = !(k0 == 0 && beta_zero);
            let in_bytes = (kt * 4) as u64;
            let out_bytes = (mt * 4 * if reads_c { 2 } else { 1 }) as u64;
            let dma = dma_time(bus, in_bytes) + dma_time(bus, out_bytes);
            let compute = e.compute_time(1);
            let step = if cfg.double_buffering { compute.max(dma) } else { compute + dma };
            est.time += step * n as f64;
            est.gemvs += n as u64;
            est.macs += (n * kt * mt) as u64;
            est.dma_bytes += (in_bytes + out_bytes) * n as u64;
            let per_gemv = e.compute_energy((kt * mt) as u64)
                + e.mixed_signal_energy(1)
                + e.digital_energy(1, (3 * mt + 2 * mt) as u64)
                + e.dma_engine_energy(1)
                + e.buffer_energy(2 * (kt + mt) as u64);
            est.energy += per_gemv * n as f64;
            k0 += kt;
        }
        m0 += mt;
    }
    est
}

/// Estimates `y = alpha*op(A)*x + beta*y` (a GEMM with `n = 1`).
pub fn estimate_gemv(
    cfg: &AccelConfig,
    bus: &BusConfig,
    m: usize,
    k: usize,
    beta_zero: bool,
    a_resident: bool,
) -> OpEstimate {
    estimate_gemm(cfg, bus, m, 1, k, beta_zero, a_resident)
}

/// Estimates a batch of `count` GEMMs sharing dimensions. With `share_a`
/// (fused kernels with a common left operand, Listing 2) only the first
/// problem installs the operand — the endurance win of the batched call.
#[allow(clippy::too_many_arguments)]
pub fn estimate_gemm_batched(
    cfg: &AccelConfig,
    bus: &BusConfig,
    m: usize,
    n: usize,
    k: usize,
    beta_zero: bool,
    count: usize,
    share_a: bool,
) -> OpEstimate {
    let mut est = OpEstimate::default();
    let descr_bytes = (count * 3 * 8) as u64;
    est.time += dma_time(bus, descr_bytes);
    est.dma_bytes += descr_bytes;
    let single_tile = m <= cfg.cols && k <= cfg.rows;
    for i in 0..count {
        let resident = share_a && single_tile && i > 0;
        est.merge(&estimate_gemm(cfg, bus, m, n, k, beta_zero, resident));
    }
    est
}

/// Estimates a single-channel 2-D convolution, mirroring the Toeplitz
/// mapping of the micro-engine.
pub fn estimate_conv2d(
    cfg: &AccelConfig,
    bus: &BusConfig,
    h: usize,
    w: usize,
    fh: usize,
    fw: usize,
) -> OpEstimate {
    let e = &cfg.energy;
    let out_h = h - fh + 1;
    let out_w = w - fw + 1;
    let seg_in = cfg.rows / fh;
    let seg_out = (seg_in - (fw - 1)).min(out_w).min(cfg.cols);
    let in_dim = fh * seg_in;
    let mut est = OpEstimate::default();
    // Filter fetch + Toeplitz install.
    let filt_bytes = (fh * fw * 4) as u64;
    est.time += dma_time(bus, filt_bytes) + e.write_time(in_dim as u64);
    est.dma_bytes += filt_bytes;
    est.cell_writes += (in_dim * seg_out) as u64;
    est.rows_programmed += in_dim as u64;
    est.energy +=
        e.write_energy((in_dim * seg_out) as u64) + e.buffer_energy(2 * (in_dim * seg_out) as u64);
    for _oi in 0..out_h {
        let mut s0 = 0;
        while s0 < out_w {
            let n_out = seg_out.min(out_w - s0);
            let valid = seg_in.min(w - s0);
            let in_bytes = (fh * valid * 4) as u64;
            let out_bytes = (2 * n_out * 4) as u64; // read-modify-write
            let dma = dma_time(bus, in_bytes) + dma_time(bus, out_bytes);
            let compute = e.compute_time(1);
            let step = if cfg.double_buffering { compute.max(dma) } else { compute + dma };
            est.time += step;
            est.gemvs += 1;
            est.macs += (fh * fw * n_out) as u64;
            est.dma_bytes += in_bytes + out_bytes;
            est.energy += e.compute_energy((in_dim * seg_out) as u64)
                + e.mixed_signal_energy(1)
                + e.digital_energy(1, (3 * seg_out) as u64)
                + e.dma_engine_energy(1)
                + e.buffer_energy(2 * (fh * valid + n_out) as u64);
            s0 += n_out;
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AccelConfig {
        AccelConfig::default()
    }

    fn bus() -> BusConfig {
        BusConfig::default()
    }

    #[test]
    fn gemm_counts_scale_with_tiles() {
        let e1 = estimate_gemm(&cfg(), &bus(), 256, 256, 256, true, false);
        assert_eq!(e1.gemvs, 256);
        assert_eq!(e1.cell_writes, 256 * 256);
        assert_eq!(e1.rows_programmed, 256);
        assert_eq!(e1.macs, 256 * 256 * 256);
        let e2 = estimate_gemm(&cfg(), &bus(), 512, 256, 512, true, false);
        assert_eq!(e2.cell_writes, 4 * 256 * 256);
        assert_eq!(e2.gemvs, 4 * 256);
    }

    #[test]
    fn residency_removes_install_cost() {
        let cold = estimate_gemm(&cfg(), &bus(), 128, 64, 128, true, false);
        let warm = estimate_gemm(&cfg(), &bus(), 128, 64, 128, true, true);
        assert_eq!(warm.cell_writes, 0);
        assert!(warm.time < cold.time);
        assert_eq!(warm.gemvs, cold.gemvs);
    }

    #[test]
    fn batched_shared_a_writes_once() {
        let shared = estimate_gemm_batched(&cfg(), &bus(), 128, 128, 128, true, 2, true);
        let unshared = estimate_gemm_batched(&cfg(), &bus(), 128, 128, 128, true, 2, false);
        assert_eq!(shared.cell_writes, 128 * 128);
        assert_eq!(unshared.cell_writes, 2 * 128 * 128);
        // The factor-2 write-traffic reduction behind Fig. 5.
        assert_eq!(unshared.cell_writes / shared.cell_writes, 2);
    }

    #[test]
    fn gemv_is_gemm_with_n_1() {
        let a = estimate_gemv(&cfg(), &bus(), 256, 256, false, false);
        let b = estimate_gemm(&cfg(), &bus(), 256, 1, 256, false, false);
        assert_eq!(a, b);
    }

    #[test]
    fn conv_estimate_shape() {
        let e = estimate_conv2d(&cfg(), &bus(), 64, 64, 3, 3);
        // seg_in = 85, seg_out = min(83, 62) = 62 -> one segment per row.
        assert_eq!(e.gemvs, 62);
        assert_eq!(e.macs, 62 * 62 * 9);
        assert_eq!(e.rows_programmed, 255);
        // Writes are tiny relative to a dense operand: high MACs/write.
        assert!(e.macs as f64 / e.cell_writes as f64 > 2.0);
    }

    #[test]
    #[should_panic(expected = "single-tile")]
    fn resident_multi_tile_panics() {
        estimate_gemm(&cfg(), &bus(), 1024, 8, 1024, true, true);
    }
}
