//! Analytic cost estimator for accelerator operations.
//!
//! Mirrors the micro-engine's loops without touching data, so costs can be
//! predicted (a) by the offload cost model of the Selective policy,
//! (b) by the Fig. 5 endurance study at sizes too large to simulate
//! functionally, and (c) by tests that pin the functional engine and this
//! estimator together — they must never diverge.

use cim_machine::bus::BusConfig;
use cim_machine::units::{Energy, SimTime};

use crate::config::AccelConfig;
use crate::shard::{partition_grid, plan_waves, InstallClock};

/// Predicted cost of one accelerator operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpEstimate {
    /// Busy time of the accelerator.
    pub time: SimTime,
    /// Total accelerator energy.
    pub energy: Energy,
    /// 8-bit cells programmed.
    pub cell_writes: u64,
    /// Crossbar rows programmed.
    pub rows_programmed: u64,
    /// Stationary-operand block installs skipped by residency.
    pub install_skips: u64,
    /// GEMV operations.
    pub gemvs: u64,
    /// Useful MACs.
    pub macs: u64,
    /// Bytes moved by DMA.
    pub dma_bytes: u64,
    /// Most physical tiles concurrently active in any sharding wave.
    pub parallel_tiles: u64,
    /// Most per-tile DMA channels concurrently gathering in any install
    /// wave (mirrors `AccelStats::max_dma_channels_active`).
    pub dma_channels_active: u64,
}

impl OpEstimate {
    /// Accumulates another estimate.
    pub fn merge(&mut self, o: &OpEstimate) {
        self.time += o.time;
        self.energy += o.energy;
        self.cell_writes += o.cell_writes;
        self.rows_programmed += o.rows_programmed;
        self.install_skips += o.install_skips;
        self.gemvs += o.gemvs;
        self.macs += o.macs;
        self.dma_bytes += o.dma_bytes;
        self.parallel_tiles = self.parallel_tiles.max(o.parallel_tiles);
        self.dma_channels_active = self.dma_channels_active.max(o.dma_channels_active);
    }

    /// Crossbar write traffic in bytes (one byte per 8-bit cell write).
    pub fn write_bytes(&self) -> u64 {
        self.cell_writes
    }
}

/// Estimates `C = alpha*op(A)*B + beta*C` on the accelerator.
///
/// Replays the exact wave plan of the micro-engine
/// ([`crate::shard::plan_waves`]): per wave, installs pipeline serial DMA
/// against parallel row programming, and all active tiles compute each
/// `B` column simultaneously.
///
/// `beta_zero` skips the initial read of `C`; `a_resident` models the
/// stationary operand already being installed (only meaningful when `A`
/// fits in one wave of the grid — single-tile blocks that are never
/// evicted by later waves).
///
/// # Panics
///
/// Panics if `a_resident` is set for an operand spanning several waves.
pub fn estimate_gemm(
    cfg: &AccelConfig,
    bus: &BusConfig,
    m: usize,
    n: usize,
    k: usize,
    beta_zero: bool,
    a_resident: bool,
) -> OpEstimate {
    estimate_gemm_on(cfg, bus, cfg.grid, m, n, k, beta_zero, a_resident)
}

/// Whether an `m x k` stationary operand fits in one wave of a
/// `(gk, gm)` sub-grid — the condition under which tile residency can
/// survive across back-to-back kernels.
fn fits_one_wave(cfg: &AccelConfig, grid: (usize, usize), m: usize, k: usize) -> bool {
    k.div_ceil(cfg.rows) <= grid.0 && m.div_ceil(cfg.cols) <= grid.1
}

/// [`estimate_gemm`] confined to a sub-grid of `grid` lanes — the
/// per-region building block the batched estimator composes, mirroring
/// [`crate::CimAccelerator`]'s region-scoped execution.
#[allow(clippy::too_many_arguments)]
fn estimate_gemm_on(
    cfg: &AccelConfig,
    bus: &BusConfig,
    grid: (usize, usize),
    m: usize,
    n: usize,
    k: usize,
    beta_zero: bool,
    a_resident: bool,
) -> OpEstimate {
    let tr = cfg.rows;
    let tc = cfg.cols;
    if a_resident {
        assert!(
            fits_one_wave(cfg, grid, m, k),
            "residency only possible for single-tile (one block per lane, one wave) operands"
        );
    }
    let e = &cfg.energy;
    let mut est = OpEstimate::default();
    for wave in &plan_waves(tr, tc, grid, m, k) {
        est.parallel_tiles = est.parallel_tiles.max(wave.tiles_active() as u64);
        // Install phase: per-channel serial DMA, parallel programming
        // (see `CimAccelerator::install_wave`).
        let channels = cfg.dma_channels;
        let mut clock = InstallClock::with_channels(channels);
        let mut channel_mask = 0u32;
        for ms in &wave.m_spans {
            for ks in &wave.k_spans {
                if a_resident {
                    est.install_skips += 1;
                    continue;
                }
                let (kt, mt) = (ks.len, ms.len);
                let tile_bytes = (kt * mt * 4) as u64;
                let ch = (ks.lane * grid.1 + ms.lane) % channels;
                channel_mask |= 1 << ch;
                clock.add_on(ch, bus.dma_time(tile_bytes), e.write_time(kt as u64));
                est.energy +=
                    e.write_energy((kt * mt) as u64) + e.buffer_energy(2 * (kt * mt) as u64);
                est.cell_writes += (kt * mt) as u64;
                est.rows_programmed += kt as u64;
                est.dma_bytes += tile_bytes;
            }
        }
        est.dma_channels_active = est.dma_channels_active.max(u64::from(channel_mask.count_ones()));
        est.time += clock.finish();
        // Compute phase: one step per B column, all tiles in parallel.
        let reads_c = !(wave.first_k && beta_zero);
        let in_bytes: u64 = wave.k_spans.iter().map(|s| (s.len * 4) as u64).sum();
        let out_bytes: u64 =
            wave.m_spans.iter().map(|s| (s.len * 4 * if reads_c { 2 } else { 1 }) as u64).sum();
        let dma = bus.dma_time(in_bytes) + bus.dma_time(out_bytes);
        let compute = e.compute_time(1);
        let step = if cfg.double_buffering { compute.max(dma) } else { compute + dma };
        est.time += step * n as f64;
        est.dma_bytes += (in_bytes + out_bytes) * n as u64;
        for ms in &wave.m_spans {
            for ks in &wave.k_spans {
                let (kt, mt) = (ks.len, ms.len);
                let reduce_ops = if ks.lane == 0 { 0 } else { mt as u64 };
                est.gemvs += n as u64;
                est.macs += (n * kt * mt) as u64;
                let per_gemv = e.compute_energy((kt * mt) as u64)
                    + e.mixed_signal_energy(1)
                    + e.digital_energy(1, (3 * mt + 2 * mt) as u64 + reduce_ops)
                    + e.dma_engine_energy(1)
                    + e.buffer_energy(2 * (kt + mt) as u64);
                est.energy += per_gemv * n as f64;
            }
        }
    }
    est
}

/// Estimates `y = alpha*op(A)*x + beta*y` (a GEMM with `n = 1`).
pub fn estimate_gemv(
    cfg: &AccelConfig,
    bus: &BusConfig,
    m: usize,
    k: usize,
    beta_zero: bool,
    a_resident: bool,
) -> OpEstimate {
    estimate_gemm(cfg, bus, m, 1, k, beta_zero, a_resident)
}

/// Estimates a batch of `count` GEMMs sharing dimensions, replaying the
/// engine's concurrent schedule exactly: elements are assigned
/// round-robin to the disjoint sub-grids of
/// [`crate::shard::partition_grid`], each region chains its elements
/// serially, and the batch's time is the table read plus the slowest
/// region's chain. The estimator assumes the batch is independent
/// (pairwise disjoint outputs) — the condition under which the engine
/// actually partitions; dependent batches run the serial full-grid
/// schedule and should be estimated with `count` single calls instead.
///
/// With `share_a` (fused kernels with a common left operand, Listing 2)
/// each *region* installs the operand once — one install per sub-grid,
/// the first round of the batch — and later rounds hit residency: the
/// endurance win of the batched call.
#[allow(clippy::too_many_arguments)]
pub fn estimate_gemm_batched(
    cfg: &AccelConfig,
    bus: &BusConfig,
    m: usize,
    n: usize,
    k: usize,
    beta_zero: bool,
    count: usize,
    share_a: bool,
) -> OpEstimate {
    let mut est = OpEstimate::default();
    let descr_bytes = (count * 3 * 8) as u64;
    est.time += bus.dma_time(descr_bytes);
    est.dma_bytes += descr_bytes;
    let regions = partition_grid(cfg.grid, count);
    let nr = regions.len();
    let mut chain = vec![SimTime::ZERO; nr];
    let mut round_tiles = 0u64;
    for i in 0..count {
        let r = i % nr;
        if r == 0 && i > 0 {
            est.parallel_tiles = est.parallel_tiles.max(round_tiles);
            round_tiles = 0;
        }
        let shape = regions[r].shape;
        let resident = share_a && i >= nr && fits_one_wave(cfg, shape, m, k);
        let g = estimate_gemm_on(cfg, bus, shape, m, n, k, beta_zero, resident);
        est.energy += g.energy;
        est.cell_writes += g.cell_writes;
        est.rows_programmed += g.rows_programmed;
        est.install_skips += g.install_skips;
        est.gemvs += g.gemvs;
        est.macs += g.macs;
        est.dma_bytes += g.dma_bytes;
        est.dma_channels_active = est.dma_channels_active.max(g.dma_channels_active);
        chain[r] += g.time;
        round_tiles += g.parallel_tiles;
    }
    est.parallel_tiles = est.parallel_tiles.max(round_tiles);
    est.time += chain.iter().fold(SimTime::ZERO, |a, &b| a.max(b));
    est
}

/// Estimates a single-channel 2-D convolution, mirroring the Toeplitz
/// mapping of the micro-engine.
pub fn estimate_conv2d(
    cfg: &AccelConfig,
    bus: &BusConfig,
    h: usize,
    w: usize,
    fh: usize,
    fw: usize,
) -> OpEstimate {
    let e = &cfg.energy;
    let out_h = h - fh + 1;
    let out_w = w - fw + 1;
    let seg_in = cfg.rows / fh;
    let seg_out = (seg_in - (fw - 1)).min(out_w).min(cfg.cols);
    let in_dim = fh * seg_in;
    let mut est = OpEstimate::default();
    // Filter fetch + Toeplitz install.
    let filt_bytes = (fh * fw * 4) as u64;
    est.time += bus.dma_time(filt_bytes) + e.write_time(in_dim as u64);
    est.dma_bytes += filt_bytes;
    est.cell_writes += (in_dim * seg_out) as u64;
    est.rows_programmed += in_dim as u64;
    est.energy +=
        e.write_energy((in_dim * seg_out) as u64) + e.buffer_energy(2 * (in_dim * seg_out) as u64);
    for _oi in 0..out_h {
        let mut s0 = 0;
        while s0 < out_w {
            let n_out = seg_out.min(out_w - s0);
            let valid = seg_in.min(w - s0);
            let in_bytes = (fh * valid * 4) as u64;
            let out_bytes = (2 * n_out * 4) as u64; // read-modify-write
            let dma = bus.dma_time(in_bytes) + bus.dma_time(out_bytes);
            let compute = e.compute_time(1);
            let step = if cfg.double_buffering { compute.max(dma) } else { compute + dma };
            est.time += step;
            est.gemvs += 1;
            est.macs += (fh * fw * n_out) as u64;
            est.dma_bytes += in_bytes + out_bytes;
            est.energy += e.compute_energy((in_dim * seg_out) as u64)
                + e.mixed_signal_energy(1)
                + e.digital_energy(1, (3 * seg_out) as u64)
                + e.dma_engine_energy(1)
                + e.buffer_energy(2 * (fh * valid + n_out) as u64);
            s0 += n_out;
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AccelConfig {
        AccelConfig::default()
    }

    fn bus() -> BusConfig {
        BusConfig::default()
    }

    #[test]
    fn gemm_counts_scale_with_tiles() {
        let e1 = estimate_gemm(&cfg(), &bus(), 256, 256, 256, true, false);
        assert_eq!(e1.gemvs, 256);
        assert_eq!(e1.cell_writes, 256 * 256);
        assert_eq!(e1.rows_programmed, 256);
        assert_eq!(e1.macs, 256 * 256 * 256);
        let e2 = estimate_gemm(&cfg(), &bus(), 512, 256, 512, true, false);
        assert_eq!(e2.cell_writes, 4 * 256 * 256);
        assert_eq!(e2.gemvs, 4 * 256);
    }

    #[test]
    fn residency_removes_install_cost() {
        let cold = estimate_gemm(&cfg(), &bus(), 128, 64, 128, true, false);
        let warm = estimate_gemm(&cfg(), &bus(), 128, 64, 128, true, true);
        assert_eq!(warm.cell_writes, 0);
        assert!(warm.time < cold.time);
        assert_eq!(warm.gemvs, cold.gemvs);
    }

    #[test]
    fn batched_shared_a_writes_once() {
        let shared = estimate_gemm_batched(&cfg(), &bus(), 128, 128, 128, true, 2, true);
        let unshared = estimate_gemm_batched(&cfg(), &bus(), 128, 128, 128, true, 2, false);
        assert_eq!(shared.cell_writes, 128 * 128);
        assert_eq!(unshared.cell_writes, 2 * 128 * 128);
        // The factor-2 write-traffic reduction behind Fig. 5.
        assert_eq!(unshared.cell_writes / shared.cell_writes, 2);
    }

    #[test]
    fn gemv_is_gemm_with_n_1() {
        let a = estimate_gemv(&cfg(), &bus(), 256, 256, false, false);
        let b = estimate_gemm(&cfg(), &bus(), 256, 1, 256, false, false);
        assert_eq!(a, b);
    }

    #[test]
    fn conv_estimate_shape() {
        let e = estimate_conv2d(&cfg(), &bus(), 64, 64, 3, 3);
        // seg_in = 85, seg_out = min(83, 62) = 62 -> one segment per row.
        assert_eq!(e.gemvs, 62);
        assert_eq!(e.macs, 62 * 62 * 9);
        assert_eq!(e.rows_programmed, 255);
        // Writes are tiny relative to a dense operand: high MACs/write.
        assert!(e.macs as f64 / e.cell_writes as f64 > 2.0);
    }

    #[test]
    #[should_panic(expected = "single-tile")]
    fn resident_multi_tile_panics() {
        estimate_gemm(&cfg(), &bus(), 1024, 8, 1024, true, true);
    }

    #[test]
    fn sharding_cuts_latency_but_not_work() {
        let single = estimate_gemm(&cfg(), &bus(), 512, 256, 512, true, false);
        let sharded = estimate_gemm(
            &AccelConfig::default().with_grid(2, 2),
            &bus(),
            512,
            256,
            512,
            true,
            false,
        );
        assert_eq!(single.parallel_tiles, 1);
        assert_eq!(sharded.parallel_tiles, 4);
        // The physical work is invariant: same installs, same MACs.
        assert_eq!(sharded.cell_writes, single.cell_writes);
        assert_eq!(sharded.rows_programmed, single.rows_programmed);
        assert_eq!(sharded.macs, single.macs);
        assert_eq!(sharded.gemvs, single.gemvs);
        // Parallel tiles collapse the serial block walk: big latency win.
        assert!(
            sharded.time.as_ns() < 0.5 * single.time.as_ns(),
            "{} vs {}",
            sharded.time,
            single.time
        );
        // Energy is nearly unchanged (only the partial-column adders).
        let delta = (sharded.energy.as_pj() - single.energy.as_pj()) / single.energy.as_pj();
        assert!((0.0..0.05).contains(&delta), "energy delta {delta}");
    }

    #[test]
    fn reram_device_shifts_cost_balance() {
        let pcm = estimate_gemm(
            &AccelConfig::for_device(cim_pcm::DeviceKind::Pcm),
            &bus(),
            256,
            256,
            256,
            true,
            false,
        );
        let reram = estimate_gemm(
            &AccelConfig::for_device(cim_pcm::DeviceKind::Reram),
            &bus(),
            256,
            256,
            256,
            true,
            false,
        );
        assert!(reram.time < pcm.time, "faster writes and reads");
        assert!(reram.energy < pcm.energy, "cheaper programming");
        assert_eq!(reram.macs, pcm.macs);
    }
}
