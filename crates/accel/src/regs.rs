//! Memory-mapped context registers.
//!
//! The accelerator "exposes a set of context registers to the system via a
//! memory-mapped IO interface. Context registers are used for control and
//! offloading, and are read or written by the host" (Section II-C). The
//! micro-engine translates these high-level parameters into circuit-level
//! operations.

/// Register indices in the context register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Reg {
    /// Command opcode; writing a non-`Nop` value arms the engine.
    Command = 0,
    /// Engine status (read-only for the host).
    Status = 1,
    /// Rows of the result (`M`).
    M = 2,
    /// Columns of the result (`N`).
    N = 3,
    /// Reduction dimension (`K`).
    K = 4,
    /// Leading dimension of `A`.
    Lda = 5,
    /// Leading dimension of `B`.
    Ldb = 6,
    /// Leading dimension of `C`.
    Ldc = 7,
    /// Physical address of `A`.
    AddrA = 8,
    /// Physical address of `B`.
    AddrB = 9,
    /// Physical address of `C`.
    AddrC = 10,
    /// `alpha` scale factor (f32 bits).
    Alpha = 11,
    /// `beta` scale factor (f32 bits).
    Beta = 12,
    /// Transpose flag for `A` (0/1).
    TransA = 13,
    /// Transpose flag for `B` (0/1).
    TransB = 14,
    /// Number of batched problems (GEMM-batched).
    BatchCount = 15,
    /// Physical address of the batch descriptor table.
    AddrBatch = 16,
    /// Image height (conv2d).
    ImgH = 17,
    /// Image width (conv2d).
    ImgW = 18,
    /// Filter height (conv2d).
    FiltH = 19,
    /// Filter width (conv2d).
    FiltW = 20,
    /// Target tile region of the command, packed by
    /// [`crate::shard::GridRegion::encode`] (`0` = the full grid). Lets
    /// the driver confine a command to a sub-array of tiles so separate
    /// commands on disjoint regions can overlap.
    Region = 21,
}

/// Number of registers in the file.
pub const REG_COUNT: usize = 24;

/// Commands accepted by the micro-engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u64)]
pub enum Command {
    /// No operation.
    #[default]
    Nop = 0,
    /// `C = alpha * op(A) * op(B) + beta * C`.
    Gemm = 1,
    /// `y = alpha * op(A) * x + beta * y`.
    Gemv = 2,
    /// A batch of GEMMs sharing dimensions (fused kernels).
    GemmBatched = 3,
    /// Single-channel 2-D convolution.
    Conv2d = 4,
}

impl Command {
    /// Decodes a register value.
    pub fn decode(v: u64) -> Option<Command> {
        match v {
            0 => Some(Command::Nop),
            1 => Some(Command::Gemm),
            2 => Some(Command::Gemv),
            3 => Some(Command::GemmBatched),
            4 => Some(Command::Conv2d),
            _ => None,
        }
    }
}

/// Engine status as seen through [`Reg::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u64)]
pub enum Status {
    /// Idle, ready for a command.
    #[default]
    Idle = 0,
    /// Executing.
    Busy = 1,
    /// Finished; result is in shared memory.
    Done = 2,
    /// The command was malformed.
    Error = 3,
}

impl Status {
    /// Decodes a register value.
    pub fn decode(v: u64) -> Status {
        match v {
            0 => Status::Idle,
            1 => Status::Busy,
            2 => Status::Done,
            _ => Status::Error,
        }
    }
}

/// The context register file.
#[derive(Debug, Clone)]
pub struct ContextRegisters {
    file: [u64; REG_COUNT],
}

impl Default for ContextRegisters {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextRegisters {
    /// A zeroed register file (status = Idle, command = Nop).
    pub fn new() -> Self {
        ContextRegisters { file: [0; REG_COUNT] }
    }

    /// Reads a register.
    pub fn read(&self, r: Reg) -> u64 {
        self.file[r as usize]
    }

    /// Writes a register.
    pub fn write(&mut self, r: Reg, v: u64) {
        self.file[r as usize] = v;
    }

    /// Reads a register as `usize` (dimension registers).
    pub fn read_usize(&self, r: Reg) -> usize {
        self.read(r) as usize
    }

    /// Writes an `f32` as raw bits (alpha/beta registers).
    pub fn write_f32(&mut self, r: Reg, v: f32) {
        self.write(r, v.to_bits() as u64);
    }

    /// Reads an `f32` from raw bits.
    pub fn read_f32(&self, r: Reg) -> f32 {
        f32::from_bits(self.read(r) as u32)
    }

    /// Current status.
    pub fn status(&self) -> Status {
        Status::decode(self.read(Reg::Status))
    }

    /// Sets the status.
    pub fn set_status(&mut self, s: Status) {
        self.write(Reg::Status, s as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_file_is_idle_nop() {
        let r = ContextRegisters::new();
        assert_eq!(r.status(), Status::Idle);
        assert_eq!(Command::decode(r.read(Reg::Command)), Some(Command::Nop));
    }

    #[test]
    fn f32_registers_roundtrip() {
        let mut r = ContextRegisters::new();
        r.write_f32(Reg::Alpha, 1.5);
        r.write_f32(Reg::Beta, -0.25);
        assert_eq!(r.read_f32(Reg::Alpha), 1.5);
        assert_eq!(r.read_f32(Reg::Beta), -0.25);
    }

    #[test]
    fn command_decoding() {
        assert_eq!(Command::decode(1), Some(Command::Gemm));
        assert_eq!(Command::decode(4), Some(Command::Conv2d));
        assert_eq!(Command::decode(99), None);
    }

    #[test]
    fn status_transitions() {
        let mut r = ContextRegisters::new();
        r.set_status(Status::Busy);
        assert_eq!(r.status(), Status::Busy);
        r.set_status(Status::Done);
        assert_eq!(r.status(), Status::Done);
        assert_eq!(Status::decode(17), Status::Error);
    }

    #[test]
    fn dimension_registers() {
        let mut r = ContextRegisters::new();
        r.write(Reg::M, 128);
        r.write(Reg::AddrA, 0x8000_0000);
        assert_eq!(r.read_usize(Reg::M), 128);
        assert_eq!(r.read(Reg::AddrA), 0x8000_0000);
    }
}
