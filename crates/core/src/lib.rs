//! # tdo-cim — the end-to-end TDO-CIM pipeline
//!
//! Reproduction of *TDO-CIM: Transparent Detection and Offloading for
//! Computation In-memory* (DATE 2020). This crate glues the whole flow of
//! Fig. 4 together:
//!
//! 1. [`pipeline::compile`] — front-end (`tdo-lang`), polyhedral middle
//!    end (`tdo-poly`), Loop Tactics detection/offloading (`tdo-tactics`),
//!    codegen back to loop IR;
//! 2. [`exec::execute`] — costed execution on the simulated Arm-A7 host
//!    (`cim-machine`) with `polly_cim*` calls dispatched through the
//!    runtime library (`cim-runtime`) into the PCM crossbar accelerator
//!    (`cim-accel` / `cim-pcm`);
//! 3. [`report`] — energy/EDP comparisons (Fig. 6 arithmetic).
//!
//! ```
//! use tdo_cim::{compile, execute, CompileOptions, ExecOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     const int N = 8;
//!     float A[N][N]; float B[N][N]; float C[N][N];
//!     void kernel() {
//!       for (int i = 0; i < N; i++)
//!         for (int j = 0; j < N; j++)
//!           for (int k = 0; k < N; k++)
//!             C[i][j] += A[i][k] * B[k][j];
//!     }
//! "#;
//! let mut exec_opts = ExecOptions::default();
//! exec_opts.machine = cim_machine::MachineConfig::test_small();
//! exec_opts.accel = cim_accel::AccelConfig::test_small();
//! let init = |name: &str, data: &mut [f32]| {
//!     if name != "C" { data.iter_mut().enumerate().for_each(|(i, v)| *v = i as f32 % 3.0); }
//! };
//! let host = execute(&compile(src, &CompileOptions::host_only())?, &exec_opts, &init)?;
//! let cim = execute(&compile(src, &CompileOptions::with_tactics())?, &exec_opts, &init)?;
//! assert_eq!(host.array("C"), cim.array("C"));
//! # Ok(())
//! # }
//! ```

pub mod exec;
pub mod options;
pub mod pipeline;
pub mod report;

pub use exec::{execute, ExecError, HostStats, RunResult};
pub use options::{CompileOptions, ExecOptions};
pub use pipeline::{compile, CompileError, CompiledProgram};
pub use report::{geomean, Comparison};

/// Compiles and runs a source both host-only and with Loop Tactics,
/// returning the comparison (the per-kernel datapoint of Fig. 6).
///
/// # Errors
///
/// Compilation or execution errors from either run.
pub fn compare(
    name: &str,
    src: &str,
    compile_opts: &CompileOptions,
    exec_opts: &ExecOptions,
    init: &dyn Fn(&str, &mut [f32]),
) -> Result<Comparison, Box<dyn std::error::Error>> {
    let host_prog = compile(src, &CompileOptions::host_only())?;
    let mut tactics_opts = compile_opts.clone();
    tactics_opts.enable_loop_tactics = true;
    let cim_prog = compile(src, &tactics_opts)?;
    let host = execute(&host_prog, exec_opts, init)?;
    let cim = execute(&cim_prog, exec_opts, init)?;
    Ok(Comparison { name: name.to_string(), host, cim })
}
