//! Costed execution of compiled programs on the simulated platform.
//!
//! The "back-end" of the flow: the loop IR runs on the Arm-A7 cost model
//! (every dynamic instruction retired, every access through the cache
//! simulator), and `polly_cim*` calls dispatch into the real runtime
//! library, driver and accelerator. Host-only and host+CIM binaries are
//! therefore measured by the same machinery — the methodology of
//! Section IV with ROI markers around the kernel.

use crate::options::ExecOptions;
use crate::pipeline::CompiledProgram;
use cim_accel::AccelStats;
use cim_machine::cpu::InstClass;
use cim_machine::units::{Energy, SimTime};
use cim_machine::Machine;
use cim_runtime::driver::DriverStats;
use cim_runtime::{CimContext, CimError, DevPtr, RuntimeStats, Transpose};
use std::fmt;
use tdo_ir::interp::calls::{parse, CimCall, GemmCall};
use tdo_ir::interp::{run, Backend, CostEvent, InterpError, ResolvedArg};
use tdo_ir::{ArrayId, CallStmt, Program, Stmt};

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError(pub InterpError);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution failed: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// Host-side counters of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostStats {
    /// Retired instructions (including driver and spin-wait).
    pub instructions: u64,
    /// Instructions burnt spinning on the accelerator.
    pub spin_instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Memory stall cycles.
    pub stall_cycles: u64,
    /// Wall-clock time of the run.
    pub time: SimTime,
    /// Host energy (instructions x 128 pJ).
    pub energy: Energy,
}

/// Complete result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Host counters.
    pub host: HostStats,
    /// Accelerator counters (when a CIM context was created).
    pub accel: Option<AccelStats>,
    /// Runtime-library call counters.
    pub runtime: Option<RuntimeStats>,
    /// Driver counters.
    pub driver: Option<DriverStats>,
    /// Final contents of every array, in declaration order.
    pub arrays: Vec<(String, Vec<f32>)>,
    /// Rendered accelerator timeline (when recording was enabled).
    pub timeline: Option<String>,
}

impl RunResult {
    /// Total energy: host + accelerator (DRAM excluded on both sides, as
    /// in the paper: "the host and CIM-accelerator generate the same
    /// amount of traffic by accessing the same data").
    pub fn total_energy(&self) -> Energy {
        self.host.energy + self.accel.map_or(Energy::ZERO, |a| a.total_energy())
    }

    /// Wall-clock time (host time already covers accelerator waits).
    pub fn wall_time(&self) -> SimTime {
        self.host.time
    }

    /// Energy-delay product in joule-seconds.
    pub fn edp(&self) -> f64 {
        cim_machine::units::edp(self.total_energy(), self.wall_time())
    }

    /// Contents of an array by name.
    pub fn array(&self, name: &str) -> Option<&[f32]> {
        self.arrays.iter().find(|(n, _)| n == name).map(|(_, d)| d.as_slice())
    }

    /// MACs per CIM write (infinite when nothing was offloaded).
    pub fn macs_per_write(&self) -> f64 {
        self.accel.map_or(f64::INFINITY, |a| a.macs_per_write())
    }
}

/// Executes a compiled program. `init` is called once per array (by name)
/// to fill initial data; scalars receive their declared initializer first.
///
/// # Errors
///
/// [`ExecError`] on interpreter or device failures.
pub fn execute(
    compiled: &CompiledProgram,
    opts: &ExecOptions,
    init: &dyn Fn(&str, &mut [f32]),
) -> Result<RunResult, ExecError> {
    let prog = &compiled.prog;
    let mut mach = Machine::new(opts.machine.clone());
    let device_destined = malloc_targets(prog);

    // Allocate and initialize arrays: device-destined ones in the CMA
    // carve-out (zero-copy shared memory), the rest on the host heap.
    let mut base = Vec::with_capacity(prog.arrays.len());
    let mut cma_ptr: Vec<Option<DevPtr>> = Vec::with_capacity(prog.arrays.len());
    for (idx, decl) in prog.arrays.iter().enumerate() {
        let bytes = (decl.elem_count() * 4) as u64;
        let id = ArrayId(idx);
        let va = if device_destined.contains(&id) {
            let (va, pa) = mach
                .alloc_cma(bytes)
                .map_err(|e| ExecError(InterpError::Backend(e.to_string())))?;
            cma_ptr.push(Some(DevPtr { va, pa, len: bytes }));
            va
        } else {
            cma_ptr.push(None);
            mach.alloc_host(bytes)
        };
        base.push(va);
        let mut data = vec![0f32; decl.elem_count()];
        if let Some(v) = decl.scalar_init {
            data[0] = v as f32;
        }
        init(&decl.name, &mut data);
        mach.poke_f32_slice(va, &data);
    }

    let mut accel_cfg = opts.accel;
    accel_cfg.fidelity = opts.fidelity;
    if !opts.record_timeline {
        accel_cfg.timeline_capacity = 0;
    }
    let mut backend = MachineBackend {
        prog,
        mach,
        base,
        cma_ptr,
        device: vec![None; prog.arrays.len()],
        dirty: vec![true; prog.arrays.len()],
        ctx: None,
        accel_cfg,
        driver_cfg: opts.driver,
        smart_sync: opts.smart_sync,
    };
    run(prog, &mut backend).map_err(ExecError)?;

    // Under async dispatch the program may end with commands still in
    // flight (e.g. a trailing batched call): the run is not over until
    // the host has paid the residual wait for every one of them.
    if let Some(ctx) = backend.ctx.as_mut() {
        ctx.cim_sync(&mut backend.mach).map_err(cim_err).map_err(ExecError)?;
    }

    // Harvest results.
    let mut arrays = Vec::with_capacity(prog.arrays.len());
    for (idx, decl) in prog.arrays.iter().enumerate() {
        let mut data = vec![0f32; decl.elem_count()];
        backend.mach.peek_f32_slice(backend.base[idx], &mut data);
        arrays.push((decl.name.clone(), data));
    }
    let core = &backend.mach.core;
    let host = HostStats {
        instructions: core.instructions(),
        spin_instructions: core.spin_instructions(),
        cycles: core.cycles(),
        stall_cycles: core.stall_cycles(),
        time: core.elapsed(),
        energy: core.energy(),
    };
    let timeline = backend
        .ctx
        .as_ref()
        .filter(|_| opts.record_timeline)
        .map(|c| c.accel().timeline().render());
    Ok(RunResult {
        host,
        accel: backend.ctx.as_ref().map(|c| *c.accel().stats()),
        runtime: backend.ctx.as_ref().map(|c| *c.stats()),
        driver: backend.ctx.as_ref().map(|c| c.driver().stats()),
        arrays,
        timeline,
    })
}

/// Arrays passed to `polly_cimMalloc` anywhere in the program.
fn malloc_targets(prog: &Program) -> Vec<ArrayId> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<ArrayId>) {
        for s in stmts {
            match s {
                Stmt::Call(CallStmt { callee, args }) if callee == "polly_cimMalloc" => {
                    for a in args {
                        if let tdo_ir::CallArg::Array(id) = a {
                            if !out.contains(id) {
                                out.push(*id);
                            }
                        }
                    }
                }
                Stmt::For(l) => walk(&l.body, out),
                Stmt::If(i) => {
                    walk(&i.then_body, out);
                    walk(&i.else_body, out);
                }
                _ => {}
            }
        }
    }
    walk(&prog.body, &mut out);
    out
}

struct MachineBackend<'p> {
    prog: &'p Program,
    mach: Machine,
    base: Vec<u64>,
    cma_ptr: Vec<Option<DevPtr>>,
    device: Vec<Option<DevPtr>>,
    dirty: Vec<bool>,
    ctx: Option<CimContext>,
    accel_cfg: cim_accel::AccelConfig,
    driver_cfg: cim_runtime::DriverConfig,
    smart_sync: bool,
}

impl<'p> MachineBackend<'p> {
    fn dev(&self, a: ArrayId) -> Result<DevPtr, InterpError> {
        self.device[a.0].ok_or_else(|| {
            InterpError::Backend(format!(
                "array {} used on device before polly_cimMalloc",
                self.prog.array(a).name
            ))
        })
    }

    fn ctx_mut(&mut self) -> Result<&mut CimContext, InterpError> {
        self.ctx
            .as_mut()
            .ok_or_else(|| InterpError::Backend("runtime call before polly_cimInit".into()))
    }

    fn view(ptr: DevPtr, off: (usize, usize), ld: usize) -> DevPtr {
        let delta = 4 * (off.0 * ld + off.1) as u64;
        DevPtr { va: ptr.va + delta, pa: ptr.pa + delta, len: ptr.len.saturating_sub(delta) }
    }

    fn sync_inputs(&mut self, a: ArrayId) -> Result<(), InterpError> {
        let ptr = self.dev(a)?;
        if !self.smart_sync || self.dirty[a.0] {
            let Some(ctx) = self.ctx.as_mut() else {
                return Err(InterpError::Backend("sync before init".into()));
            };
            ctx.cim_sync_to_dev(&mut self.mach, ptr).map_err(cim_err)?;
            self.dirty[a.0] = false;
        } else {
            // Runtime checks its dirty table: a handful of instructions.
            self.mach.core.retire(InstClass::Other, 20);
        }
        Ok(())
    }

    fn run_gemm(&mut self, g: &GemmCall) -> Result<(), InterpError> {
        let (a, b, c) = (self.dev(g.a)?, self.dev(g.b)?, self.dev(g.c)?);
        let av = Self::view(a, g.a_off, g.lda);
        let bv = Self::view(b, g.b_off, g.ldb);
        let cv = Self::view(c, g.c_off, g.ldc);
        let trans_a = if g.trans_a { Transpose::Yes } else { Transpose::No };
        let trans_b = if g.trans_b { Transpose::Yes } else { Transpose::No };
        let mach = &mut self.mach;
        let ctx = self.ctx.as_mut().expect("checked by caller");
        ctx.cim_blas_sgemm(
            mach,
            trans_a,
            trans_b,
            g.m,
            g.n,
            g.k,
            g.alpha as f32,
            av,
            g.lda,
            bv,
            g.ldb,
            g.beta as f32,
            cv,
            g.ldc,
        )
        .map_err(cim_err)?;
        Ok(())
    }
}

fn cim_err(e: CimError) -> InterpError {
    InterpError::Backend(e.to_string())
}

impl<'p> Backend for MachineBackend<'p> {
    fn load(&mut self, array: ArrayId, flat: usize) -> f32 {
        self.mach.host_load_f32(self.base[array.0] + 4 * flat as u64)
    }

    fn store(&mut self, array: ArrayId, flat: usize, v: f32) {
        self.mach.host_store_f32(self.base[array.0] + 4 * flat as u64, v);
        if self.device[array.0].is_some() {
            self.dirty[array.0] = true;
        }
    }

    fn prefers_bulk_runs(&self) -> bool {
        // The machine charges a run's aggregate stall in one call; values
        // and instruction totals are unchanged, so let the fast
        // interpreter batch per-array runs.
        true
    }

    fn load_run(&mut self, array: ArrayId, flat: i64, stride: i64, out: &mut [f32]) {
        let va = (self.base[array.0] as i64 + 4 * flat) as u64;
        self.mach.host_load_f32_run(va, 4 * stride, out);
    }

    fn store_run(&mut self, array: ArrayId, flat: i64, stride: i64, data: &[f32]) {
        let va = (self.base[array.0] as i64 + 4 * flat) as u64;
        self.mach.host_store_f32_run(va, 4 * stride, data);
        if self.device[array.0].is_some() {
            self.dirty[array.0] = true;
        }
    }

    fn cost(&mut self, ev: CostEvent, n: u64) {
        let class = match ev {
            CostEvent::IntAlu => InstClass::IntAlu,
            CostEvent::IntMul => InstClass::IntMul,
            CostEvent::FpAdd => InstClass::FpAdd,
            CostEvent::FpMul => InstClass::FpMul,
            CostEvent::FpDiv => InstClass::FpDiv,
            CostEvent::Load => InstClass::Load,
            CostEvent::Store => InstClass::Store,
            CostEvent::Cmp => InstClass::IntAlu,
            CostEvent::Branch => InstClass::Branch,
            CostEvent::CallOverhead => InstClass::Other,
        };
        self.mach.core.retire(class, n);
    }

    fn call(
        &mut self,
        _prog: &Program,
        callee: &str,
        args: &[ResolvedArg],
    ) -> Result<(), InterpError> {
        match parse(callee, args)? {
            CimCall::Init(dev) => {
                let mut ctx = CimContext::new(self.accel_cfg, self.driver_cfg, &self.mach);
                ctx.cim_init(&mut self.mach, dev as u32).map_err(cim_err)?;
                self.ctx = Some(ctx);
                Ok(())
            }
            CimCall::Malloc(a) => {
                let ptr = self.cma_ptr[a.0].ok_or_else(|| {
                    InterpError::Backend(format!(
                        "array {} was not placed in the CMA region",
                        self.prog.array(a).name
                    ))
                })?;
                let mach = &mut self.mach;
                self.ctx
                    .as_mut()
                    .ok_or_else(|| InterpError::Backend("malloc before init".into()))?
                    .cim_adopt(mach, ptr)
                    .map_err(cim_err)?;
                self.device[a.0] = Some(ptr);
                self.dirty[a.0] = true;
                Ok(())
            }
            CimCall::HostToDev(a) => self.sync_inputs(a),
            CimCall::DevToHost(a) => {
                let ptr = self.dev(a)?;
                let mach = &mut self.mach;
                self.ctx
                    .as_mut()
                    .ok_or_else(|| InterpError::Backend("sync before init".into()))?
                    .cim_sync_to_host(mach, ptr)
                    .map_err(cim_err)?;
                Ok(())
            }
            CimCall::Free(a) => {
                let _ = self.dev(a)?;
                self.ctx_mut()?;
                // The executor owns the buffers; charge the driver trip.
                self.mach.core.retire(InstClass::Other, 1500);
                Ok(())
            }
            CimCall::Pin(a) => {
                let ptr = self.dev(a)?;
                let mach = &mut self.mach;
                self.ctx
                    .as_mut()
                    .ok_or_else(|| InterpError::Backend("pin before init".into()))?
                    .cim_pin(mach, ptr)
                    .map_err(cim_err)?;
                Ok(())
            }
            CimCall::Gemm(g) => {
                self.ctx_mut()?;
                self.run_gemm(&g)
            }
            CimCall::Gemv(g) => {
                self.ctx_mut()?;
                let (a, x, y) = (self.dev(g.a)?, self.dev(g.x)?, self.dev(g.y)?);
                let trans = if g.trans_a { Transpose::Yes } else { Transpose::No };
                let mach = &mut self.mach;
                let ctx = self.ctx.as_mut().expect("checked");
                ctx.cim_blas_sgemv(
                    mach,
                    trans,
                    g.m,
                    g.k,
                    g.alpha as f32,
                    a,
                    g.lda,
                    x,
                    g.beta as f32,
                    y,
                )
                .map_err(cim_err)?;
                Ok(())
            }
            CimCall::Batched(b) => {
                self.ctx_mut()?;
                let t = &b.template;
                let mut al = Vec::new();
                let mut bl = Vec::new();
                let mut cl = Vec::new();
                for (a, bb, c) in &b.problems {
                    al.push(self.dev(*a)?);
                    bl.push(self.dev(*bb)?);
                    cl.push(self.dev(*c)?);
                }
                let trans_a = if t.trans_a { Transpose::Yes } else { Transpose::No };
                let trans_b = if t.trans_b { Transpose::Yes } else { Transpose::No };
                let mach = &mut self.mach;
                let ctx = self.ctx.as_mut().expect("checked");
                ctx.cim_blas_gemm_batched(
                    mach,
                    trans_a,
                    trans_b,
                    t.m,
                    t.n,
                    t.k,
                    t.alpha as f32,
                    &al,
                    t.lda,
                    &bl,
                    t.ldb,
                    t.beta as f32,
                    &cl,
                    t.ldc,
                )
                .map_err(cim_err)?;
                Ok(())
            }
            CimCall::Conv(c) => {
                self.ctx_mut()?;
                let (img, filt, out) = (self.dev(c.img)?, self.dev(c.filt)?, self.dev(c.out)?);
                let mach = &mut self.mach;
                let ctx = self.ctx.as_mut().expect("checked");
                ctx.cim_conv2d(mach, img, c.h, c.w, filt, c.fh, c.fw, out).map_err(cim_err)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompileOptions;
    use crate::pipeline::compile;

    const GEMM: &str = r#"
        const int N = 8;
        float A[N][N]; float B[N][N]; float C[N][N];
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
        }
    "#;

    fn small_opts() -> ExecOptions {
        ExecOptions {
            machine: cim_machine::MachineConfig::test_small(),
            accel: cim_accel::AccelConfig::test_small(),
            ..ExecOptions::default()
        }
    }

    fn det_init(name: &str, data: &mut [f32]) {
        let seed = name.bytes().map(|b| b as usize).sum::<usize>();
        for (j, v) in data.iter_mut().enumerate() {
            *v = ((seed + j * 7) % 11) as f32 - 5.0;
        }
    }

    #[test]
    fn host_and_offloaded_runs_agree_exactly() {
        let host = compile(GEMM, &CompileOptions::host_only()).expect("compiles");
        let cim = compile(GEMM, &CompileOptions::with_tactics()).expect("compiles");
        let r1 = execute(&host, &small_opts(), &det_init).expect("host runs");
        let r2 = execute(&cim, &small_opts(), &det_init).expect("cim runs");
        assert_eq!(r1.array("C").unwrap(), r2.array("C").unwrap());
        assert!(r2.accel.is_some());
        assert!(r1.accel.is_none());
    }

    #[test]
    fn host_run_counts_instructions_and_energy() {
        let host = compile(GEMM, &CompileOptions::host_only()).expect("compiles");
        let r = execute(&host, &small_opts(), &det_init).expect("runs");
        // 512 MACs plus loop overhead: thousands of instructions.
        assert!(r.host.instructions > 4000, "{}", r.host.instructions);
        assert!(r.total_energy().as_pj() > 0.0);
        assert!(r.edp() > 0.0);
        // Instruction count drives energy at 128 pJ/inst.
        let expect = r.host.instructions as f64 * 128.0;
        assert!((r.host.energy.as_pj() - expect).abs() < 1e-6);
    }

    #[test]
    fn offloaded_run_reports_accel_stats() {
        let cim = compile(GEMM, &CompileOptions::with_tactics()).expect("compiles");
        let r = execute(&cim, &small_opts(), &det_init).expect("runs");
        let acc = r.accel.expect("accelerator used");
        assert!(acc.gemv_count > 0);
        assert!(acc.cell_writes > 0);
        assert!(acc.macs >= 512);
        assert!(r.host.spin_instructions > 0, "driver spin-waits by default");
        let rt = r.runtime.expect("runtime stats");
        assert_eq!(rt.gemm_calls, 1);
        assert!(rt.malloc_calls >= 3);
    }

    #[test]
    fn timeline_recording() {
        let cim = compile(GEMM, &CompileOptions::with_tactics()).expect("compiles");
        let opts = ExecOptions { record_timeline: true, ..small_opts() };
        let r = execute(&cim, &opts, &det_init).expect("runs");
        let tl = r.timeline.expect("timeline recorded");
        assert!(tl.contains("write-crossbar"));
        assert!(tl.contains("result-ready"));
    }

    #[test]
    fn smart_sync_preserves_residency_across_calls() {
        // Ablation: with runtime dirty tracking, two consecutive GEMMs on
        // the same operands skip the second install entirely.
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    D[i][j] += A[i][k] * B[k][j];
            }
        "#;
        // Disable fusion so two separate sgemm calls are emitted; use the
        // legacy detect-only pipeline so the schedule stays conservative
        // (the default pipeline would pin A and hide the contrast).
        let mut opts = CompileOptions::without_dataflow();
        opts.tactics.fusion = false;
        let cim = compile(src, &opts).expect("compiles");
        assert_eq!(cim.pseudo_c().matches("polly_cimBlasSGemm").count(), 2);
        let smart = ExecOptions { smart_sync: true, ..small_opts() };
        let r = execute(&cim, &smart, &det_init).expect("runs");
        let acc = r.accel.expect("accel");
        // A installed once (8 rows), not twice.
        assert_eq!(acc.rows_programmed, 8);
        // The paper's conservative runtime reinstalls per call.
        let r2 = execute(&cim, &small_opts(), &det_init).expect("runs");
        assert_eq!(r2.accel.expect("accel").rows_programmed, 16);
    }

    #[test]
    fn async_dispatch_matches_sync_for_batched_program() {
        use cim_runtime::DispatchMode;
        // Fusion turns the two GEMMs sharing A into one
        // polly_cimBlasGemmBatched call — the interpreter dispatches it
        // through the async submit path when the driver is configured so.
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    D[i][j] += A[i][k] * B[k][j];
            }
        "#;
        let cim = compile(src, &CompileOptions::with_tactics()).expect("compiles");
        assert!(cim.pseudo_c().contains("polly_cimBlasGemmBatched"));
        let sync_run = execute(&cim, &small_opts(), &det_init).expect("sync runs");
        let async_opts = small_opts().with_dispatch(DispatchMode::Async);
        let async_run = execute(&cim, &async_opts, &det_init).expect("async runs");
        // Dispatch mode is pure schedule: results are bit-for-bit equal.
        assert_eq!(sync_run.array("C").unwrap(), async_run.array("C").unwrap());
        assert_eq!(sync_run.array("D").unwrap(), async_run.array("D").unwrap());
        assert!(async_run.runtime.expect("runtime stats").async_submits > 0);
        assert_eq!(sync_run.runtime.expect("runtime stats").async_submits, 0);
        // With no host work between submit and the d2h sync, async pays
        // the same wait — it must never be slower than blocking.
        let (t_async, t_sync) = (async_run.host.time.as_ns(), sync_run.host.time.as_ns());
        assert!(t_async <= t_sync * 1.001, "{t_async} vs {t_sync}");
    }

    #[test]
    fn dataflow_schedule_is_bit_identical_and_skips_installs() {
        // Two kernels sharing the stationary operand, followed by host
        // code independent of the first result: the offload dataflow
        // graph elides the redundant h2d syncs, pins A, and sinks the
        // d2h of C past the second kernel. Results must match the
        // conservative schedule bit for bit in both dispatch modes,
        // while the pinned operand installs once instead of twice.
        use cim_runtime::DispatchMode;
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float s[N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    D[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                s[i] = s[i] + 1.0;
            }
        "#;
        let mut base_copts = CompileOptions::without_dataflow();
        base_copts.tactics.fusion = false;
        // The dataflow pipeline is the default — no opt-in needed.
        let mut df_copts = CompileOptions::default();
        df_copts.tactics.fusion = false;
        let baseline = compile(src, &base_copts).expect("compiles");
        let optimized = compile(src, &df_copts).expect("compiles");
        assert!(!baseline.dataflow_optimized());
        assert!(optimized.dataflow_optimized());
        assert!(optimized.pass_counter("hoisted_syncs") >= 1, "{:?}", optimized.passes);
        assert!(optimized.pass_counter("elided_syncs") >= 1, "{:?}", optimized.passes);
        assert_eq!(optimized.pass_counter("pins"), 1, "{:?}", optimized.passes);
        let base_run = execute(&baseline, &small_opts(), &det_init).expect("baseline runs");
        for dispatch in [DispatchMode::Sync, DispatchMode::Async] {
            let opts = small_opts().with_dispatch(dispatch);
            let run = execute(&optimized, &opts, &det_init).expect("optimized runs");
            for name in ["C", "D", "s"] {
                assert_eq!(
                    base_run.array(name).unwrap(),
                    run.array(name).unwrap(),
                    "{name} diverged under {dispatch:?}"
                );
            }
            let acc = run.accel.expect("accel");
            let base_acc = base_run.accel.expect("accel");
            // The pinned A installs once (8 rows); the conservative
            // schedule re-installs it for the second kernel.
            assert_eq!(base_acc.rows_programmed, 16);
            assert_eq!(acc.rows_programmed, 8, "{dispatch:?}");
            assert!(acc.install_skips >= 1, "{dispatch:?}");
            let rt = run.runtime.expect("runtime stats");
            assert_eq!(rt.pin_calls, 1);
            assert!(rt.pin_hits >= 1);
        }
    }

    #[test]
    fn kernel_overwritten_operand_is_not_served_from_stale_residency() {
        // Regression: A is the pinned stationary operand of two kernels,
        // then a *device kernel* overwrites A, then a fourth kernel uses
        // A again. The dataflow pass must not let that last kernel hit a
        // pre-overwrite crossbar install — the kernel write ends A's
        // clean window (graph side) and the runtime invalidates
        // residency over every dispatched command's write ranges
        // (runtime side), so results stay bit-for-bit identical to the
        // conservative schedule.
        use cim_runtime::DispatchMode;
        let src = r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float X[N][N]; float W[N][N];
            float Y[N][N]; float Z[N][N]; float U[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    Y[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    Z[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    A[i][j] += X[i][k] * W[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    U[i][j] += A[i][k] * B[k][j];
            }
        "#;
        let mut base_copts = CompileOptions::without_dataflow();
        base_copts.tactics.fusion = false;
        let mut df_copts = CompileOptions::default();
        df_copts.tactics.fusion = false;
        let baseline = compile(src, &base_copts).expect("compiles");
        let optimized = compile(src, &df_copts).expect("compiles");
        // A's reuse window ends at the overwriting kernel: exactly one
        // pin, covering the first two kernels only.
        assert_eq!(optimized.pass_counter("pins"), 1, "{:?}", optimized.passes);
        let opts_grid = ExecOptions { ..small_opts() }.with_tile_grid(2, 2);
        let base_run = execute(&baseline, &opts_grid, &det_init).expect("baseline runs");
        for dispatch in [DispatchMode::Sync, DispatchMode::Async] {
            let run = execute(&optimized, &opts_grid.clone().with_dispatch(dispatch), &det_init)
                .expect("optimized runs");
            for name in ["Y", "Z", "A", "U"] {
                assert_eq!(
                    base_run.array(name).unwrap(),
                    run.array(name).unwrap(),
                    "{name} diverged under {dispatch:?}"
                );
            }
        }
    }

    #[test]
    fn malloc_targets_found() {
        let cim = compile(GEMM, &CompileOptions::with_tactics()).expect("compiles");
        let targets = malloc_targets(&cim.prog);
        assert_eq!(targets.len(), 3);
    }
}
