//! Comparison metrics and report formatting (Fig. 6 arithmetic).

use crate::exec::RunResult;
use cim_machine::units::{Energy, SimTime};
use std::fmt;

/// Host vs host+CIM comparison for one kernel.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Kernel label.
    pub name: String,
    /// Host-only run.
    pub host: RunResult,
    /// Offloaded run.
    pub cim: RunResult,
}

impl Comparison {
    /// Energy improvement factor (`>1` means CIM wins).
    pub fn energy_improvement(&self) -> f64 {
        self.host.total_energy() / self.cim.total_energy()
    }

    /// Runtime improvement factor.
    pub fn runtime_improvement(&self) -> f64 {
        self.host.wall_time() / self.cim.wall_time()
    }

    /// EDP improvement factor (the right plot of Fig. 6).
    pub fn edp_improvement(&self) -> f64 {
        self.host.edp() / self.cim.edp()
    }

    /// MACs per CIM write of the offloaded run (left plot, right axis).
    pub fn macs_per_write(&self) -> f64 {
        self.cim.macs_per_write()
    }

    /// Host energy (left plot, first bar).
    pub fn host_energy(&self) -> Energy {
        self.host.total_energy()
    }

    /// Host+CIM energy (left plot, second bar).
    pub fn cim_energy(&self) -> Energy {
        self.cim.total_energy()
    }

    /// Host runtime.
    pub fn host_time(&self) -> SimTime {
        self.host.wall_time()
    }

    /// Host+CIM runtime.
    pub fn cim_time(&self) -> SimTime {
        self.cim.wall_time()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {}", self.name)?;
        writeln!(
            f,
            "  energy  host {:>12}   host+cim {:>12}   improvement {:>8.2}x",
            format!("{}", self.host_energy()),
            format!("{}", self.cim_energy()),
            self.energy_improvement()
        )?;
        writeln!(
            f,
            "  runtime host {:>12}   host+cim {:>12}   improvement {:>8.2}x",
            format!("{}", self.host_time()),
            format!("{}", self.cim_time()),
            self.runtime_improvement()
        )?;
        writeln!(
            f,
            "  edp improvement {:>8.2}x   macs/cim-write {:>10.1}",
            self.edp_improvement(),
            self.macs_per_write()
        )
    }
}

/// Geometric mean of improvement factors (how the paper summarizes
/// Fig. 6: "Geomean" over all kernels, "Selective Geomean" over the
/// policy-filtered set).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean requires positive factors");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(Vec::<f64>::new()).is_nan());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean([1.0, 0.0]);
    }
}
