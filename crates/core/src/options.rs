//! Compilation and execution options.

use cim_accel::AccelConfig;
use cim_machine::MachineConfig;
use cim_pcm::Fidelity;
use cim_runtime::{DispatchMode, DriverConfig};
use tdo_tactics::{PassId, TacticsConfig};

/// Options of the end-to-end pipeline — the two compilation strings of
/// Section IV: `clang -O3 -march=native` (host) and
/// `clang -O3 -march=native -enable-loop-tactics` (host + CIM).
///
/// The default is the full transparent flow: Loop Tactics detection
/// plus the whole compiler pass pipeline (sync hoisting, h2d elision,
/// capacity-aware pin placement). Use [`CompileOptions::host_only`] for
/// the host baseline and [`CompileOptions::without_dataflow`] for the
/// conservative point-wise schedule the differential suites compare
/// against.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// `-enable-loop-tactics`: run detection + offloading.
    pub enable_loop_tactics: bool,
    /// Loop Tactics configuration (policy, fusion, cost model).
    pub tactics: TacticsConfig,
    /// The compiler pass pipeline to run (in order) when Loop Tactics is
    /// enabled — see [`tdo_tactics::pass_manager`]. The default is the
    /// full pipeline, [`PassId::all`].
    pub passes: Vec<PassId>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            enable_loop_tactics: true,
            tactics: TacticsConfig::default(),
            passes: PassId::all().to_vec(),
        }
    }
}

impl CompileOptions {
    /// Host-only compilation (`clang -O3 -march=native`).
    pub fn host_only() -> Self {
        CompileOptions { enable_loop_tactics: false, ..CompileOptions::default() }
    }

    /// Transparent CIM offloading (`-enable-loop-tactics`) — the
    /// default: detection plus the full pass pipeline.
    pub fn with_tactics() -> Self {
        CompileOptions::default()
    }

    /// Offloading plus the offload dataflow graph passes. Kept for
    /// callers that opted in before the pipeline became the default —
    /// identical to [`CompileOptions::default`].
    pub fn with_dataflow() -> Self {
        CompileOptions::default()
    }

    /// The legacy conservative schedule: detection and lowering only,
    /// every kernel bracketed by point-wise coherence syncs and every
    /// call installing its stationary operand cold. The Selective cost
    /// model prices installs per call again, matching the schedule that
    /// actually runs.
    pub fn without_dataflow() -> Self {
        let mut opts =
            CompileOptions { passes: vec![PassId::DetectOffload], ..CompileOptions::default() };
        opts.tactics.assume_residency = false;
        opts
    }

    /// Replaces the pass list (ablation studies).
    pub fn with_passes(mut self, ids: &[PassId]) -> Self {
        self.passes = ids.to_vec();
        self
    }
}

/// Options of the simulated execution environment.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Host platform configuration (Table I host column).
    pub machine: MachineConfig,
    /// Accelerator configuration (Table I CIM column).
    pub accel: AccelConfig,
    /// Driver cost configuration (wait policy, flush coverage).
    pub driver: DriverConfig,
    /// Numerical fidelity of the crossbar.
    pub fidelity: Fidelity,
    /// Record the accelerator event timeline (Fig. 2 (d)).
    pub record_timeline: bool,
    /// Runtime-side dirty tracking: skip the coherence sync (and keep
    /// crossbar residency) for buffers the host has not written since the
    /// last sync. The paper's lightweight runtime is conservative
    /// (`false`); enabling this is an ablation showing a smarter runtime
    /// can recover part of the fusion benefit without the compiler.
    pub smart_sync: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            machine: MachineConfig::default(),
            accel: AccelConfig::default(),
            driver: DriverConfig::default(),
            fidelity: Fidelity::Exact,
            record_timeline: false,
            smart_sync: false,
        }
    }
}

impl ExecOptions {
    /// Retargets the accelerator to another device technology (keeps
    /// geometry and every other knob).
    pub fn with_device(mut self, device: cim_pcm::DeviceKind) -> Self {
        self.accel = self.accel.with_device(device);
        self
    }

    /// Reshapes the accelerator's tile grid to `(k_tiles, m_tiles)`.
    pub fn with_tile_grid(mut self, k_tiles: usize, m_tiles: usize) -> Self {
        self.accel = self.accel.with_grid(k_tiles, m_tiles);
        self
    }

    /// Sets the number of per-tile DMA channels the modeled device uses
    /// to install stationary operands — the fig10 sweep knob. With more
    /// than one channel, crossbar installs on disjoint tiles of a wave
    /// gather concurrently instead of serializing on one bus.
    ///
    /// ```
    /// use tdo_cim::ExecOptions;
    ///
    /// let opts = ExecOptions::default().with_dma_channels(4);
    /// assert_eq!(opts.accel.dma_channels, 4);
    /// // The default remains the paper's single shared DMA bus.
    /// assert_eq!(ExecOptions::default().accel.dma_channels, 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics (in [`cim_accel::AccelConfig::validate`]) when `channels`
    /// is zero or exceeds [`cim_accel::MAX_DMA_CHANNELS`].
    pub fn with_dma_channels(mut self, channels: usize) -> Self {
        self.accel = self.accel.with_dma_channels(channels);
        self
    }

    /// Resizes the CMA carve-out for workloads whose device-destined
    /// working set exceeds the platform default — e.g. XLarge GEMM
    /// chains, where `batch * layers` activation matrices plus weights
    /// must all be physically contiguous and shared.
    ///
    /// ```
    /// use tdo_cim::ExecOptions;
    ///
    /// let opts = ExecOptions::default().with_cma_bytes(512 * 1024 * 1024);
    /// assert_eq!(opts.machine.cma_bytes, 512 * 1024 * 1024);
    /// // The carve-out must stay inside physical memory.
    /// opts.machine.validate();
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the enlarged carve-out no longer fits below the top of
    /// physical memory.
    pub fn with_cma_bytes(mut self, bytes: u64) -> Self {
        self.machine.cma_bytes = bytes;
        let fits = self
            .machine
            .cma_base
            .checked_add(bytes)
            .is_some_and(|end| end <= self.machine.phys_mem_bytes);
        assert!(fits, "CMA carve-out of {bytes} bytes exceeds physical memory");
        self
    }

    /// Selects how `polly_cim*` calls reach the accelerator:
    /// [`DispatchMode::Sync`] blocks the host per invocation (the paper's
    /// spinlock), [`DispatchMode::Async`] submits and lets the host
    /// overlap its own compute until a result is observed.
    ///
    /// ```
    /// use cim_runtime::DispatchMode;
    /// use tdo_cim::ExecOptions;
    ///
    /// let opts = ExecOptions::default().with_dispatch(DispatchMode::Async);
    /// assert_eq!(opts.driver.dispatch, DispatchMode::Async);
    /// // The default remains the paper's blocking driver.
    /// assert_eq!(ExecOptions::default().driver.dispatch, DispatchMode::Sync);
    /// ```
    pub fn with_dispatch(mut self, mode: DispatchMode) -> Self {
        self.driver.dispatch = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!CompileOptions::host_only().enable_loop_tactics);
        assert!(CompileOptions::with_tactics().enable_loop_tactics);
        // The default is the full pass pipeline — dataflow needs no opt-in.
        assert_eq!(CompileOptions::default().passes, PassId::all().to_vec());
        assert!(CompileOptions::default().enable_loop_tactics);
        let legacy = CompileOptions::without_dataflow();
        assert_eq!(legacy.passes, vec![PassId::DetectOffload]);
        assert!(!legacy.tactics.assume_residency);
        let e = ExecOptions::default();
        assert_eq!(e.accel.rows, 256);
        assert!(e.fidelity.is_exact());
    }

    #[test]
    fn device_and_grid_builders() {
        let e = ExecOptions::default().with_device(cim_pcm::DeviceKind::Reram).with_tile_grid(2, 2);
        assert_eq!(e.accel.device, cim_pcm::DeviceKind::Reram);
        assert_eq!(e.accel.grid, (2, 2));
        assert_eq!(e.accel.rows, 256);
    }

    #[test]
    fn dma_channel_builder() {
        let e = ExecOptions::default().with_dma_channels(4);
        assert_eq!(e.accel.dma_channels, 4);
        e.accel.validate();
    }

    #[test]
    fn cma_builder_resizes_carveout() {
        let e = ExecOptions::default().with_cma_bytes(512 * 1024 * 1024);
        assert_eq!(e.machine.cma_bytes, 512 * 1024 * 1024);
        e.machine.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds physical memory")]
    fn cma_builder_rejects_oversized_carveout() {
        let _ = ExecOptions::default().with_cma_bytes(4 * 1024 * 1024 * 1024);
    }

    #[test]
    fn dispatch_builder() {
        let e = ExecOptions::default().with_dispatch(DispatchMode::Async);
        assert_eq!(e.driver.dispatch, DispatchMode::Async);
        assert_eq!(ExecOptions::default().driver.dispatch, DispatchMode::Sync);
    }
}
