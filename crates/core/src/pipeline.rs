//! The end-to-end compilation pipeline (Fig. 4).
//!
//! Front-end (`tdo-lang`, the Clang stand-in) lowers source to loop IR;
//! the mid-level optimizer (`tdo-poly`, the Polly stand-in) extracts the
//! SCoP and builds schedule trees; the compiler pass pipeline
//! (`tdo_tactics::pass_manager`) detects and offloads kernels, then
//! optimizes the emitted runtime-call schedule (sync hoisting, h2d
//! elision, capacity-aware pin placement); the back-end (the costed
//! interpreter in [`crate::exec`]) "links" the result against the CIM
//! runtime library.

use crate::options::CompileOptions;
use std::fmt;
use tdo_ir::printer::print_program;
use tdo_ir::Program;
use tdo_lang::FrontendError;
use tdo_poly::scop::{extract, ScopError};
use tdo_tactics::{OffloadReport, PassCtx, PassManager, PassReport};

/// A compiled program ready for execution.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The executable IR (post-tactics when enabled).
    pub prog: Program,
    /// The IR straight out of the front-end (pre-optimization).
    pub source_ir: Program,
    /// Loop Tactics report (when detection ran).
    pub report: Option<OffloadReport>,
    /// Per-pass reports, in pipeline order (empty when tactics were
    /// disabled or the SCoP was skipped).
    pub passes: Vec<PassReport>,
    /// Why the polyhedral step was skipped, if it was.
    pub scop_skipped: Option<ScopError>,
}

impl CompiledProgram {
    /// Pseudo-C rendering of the executable program (Listing 1 style).
    pub fn pseudo_c(&self) -> String {
        print_program(&self.prog)
    }

    /// Pseudo-C rendering of the unoptimized program.
    pub fn source_pseudo_c(&self) -> String {
        print_program(&self.source_ir)
    }

    /// Whether any kernel was offloaded.
    pub fn offloaded(&self) -> bool {
        self.report.as_ref().is_some_and(|r| r.any_offloaded())
    }

    /// The report of the named pass, if it ran.
    pub fn pass_report(&self, name: &str) -> Option<&PassReport> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// A named counter summed across every pass report (e.g.
    /// `"hoisted_syncs"`, `"elided_syncs"`, `"pins"`, `"spills"`).
    pub fn pass_counter(&self, key: &str) -> u64 {
        self.passes.iter().map(|p| p.counter(key)).sum()
    }

    /// Whether any pass beyond detection changed the program — the
    /// schedule differs from the conservative point-wise one.
    pub fn dataflow_optimized(&self) -> bool {
        self.passes.iter().skip(1).any(|p| p.changed)
    }
}

/// Compilation failure (front-end only; polyhedral bail-outs degrade
/// gracefully to unoptimized code, as in the real flow).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError(pub FrontendError);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compilation failed: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Compiles source text through the full pipeline.
///
/// # Errors
///
/// [`CompileError`] on front-end failures. Polyhedral bail-outs (non-affine
/// code) are not errors: the program runs host-only, recorded in
/// [`CompiledProgram::scop_skipped`].
pub fn compile(src: &str, opts: &CompileOptions) -> Result<CompiledProgram, CompileError> {
    let source_ir = tdo_lang::compile(src).map_err(CompileError)?;
    tdo_ir::verify::verify(&source_ir).expect("front-end emits well-formed IR");
    if !opts.enable_loop_tactics {
        return Ok(CompiledProgram {
            prog: source_ir.clone(),
            source_ir,
            report: None,
            passes: Vec::new(),
            scop_skipped: None,
        });
    }
    match extract(&source_ir) {
        Ok(scop) => {
            let manager = PassManager::from_ids(&opts.passes);
            let (prog, report, passes) = {
                let mut ctx = PassCtx::new(&source_ir, Some(&scop), &opts.tactics);
                let passes = manager.run(&mut ctx);
                (ctx.prog, ctx.offload, passes)
            };
            tdo_ir::verify::verify(&prog).expect("tactics emit well-formed IR");
            Ok(CompiledProgram { prog, source_ir, report, passes, scop_skipped: None })
        }
        Err(e) => Ok(CompiledProgram {
            prog: source_ir.clone(),
            source_ir,
            report: None,
            passes: Vec::new(),
            scop_skipped: Some(e),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEMM: &str = r#"
        const int N = 8;
        float A[N][N]; float B[N][N]; float C[N][N];
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
        }
    "#;

    #[test]
    fn host_only_compilation_keeps_loops() {
        let c = compile(GEMM, &CompileOptions::host_only()).expect("compiles");
        assert!(!c.offloaded());
        assert!(c.pseudo_c().contains("for ("));
    }

    #[test]
    fn tactics_compilation_offloads() {
        let c = compile(GEMM, &CompileOptions::with_tactics()).expect("compiles");
        assert!(c.offloaded());
        assert!(c.pseudo_c().contains("polly_cimBlasSGemm"));
        assert!(c.source_pseudo_c().contains("for ("));
    }

    #[test]
    fn default_compile_runs_the_full_pass_pipeline() {
        let c = compile(GEMM, &CompileOptions::default()).expect("compiles");
        assert!(c.offloaded());
        assert_eq!(
            c.passes.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
            ["detect-offload", "sync-hoist", "elide-syncs", "pin-placement"]
        );
        assert!(c.pass_counter("kernels_offloaded") >= 1);
        // The legacy pipeline stops after detection.
        let legacy = compile(GEMM, &CompileOptions::without_dataflow()).expect("compiles");
        assert_eq!(legacy.passes.len(), 1);
        assert!(!legacy.dataflow_optimized());
    }

    #[test]
    fn non_affine_code_degrades_gracefully() {
        let src = r#"
            float A[8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                if (i < 4) A[i] = 1.0;
            }
        "#;
        let c = compile(src, &CompileOptions::with_tactics()).expect("compiles");
        assert!(!c.offloaded());
        assert!(c.scop_skipped.is_some());
        assert!(c.pseudo_c().contains("if ("));
    }

    #[test]
    fn frontend_errors_propagate() {
        let err = compile("void kernel() { X = 1.0; }", &CompileOptions::host_only());
        assert!(err.is_err());
    }
}
