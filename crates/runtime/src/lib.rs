//! # cim-runtime — the lightweight CIM runtime library and driver model
//!
//! The software stack of Fig. 3: user applications (or the Loop Tactics
//! optimizer) call the user-space [`CimContext`] API, which encodes each
//! call into context-register writes, allocates physically contiguous
//! shared buffers through the CMA, and crosses into the kernel-space
//! [`driver::CimDriver`] for ioctls, address translation, the coherence
//! flush and completion waiting.
//!
//! ```
//! use cim_accel::AccelConfig;
//! use cim_machine::{Machine, MachineConfig};
//! use cim_runtime::{CimContext, DriverConfig, Transpose};
//!
//! # fn main() -> Result<(), cim_runtime::CimError> {
//! let mut mach = Machine::new(MachineConfig::test_small());
//! let mut ctx = CimContext::new(AccelConfig::test_small(), DriverConfig::default(), &mach);
//! ctx.cim_init(&mut mach, 0)?;
//! let a = ctx.cim_malloc(&mut mach, 16)?;
//! let x = ctx.cim_malloc(&mut mach, 8)?;
//! let y = ctx.cim_malloc(&mut mach, 8)?;
//! mach.poke_f32_slice(a.va, &[1.0, 0.0, 0.0, 1.0]);
//! mach.poke_f32_slice(x.va, &[7.0, 9.0]);
//! ctx.cim_blas_sgemv(&mut mach, Transpose::No, 2, 2, 1.0, a, 2, x, 0.0, y)?;
//! let mut out = [0f32; 2];
//! mach.peek_f32_slice(y.va, &mut out);
//! assert_eq!(out, [7.0, 9.0]);
//! # Ok(())
//! # }
//! ```

pub mod api;
pub mod driver;
pub mod error;
pub(crate) mod ranges;
pub mod reactor;
pub mod residency;
pub mod serve;
pub mod stats;

pub use api::{CimContext, CimDevice, DevPtr, SharedDevice, Transpose};
pub use cim_accel::DeviceKind;
pub use driver::{
    CimDriver, CimFuture, DispatchMode, DispatchQueue, DriverConfig, FlushMode, WaitPolicy,
};
pub use error::CimError;
pub use reactor::{CmdRecord, Completion, Reactor, RingBuffer};
pub use residency::{ResidencyEntry, ResidencyTable};
pub use serve::{
    CimServer, FairnessPolicy, GridScheduler, ServePolicy, TenantConfig, TenantId, TenantUsage,
};
pub use stats::RuntimeStats;
