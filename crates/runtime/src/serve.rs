//! Multi-tenant serving layer: one shared tile grid, N client contexts.
//!
//! The rest of the stack runs one program in one [`CimContext`]; this
//! module makes the runtime a *server*. A [`CimServer`] owns a single
//! [`crate::api::CimDevice`] — accelerator, driver rings, reactor — and
//! hands out tenant contexts that all submit against it. Three
//! mechanisms multiplex the grid:
//!
//! - **Tile-region leases** space-multiplex: each tenant's single-block
//!   kernels are steered onto a leased [`GridRegion`], so tenants on
//!   disjoint leases overlap on the hardware exactly like the disjoint
//!   sub-regions of one program's async calls. Physical serialization
//!   stays where it always was — the driver's
//!   [`crate::DispatchQueue`] per-region doorbells — so a lease is
//!   advisory placement, never a correctness mechanism.
//! - **A fairness policy** time-multiplexes contended regions: the
//!   scheduler meters each tenant's scheduled tile-time and delays the
//!   *birth* of new commands from a tenant whose backlog exceeds its
//!   weighted quota ([`FairnessPolicy::DeficitWeighted`]). Commands
//!   already in the rings cannot be reordered, so host-side admission
//!   is the entire lever — and it bounds every victim's wait by the sum
//!   of its co-lessees' quotas plus one command's busy time.
//! - **Wear budgets** make endurance a metered shared resource: each
//!   install's cell writes are charged to the submitting tenant, a
//!   tenant past its budget pays a wear penalty at admission, and its
//!   lease is steered to the least-worn region
//!   ([`GridScheduler::lease_region`]) so one hot tenant cannot burn
//!   out a single tile.
//!
//! Isolation is bit-for-bit: engine numerics are independent of region
//! placement (the PR 2 sharding property), and tile residency is keyed
//! by `(base_pa, generation)`, so a neighbor stealing a tile merely
//! forces a re-install, never a wrong result. The differential property
//! suite (`tests/serving_props.rs`) pins any interleaving of N tenants
//! against each tenant alone on a private grid.

use std::cell::RefCell;
use std::rc::Rc;

use cim_accel::{partition_grid, AccelConfig, CimAccelerator, GridRegion};
use cim_machine::units::SimTime;
use cim_machine::Machine;

use crate::api::{CimContext, CimDevice, SharedDevice};
use crate::driver::{CimDriver, DriverConfig};
use crate::error::CimError;

/// Identity of a connected tenant — an index into the scheduler's
/// tenant table, stable for the lifetime of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// The tenant's slot in the scheduler's tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-tenant serving parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Fairness weight: a tenant's backlog quota scales linearly with
    /// it, so a weight-2 tenant may keep twice the scheduled tile-time
    /// in flight before admission throttles it. Zero is treated as 1.
    pub weight: u32,
    /// Cell-write budget: once the tenant's installs have consumed this
    /// many cell writes, admission adds the policy's wear penalty per
    /// call and the lease steers to the least-worn region. `None` is
    /// unmetered.
    pub wear_budget: Option<u64>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig { weight: 1, wear_budget: None }
    }
}

/// How contended regions are time-multiplexed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FairnessPolicy {
    /// No admission control: tenants submit as fast as they arrive and
    /// only the dispatch queue's doorbells order them. An adversarial
    /// tenant can starve its co-lessees — kept as the unfair baseline
    /// the fairness tests (and `fig11_serving`) compare against.
    Fifo,
    /// Deficit-weighted admission: a tenant whose scheduled-but-unretired
    /// tile-time backlog exceeds `backlog_quota * weight` idles until it
    /// is back inside its quota, and a tenant past its wear budget pays
    /// `wear_penalty` per call on top.
    DeficitWeighted {
        /// Backlog each unit of weight may keep in flight.
        backlog_quota: SimTime,
        /// Extra admission delay per call once the wear budget is spent.
        wear_penalty: SimTime,
    },
}

impl Default for FairnessPolicy {
    fn default() -> Self {
        FairnessPolicy::DeficitWeighted {
            backlog_quota: SimTime::from_us(25.0),
            wear_penalty: SimTime::from_us(10.0),
        }
    }
}

/// Server-wide scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServePolicy {
    /// How many lease regions to partition the grid into (0 = the
    /// finest partition, one region per tile). More tenants than
    /// regions is fine — they share leases and the doorbells serialize.
    pub regions: usize,
    /// The time-multiplexing policy for contended regions.
    pub fairness: FairnessPolicy,
}

/// What a tenant has consumed so far — the scheduler's ledger, and the
/// per-tenant rows of `fig11_serving`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantUsage {
    /// Kernel dispatches metered for this tenant.
    pub grants: u64,
    /// Scheduled tile-time: busy time x region tiles, summed.
    pub tile_ns: f64,
    /// Weighted virtual time (`tile_ns / weight`) — equal shares under
    /// saturation mean equal `vtime_ns` growth across tenants.
    pub vtime_ns: f64,
    /// Cell writes charged to this tenant's installs.
    pub wear_cells: u64,
    /// Host time admission control made this tenant idle.
    pub throttle_ns: f64,
    /// Admission delays caused by backlog over quota.
    pub backlog_throttles: u64,
    /// Admission delays caused by a spent wear budget.
    pub wear_throttles: u64,
    /// Lease moves forced by wear steering.
    pub steers: u64,
}

/// One leasable slice of the grid and how many tenants hold it.
#[derive(Debug, Clone, Copy)]
struct LeaseRegion {
    region: GridRegion,
    lessees: usize,
}

#[derive(Debug, Clone)]
struct TenantState {
    cfg: TenantConfig,
    lease: Option<usize>,
    usage: TenantUsage,
    /// Predicted retire instant of the tenant's latest command — the
    /// backlog admission measures against.
    scheduled_until: SimTime,
    connected: bool,
}

/// The shared-grid scheduler: lease assignment, fairness admission and
/// wear metering. Lives inside the [`crate::api::CimDevice`] so every
/// tenant context reaches it under the same borrow as the driver.
#[derive(Debug, Clone)]
pub struct GridScheduler {
    grid: (usize, usize),
    regions: Vec<LeaseRegion>,
    tenants: Vec<TenantState>,
    policy: ServePolicy,
}

impl GridScheduler {
    /// Builds a scheduler over `grid`, partitioned per the policy.
    pub fn new(grid: (usize, usize), policy: ServePolicy) -> Self {
        let want = if policy.regions == 0 { grid.0 * grid.1 } else { policy.regions };
        let regions = partition_grid(grid, want)
            .into_iter()
            .map(|region| LeaseRegion { region, lessees: 0 })
            .collect();
        GridScheduler { grid, regions, tenants: Vec::new(), policy }
    }

    /// The grid this scheduler multiplexes.
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// The active policy.
    pub fn policy(&self) -> &ServePolicy {
        &self.policy
    }

    /// Number of leasable regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of tenants ever connected (slots are not recycled).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Registers a tenant and returns its identity.
    pub fn connect(&mut self, cfg: TenantConfig) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(TenantState {
            cfg,
            lease: None,
            usage: TenantUsage::default(),
            scheduled_until: SimTime::ZERO,
            connected: true,
        });
        id
    }

    /// Reclaims the tenant's lease and marks it gone. Its usage ledger
    /// survives for post-mortem inspection.
    pub fn disconnect(&mut self, tid: TenantId) {
        let t = &mut self.tenants[tid.index()];
        if let Some(lease) = t.lease.take() {
            self.regions[lease].lessees -= 1;
        }
        t.connected = false;
    }

    /// Whether the tenant is still connected.
    pub fn connected(&self, tid: TenantId) -> bool {
        self.tenants[tid.index()].connected
    }

    /// The tenant's consumption ledger.
    pub fn usage(&self, tid: TenantId) -> &TenantUsage {
        &self.tenants[tid.index()].usage
    }

    /// The region the tenant currently leases, if any.
    pub fn lease_of(&self, tid: TenantId) -> Option<GridRegion> {
        self.tenants[tid.index()].lease.map(|i| self.regions[i].region)
    }

    /// The tenant's scheduled-but-unretired tile-time at `now` — the
    /// backlog the deficit admission measures against its quota. Under
    /// [`FairnessPolicy::DeficitWeighted`] this is bounded after every
    /// call by `backlog_quota * weight` plus the call's own busy time,
    /// which is what bounds every co-lessee's wait.
    pub fn backlog_of(&self, tid: TenantId, now: SimTime) -> SimTime {
        let t = &self.tenants[tid.index()];
        if t.scheduled_until > now {
            t.scheduled_until - now
        } else {
            SimTime::ZERO
        }
    }

    /// Admission decision for one kernel call at host time `now`:
    /// `(delay, backlog_throttled, wear_throttled)`. The delay is also
    /// charged to the tenant's ledger.
    pub fn admission(&mut self, tid: TenantId, now: SimTime) -> (SimTime, bool, bool) {
        let t = &mut self.tenants[tid.index()];
        let mut delay = SimTime::ZERO;
        let mut backlog_hit = false;
        let mut wear_hit = false;
        if let FairnessPolicy::DeficitWeighted { backlog_quota, wear_penalty } =
            self.policy.fairness
        {
            let backlog =
                if t.scheduled_until > now { t.scheduled_until - now } else { SimTime::ZERO };
            let quota = backlog_quota * t.cfg.weight.max(1) as f64;
            if backlog > quota {
                delay += backlog - quota;
                backlog_hit = true;
            }
            if t.cfg.wear_budget.is_some_and(|b| t.usage.wear_cells > b) {
                delay += wear_penalty;
                wear_hit = true;
            }
        }
        if delay > SimTime::ZERO {
            t.usage.throttle_ns += delay.as_ns();
        }
        if backlog_hit {
            t.usage.backlog_throttles += 1;
        }
        if wear_hit {
            t.usage.wear_throttles += 1;
        }
        (delay, backlog_hit, wear_hit)
    }

    /// The region the tenant's next single-block kernel should run on.
    ///
    /// First call assigns the least-loaded (then least-worn) region. A
    /// tenant past its wear budget is steered: if some region's tiles
    /// have absorbed strictly fewer cell writes than its current
    /// lease's, the lease moves there (counted in
    /// [`TenantUsage::steers`]); residency keyed by physical tile makes
    /// the move safe — the next install simply lands on the new region.
    pub fn lease_region(&mut self, tid: TenantId, accel: &CimAccelerator) -> Option<GridRegion> {
        let i = tid.index();
        if !self.tenants[i].connected {
            return None;
        }
        let over_budget = {
            let t = &self.tenants[i];
            t.cfg.wear_budget.is_some_and(|b| t.usage.wear_cells > b)
        };
        let wear = |r: &LeaseRegion| accel.region_cell_writes(&r.region);
        match self.tenants[i].lease {
            Some(cur) if !over_budget => Some(self.regions[cur].region),
            Some(cur) => {
                let best = self
                    .regions
                    .iter()
                    .enumerate()
                    .min_by_key(|(idx, r)| (wear(r), r.lessees, *idx))
                    .map(|(idx, _)| idx)
                    .expect("partition_grid yields at least one region");
                if best != cur && wear(&self.regions[best]) < wear(&self.regions[cur]) {
                    self.regions[cur].lessees -= 1;
                    self.regions[best].lessees += 1;
                    self.tenants[i].lease = Some(best);
                    self.tenants[i].usage.steers += 1;
                    Some(self.regions[best].region)
                } else {
                    Some(self.regions[cur].region)
                }
            }
            None => {
                let best = self
                    .regions
                    .iter()
                    .enumerate()
                    .min_by_key(|(idx, r)| (r.lessees, wear(r), *idx))
                    .map(|(idx, _)| idx)
                    .expect("partition_grid yields at least one region");
                self.regions[best].lessees += 1;
                self.tenants[i].lease = Some(best);
                Some(self.regions[best].region)
            }
        }
    }

    /// Meters a dispatched command: `busy` accelerator time on `region`
    /// retiring at `ready_at`, having programmed `cells` crossbar cells.
    pub fn note_dispatch(
        &mut self,
        tid: TenantId,
        region: GridRegion,
        busy: SimTime,
        ready_at: SimTime,
        cells: u64,
    ) {
        let t = &mut self.tenants[tid.index()];
        t.scheduled_until = t.scheduled_until.max(ready_at);
        let tile_ns = busy.as_ns() * region.tiles() as f64;
        t.usage.grants += 1;
        t.usage.tile_ns += tile_ns;
        t.usage.vtime_ns += tile_ns / t.cfg.weight.max(1) as f64;
        t.usage.wear_cells += cells;
    }
}

/// The serving front end: owns the [`SharedDevice`] and hands out
/// tenant contexts. All tenants share the device's reactor rings and
/// dispatch queue — the PR 7 follow-on of one reactor instance across
/// contexts is exactly this.
#[derive(Debug)]
pub struct CimServer {
    device: SharedDevice,
}

impl CimServer {
    /// Builds a server around a fresh device. Driver overrides are
    /// applied to `accel_cfg` as in [`CimContext::new`].
    pub fn new(
        accel_cfg: AccelConfig,
        driver_cfg: DriverConfig,
        policy: ServePolicy,
        mach: &Machine,
    ) -> Self {
        let accel_cfg = driver_cfg.apply_overrides(accel_cfg);
        let grid = accel_cfg.grid;
        let device = Rc::new(RefCell::new(CimDevice {
            accel: CimAccelerator::new(accel_cfg, mach.cfg.bus),
            driver: CimDriver::new(driver_cfg),
            scheduler: Some(GridScheduler::new(grid, policy)),
        }));
        CimServer { device }
    }

    /// The shared device (inspection; co-owned with every tenant).
    pub fn device(&self) -> SharedDevice {
        Rc::clone(&self.device)
    }

    /// Admits a tenant: registers it with the scheduler and returns its
    /// context over the shared device.
    pub fn connect(&mut self, cfg: TenantConfig) -> CimContext {
        let tid = self
            .device
            .borrow_mut()
            .scheduler
            .as_mut()
            .expect("a CimServer device always has a scheduler")
            .connect(cfg);
        CimContext::attach(self.device(), Some(tid))
    }

    /// Disconnects a tenant: in-flight commands are synchronized (its
    /// doorbells claimed), allocations released, and the lease
    /// reclaimed — see [`CimContext::disconnect`]. Consumes the context.
    ///
    /// # Errors
    ///
    /// As for [`CimContext::disconnect`].
    pub fn disconnect(&mut self, mach: &mut Machine, mut ctx: CimContext) -> Result<(), CimError> {
        ctx.disconnect(mach)
    }

    /// The tenant's consumption ledger (copied out of the scheduler).
    pub fn usage(&self, tid: TenantId) -> TenantUsage {
        *self
            .device
            .borrow()
            .scheduler
            .as_ref()
            .expect("a CimServer device always has a scheduler")
            .usage(tid)
    }

    /// The region the tenant currently leases, if any.
    pub fn lease_of(&self, tid: TenantId) -> Option<GridRegion> {
        self.device
            .borrow()
            .scheduler
            .as_ref()
            .expect("a CimServer device always has a scheduler")
            .lease_of(tid)
    }

    /// The tenant's scheduled-but-unretired backlog at `now` — see
    /// [`GridScheduler::backlog_of`].
    pub fn backlog_of(&self, tid: TenantId, now: SimTime) -> SimTime {
        self.device
            .borrow()
            .scheduler
            .as_ref()
            .expect("a CimServer device always has a scheduler")
            .backlog_of(tid, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_machine::MachineConfig;

    fn small_accel(mach: &Machine) -> CimAccelerator {
        CimAccelerator::new(AccelConfig::test_small().with_grid(2, 2), mach.cfg.bus)
    }

    #[test]
    fn leases_spread_over_least_loaded_regions() {
        let mach = Machine::new(MachineConfig::test_small());
        let accel = small_accel(&mach);
        let mut s = GridScheduler::new((2, 2), ServePolicy::default());
        let t0 = s.connect(TenantConfig::default());
        let t1 = s.connect(TenantConfig::default());
        let r0 = s.lease_region(t0, &accel).expect("lease");
        let r1 = s.lease_region(t1, &accel).expect("lease");
        assert!(!r0.overlaps(&r1), "fresh tenants get disjoint leases");
        // Leases are sticky for in-budget tenants.
        assert_eq!(s.lease_region(t0, &accel), Some(r0));
        assert_eq!(s.lease_of(t0), Some(r0));
    }

    #[test]
    fn disconnect_reclaims_the_lease() {
        let mach = Machine::new(MachineConfig::test_small());
        let accel = small_accel(&mach);
        let mut s = GridScheduler::new((1, 1), ServePolicy::default());
        let t0 = s.connect(TenantConfig::default());
        let t1 = s.connect(TenantConfig::default());
        let r0 = s.lease_region(t0, &accel).expect("lease");
        s.disconnect(t0);
        assert!(!s.connected(t0));
        assert_eq!(s.lease_of(t0), None);
        assert_eq!(s.lease_region(t0, &accel), None, "gone tenants lease nothing");
        // The freed slot is available again.
        assert_eq!(s.lease_region(t1, &accel), Some(r0));
    }

    #[test]
    fn backlog_over_quota_delays_admission_proportionally_to_weight() {
        let mut s = GridScheduler::new(
            (1, 1),
            ServePolicy {
                regions: 0,
                fairness: FairnessPolicy::DeficitWeighted {
                    backlog_quota: SimTime::from_us(10.0),
                    wear_penalty: SimTime::ZERO,
                },
            },
        );
        let light = s.connect(TenantConfig { weight: 1, wear_budget: None });
        let heavy = s.connect(TenantConfig { weight: 3, wear_budget: None });
        let region = GridRegion { origin: (0, 0), shape: (1, 1) };
        for tid in [light, heavy] {
            s.note_dispatch(tid, region, SimTime::from_us(25.0), SimTime::from_us(25.0), 0);
        }
        let (d_light, hit_light, _) = s.admission(light, SimTime::ZERO);
        let (d_heavy, hit_heavy, _) = s.admission(heavy, SimTime::ZERO);
        assert!(hit_light, "25us backlog > 10us quota");
        assert_eq!(d_light, SimTime::from_us(15.0));
        assert!(!hit_heavy, "25us backlog <= 3 * 10us quota");
        assert_eq!(d_heavy, SimTime::ZERO);
        assert!(s.usage(light).backlog_throttles == 1 && s.usage(heavy).backlog_throttles == 0);
        // Once the clock passes the backlog, admission is free again.
        let (d, hit, _) = s.admission(light, SimTime::from_us(30.0));
        assert_eq!(d, SimTime::ZERO);
        assert!(!hit);
    }

    #[test]
    fn fifo_policy_never_delays() {
        let mut s =
            GridScheduler::new((1, 1), ServePolicy { regions: 0, fairness: FairnessPolicy::Fifo });
        let t = s.connect(TenantConfig::default());
        let region = GridRegion { origin: (0, 0), shape: (1, 1) };
        s.note_dispatch(t, region, SimTime::from_ms(10.0), SimTime::from_ms(10.0), 1 << 30);
        assert_eq!(s.admission(t, SimTime::ZERO), (SimTime::ZERO, false, false));
    }

    #[test]
    fn spent_wear_budget_charges_the_penalty() {
        let mut s = GridScheduler::new((1, 1), ServePolicy::default());
        let t = s.connect(TenantConfig { weight: 1, wear_budget: Some(100) });
        let region = GridRegion { origin: (0, 0), shape: (1, 1) };
        s.note_dispatch(t, region, SimTime::ZERO, SimTime::ZERO, 101);
        let (delay, _, wear_hit) = s.admission(t, SimTime::ZERO);
        assert!(wear_hit);
        assert_eq!(delay, SimTime::from_us(10.0), "default wear penalty");
        assert_eq!(s.usage(t).wear_throttles, 1);
        assert!(s.usage(t).throttle_ns > 0.0);
    }

    #[test]
    fn usage_meters_tile_time_and_weighted_vtime() {
        let mut s = GridScheduler::new((2, 2), ServePolicy::default());
        let t = s.connect(TenantConfig { weight: 2, wear_budget: None });
        let region = GridRegion { origin: (0, 0), shape: (2, 1) };
        s.note_dispatch(t, region, SimTime::from_us(5.0), SimTime::from_us(5.0), 7);
        let u = s.usage(t);
        assert_eq!(u.grants, 1);
        assert_eq!(u.tile_ns, 10_000.0, "5us x 2 tiles");
        assert_eq!(u.vtime_ns, 5_000.0, "halved by weight 2");
        assert_eq!(u.wear_cells, 7);
    }
}
