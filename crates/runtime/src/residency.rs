//! Pinned-operand residency tracking — the runtime half of the
//! compiler's residency-placement pass.
//!
//! `polly_cimPin` (emitted by the offload dataflow graph when a
//! stationary operand is reused across consecutive kernels with no
//! intervening host write) registers a physical range here. The first
//! kernel that uses a pinned operand places it on a tile region and
//! installs it; later kernels reusing the same operand are routed to the
//! *same* region, where the engine's tile residency skips the install
//! DMA and row programming entirely. Host writes reaching the range
//! through any runtime entry point (`cim_host_to_dev`,
//! `cim_sync_to_dev`, `cim_free`) invalidate the entry via the existing
//! PA-range machinery — pinning is a contract that the host does not
//! scribble on the buffer *behind* the runtime's back, not a lock.

use cim_accel::GridRegion;

/// One pinned operand range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyEntry {
    /// Physical base address of the pinned buffer.
    pub pa: u64,
    /// Length in bytes.
    pub len: u64,
    /// Tile region the operand was placed on by its first kernel
    /// (`None` until a kernel uses it).
    pub region: Option<GridRegion>,
    /// Whether a kernel has installed the operand since the pin — the
    /// condition under which the pre-invocation flush of the operand
    /// can be skipped (nothing host-side has touched it since).
    pub installed: bool,
}

impl ResidencyEntry {
    fn covers(&self, pa: u64, len: u64) -> bool {
        pa >= self.pa && pa + len <= self.pa + self.len
    }

    fn overlaps(&self, pa: u64, len: u64) -> bool {
        crate::ranges::overlaps((self.pa, self.len), (pa, len))
    }
}

/// The per-context table of pinned operands.
#[derive(Debug, Clone, Default)]
pub struct ResidencyTable {
    entries: Vec<ResidencyEntry>,
}

impl ResidencyTable {
    /// Pins `[pa, pa+len)`. Re-pinning an overlapping range replaces the
    /// old entry (its placement is stale by definition).
    pub fn pin(&mut self, pa: u64, len: u64) {
        self.entries.retain(|e| !e.overlaps(pa, len));
        self.entries.push(ResidencyEntry { pa, len, region: None, installed: false });
    }

    /// Index of the entry covering `[pa, pa+len)`, if any.
    pub fn find(&self, pa: u64, len: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.covers(pa, len))
    }

    /// The entry at `idx`.
    pub fn entry(&self, idx: usize) -> &ResidencyEntry {
        &self.entries[idx]
    }

    /// Records the region the entry's operand was placed on and marks it
    /// installed. Returns whether it was *already* installed — a
    /// residency hit for the caller's statistics.
    pub fn place(&mut self, idx: usize, region: GridRegion) -> bool {
        let e = &mut self.entries[idx];
        let hit = e.installed;
        e.region = Some(region);
        e.installed = true;
        hit
    }

    /// Drops every entry overlapping `[pa, pa+len)` (host write or
    /// free reached the range). Returns how many were invalidated.
    pub fn invalidate_overlap(&mut self, pa: u64, len: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !e.overlaps(pa, len));
        before - self.entries.len()
    }

    /// Number of live pins.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_place_and_hit() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        let idx = t.find(0x1000, 256).expect("covered");
        let region = GridRegion { origin: (0, 0), shape: (1, 1) };
        assert!(!t.place(idx, region), "first placement is a miss");
        assert!(t.place(idx, region), "second placement hits");
        assert_eq!(t.entry(idx).region, Some(region));
    }

    #[test]
    fn find_requires_containment() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        assert!(t.find(0x1040, 64).is_some(), "sub-range is covered");
        assert!(t.find(0x0fff, 2).is_none(), "straddling the base is not");
        assert!(t.find(0x1000, 512).is_none(), "longer than the pin is not");
    }

    #[test]
    fn invalidation_is_overlap_based() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        t.pin(0x2000, 256);
        assert_eq!(t.invalidate_overlap(0x10f0, 16), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.invalidate_overlap(0, 0x10000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn repin_replaces_overlapping_entry() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        let idx = t.find(0x1000, 256).expect("covered");
        t.place(idx, GridRegion { origin: (0, 0), shape: (1, 1) });
        t.pin(0x1000, 256);
        let idx = t.find(0x1000, 256).expect("still covered");
        assert!(!t.entry(idx).installed, "re-pin resets placement");
    }
}
