//! Pinned-operand residency tracking — the runtime half of the
//! compiler's residency-placement pass.
//!
//! `polly_cimPin` (emitted by the offload dataflow graph when a
//! stationary operand is reused across consecutive kernels with no
//! intervening host write) registers a physical range here. The first
//! kernel that uses a pinned operand places it on a tile region and
//! installs it; later kernels reusing the same operand are routed to the
//! *same* region, where the engine's tile residency skips the install
//! DMA and row programming entirely. Host writes reaching the range
//! through any runtime entry point (`cim_host_to_dev`,
//! `cim_sync_to_dev`, `cim_free`) invalidate the entry via the existing
//! PA-range machinery — pinning is a contract that the host does not
//! scribble on the buffer *behind* the runtime's back, not a lock.

use cim_accel::GridRegion;

/// One pinned operand range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyEntry {
    /// Physical base address of the pinned buffer.
    pub pa: u64,
    /// Length in bytes.
    pub len: u64,
    /// Tile region the operand was placed on by its first kernel
    /// (`None` until a kernel uses it).
    pub region: Option<GridRegion>,
    /// Whether a kernel has installed the operand since the pin — the
    /// condition under which the pre-invocation flush of the operand
    /// can be skipped (nothing host-side has touched it since).
    pub installed: bool,
    /// Monotonic stamp of the entry's most recent placement — the LRU
    /// order capacity eviction follows.
    pub last_use: u64,
}

impl ResidencyEntry {
    fn covers(&self, pa: u64, len: u64) -> bool {
        pa >= self.pa && pa + len <= self.pa + self.len
    }

    fn overlaps(&self, pa: u64, len: u64) -> bool {
        crate::ranges::overlaps((self.pa, self.len), (pa, len))
    }
}

/// The per-context table of pinned operands.
#[derive(Debug, Clone, Default)]
pub struct ResidencyTable {
    entries: Vec<ResidencyEntry>,
    /// Tile budget installed pins may hold concurrently (0 = unbounded,
    /// for tables built outside a grid context).
    capacity_tiles: usize,
    /// Monotonic placement clock feeding `last_use` stamps.
    clock: u64,
}

impl ResidencyTable {
    /// A table accounting installed pins against a grid of
    /// `capacity_tiles` tiles.
    pub fn with_capacity(capacity_tiles: usize) -> Self {
        ResidencyTable { capacity_tiles, ..ResidencyTable::default() }
    }

    /// The table's tile budget (0 = unbounded).
    pub fn capacity_tiles(&self) -> usize {
        self.capacity_tiles
    }

    /// Tiles currently held by installed pins.
    pub fn tiles_held(&self) -> usize {
        self.entries.iter().filter(|e| e.installed).map(|e| e.region.map_or(0, |r| r.tiles())).sum()
    }

    /// Pins `[pa, pa+len)`. Re-pinning an overlapping range replaces the
    /// old entry (its placement is stale by definition).
    pub fn pin(&mut self, pa: u64, len: u64) {
        self.entries.retain(|e| !e.overlaps(pa, len));
        self.entries.push(ResidencyEntry { pa, len, region: None, installed: false, last_use: 0 });
    }

    /// Index of the entry covering `[pa, pa+len)`, if any.
    pub fn find(&self, pa: u64, len: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.covers(pa, len))
    }

    /// The entry at `idx`.
    pub fn entry(&self, idx: usize) -> &ResidencyEntry {
        &self.entries[idx]
    }

    /// Records the region the entry's operand was placed on and marks it
    /// installed. Returns whether it was *already* installed — a
    /// residency hit for the caller's statistics.
    pub fn place(&mut self, idx: usize, region: GridRegion) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let e = &mut self.entries[idx];
        let hit = e.installed;
        e.region = Some(region);
        e.installed = true;
        e.last_use = clock;
        hit
    }

    /// Makes room for a placement of `need` tiles: while the installed
    /// pins plus the newcomer would exceed the capacity, the
    /// least-recently-used installed entry (other than `keep`, the
    /// entry being placed) loses its tiles — it stays pinned, so a later
    /// use re-installs it (a capacity spill, not an unpin). Returns how
    /// many entries were evicted. No-op for unbounded tables.
    pub fn evict_for(&mut self, need: usize, keep: Option<usize>) -> usize {
        if self.capacity_tiles == 0 {
            return 0;
        }
        let mut evicted = 0;
        while self.tiles_held() + need > self.capacity_tiles {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|&(i, e)| e.installed && Some(i) != keep)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i);
            let Some(i) = victim else { break };
            let e = &mut self.entries[i];
            e.installed = false;
            e.region = None;
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry overlapping `[pa, pa+len)` (host write or
    /// free reached the range). Returns how many were invalidated.
    pub fn invalidate_overlap(&mut self, pa: u64, len: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !e.overlaps(pa, len));
        before - self.entries.len()
    }

    /// Number of live pins.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_place_and_hit() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        let idx = t.find(0x1000, 256).expect("covered");
        let region = GridRegion { origin: (0, 0), shape: (1, 1) };
        assert!(!t.place(idx, region), "first placement is a miss");
        assert!(t.place(idx, region), "second placement hits");
        assert_eq!(t.entry(idx).region, Some(region));
    }

    #[test]
    fn find_requires_containment() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        assert!(t.find(0x1040, 64).is_some(), "sub-range is covered");
        assert!(t.find(0x0fff, 2).is_none(), "straddling the base is not");
        assert!(t.find(0x1000, 512).is_none(), "longer than the pin is not");
    }

    #[test]
    fn invalidation_is_overlap_based() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        t.pin(0x2000, 256);
        assert_eq!(t.invalidate_overlap(0x10f0, 16), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.invalidate_overlap(0, 0x10000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_eviction_is_lru_and_keeps_the_pin() {
        let mut t = ResidencyTable::with_capacity(2);
        t.pin(0x1000, 256);
        t.pin(0x2000, 256);
        t.pin(0x3000, 256);
        let tile = |r: usize, c: usize| GridRegion { origin: (r, c), shape: (1, 1) };
        let a = t.find(0x1000, 256).expect("a");
        t.place(a, tile(0, 0));
        let b = t.find(0x2000, 256).expect("b");
        t.place(b, tile(0, 1));
        assert_eq!(t.tiles_held(), 2);
        // Touch a again so b becomes the LRU entry.
        t.place(a, tile(0, 0));
        let c = t.find(0x3000, 256).expect("c");
        assert_eq!(t.evict_for(1, Some(c)), 1);
        assert!(!t.entry(b).installed, "LRU entry must lose its tiles");
        assert!(t.entry(a).installed, "recently used entry survives");
        assert_eq!(t.len(), 3, "eviction does not unpin");
        assert!(!t.place(c, tile(1, 0)), "evicted-for placement is a miss");
        assert_eq!(t.tiles_held(), 2);
        assert!(!t.place(b, tile(0, 1)), "re-placing the victim re-installs cold");
    }

    #[test]
    fn unbounded_table_never_evicts() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        let idx = t.find(0x1000, 256).expect("covered");
        t.place(idx, GridRegion { origin: (0, 0), shape: (2, 2) });
        assert_eq!(t.evict_for(1000, None), 0);
        assert!(t.entry(idx).installed);
    }

    #[test]
    fn repin_replaces_overlapping_entry() {
        let mut t = ResidencyTable::default();
        t.pin(0x1000, 256);
        let idx = t.find(0x1000, 256).expect("covered");
        t.place(idx, GridRegion { origin: (0, 0), shape: (1, 1) });
        t.pin(0x1000, 256);
        let idx = t.find(0x1000, 256).expect("still covered");
        assert!(!t.entry(idx).installed, "re-pin resets placement");
    }
}
