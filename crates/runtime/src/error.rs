//! Error type of the CIM runtime library.

use cim_accel::EngineError;
use cim_machine::cma::CmaError;
use std::fmt;

/// Errors surfaced by the user-space CIM API.
#[derive(Debug, Clone, PartialEq)]
pub enum CimError {
    /// An API call was made before [`crate::CimContext::cim_init`].
    NotInitialized,
    /// The CMA carve-out could not satisfy an allocation.
    OutOfDeviceMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// An argument failed validation.
    InvalidArg(String),
    /// A pointer did not refer to a live device allocation.
    InvalidPointer(u64),
    /// The accelerator rejected the command.
    Device(EngineError),
}

impl fmt::Display for CimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CimError::NotInitialized => write!(f, "cim runtime used before cim_init"),
            CimError::OutOfDeviceMemory { requested } => {
                write!(f, "device memory exhausted allocating {requested} bytes")
            }
            CimError::InvalidArg(s) => write!(f, "invalid argument: {s}"),
            CimError::InvalidPointer(p) => write!(f, "invalid device pointer {p:#x}"),
            CimError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for CimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CimError::Device(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<CmaError> for CimError {
    fn from(e: CmaError) -> Self {
        match e {
            CmaError::OutOfMemory { requested, .. } => CimError::OutOfDeviceMemory { requested },
            CmaError::InvalidFree { addr } => CimError::InvalidPointer(addr),
        }
    }
}

#[doc(hidden)]
impl From<EngineError> for CimError {
    fn from(e: EngineError) -> Self {
        CimError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            CimError::NotInitialized.to_string(),
            CimError::OutOfDeviceMemory { requested: 42 }.to_string(),
            CimError::InvalidArg("m must be positive".into()).to_string(),
            CimError::InvalidPointer(0x10).to_string(),
        ];
        for m in msgs {
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn conversions() {
        let e: CimError = CmaError::OutOfMemory { requested: 8, largest_free: 0 }.into();
        assert_eq!(e, CimError::OutOfDeviceMemory { requested: 8 });
        let e: CimError = EngineError::BadDims("m=0".into()).into();
        assert!(matches!(e, CimError::Device(_)));
    }

    #[test]
    fn error_trait_source() {
        use std::error::Error;
        let e = CimError::Device(EngineError::Unsupported("x".into()));
        assert!(e.source().is_some());
        assert!(CimError::NotInitialized.source().is_none());
    }
}
