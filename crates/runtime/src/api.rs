//! User-space CIM runtime API.
//!
//! "The user-space CIM API is responsible for encoding CIM runtime library
//! calls into context register parameters. Furthermore, with the help of
//! the CIM driver, it implements the support for allocating and releasing
//! the physically-contiguous pages in shared memory via the contiguous
//! memory allocator (CMA) APIs" (Section II-E).
//!
//! The call surface mirrors Listing 1 of the paper — `polly_cimInit`,
//! `polly_cimMalloc`, `polly_cimBlasSGemm`, `polly_cimBlasGemmBatched`,
//! `polly_cimDevToHost` — with Rust naming (`cim_init`, `cim_malloc`,
//! `cim_blas_sgemm`, ...). It is what either an application programmer or
//! the Loop Tactics optimizer calls, "similar to what cuBLAS or MKL offers
//! for Nvidia GPU and Intel CPU, respectively" (Section III).

use cim_accel::regs::{Command, Reg};
use cim_accel::{partition_grid, AccelConfig, CimAccelerator, GridRegion};
use cim_machine::cpu::InstClass;
use cim_machine::units::SimTime;
use cim_machine::Machine;
use std::cell::{Ref, RefCell, RefMut};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::driver::{CimDriver, CimFuture, DispatchMode, DriverConfig};
use crate::error::CimError;
use crate::residency::ResidencyTable;
use crate::serve::{GridScheduler, TenantId};
use crate::stats::RuntimeStats;

/// A live device allocation in the shared CMA region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevPtr {
    /// Host virtual address of the buffer.
    pub va: u64,
    /// Physical address handed to the accelerator.
    pub pa: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Transpose selector for BLAS-style entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the transposed operand.
    Yes,
}

impl Transpose {
    fn as_reg(self) -> u64 {
        match self {
            Transpose::No => 0,
            Transpose::Yes => 1,
        }
    }
}

/// A command submitted under [`DispatchMode::Async`] that the context
/// has not yet synchronized, plus the scratch buffers (batched
/// descriptor tables) that must stay live until it completes and the
/// physical ranges of every operand it reads or writes (the granularity
/// at which observation points decide whether they must wait for it).
#[derive(Debug)]
struct PendingCmd {
    future: CimFuture,
    scratch: Vec<DevPtr>,
    ranges: Vec<(u64, u64)>,
}

impl PendingCmd {
    /// Whether any operand of the command overlaps `[pa, pa + len)`.
    /// Empty ranges observe no bytes and overlap nothing
    /// ([`crate::ranges::overlaps`]) — a zero-length query at an
    /// interior point of an operand must not sync the command.
    fn touches(&self, pa: u64, len: u64) -> bool {
        self.ranges.iter().any(|&r| crate::ranges::overlaps((pa, len), r))
    }
}

/// The hardware a context (or N tenant contexts) submits against: one
/// accelerator, one kernel driver — rings, dispatch queue, reactor —
/// and, when the device is fronted by [`crate::serve::CimServer`], the
/// serving scheduler that space/time-multiplexes the tile grid.
///
/// A plain [`CimContext::new`] wraps a private device (the historical
/// single-program shape); the serving layer instead builds one device
/// and hands every tenant a context over the same [`SharedDevice`], so
/// all tenants share the reactor's rings and the dispatch queue's
/// per-region doorbells.
#[derive(Debug)]
pub struct CimDevice {
    /// The modeled accelerator.
    pub accel: CimAccelerator,
    /// The kernel driver session (shared rings + dispatch queue).
    pub driver: CimDriver,
    /// Serving scheduler — `None` for private single-program devices.
    pub scheduler: Option<GridScheduler>,
}

/// Shared handle to a [`CimDevice`]. The runtime is a single-threaded
/// discrete-event model, so `Rc<RefCell<_>>` is the right flavor of
/// sharing: every borrow is scoped to one driver/accelerator operation.
pub type SharedDevice = Rc<RefCell<CimDevice>>;

/// The per-client runtime context (device handle + driver session).
/// Allocation, pending-command, residency and statistics state is all
/// per-context; the accelerator, driver and (under serving) scheduler
/// live in the [`SharedDevice`] behind it.
#[derive(Debug)]
pub struct CimContext {
    device: SharedDevice,
    /// The serving-scheduler identity of this context, when it was
    /// handed out by [`crate::serve::CimServer::connect`].
    tenant: Option<TenantId>,
    device_id: Option<u32>,
    allocations: Vec<DevPtr>,
    pending: Vec<PendingCmd>,
    residency: ResidencyTable,
    /// The finest disjoint partition of the tile grid, computed once —
    /// the round-robin pool [`CimContext::next_subregion`] draws from.
    subregions: Vec<GridRegion>,
    region_cursor: usize,
    stats: RuntimeStats,
}

impl CimContext {
    /// Creates a context around a fresh private accelerator. `bus_cfg`
    /// must match the machine the context will run against. The driver's
    /// device and tile-grid overrides ([`DriverConfig::device`] /
    /// [`DriverConfig::tile_grid`]) are applied to `accel_cfg` first, so
    /// callers can sweep technologies without rebuilding the accelerator
    /// configuration by hand.
    pub fn new(accel_cfg: AccelConfig, driver_cfg: DriverConfig, mach: &Machine) -> Self {
        let accel_cfg = driver_cfg.apply_overrides(accel_cfg);
        let device = Rc::new(RefCell::new(CimDevice {
            accel: CimAccelerator::new(accel_cfg, mach.cfg.bus),
            driver: CimDriver::new(driver_cfg),
            scheduler: None,
        }));
        CimContext::attach(device, None)
    }

    /// Builds a context over an existing shared device. Tenant contexts
    /// ([`crate::serve::CimServer::connect`]) pass their scheduler
    /// identity; `None` is a plain co-resident client.
    pub(crate) fn attach(device: SharedDevice, tenant: Option<TenantId>) -> Self {
        let grid = device.borrow().accel.config().grid;
        CimContext {
            device,
            tenant,
            device_id: None,
            allocations: Vec::new(),
            pending: Vec::new(),
            residency: ResidencyTable::with_capacity(grid.0 * grid.1),
            subregions: partition_grid(grid, grid.0 * grid.1),
            region_cursor: 0,
            stats: RuntimeStats::default(),
        }
    }

    /// The shared device behind this context.
    pub fn device(&self) -> SharedDevice {
        Rc::clone(&self.device)
    }

    /// The serving-scheduler identity of this context, if any.
    pub fn tenant(&self) -> Option<TenantId> {
        self.tenant
    }

    /// The accelerator (for stats and timeline inspection). The guard
    /// must not be held across another runtime call on the same device.
    pub fn accel(&self) -> Ref<'_, CimAccelerator> {
        Ref::map(self.device.borrow(), |d| &d.accel)
    }

    /// Mutable accelerator access (tests, fidelity switches). The guard
    /// must not be held across another runtime call on the same device.
    pub fn accel_mut(&mut self) -> RefMut<'_, CimAccelerator> {
        RefMut::map(self.device.borrow_mut(), |d| &mut d.accel)
    }

    /// The kernel driver model. The guard must not be held across
    /// another runtime call on the same device.
    pub fn driver(&self) -> Ref<'_, CimDriver> {
        Ref::map(self.device.borrow(), |d| &d.driver)
    }

    /// Runtime call statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    fn ensure_init(&self) -> Result<(), CimError> {
        if self.device_id.is_none() {
            return Err(CimError::NotInitialized);
        }
        Ok(())
    }

    /// Commands submitted asynchronously and not yet synchronized.
    pub fn pending_commands(&self) -> usize {
        self.pending.len()
    }

    /// Synchronizes every pending asynchronous command: the host pays
    /// whatever wait remains after its overlapped work ([`CimDriver::sync`])
    /// and the commands' scratch buffers are released. A no-op under
    /// [`DispatchMode::Sync`] or with nothing in flight. Returns the
    /// summed accelerator busy time of the synchronized commands.
    ///
    /// Only explicit synchronization (this call, e.g. at end of run)
    /// drains the whole queue; every buffer-observing entry point —
    /// data movement, coherence syncs *and* `cim_free` — uses the
    /// buffer-scoped [`CimContext::cim_sync_range`] instead, so
    /// streaming pipelines only wait for the commands whose operands
    /// they actually observe.
    ///
    /// # Errors
    ///
    /// Propagates driver or free errors; unprocessed commands (and any
    /// scratch still unfreed) stay pending, so nothing leaks.
    pub fn cim_sync(&mut self, mach: &mut Machine) -> Result<SimTime, CimError> {
        self.sync_where(mach, |_| true)
    }

    /// Synchronizes only the pending commands whose operands overlap the
    /// physical range `[pa, pa + len)` — the buffer-granular doorbell
    /// behind every observation point (`cim_dev_to_host`, the coherence
    /// syncs, host-to-device copies, `cim_free`): a result can never be read, nor an
    /// operand overwritten, before the modeled hardware is done with it,
    /// while in-flight commands on *disjoint* buffers keep running. The
    /// commands an observation leaves in flight are counted in
    /// [`RuntimeStats::selective_sync_skips`]. Returns the summed busy
    /// time of the commands synchronized.
    ///
    /// # Errors
    ///
    /// As for [`CimContext::cim_sync`].
    pub fn cim_sync_range(
        &mut self,
        mach: &mut Machine,
        pa: u64,
        len: u64,
    ) -> Result<SimTime, CimError> {
        let total = self.sync_where(mach, |cmd| cmd.touches(pa, len))?;
        self.stats.selective_sync_skips += self.pending.len() as u64;
        Ok(total)
    }

    fn sync_where(
        &mut self,
        mach: &mut Machine,
        must_sync: impl Fn(&PendingCmd) -> bool,
    ) -> Result<SimTime, CimError> {
        let mut total = SimTime::ZERO;
        let mut pending: VecDeque<PendingCmd> = std::mem::take(&mut self.pending).into();
        let mut kept: Vec<PendingCmd> = Vec::new();
        while let Some(cmd) = pending.pop_front() {
            if !must_sync(&cmd) {
                kept.push(cmd);
                continue;
            }
            let synced = {
                let mut guard = self.device.borrow_mut();
                let dev = &mut *guard;
                dev.driver.sync(mach, &mut dev.accel, &cmd.future)
            };
            if let Err(e) = synced {
                pending.push_front(cmd);
                kept.extend(pending);
                self.pending = kept;
                return Err(e);
            }
            total += cmd.future.busy;
            for (i, p) in cmd.scratch.iter().enumerate() {
                if let Err(e) = self.release(mach, *p) {
                    // The command itself completed; park its unfreed
                    // scratch on a re-queued entry (the future is already
                    // past `ready_at`, so a later sync retries the frees
                    // without waiting again).
                    let scratch = cmd.scratch[i..].to_vec();
                    let ranges = scratch.iter().map(|s| (s.pa, s.len)).collect();
                    pending.push_front(PendingCmd { future: cmd.future, scratch, ranges });
                    kept.extend(pending);
                    self.pending = kept;
                    return Err(e);
                }
            }
        }
        self.pending = kept;
        Ok(total)
    }

    /// Dispatches the armed command per the configured [`DispatchMode`],
    /// taking ownership of `scratch` buffers that must be freed once the
    /// command is done (on every path, including errors — the descriptor
    /// table must never leak). `region` is the tile sub-array the command
    /// was armed for (the caller also wrote it into
    /// [`Reg::Region`]); `reads`/`writes` are the physical extents of
    /// its operands, which key both the driver's per-region doorbell and
    /// — unioned — the observation ranges later sync points check.
    fn dispatch_armed(
        &mut self,
        mach: &mut Machine,
        scratch: Vec<DevPtr>,
        region: GridRegion,
        reads: Vec<(u64, u64)>,
        writes: Vec<(u64, u64)>,
    ) -> Result<SimTime, CimError> {
        let outcome = {
            let mut guard = self.device.borrow_mut();
            let dev = &mut *guard;
            let stalls0 = dev.driver.stats().queue_full_stalls;
            let cells0 = dev.accel.stats().cell_writes;
            let outcome = match dev.driver.config().dispatch {
                DispatchMode::Sync => dev
                    .driver
                    .invoke_region(mach, &mut dev.accel, region, &reads, &writes)
                    .map(|busy| (busy, None)),
                DispatchMode::Async => dev
                    .driver
                    .submit_region(mach, &mut dev.accel, region, &reads, &writes)
                    .map(|future| (future.busy, Some(future))),
            };
            // Queue-full backpressure lands on the tenant whose
            // submission stalled, not smeared across the device.
            self.stats.queue_full_stalls += dev.driver.stats().queue_full_stalls - stalls0;
            if let Ok((busy, future)) = &outcome {
                if let (Some(tid), Some(sched)) = (self.tenant, dev.scheduler.as_mut()) {
                    // The scheduler meters what the command actually
                    // consumed: tile-time until its predicted retire
                    // instant and the cell writes of its installs.
                    let ready_at = future.map_or(mach.now(), |f| f.ready_at);
                    let cells = dev.accel.stats().cell_writes - cells0;
                    sched.note_dispatch(tid, region, *busy, ready_at, cells);
                }
            }
            outcome
        };
        match outcome {
            Ok((busy, None)) => {
                self.invalidate_written(&writes);
                for p in scratch {
                    self.release(mach, p)?;
                }
                Ok(busy)
            }
            Ok((busy, Some(future))) => {
                self.stats.async_submits += 1;
                self.invalidate_written(&writes);
                let mut ranges = reads;
                ranges.extend(writes);
                self.pending.push(PendingCmd { future, scratch, ranges });
                Ok(busy)
            }
            Err(e) => {
                for p in scratch {
                    self.release(mach, p)?;
                }
                Err(e)
            }
        }
    }

    /// The device just (functionally) wrote these ranges: any resident
    /// crossbar operand or pin sourced from them is stale. Without this,
    /// a kernel whose output later serves as another kernel's stationary
    /// operand could hit residency on a pre-overwrite install — the
    /// coherence syncs alone cannot catch it once the compiler's
    /// dataflow pass elides the (host-cache-wise redundant) h2d.
    fn invalidate_written(&mut self, writes: &[(u64, u64)]) {
        for &(pa, len) in writes {
            self.invalidate_residency(pa, len);
        }
    }

    /// `polly_cimPin(ptr)`: declares that the buffer's contents are
    /// stable across the upcoming kernels — the compiler's residency
    /// placement emits this when a stationary operand is reused by
    /// consecutive kernels with no intervening host write. The first
    /// kernel using the operand places it on a tile region and installs
    /// it; later kernels are routed to the same region and skip both the
    /// pre-invocation flush of the operand and (via tile residency) the
    /// install itself. Any host write reaching the range through the
    /// runtime (`cim_host_to_dev`, `cim_sync_to_dev`, `cim_free`) — or a
    /// device kernel writing into it — invalidates the pin.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidPointer`] for unregistered buffers.
    pub fn cim_pin(&mut self, mach: &mut Machine, ptr: DevPtr) -> Result<(), CimError> {
        self.ensure_init()?;
        self.check_live(&ptr)?;
        self.device.borrow_mut().driver.ioctl(mach);
        self.residency.pin(ptr.pa, ptr.len);
        self.stats.pin_calls += 1;
        Ok(())
    }

    /// The pinned-operand residency table (inspection).
    pub fn residency(&self) -> &ResidencyTable {
        &self.residency
    }

    /// Next sub-region in the round-robin over the finest disjoint
    /// partition of the tile grid — deterministic, so identical runs
    /// replay identical placements.
    fn next_subregion(&mut self) -> GridRegion {
        let r = self.subregions[self.region_cursor % self.subregions.len()];
        self.region_cursor += 1;
        r
    }

    /// Chooses the tile region for a kernel whose stationary operand
    /// `op(A)` lives at `a` with logical extent `m x k`, and reports
    /// whether the operand is pinned and already installed (in which
    /// case its pre-invocation flush is skipped).
    ///
    /// Placement policy: a pinned operand keeps the region its first
    /// kernel chose, so reuse hits tile residency; a tenant context
    /// places fresh single-block work on its scheduler lease (the
    /// wear-aware region the serving layer granted it); otherwise
    /// single-block operands dispatched asynchronously get round-robin
    /// sub-regions (they use one tile regardless, and disjoint regions
    /// let separate calls overlap), and everything else takes the full
    /// grid (maximal wave parallelism within the command — under
    /// serving this serializes against every lease, the documented cost
    /// of multi-tile kernels on a shared grid).
    fn place_stationary(&mut self, a: &DevPtr, m: usize, k: usize) -> (GridRegion, bool) {
        let (grid, single_block, dispatch_async, leased) = {
            let mut guard = self.device.borrow_mut();
            let dev = &mut *guard;
            let cfg = dev.accel.config();
            let grid = cfg.grid;
            let single_block = k <= cfg.rows && m <= cfg.cols;
            let dispatch_async = dev.driver.config().dispatch == DispatchMode::Async;
            let leased = match (self.tenant, dev.scheduler.as_mut()) {
                (Some(tid), Some(sched)) if single_block => sched.lease_region(tid, &dev.accel),
                _ => None,
            };
            (grid, single_block, dispatch_async, leased)
        };
        if let Some(idx) = self.residency.find(a.pa, a.len) {
            let region = match self.residency.entry(idx).region {
                Some(r) => r,
                None => match leased {
                    Some(r) => r,
                    None if single_block => self.next_subregion(),
                    None => GridRegion::full(grid),
                },
            };
            // A fresh placement must fit the grid's tile budget: evict
            // the least-recently-used installed pins until it does — a
            // capacity spill, charged to the statistics. (Reuse of an
            // already-installed entry holds its own tiles and needs no
            // room.)
            if !self.residency.entry(idx).installed {
                self.stats.pin_evictions +=
                    self.residency.evict_for(region.tiles(), Some(idx)) as u64;
            }
            let hit = self.residency.place(idx, region);
            if hit {
                self.stats.pin_hits += 1;
            }
            return (region, hit);
        }
        if let Some(region) = leased {
            return (region, false);
        }
        let overlap_eligible = dispatch_async && single_block && grid.0 * grid.1 > 1;
        if overlap_eligible {
            (self.next_subregion(), false)
        } else {
            (GridRegion::full(grid), false)
        }
    }

    /// Serving-policy admission control, run before a tenant kernel
    /// reaches the hardware. The host-side delay is the fairness lever:
    /// a command already in the rings cannot be reordered, so the
    /// scheduler shapes traffic where commands are *born* — a tenant
    /// whose accumulated tile-time backlog exceeds its weighted quota
    /// (or whose wear budget is spent) idles before submitting, leaving
    /// the grid to its neighbors. No-op for non-tenant contexts.
    fn tenant_admission(&mut self, mach: &mut Machine) {
        let Some(tid) = self.tenant else { return };
        let Some((delay, backlog, wear)) = ({
            let mut guard = self.device.borrow_mut();
            guard.scheduler.as_mut().map(|sched| sched.admission(tid, mach.now()))
        }) else {
            return;
        };
        if delay > SimTime::ZERO {
            mach.core.idle_wait(delay);
        }
        if backlog {
            self.stats.sched_throttles += 1;
        }
        if wear {
            self.stats.wear_throttles += 1;
        }
    }

    /// Detaches this context from the shared device: pending commands
    /// are synchronized (the tenant's own doorbells are claimed — a
    /// departing tenant leaves nothing unclaimed in the completion
    /// ring), every live allocation is released (which invalidates its
    /// pins), and the serving lease is reclaimed for the remaining
    /// tenants. The context is left uninitialized; it can be dropped or
    /// re-`cim_init`ed as a fresh client.
    ///
    /// # Errors
    ///
    /// Propagates driver or free errors; state already torn down stays
    /// torn down (the call is safe to retry).
    pub fn disconnect(&mut self, mach: &mut Machine) -> Result<(), CimError> {
        self.cim_sync(mach)?;
        while let Some(ptr) = self.allocations.last().copied() {
            self.release(mach, ptr)?;
        }
        if let Some(tid) = self.tenant {
            if let Some(sched) = self.device.borrow_mut().scheduler.as_mut() {
                sched.disconnect(tid);
            }
        }
        self.device_id = None;
        Ok(())
    }

    /// `polly_cimInit(device)`: opens the device and resets the engine.
    ///
    /// # Errors
    ///
    /// Currently infallible for device 0; kept fallible for API stability.
    pub fn cim_init(&mut self, mach: &mut Machine, device: u32) -> Result<(), CimError> {
        self.device.borrow_mut().driver.ioctl(mach);
        self.device_id = Some(device);
        self.stats.init_calls += 1;
        Ok(())
    }

    /// `polly_cimMalloc(size)`: allocates physically contiguous shared
    /// memory via CMA.
    ///
    /// # Errors
    ///
    /// [`CimError::NotInitialized`] before `cim_init`;
    /// [`CimError::OutOfDeviceMemory`] when the carve-out is full.
    pub fn cim_malloc(&mut self, mach: &mut Machine, bytes: u64) -> Result<DevPtr, CimError> {
        self.ensure_init()?;
        if bytes == 0 {
            return Err(CimError::InvalidArg("zero-byte allocation".into()));
        }
        self.device.borrow_mut().driver.ioctl(mach);
        self.device.borrow_mut().driver.charge_malloc(mach);
        let (va, pa) = mach.alloc_cma(bytes)?;
        let ptr = DevPtr { va, pa, len: bytes };
        self.allocations.push(ptr);
        self.stats.malloc_calls += 1;
        self.stats.bytes_allocated += bytes;
        Ok(ptr)
    }

    /// `polly_cimFree(ptr)`: releases a device allocation.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidPointer`] if `ptr` is not live.
    pub fn cim_free(&mut self, mach: &mut Machine, ptr: DevPtr) -> Result<(), CimError> {
        self.ensure_init()?;
        // The buffer may back an in-flight command: complete those first.
        self.cim_sync_range(mach, ptr.pa, ptr.len)?;
        self.release(mach, ptr)
    }

    /// Releases a live allocation without synchronizing — the internal
    /// path for runtime-owned scratch, whose commands are known complete
    /// by the time it is called.
    fn release(&mut self, mach: &mut Machine, ptr: DevPtr) -> Result<(), CimError> {
        let Some(at) = self.allocations.iter().position(|p| p == &ptr) else {
            return Err(CimError::InvalidPointer(ptr.va));
        };
        self.device.borrow_mut().driver.ioctl(mach);
        mach.free_cma(ptr.va, ptr.pa)?;
        self.allocations.swap_remove(at);
        // A freed range may be recycled by the next allocation: any pin
        // over it is dead.
        self.stats.pin_invalidations += self.residency.invalidate_overlap(ptr.pa, ptr.len) as u64;
        Ok(())
    }

    fn check_live(&self, ptr: &DevPtr) -> Result<(), CimError> {
        // Sub-ranges of a live allocation are valid pointers (tiled code
        // passes views into larger buffers).
        let inside = self.allocations.iter().any(|p| {
            ptr.va >= p.va
                && ptr.va + ptr.len <= p.va + p.len
                && ptr.pa >= p.pa
                && ptr.pa + ptr.len <= p.pa + p.len
        });
        if inside {
            Ok(())
        } else {
            Err(CimError::InvalidPointer(ptr.va))
        }
    }

    /// Registers an externally CMA-allocated buffer with the runtime,
    /// charging the `cim_malloc` driver path. This models the zero-copy
    /// flow of the compiler-generated code: application arrays already
    /// live in the physically contiguous shared region (one of the two
    /// CMA benefits of Section II-E), so `polly_cimMalloc` binds rather
    /// than copies.
    ///
    /// # Errors
    ///
    /// [`CimError::NotInitialized`] before `cim_init`.
    pub fn cim_adopt(&mut self, mach: &mut Machine, ptr: DevPtr) -> Result<(), CimError> {
        self.ensure_init()?;
        self.device.borrow_mut().driver.ioctl(mach);
        self.device.borrow_mut().driver.charge_malloc(mach);
        self.allocations.push(ptr);
        self.stats.malloc_calls += 1;
        self.stats.bytes_allocated += ptr.len;
        Ok(())
    }

    /// Zero-copy host-to-device synchronization of a shared buffer: the
    /// driver flushes the host's dirty lines so the accelerator's
    /// uncacheable reads see fresh data, and operand residency is
    /// invalidated (the crossbar contents may be stale).
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidPointer`] for unregistered buffers.
    pub fn cim_sync_to_dev(&mut self, mach: &mut Machine, ptr: DevPtr) -> Result<(), CimError> {
        self.ensure_init()?;
        self.cim_sync_range(mach, ptr.pa, ptr.len)?;
        self.check_live(&ptr)?;
        self.device.borrow_mut().driver.flush_shared(mach, &[(ptr.pa, ptr.len)]);
        self.invalidate_residency(ptr.pa, ptr.len);
        self.stats.h2d_calls += 1;
        Ok(())
    }

    /// Drops crossbar residency and pins over `[pa, pa+len)` — the host
    /// (or a device kernel) (re)wrote the range, so installed operands
    /// and pinned entries backed by it are stale. Range-precise on both
    /// sides: refreshing one buffer never evicts an unrelated resident
    /// operand.
    fn invalidate_residency(&mut self, pa: u64, len: u64) {
        self.device.borrow_mut().accel.invalidate_range(pa, len);
        self.stats.pin_invalidations += self.residency.invalidate_overlap(pa, len) as u64;
    }

    /// Zero-copy device-to-host synchronization: invalidates the host's
    /// (stale) cached lines over the buffer so subsequent loads observe
    /// the accelerator's uncacheable writes.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidPointer`] for unregistered buffers.
    pub fn cim_sync_to_host(&mut self, mach: &mut Machine, ptr: DevPtr) -> Result<(), CimError> {
        self.ensure_init()?;
        self.cim_sync_range(mach, ptr.pa, ptr.len)?;
        self.check_live(&ptr)?;
        self.device.borrow_mut().driver.flush_shared(mach, &[(ptr.pa, ptr.len)]);
        self.stats.d2h_calls += 1;
        Ok(())
    }

    /// Copies `len` bytes from host memory into a device buffer (cached
    /// host loads + stores; the dirtied lines are what the driver flushes
    /// before the next invocation). Invalidates operand residency.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidArg`] if the copy exceeds the allocation.
    pub fn cim_host_to_dev(
        &mut self,
        mach: &mut Machine,
        dst: DevPtr,
        src_va: u64,
        len: u64,
    ) -> Result<(), CimError> {
        self.ensure_init()?;
        self.cim_sync_range(mach, dst.pa, dst.len)?;
        self.check_live(&dst)?;
        if len > dst.len {
            return Err(CimError::InvalidArg(format!(
                "copy of {len} bytes into {}-byte buffer",
                dst.len
            )));
        }
        copy_words(mach, src_va, dst.va, len);
        self.invalidate_residency(dst.pa, dst.len);
        self.stats.h2d_bytes += len;
        self.stats.h2d_calls += 1;
        Ok(())
    }

    /// `polly_cimDevToHost`: copies a result buffer back to host memory.
    /// The device wrote through uncacheable accesses, so the host first
    /// invalidates its (stale) lines for the range.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidArg`] if the copy exceeds the allocation.
    pub fn cim_dev_to_host(
        &mut self,
        mach: &mut Machine,
        dst_va: u64,
        src: DevPtr,
        len: u64,
    ) -> Result<(), CimError> {
        self.ensure_init()?;
        self.cim_sync_range(mach, src.pa, src.len)?;
        self.check_live(&src)?;
        if len > src.len {
            return Err(CimError::InvalidArg(format!(
                "copy of {len} bytes from {}-byte buffer",
                src.len
            )));
        }
        self.device.borrow_mut().driver.flush_shared(mach, &[(src.pa, len)]);
        copy_words(mach, src.va, dst_va, len);
        self.stats.d2h_bytes += len;
        self.stats.d2h_calls += 1;
        Ok(())
    }

    /// `polly_cimBlasSGemm`: `C = alpha*op(A)*op(B) + beta*C` on the
    /// accelerator. Returns the accelerator busy time.
    ///
    /// # Errors
    ///
    /// Argument validation errors, or [`CimError::Device`] from the engine
    /// (e.g. `op(B)` transposed, which the hardware does not support).
    #[allow(clippy::too_many_arguments)]
    pub fn cim_blas_sgemm(
        &mut self,
        mach: &mut Machine,
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: DevPtr,
        lda: usize,
        b: DevPtr,
        ldb: usize,
        beta: f32,
        c: DevPtr,
        ldc: usize,
    ) -> Result<SimTime, CimError> {
        self.ensure_init()?;
        for p in [&a, &b, &c] {
            self.check_live(p)?;
        }
        self.stats.gemm_calls += 1;
        self.tenant_admission(mach);
        self.device.borrow_mut().driver.ioctl(mach);
        let (region, a_resident) = self.place_stationary(&a, m, k);
        if a_resident {
            // Pinned and installed: nothing host-side touched A since,
            // so its flush would walk clean lines for nothing.
            self.device.borrow_mut().driver.flush_shared(mach, &[(b.pa, b.len), (c.pa, c.len)]);
        } else {
            self.device
                .borrow_mut()
                .driver
                .flush_shared(mach, &[(a.pa, a.len), (b.pa, b.len), (c.pa, c.len)]);
        }
        let regs = [
            (Reg::M, m as u64),
            (Reg::N, n as u64),
            (Reg::K, k as u64),
            (Reg::Lda, lda as u64),
            (Reg::Ldb, ldb as u64),
            (Reg::Ldc, ldc as u64),
            (Reg::AddrA, a.pa),
            (Reg::AddrB, b.pa),
            (Reg::AddrC, c.pa),
            (Reg::Alpha, alpha.to_bits() as u64),
            (Reg::Beta, beta.to_bits() as u64),
            (Reg::TransA, trans_a.as_reg()),
            (Reg::TransB, trans_b.as_reg()),
            (Reg::Region, region.encode()),
            (Reg::Command, Command::Gemm as u64),
        ];
        {
            let mut guard = self.device.borrow_mut();
            let dev = &mut *guard;
            dev.driver.write_regs(mach, &mut dev.accel, &regs);
        }
        self.dispatch_armed(
            mach,
            Vec::new(),
            region,
            vec![(a.pa, a.len), (b.pa, b.len)],
            vec![(c.pa, c.len)],
        )
    }

    /// `polly_cimBlasSGemv`: `y = alpha*op(A)*x + beta*y`.
    ///
    /// # Errors
    ///
    /// As for [`CimContext::cim_blas_sgemm`].
    #[allow(clippy::too_many_arguments)]
    pub fn cim_blas_sgemv(
        &mut self,
        mach: &mut Machine,
        trans_a: Transpose,
        m: usize,
        k: usize,
        alpha: f32,
        a: DevPtr,
        lda: usize,
        x: DevPtr,
        beta: f32,
        y: DevPtr,
    ) -> Result<SimTime, CimError> {
        self.ensure_init()?;
        for p in [&a, &x, &y] {
            self.check_live(p)?;
        }
        self.stats.gemv_calls += 1;
        self.tenant_admission(mach);
        self.device.borrow_mut().driver.ioctl(mach);
        let (region, a_resident) = self.place_stationary(&a, m, k);
        if a_resident {
            self.device.borrow_mut().driver.flush_shared(mach, &[(x.pa, x.len), (y.pa, y.len)]);
        } else {
            self.device
                .borrow_mut()
                .driver
                .flush_shared(mach, &[(a.pa, a.len), (x.pa, x.len), (y.pa, y.len)]);
        }
        let regs = [
            (Reg::M, m as u64),
            (Reg::K, k as u64),
            (Reg::Lda, lda as u64),
            (Reg::AddrA, a.pa),
            (Reg::AddrB, x.pa),
            (Reg::AddrC, y.pa),
            (Reg::Alpha, alpha.to_bits() as u64),
            (Reg::Beta, beta.to_bits() as u64),
            (Reg::TransA, trans_a.as_reg()),
            (Reg::TransB, 0),
            (Reg::Region, region.encode()),
            (Reg::Command, Command::Gemv as u64),
        ];
        {
            let mut guard = self.device.borrow_mut();
            let dev = &mut *guard;
            dev.driver.write_regs(mach, &mut dev.accel, &regs);
        }
        self.dispatch_armed(
            mach,
            Vec::new(),
            region,
            vec![(a.pa, a.len), (x.pa, x.len)],
            vec![(y.pa, y.len)],
        )
    }

    /// `polly_cimBlasGemmBatched`: a batch of same-shape GEMMs issued in
    /// one invocation. "The interface for the batched operation is similar
    /// to the one provided for polly_cimBlasSGemm with the only exception
    /// of having arrays of pointers instead of single pointers"
    /// (Section III-B). Batches sharing `A` reuse the installed operand.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidArg`] on mismatched batch lists.
    #[allow(clippy::too_many_arguments)]
    pub fn cim_blas_gemm_batched(
        &mut self,
        mach: &mut Machine,
        trans_a: Transpose,
        trans_b: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a_list: &[DevPtr],
        lda: usize,
        b_list: &[DevPtr],
        ldb: usize,
        beta: f32,
        c_list: &[DevPtr],
        ldc: usize,
    ) -> Result<SimTime, CimError> {
        self.ensure_init()?;
        let count = a_list.len();
        if count == 0 || b_list.len() != count || c_list.len() != count {
            return Err(CimError::InvalidArg(format!(
                "batch lists must be equal and non-empty (a={}, b={}, c={})",
                a_list.len(),
                b_list.len(),
                c_list.len()
            )));
        }
        let mut flush = Vec::new();
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for p in a_list.iter().chain(b_list).chain(c_list) {
            self.check_live(p)?;
            flush.push((p.pa, p.len));
        }
        for p in a_list.iter().chain(b_list) {
            reads.push((p.pa, p.len));
        }
        for p in c_list {
            writes.push((p.pa, p.len));
        }
        self.stats.gemm_batched_calls += 1;
        self.tenant_admission(mach);
        self.device.borrow_mut().driver.ioctl(mach);
        // Descriptor table written into a scratch CMA buffer by user space.
        let table = self.cim_malloc(mach, (count * 24) as u64)?;
        let mut raw = Vec::with_capacity(count * 24);
        for i in 0..count {
            raw.extend_from_slice(&a_list[i].pa.to_le_bytes());
            raw.extend_from_slice(&b_list[i].pa.to_le_bytes());
            raw.extend_from_slice(&c_list[i].pa.to_le_bytes());
        }
        // Host writes descriptors (cached), flushed with the operands.
        for (i, chunk) in raw.chunks_exact(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            let pa = table.pa + (i * 8) as u64;
            let out = mach.hier.access(pa, 8, true);
            mach.core.stall(out.stall_cycles);
            mach.core.retire(InstClass::Store, 1);
            mach.mem.write(pa, &word);
        }
        flush.push((table.pa, table.len));
        reads.push((table.pa, table.len));
        self.device.borrow_mut().driver.flush_shared(mach, &flush);
        // The batch schedules its own elements across sub-grids inside
        // the engine; the command as a whole occupies the full grid.
        let region = GridRegion::full(self.device.borrow().accel.config().grid);
        let regs = [
            (Reg::M, m as u64),
            (Reg::N, n as u64),
            (Reg::K, k as u64),
            (Reg::Lda, lda as u64),
            (Reg::Ldb, ldb as u64),
            (Reg::Ldc, ldc as u64),
            (Reg::Alpha, alpha.to_bits() as u64),
            (Reg::Beta, beta.to_bits() as u64),
            (Reg::TransA, trans_a.as_reg()),
            (Reg::TransB, trans_b.as_reg()),
            (Reg::BatchCount, count as u64),
            (Reg::AddrBatch, table.pa),
            (Reg::Region, region.encode()),
            (Reg::Command, Command::GemmBatched as u64),
        ];
        {
            let mut guard = self.device.borrow_mut();
            let dev = &mut *guard;
            dev.driver.write_regs(mach, &mut dev.accel, &regs);
        }
        // The scratch table travels with the dispatch: freed after a
        // synchronous invocation (success *or* device error) or when the
        // asynchronous command is synchronized — never leaked. The reads
        // list every input operand plus the table itself, the writes
        // every output, which together are exactly the observation
        // footprint of the command.
        self.dispatch_armed(mach, vec![table], region, reads, writes)
    }

    /// `polly_cimConv2d`: single-channel 2-D convolution (valid padding).
    ///
    /// # Errors
    ///
    /// As for [`CimContext::cim_blas_sgemm`].
    #[allow(clippy::too_many_arguments)]
    pub fn cim_conv2d(
        &mut self,
        mach: &mut Machine,
        img: DevPtr,
        h: usize,
        w: usize,
        filt: DevPtr,
        fh: usize,
        fw: usize,
        out: DevPtr,
    ) -> Result<SimTime, CimError> {
        self.ensure_init()?;
        for p in [&img, &filt, &out] {
            self.check_live(p)?;
        }
        self.stats.conv_calls += 1;
        self.tenant_admission(mach);
        self.device.borrow_mut().driver.ioctl(mach);
        self.device
            .borrow_mut()
            .driver
            .flush_shared(mach, &[(img.pa, img.len), (filt.pa, filt.len), (out.pa, out.len)]);
        // Convolution always runs on tile (0, 0); arm the full grid so
        // the doorbell serializes it against anything touching that tile.
        let region = GridRegion::full(self.device.borrow().accel.config().grid);
        let regs = [
            (Reg::AddrA, img.pa),
            (Reg::AddrB, filt.pa),
            (Reg::AddrC, out.pa),
            (Reg::ImgH, h as u64),
            (Reg::ImgW, w as u64),
            (Reg::FiltH, fh as u64),
            (Reg::FiltW, fw as u64),
            (Reg::Region, region.encode()),
            (Reg::Command, Command::Conv2d as u64),
        ];
        {
            let mut guard = self.device.borrow_mut();
            let dev = &mut *guard;
            dev.driver.write_regs(mach, &mut dev.accel, &regs);
        }
        // The conv kernel accumulates into its output: `out` is both
        // read and written.
        self.dispatch_armed(
            mach,
            Vec::new(),
            region,
            vec![(img.pa, img.len), (filt.pa, filt.len)],
            vec![(out.pa, out.len)],
        )
    }
}

/// Cached word copy: `ldr; str; add; bne` per 4 bytes. The data moves
/// through the machine's bulk run path (one cache classification per
/// line, one translate per page) while the retired instruction mix stays
/// that of the word loop.
fn copy_words(mach: &mut Machine, src_va: u64, dst_va: u64, len: u64) {
    let words = len / 4;
    if words == 0 {
        return;
    }
    mach.host_copy_f32(src_va, dst_va, words);
    mach.core.retire(InstClass::Load, words);
    mach.core.retire(InstClass::Store, words);
    mach.core.retire(InstClass::IntAlu, words);
    mach.core.retire(InstClass::Branch, words);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_machine::MachineConfig;

    fn setup() -> (Machine, CimContext) {
        let mach = Machine::new(MachineConfig::test_small());
        let ctx = CimContext::new(AccelConfig::test_small(), DriverConfig::default(), &mach);
        (mach, ctx)
    }

    fn dev_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
        let host = mach.alloc_host((data.len() * 4) as u64);
        mach.poke_f32_slice(host, data);
        let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
        ctx.cim_host_to_dev(mach, dev, host, (data.len() * 4) as u64).expect("h2d");
        dev
    }

    #[test]
    fn api_requires_init() {
        let (mut mach, mut ctx) = setup();
        assert_eq!(ctx.cim_malloc(&mut mach, 64).unwrap_err(), CimError::NotInitialized);
        ctx.cim_init(&mut mach, 0).expect("init");
        assert!(ctx.cim_malloc(&mut mach, 64).is_ok());
    }

    #[test]
    fn listing1_call_sequence_runs_gemm() {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let a = dev_mat(&mut ctx, &mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let b = dev_mat(&mut ctx, &mut mach, &[5.0, 6.0, 7.0, 8.0]);
        let c = dev_mat(&mut ctx, &mut mach, &[0.0; 4]);
        let dur = ctx
            .cim_blas_sgemm(
                &mut mach,
                Transpose::No,
                Transpose::No,
                2,
                2,
                2,
                1.0,
                a,
                2,
                b,
                2,
                0.0,
                c,
                2,
            )
            .expect("gemm");
        assert!(dur.as_us() > 0.0);
        let host_c = mach.alloc_host(16);
        ctx.cim_dev_to_host(&mut mach, host_c, c, 16).expect("d2h");
        let mut out = [0f32; 4];
        mach.peek_f32_slice(host_c, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemv_with_alpha_beta() {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let a = dev_mat(&mut ctx, &mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let x = dev_mat(&mut ctx, &mut mach, &[2.0, 3.0]);
        let y = dev_mat(&mut ctx, &mut mach, &[10.0, 20.0]);
        ctx.cim_blas_sgemv(&mut mach, Transpose::No, 2, 2, 2.0, a, 2, x, 0.5, y).expect("gemv");
        let host = mach.alloc_host(8);
        ctx.cim_dev_to_host(&mut mach, host, y, 8).expect("d2h");
        let mut out = [0f32; 2];
        mach.peek_f32_slice(host, &mut out);
        assert_eq!(out, [2.0 * 2.0 + 5.0, 2.0 * 3.0 + 10.0]);
    }

    #[test]
    fn batched_gemm_with_shared_a_reuses_crossbar() {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let a = dev_mat(&mut ctx, &mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let b1 = dev_mat(&mut ctx, &mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let b2 = dev_mat(&mut ctx, &mut mach, &[5.0, 6.0, 7.0, 8.0]);
        let c1 = dev_mat(&mut ctx, &mut mach, &[0.0; 4]);
        let c2 = dev_mat(&mut ctx, &mut mach, &[0.0; 4]);
        ctx.cim_blas_gemm_batched(
            &mut mach,
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            &[a, a],
            2,
            &[b1, b2],
            2,
            0.0,
            &[c1, c2],
            2,
        )
        .expect("batched");
        // Shared A installed once.
        assert_eq!(ctx.accel().stats().rows_programmed, 2);
        let host = mach.alloc_host(16);
        ctx.cim_dev_to_host(&mut mach, host, c2, 16).expect("d2h");
        let mut out = [0f32; 4];
        mach.peek_f32_slice(host, &mut out);
        assert_eq!(out, [5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn batched_error_path_frees_descriptor_table() {
        // The scratch CMA descriptor table must be released even when
        // the engine rejects the command — in both dispatch modes.
        for dispatch in [DispatchMode::Sync, DispatchMode::Async] {
            let mut mach = Machine::new(cim_machine::MachineConfig::test_small());
            let drv_cfg = DriverConfig { dispatch, ..DriverConfig::default() };
            let mut ctx = CimContext::new(AccelConfig::test_small(), drv_cfg, &mach);
            ctx.cim_init(&mut mach, 0).expect("init");
            let a = dev_mat(&mut ctx, &mut mach, &[1.0, 0.0, 0.0, 1.0]);
            let b = dev_mat(&mut ctx, &mut mach, &[1.0, 2.0, 3.0, 4.0]);
            let c = dev_mat(&mut ctx, &mut mach, &[0.0; 4]);
            let used_before = mach.cma.used();
            // m = 0 -> the engine flags BadDims after the table is built.
            let err = ctx
                .cim_blas_gemm_batched(
                    &mut mach,
                    Transpose::No,
                    Transpose::No,
                    0,
                    2,
                    2,
                    1.0,
                    &[a],
                    2,
                    &[b],
                    2,
                    0.0,
                    &[c],
                    2,
                )
                .unwrap_err();
            assert!(matches!(err, CimError::Device(_)), "{dispatch:?}");
            assert_eq!(
                mach.cma.used(),
                used_before,
                "{dispatch:?}: descriptor table leaked CMA bytes"
            );
            assert_eq!(ctx.pending_commands(), 0, "{dispatch:?}");
        }
    }

    #[test]
    fn async_batched_defers_wait_until_results_observed() {
        let mut mach = Machine::new(cim_machine::MachineConfig::test_small());
        let drv_cfg = DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() };
        let mut ctx = CimContext::new(AccelConfig::test_small().with_grid(2, 2), drv_cfg, &mach);
        ctx.cim_init(&mut mach, 0).expect("init");
        let a1 = dev_mat(&mut ctx, &mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let a2 = dev_mat(&mut ctx, &mut mach, &[2.0, 0.0, 0.0, 2.0]);
        let b1 = dev_mat(&mut ctx, &mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let b2 = dev_mat(&mut ctx, &mut mach, &[5.0, 6.0, 7.0, 8.0]);
        let c1 = dev_mat(&mut ctx, &mut mach, &[0.0; 4]);
        let c2 = dev_mat(&mut ctx, &mut mach, &[0.0; 4]);
        ctx.cim_blas_gemm_batched(
            &mut mach,
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            &[a1, a2],
            2,
            &[b1, b2],
            2,
            0.0,
            &[c1, c2],
            2,
        )
        .expect("batched submits");
        // The call returned with the command in flight; the independent
        // elements ran on disjoint tile regions.
        assert_eq!(ctx.pending_commands(), 1);
        assert_eq!(ctx.stats().async_submits, 1);
        assert!(ctx.accel().stats().max_tiles_active >= 2);
        // Overlap host work, then observe a result: the d2h path syncs.
        mach.advance_host(cim_machine::units::SimTime::from_us(5.0));
        let host = mach.alloc_host(16);
        ctx.cim_dev_to_host(&mut mach, host, c2, 16).expect("d2h");
        assert_eq!(ctx.pending_commands(), 0);
        let mut out = [0f32; 4];
        mach.peek_f32_slice(host, &mut out);
        assert_eq!(out, [10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn observation_of_disjoint_buffer_leaves_commands_in_flight() {
        // The buffer-scoped doorbell: while an async GEMM is in flight,
        // data movement on buffers the command does not touch must not
        // pay its wait — only observing an actual operand does.
        let mut mach = Machine::new(cim_machine::MachineConfig::test_small());
        let drv_cfg = DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() };
        let mut ctx = CimContext::new(AccelConfig::test_small(), drv_cfg, &mach);
        ctx.cim_init(&mut mach, 0).expect("init");
        let a = dev_mat(&mut ctx, &mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let b = dev_mat(&mut ctx, &mut mach, &[1.0, 2.0, 3.0, 4.0]);
        let c = dev_mat(&mut ctx, &mut mach, &[0.0; 4]);
        let other = dev_mat(&mut ctx, &mut mach, &[9.0; 4]);
        ctx.cim_blas_sgemm(
            &mut mach,
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            a,
            2,
            b,
            2,
            0.0,
            c,
            2,
        )
        .expect("submits");
        assert_eq!(ctx.pending_commands(), 1);
        // Unrelated staging traffic: command stays in flight, skip counted.
        let host = mach.alloc_host(16);
        ctx.cim_host_to_dev(&mut mach, other, host, 16).expect("h2d");
        ctx.cim_dev_to_host(&mut mach, host, other, 16).expect("d2h");
        assert_eq!(ctx.pending_commands(), 1, "disjoint observation must not sync");
        assert_eq!(ctx.stats().selective_sync_skips, 2);
        // Observing an operand of the command pays the residual wait.
        ctx.cim_dev_to_host(&mut mach, host, c, 16).expect("d2h c");
        assert_eq!(ctx.pending_commands(), 0);
        let mut out = [0f32; 4];
        mach.peek_f32_slice(host, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
        // Overwriting an *input* of a (new) in-flight command also waits:
        // the hardware may still be reading it.
        ctx.cim_blas_sgemm(
            &mut mach,
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            a,
            2,
            b,
            2,
            0.0,
            c,
            2,
        )
        .expect("submits");
        assert_eq!(ctx.pending_commands(), 1);
        ctx.cim_host_to_dev(&mut mach, b, host, 16).expect("h2d into operand");
        assert_eq!(ctx.pending_commands(), 0, "operand overwrite must sync first");
    }

    #[test]
    fn offload_overhead_is_visible_in_host_instructions() {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let a = dev_mat(&mut ctx, &mut mach, &[1.0, 0.0, 0.0, 1.0]);
        let x = dev_mat(&mut ctx, &mut mach, &[1.0, 1.0]);
        let y = dev_mat(&mut ctx, &mut mach, &[0.0, 0.0]);
        let before = mach.core.instructions();
        ctx.cim_blas_sgemv(&mut mach, Transpose::No, 2, 2, 1.0, a, 2, x, 0.0, y).expect("gemv");
        let overhead = mach.core.instructions() - before;
        // ioctl + flush + regs + spin-wait: thousands of instructions for a
        // 4-MAC kernel — the GEMV-like loss of Fig. 6 in miniature.
        assert!(overhead > 2000, "got {overhead}");
    }

    #[test]
    fn free_releases_and_rejects_double_free() {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let p = ctx.cim_malloc(&mut mach, 128).expect("malloc");
        ctx.cim_free(&mut mach, p).expect("free");
        assert!(matches!(ctx.cim_free(&mut mach, p), Err(CimError::InvalidPointer(_))));
    }

    #[test]
    fn oversized_copy_rejected() {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let p = ctx.cim_malloc(&mut mach, 64).expect("malloc");
        let host = mach.alloc_host(128);
        assert!(matches!(
            ctx.cim_host_to_dev(&mut mach, p, host, 128),
            Err(CimError::InvalidArg(_))
        ));
    }

    #[test]
    fn context_applies_driver_overrides() {
        use cim_accel::DeviceKind;
        let mach = Machine::new(MachineConfig::test_small());
        let drv = DriverConfig {
            device: Some(DeviceKind::Reram),
            tile_grid: Some((2, 2)),
            ..DriverConfig::default()
        };
        let ctx = CimContext::new(AccelConfig::test_small(), drv, &mach);
        assert_eq!(ctx.accel().config().device, DeviceKind::Reram);
        assert_eq!(ctx.accel().tiles().len(), 4);
    }

    #[test]
    fn stats_track_calls() {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let _ = ctx.cim_malloc(&mut mach, 64).expect("malloc");
        assert_eq!(ctx.stats().init_calls, 1);
        assert_eq!(ctx.stats().malloc_calls, 1);
        assert_eq!(ctx.stats().bytes_allocated, 64);
    }
}
